package p2b

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// godocLintDirs are the packages the documentation gate covers: the public
// SDK surface, the fleet-topology package operators script against, and
// the metrics/persist packages whose exported types the telemetry and
// durability tooling (p2bwal, dashboards) build on. CI runs this test as
// its godoc lint step; adding a package here makes its exported surface
// documentation-mandatory.
var godocLintDirs = []string{".", "agent", "internal/metrics", "internal/persist", "internal/topology"}

// TestExportedIdentifiersAreDocumented fails when any exported identifier
// in the covered packages lacks a doc comment. Undocumented exports are
// how an SDK rots: godoc renders a bare name, users guess, and the guess
// becomes load-bearing. A const/var inside a documented group ("//
// The three node roles." above a const block) is fine — the group doc is
// the documentation.
func TestExportedIdentifiersAreDocumented(t *testing.T) {
	var missing []string
	for _, dir := range godocLintDirs {
		fset := token.NewFileSet()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, entry := range entries {
			name := entry.Name()
			if entry.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			missing = append(missing, undocumentedExports(fset, f)...)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// undocumentedExports returns one "file:line: name" entry per exported
// top-level identifier in f that has no doc comment.
func undocumentedExports(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				// Methods on unexported receivers are not public surface.
				if recv := receiverTypeName(d.Recv); recv != "" && !ast.IsExported(recv) {
					continue
				}
				report(d.Pos(), "method", receiverTypeName(d.Recv)+"."+d.Name.Name)
				continue
			}
			report(d.Pos(), "func", d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the spec or on the grouped decl
					// ("const ( ... )") satisfies the gate for every name in
					// the group.
					if s.Doc != nil || d.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverTypeName unwraps a method receiver to its base type name.
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
