#!/usr/bin/env bash
# Relay-crash recovery check (the CI "relay-crash" step, runnable
# locally). Proves the durable relay identity contract end to end:
#
#  1. A reference combined p2bnode ingests a deterministic workload and
#     its converged tabular model is recorded.
#  2. The SAME workload flows through a fleet: a durable relay
#     (-data-dir -wal-sync 0) forwarding to an analyzer that stays up
#     throughout. Mid-stream the relay is SIGKILLed — some batches are
#     acked and forwarded, one POST may be torn in half.
#  3. The relay restarts from the same -data-dir: it restores its
#     persisted (epoch, seq) forwarding cursor and re-forwards its WAL
#     tail. Because the cursor survived, the retransmits carry the
#     pre-crash epoch and the analyzer's per-origin duplicate guard
#     drops them instead of double-counting.
#  4. Submission resumes exactly where the durable log ends (the relay's
#     recovered Received counter says how many tuples are acked, torn
#     tail excluded), and the remaining workload is delivered.
#  5. The analyzer's model must be byte-identical to the reference run:
#     kill -9 on the relay mid-ingest costs retransmits, never a lost or
#     double-counted report.
#
# Exactness conditions as in topology_equiv.sh: integral {0,1} rewards,
# uniform one-shuffler-batch submissions, -shards 1 everywhere, and
# -wal-sync 0 on the relay so every acked batch is durable.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

PORT_SINGLE="${PORT_SINGLE:-18121}"
PORT_ANALYZER="${PORT_ANALYZER:-18122}"
PORT_RELAY="${PORT_RELAY:-18123}"
URL_SINGLE="http://127.0.0.1:$PORT_SINGLE"
URL_ANALYZER="http://127.0.0.1:$PORT_ANALYZER"
URL_RELAY="http://127.0.0.1:$PORT_RELAY"
WORK="$(mktemp -d)"
PIDS=()
RELAY_PID=""

cleanup() {
  status=$?
  if [ -n "$RELAY_PID" ]; then kill -9 "$RELAY_PID" 2>/dev/null || true; fi
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  if [ "$status" -ne 0 ] && [ -n "${TOPO_ARTIFACTS:-}" ]; then
    mkdir -p "$TOPO_ARTIFACTS"
    cp "$WORK"/*.log "$WORK"/*.json "$TOPO_ARTIFACTS"/ 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

K=64; ARMS=8; D=10; THRESHOLD=4; BATCH=32; NBATCH=40
TOKEN="relay-crash-token"
NODE_FLAGS=(-k $K -arms $ARMS -d $D -threshold $THRESHOLD -batch $BATCH -seed 5 -shards 1)

echo "== building =="
go build -o "$WORK/bin/" ./cmd/p2bnode

# Same LCG workload generator as topology_equiv.sh: NBATCH uniform
# batches of BATCH tuples, each batch one (code, action) with {0,1}
# rewards, reproducible with no Go code on the driving side.
echo "== generating workload ($NBATCH batches x $BATCH tuples) =="
awk -v nbatch=$NBATCH -v batch=$BATCH -v k=$K -v arms=$ARMS -v dir="$WORK" '
BEGIN {
  s = 54321
  for (b = 0; b < nbatch; b++) {
    s = (s * 1103515245 + 12345) % 2147483648; code = s % k
    s = (s * 1103515245 + 12345) % 2147483648; action = s % arms
    for (i = 0; i < batch; i++) {
      s = (s * 1103515245 + 12345) % 2147483648; reward = s % 2
      printf "{\"meta\":{\"device_id\":\"gen-%d\"},\"tuple\":{\"code\":%d,\"action\":%d,\"reward\":%d}}\n", b, code, action, reward > sprintf("%s/batch_%03d.ndjson", dir, b)
    }
  }
}'
for ((b = 0; b < NBATCH; b++)); do
  f="$WORK/$(printf 'batch_%03d.ndjson' "$b")"
  if [ ! -s "$f" ]; then
    echo "FAIL: workload generation left $f missing or empty" >&2
    exit 1
  fi
done

wait_healthy() {
  local url=$1
  for _ in $(seq 1 100); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "endpoint at $url never became healthy" >&2
  return 1
}

post_batch() {
  local url=$1 b=$2
  curl -fsS -X POST -H "Content-Type: application/x-ndjson" \
    --data-binary @"$WORK/$(printf 'batch_%03d.ndjson' "$b")" \
    "$url/shuffler/reports" >/dev/null
}

echo "== reference run: one combined node sees everything =="
"$WORK/bin/p2bnode" -addr ":$PORT_SINGLE" "${NODE_FLAGS[@]}" >"$WORK/single.log" 2>&1 &
PIDS+=($!)
wait_healthy "$URL_SINGLE"
for ((b = 0; b < NBATCH; b++)); do post_batch "$URL_SINGLE" "$b"; done
curl -fsS -X POST "$URL_SINGLE/shuffler/flush" >/dev/null
curl -fsS "$URL_SINGLE/server/model/tabular" >"$WORK/single_tabular.json"

echo "== fleet: analyzer (stays up) + durable relay =="
"$WORK/bin/p2bnode" -addr ":$PORT_ANALYZER" "${NODE_FLAGS[@]}" \
  -role analyzer -name analyzer-1 -advertise "$URL_ANALYZER" \
  -peer-token "$TOKEN" >"$WORK/analyzer.log" 2>&1 &
PIDS+=($!)
wait_healthy "$URL_ANALYZER"
"$WORK/bin/p2bnode" -addr ":$PORT_RELAY" "${NODE_FLAGS[@]}" \
  -role relay -name relay-1 -advertise "$URL_RELAY" \
  -downstream "$URL_ANALYZER" -peer-token "$TOKEN" \
  -data-dir "$WORK/relay-data" -wal-sync 0 >"$WORK/relay1.log" 2>&1 &
RELAY_PID=$!
wait_healthy "$URL_RELAY"

echo "== phase 1: acked batches, with a mid-phase checkpoint =="
for ((b = 0; b < 8; b++)); do post_batch "$URL_RELAY" "$b"; done
# A checkpoint mid-stream makes recovery compose checkpoint + WAL tail,
# the same shape crash_recovery.sh pins for a combined node.
curl -fsS -X POST "$URL_RELAY/admin/checkpoint"
for ((b = 8; b < 15; b++)); do post_batch "$URL_RELAY" "$b"; done

echo "== phase 2: SIGKILL the relay mid-stream =="
# The paced submitter keeps batches in flight while the kill lands; its
# first refused POST ends it (the relay is gone — that is the point).
(
  for ((b = 15; b < NBATCH; b++)); do
    post_batch "$URL_RELAY" "$b"
    sleep 0.1
  done
) >"$WORK/submitter.log" 2>&1 &
SUB_PID=$!
sleep 0.6
kill -9 "$RELAY_PID"
RELAY_PID=""
set +e
wait "$SUB_PID"
SUB_STATUS=$?
set -e
echo "   (submitter exited with status $SUB_STATUS after the kill — nonzero expected)"

echo "== restart: same data dir, cursor must be restored =="
"$WORK/bin/p2bnode" -addr ":$PORT_RELAY" "${NODE_FLAGS[@]}" \
  -role relay -name relay-1 -advertise "$URL_RELAY" \
  -downstream "$URL_ANALYZER" -peer-token "$TOKEN" \
  -data-dir "$WORK/relay-data" -wal-sync 0 >"$WORK/relay2.log" 2>&1 &
RELAY_PID=$!
wait_healthy "$URL_RELAY"
if ! grep -q "relay cursor epoch .* (restored: true)" "$WORK/relay2.log"; then
  echo "FAIL: restarted relay minted a fresh epoch instead of restoring its cursor" >&2
  cat "$WORK/relay2.log" >&2
  exit 1
fi
# The WAL-tail replay re-forwards batches the analyzer already counted;
# the duplicate-acks prove the same-epoch guard absorbed them.
curl -fsS "$URL_RELAY/healthz" >"$WORK/relay2_healthz.json"
if ! grep -oE '"duplicates":[0-9]+' "$WORK/relay2_healthz.json" | grep -qv ':0$'; then
  echo "FAIL: restart re-forwarded no duplicates — the crash-replay never happened" >&2
  cat "$WORK/relay2_healthz.json" >&2
  exit 1
fi

echo "== resume: pick up exactly where the durable log ends =="
curl -fsS "$URL_RELAY/shuffler/stats" >"$WORK/relay2_stats.json"
RECEIVED=$(grep -oE '"Received":[0-9]+' "$WORK/relay2_stats.json" | grep -oE '[0-9]+')
if [ -z "$RECEIVED" ] || [ "$RECEIVED" -lt $((15 * BATCH)) ]; then
  echo "FAIL: recovered relay lost acked phase-1 tuples (Received=$RECEIVED)" >&2
  exit 1
fi
if [ "$RECEIVED" -ge $((NBATCH * BATCH)) ]; then
  echo "FAIL: the kill landed after the whole workload — nothing was interrupted" >&2
  exit 1
fi
# Received counts every durable tuple, including a torn POST's prefix
# that was logged but never acked: resume at the tuple after it. The
# submission order is fixed, so tuple R+1 is line (R mod BATCH)+1 of
# batch floor(R / BATCH).
FULL=$((RECEIVED / BATCH))
LEFTOVER=$((RECEIVED % BATCH))
START=$FULL
if [ "$LEFTOVER" -gt 0 ]; then
  tail -n +"$((LEFTOVER + 1))" "$WORK/$(printf 'batch_%03d.ndjson' "$FULL")" |
    curl -fsS -X POST -H "Content-Type: application/x-ndjson" \
      --data-binary @- "$URL_RELAY/shuffler/reports" >/dev/null
  START=$((FULL + 1))
fi
echo "   (durable: $RECEIVED tuples = $FULL full batches + $LEFTOVER; resuming)"
for ((b = START; b < NBATCH; b++)); do post_batch "$URL_RELAY" "$b"; done
curl -fsS -X POST "$URL_RELAY/shuffler/flush" >/dev/null

echo "== compare: fleet model must be bit-identical to the reference =="
# Forwarding is synchronous in the ingest path, but give the analyzer a
# short settle window before declaring divergence.
converged=""
for _ in $(seq 1 50); do
  curl -fsS "$URL_ANALYZER/server/model/tabular" >"$WORK/analyzer_tabular.json"
  if cmp -s "$WORK/single_tabular.json" "$WORK/analyzer_tabular.json"; then
    converged=yes
    break
  fi
  sleep 0.2
done
if [ -z "$converged" ]; then
  echo "FAIL: fleet model diverged from the uninterrupted reference run" >&2
  diff "$WORK/single_tabular.json" "$WORK/analyzer_tabular.json" >&2 || true
  exit 1
fi

echo "== non-vacuity: exactly-once accounting on the analyzer =="
curl -fsS "$URL_ANALYZER/peer/status" >"$WORK/peer_status.json"
if ! grep -q "\"relay_batches\":$NBATCH\b" "$WORK/peer_status.json"; then
  echo "FAIL: analyzer did not apply exactly $NBATCH relay batches" >&2
  cat "$WORK/peer_status.json" >&2
  exit 1
fi
if ! grep -oE '"relay_duplicates":[0-9]+' "$WORK/peer_status.json" | grep -qv ':0$'; then
  echo "FAIL: analyzer saw no duplicate batches — the retransmit path went untested" >&2
  cat "$WORK/peer_status.json" >&2
  exit 1
fi
if ! grep -o '"count":\[[^]]*\]' "$WORK/single_tabular.json" | grep -q '[1-9]'; then
  echo "FAIL: reference model is empty — the bit-identity check proved nothing" >&2
  exit 1
fi

echo "PASS: kill -9 on the relay mid-ingest, restart, resume — fleet model"
echo "      bit-identical to the uninterrupted run, duplicates absorbed by the guard"
