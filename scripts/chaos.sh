#!/usr/bin/env bash
# Chaos integration check (the CI "chaos" job, runnable locally). Proves
# the overload/fault contract end to end at the binary level:
#
#  1. A reference fleet (p2bagent, fixed seeds) runs against a clean
#     durable p2bnode; its converged tabular model is recorded.
#  2. The SAME fleet runs again, but every byte travels through p2bchaos
#     (seeded latency, connection resets, 503 bursts with Retry-After,
#     truncated model downloads) against a node with a WAL fsync fault
#     armed (-faults) under the degrade-to-memory policy.
#  3. The chaos fleet must exit 0 with zero dropped batches/reports
#     (p2bagent exits nonzero on any sticky delivery failure), the proxy
#     and the failpoint must have actually fired, and the chaos node's
#     converged model must be BIT-IDENTICAL to the clean run's.
#
# Why bit-exactness is possible at all: resets and synthesized 503s
# happen strictly before the proxy forwards (a retry is the node's FIRST
# sight of the batch), truncation applies only to GET bodies, the fleet
# runs -inflight 1 (retried batches still arrive in cut order) with
# -max-age well past the run (only deterministic size-triggered cuts),
# -model-refresh 0 pins every device to the one warm-start model fetch,
# and the node ingests single-sharded from a fixed seed. Faults change
# WHEN things happen, never WHAT arrives.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

PORT_NODE="${PORT_NODE:-18093}"
PORT_PROXY="${PORT_PROXY:-18094}"
URL_NODE="http://127.0.0.1:$PORT_NODE"
URL_PROXY="http://127.0.0.1:$PORT_PROXY"
WORK="$(mktemp -d)"
NODE_PID=""
PROXY_PID=""

cleanup() {
  status=$?
  if [ -n "$NODE_PID" ]; then kill -9 "$NODE_PID" 2>/dev/null || true; fi
  if [ -n "$PROXY_PID" ]; then kill -9 "$PROXY_PID" 2>/dev/null || true; fi
  # On failure, export the run's logs and state dumps for post-mortem
  # (CI uploads $CHAOS_ARTIFACTS as a workflow artifact).
  if [ "$status" -ne 0 ] && [ -n "${CHAOS_ARTIFACTS:-}" ]; then
    mkdir -p "$CHAOS_ARTIFACTS"
    cp "$WORK"/*.log "$WORK"/*.json "$CHAOS_ARTIFACTS"/ 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

MODEL_FLAGS=(-k 64 -arms 20 -d 10)
NODE_FLAGS=("${MODEL_FLAGS[@]}" -threshold 4 -batch 64 -seed 5 -shards 1)
# The determinism contract: serial delivery, size-triggered cuts only,
# one warm-start model fetch, deep retry budget for the fault stream.
AGENT_FLAGS=("${MODEL_FLAGS[@]}" -users 300 -T 8 -p 0.5 -seed 7 -report-every 0
  -inflight 1 -max-batch 32 -max-age 1h -model-refresh 0
  -retries 25 -retry-base 20ms)

echo "== building =="
go build -o "$WORK/bin/" ./cmd/p2bnode ./cmd/p2bchaos ./cmd/p2bagent

wait_healthy() {
  local url=$1
  for _ in $(seq 1 100); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "endpoint at $url never became healthy" >&2
  return 1
}

echo "== reference run: same fleet, clean network, healthy disk =="
"$WORK/bin/p2bnode" -addr ":$PORT_NODE" "${NODE_FLAGS[@]}" \
  -data-dir "$WORK/clean" -wal-sync 0 >"$WORK/node_clean.log" 2>&1 &
NODE_PID=$!
wait_healthy "$URL_NODE"
"$WORK/bin/p2bagent" -node "$URL_NODE" "${AGENT_FLAGS[@]}" | tee "$WORK/agent_clean.log"
curl -fsS "$URL_NODE/server/model/tabular" >"$WORK/clean_tabular.json"
curl -fsS "$URL_NODE/shuffler/stats" >"$WORK/clean_stats.json"
kill -9 "$NODE_PID"
NODE_PID=""

echo "== chaos run: WAL fsync fault armed, all traffic through p2bchaos =="
"$WORK/bin/p2bnode" -addr ":$PORT_NODE" "${NODE_FLAGS[@]}" \
  -data-dir "$WORK/chaos" -wal-sync 0 \
  -wal-policy degrade -faults "wal/sync:after=3,count=1" \
  >"$WORK/node_chaos.log" 2>&1 &
NODE_PID=$!
wait_healthy "$URL_NODE"
"$WORK/bin/p2bchaos" -addr ":$PORT_PROXY" -upstream "$URL_NODE" -seed 42 \
  -latency-prob 0.3 -latency 5ms -reset-prob 0.15 \
  -error-prob 0.1 -error-burst 2 -retry-after 50ms \
  -truncate-prob 0.3 >"$WORK/proxy.log" 2>&1 &
PROXY_PID=$!
wait_healthy "$URL_PROXY"

# The fleet speaks only to the proxy. A sticky delivery failure or any
# dropped batch makes p2bagent exit nonzero, which fails the script here.
"$WORK/bin/p2bagent" -node "$URL_PROXY" "${AGENT_FLAGS[@]}" | tee "$WORK/agent_chaos.log"

# End-of-run measurement goes direct to the node, not through the proxy.
curl -fsS "$URL_NODE/server/model/tabular" >"$WORK/chaos_tabular.json"
curl -fsS "$URL_NODE/shuffler/stats" >"$WORK/chaos_stats.json"
curl -fsS "$URL_NODE/healthz" >"$WORK/chaos_healthz.json"
curl -fsS "$URL_PROXY/chaosz" >"$WORK/chaosz.json"
kill -9 "$PROXY_PID"; PROXY_PID=""
kill -9 "$NODE_PID"; NODE_PID=""

echo "== the chaos must have actually happened =="
cat "$WORK/chaosz.json"; echo
for counter in resets errors delayed truncated; do
  if ! grep -oE "\"$counter\":[0-9]+" "$WORK/chaosz.json" | grep -qv ':0$'; then
    echo "FAIL: proxy injected no ${counter} — the run proved nothing" >&2
    exit 1
  fi
done
# The armed WAL fsync fault must have fired: under the degrade policy a
# refused append falls back to memory and bumps degraded_ops.
if ! grep -oE '"degraded_ops":[0-9]+' "$WORK/chaos_healthz.json" | grep -qv ':0$'; then
  echo "FAIL: WAL fsync failpoint never fired (no degraded_ops)" >&2
  cat "$WORK/chaos_healthz.json" >&2
  exit 1
fi

echo "== compare: chaos model must be bit-identical to the clean run =="
diff "$WORK/clean_tabular.json" "$WORK/chaos_tabular.json"
# Whole-stats diff would be vacuous noise: the chaos node legitimately
# reports overload counters the clean node does not have. Compare the
# pipeline counters that define zero-loss instead.
for counter in Received Batches Forwarded Dropped; do
  clean_val="$(grep -oE "\"$counter\":[0-9]+" "$WORK/clean_stats.json" | head -1)"
  chaos_val="$(grep -oE "\"$counter\":[0-9]+" "$WORK/chaos_stats.json" | head -1)"
  if [ -z "$clean_val" ] || [ "$clean_val" != "$chaos_val" ]; then
    echo "FAIL: shuffler $counter diverged: clean ${clean_val:-missing} vs chaos ${chaos_val:-missing}" >&2
    exit 1
  fi
done
# Non-vacuity: the converged model must actually contain mass.
if ! grep -o '"count":\[[^]]*\]' "$WORK/clean_tabular.json" | grep -q '[1-9]'; then
  echo "FAIL: reference model is empty — the bit-identity check proved nothing" >&2
  exit 1
fi

echo "PASS: chaos run (resets, 503 bursts, latency, truncation, WAL fsync fault)"
echo "      converged bit-identically to the clean run with zero dropped reports"
