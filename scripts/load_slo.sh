#!/usr/bin/env bash
# Load-SLO measurement (the CI "load-slo" job, runnable locally). Boots a
# real durable p2bnode with admission caps — the production configuration,
# not a test double — drives it with p2bload's open-loop smoke preset,
# verifies the /metrics exposition, and leaves BENCH_load_slo.json in the
# results directory for p2bgate to compare against the committed baseline
# (throughput floor, p99 latency ceiling).
#
# Usage:
#   scripts/load_slo.sh [results-dir]          # measure into results-dir (default: results)
#   scripts/load_slo.sh testdata/bench_baseline/load_slo   # refresh the baseline
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

OUT="${1:-results}"
PORT="${PORT_NODE:-18097}"
URL="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
NODE_PID=""

cleanup() {
  if [ -n "$NODE_PID" ]; then kill -9 "$NODE_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

mkdir -p "$OUT"

echo "== building =="
go build -o "$WORK/bin/" ./cmd/p2bnode ./cmd/p2bload

echo "== booting a durable admission-capped node =="
"$WORK/bin/p2bnode" -addr ":$PORT" -k 64 -arms 20 -d 10 -threshold 4 -batch 64 \
  -seed 5 -data-dir "$WORK/data" -wal-sync 25ms \
  -max-inflight 256 -max-inflight-bytes $((64 << 20)) \
  >"$WORK/node.log" 2>&1 &
NODE_PID=$!
for _ in $(seq 1 100); do
  if curl -fsS "$URL/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$URL/healthz" >/dev/null

echo "== open-loop smoke load =="
"$WORK/bin/p2bload" -node "$URL" -smoke -json "$OUT/BENCH_load_slo.json"

echo "== /metrics exposition check (after real traffic) =="
"$WORK/bin/p2bload" -node "$URL" -check-metrics
# The scrape itself must be well-formed enough to keep re-scraping: twice,
# because a broken accumulation path often renders once and corrupts after.
curl -fsS "$URL/metrics" >"$WORK/metrics.txt"
grep -q '^p2b_http_requests_total{route="report",class="2xx"} [1-9]' "$WORK/metrics.txt" || {
  echo "FAIL: /metrics shows no accepted reports after the load run" >&2
  exit 1
}
grep -q '^p2b_wal_append_seconds_count [1-9]' "$WORK/metrics.txt" || {
  echo "FAIL: /metrics shows no WAL appends on a durable node" >&2
  exit 1
}

kill "$NODE_PID" 2>/dev/null || true
wait "$NODE_PID" 2>/dev/null || true
NODE_PID=""
cp "$WORK/node.log" "$OUT/load_slo_node.log" 2>/dev/null || true

echo "PASS: load run measured into $OUT/BENCH_load_slo.json, exposition valid"
