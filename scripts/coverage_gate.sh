#!/usr/bin/env bash
# Coverage gate: runs `go test -coverprofile` for every package listed in
# testdata/coverage_floor.txt and fails if any package's statement coverage
# drops below its committed floor. Profiles land in $OUT (default
# coverage/) so CI can upload them as artifacts.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
OUT="${OUT:-coverage}"
FLOORS="testdata/coverage_floor.txt"
mkdir -p "$OUT"

fail=0
while read -r pkg floor; do
  case "$pkg" in ''|'#'*) continue ;; esac
  name="$(basename "$pkg")"
  profile="$OUT/$name.out"
  line="$(go test -coverprofile="$profile" "$pkg" | tail -1)"
  echo "$line"
  pct="$(echo "$line" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*')"
  if [ -z "$pct" ]; then
    echo "FAIL: could not parse coverage for $pkg" >&2
    fail=1
    continue
  fi
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "FAIL: $pkg coverage $pct% is below the committed floor of $floor%" >&2
    fail=1
  else
    echo "  ok: $pkg $pct% >= floor $floor%"
  fi
done <"$FLOORS"

exit $fail
