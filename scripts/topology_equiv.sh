#!/usr/bin/env bash
# Topology-equivalence check (the CI "topology" job, runnable locally).
# Proves the multi-node deployment computes EXACTLY the single-node model:
#
#  1. A reference combined p2bnode ingests a deterministic workload and its
#     converged tabular model is recorded.
#  2. The SAME workload, partitioned across a fleet — a p2bboard bulletin
#     board, two relays forwarding over /peer/ingest, two analyzers
#     anti-entropy-peered over /peer/merge — must converge every analyzer
#     to a BIT-IDENTICAL model.
#
# Why bit-exactness is possible at all: the workload ships integral {0,1}
# rewards (float64 addition over them is exact, hence associative, hence
# fold-order-free), every submitted batch is uniform in (code, action) and
# exactly one shuffler batch long (the crowd threshold keeps all of it on
# whichever node shuffles it), every node runs -shards 1, and analyzers
# fold peer contributions in sorted origin order. See DESIGN.md
# "Multi-node topology".
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

PORT_BOARD="${PORT_BOARD:-18110}"
PORT_SINGLE="${PORT_SINGLE:-18111}"
PORT_A1="${PORT_A1:-18112}"
PORT_A2="${PORT_A2:-18113}"
PORT_R1="${PORT_R1:-18114}"
PORT_R2="${PORT_R2:-18115}"
URL_BOARD="http://127.0.0.1:$PORT_BOARD"
URL_SINGLE="http://127.0.0.1:$PORT_SINGLE"
URL_A1="http://127.0.0.1:$PORT_A1"
URL_A2="http://127.0.0.1:$PORT_A2"
URL_R1="http://127.0.0.1:$PORT_R1"
URL_R2="http://127.0.0.1:$PORT_R2"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  status=$?
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  if [ "$status" -ne 0 ] && [ -n "${TOPO_ARTIFACTS:-}" ]; then
    mkdir -p "$TOPO_ARTIFACTS"
    cp "$WORK"/*.log "$WORK"/*.json "$TOPO_ARTIFACTS"/ 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

K=64; ARMS=8; D=10; THRESHOLD=4; BATCH=32; NBATCH=40
TOKEN="topo-ci-token"
NODE_FLAGS=(-k $K -arms $ARMS -d $D -threshold $THRESHOLD -batch $BATCH -seed 5 -shards 1)

echo "== building =="
go build -o "$WORK/bin/" ./cmd/p2bnode ./cmd/p2bboard

# The workload: NBATCH uniform batches, one shuffler batch each. An LCG
# picks each batch's (code, action) and its per-tuple {0,1} rewards, so
# the stream is reproducible without any Go code on the driving side.
echo "== generating workload ($NBATCH batches x $BATCH tuples) =="
awk -v nbatch=$NBATCH -v batch=$BATCH -v k=$K -v arms=$ARMS -v dir="$WORK" '
BEGIN {
  s = 12345
  for (b = 0; b < nbatch; b++) {
    s = (s * 1103515245 + 12345) % 2147483648; code = s % k
    s = (s * 1103515245 + 12345) % 2147483648; action = s % arms
    for (i = 0; i < batch; i++) {
      s = (s * 1103515245 + 12345) % 2147483648; reward = s % 2
      printf "{\"meta\":{\"device_id\":\"gen-%d\"},\"tuple\":{\"code\":%d,\"action\":%d,\"reward\":%d}}\n", b, code, action, reward > sprintf("%s/batch_%03d.ndjson", dir, b)
    }
  }
}'
# A missing/empty workload file would make curl post an empty body (it
# only WARNS on an unreadable @file), silently proving nothing.
for ((b = 0; b < NBATCH; b++)); do
  f="$WORK/$(printf 'batch_%03d.ndjson' "$b")"
  if [ ! -s "$f" ]; then
    echo "FAIL: workload generation left $f missing or empty" >&2
    exit 1
  fi
done

wait_healthy() {
  local url=$1
  for _ in $(seq 1 100); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "endpoint at $url never became healthy" >&2
  return 1
}

# submit_batches TARGET_URL first step: POST batches first, first+step,
# first+2*step, ... in index order, then flush. One POST per batch keeps
# submission aligned with the shuffler's size-triggered cuts.
submit_batches() {
  local url=$1 first=$2 step=$3 b
  for ((b = first; b < NBATCH; b += step)); do
    curl -fsS -X POST -H "Content-Type: application/x-ndjson" \
      --data-binary @"$WORK/$(printf 'batch_%03d.ndjson' "$b")" \
      "$url/shuffler/reports" >/dev/null
  done
  curl -fsS -X POST "$url/shuffler/flush" >/dev/null
}

echo "== reference run: one combined node sees everything =="
"$WORK/bin/p2bnode" -addr ":$PORT_SINGLE" "${NODE_FLAGS[@]}" >"$WORK/single.log" 2>&1 &
PIDS+=($!)
wait_healthy "$URL_SINGLE"
submit_batches "$URL_SINGLE" 0 1
curl -fsS "$URL_SINGLE/server/model/tabular" >"$WORK/single_tabular.json"

echo "== fleet run: board + 2 relays + 2 peered analyzers, workload split =="
"$WORK/bin/p2bboard" -addr ":$PORT_BOARD" >"$WORK/board.log" 2>&1 &
PIDS+=($!)
wait_healthy "$URL_BOARD"
"$WORK/bin/p2bnode" -addr ":$PORT_A1" "${NODE_FLAGS[@]}" \
  -role analyzer -name analyzer-1 -advertise "$URL_A1" \
  -peers "$URL_A2" -peer-sync 200ms -peer-token "$TOKEN" \
  -registry "$URL_BOARD" >"$WORK/a1.log" 2>&1 &
PIDS+=($!)
"$WORK/bin/p2bnode" -addr ":$PORT_A2" "${NODE_FLAGS[@]}" \
  -role analyzer -name analyzer-2 -advertise "$URL_A2" \
  -peers "$URL_A1" -peer-sync 200ms -peer-token "$TOKEN" \
  -registry "$URL_BOARD" >"$WORK/a2.log" 2>&1 &
PIDS+=($!)
wait_healthy "$URL_A1"
wait_healthy "$URL_A2"
"$WORK/bin/p2bnode" -addr ":$PORT_R1" "${NODE_FLAGS[@]}" \
  -role relay -name relay-1 -advertise "$URL_R1" \
  -downstream "$URL_A1" -peer-token "$TOKEN" \
  -registry "$URL_BOARD" >"$WORK/r1.log" 2>&1 &
PIDS+=($!)
"$WORK/bin/p2bnode" -addr ":$PORT_R2" "${NODE_FLAGS[@]}" \
  -role relay -name relay-2 -advertise "$URL_R2" \
  -downstream "$URL_A2" -peer-token "$TOKEN" \
  -registry "$URL_BOARD" >"$WORK/r2.log" 2>&1 &
PIDS+=($!)
wait_healthy "$URL_R1"
wait_healthy "$URL_R2"

# Even-indexed batches through relay-1, odd through relay-2: a genuine
# partition, neither analyzer sees the whole stream locally.
submit_batches "$URL_R1" 0 2
submit_batches "$URL_R2" 1 2

echo "== waiting for anti-entropy convergence =="
converged=""
for _ in $(seq 1 100); do
  curl -fsS "$URL_A1/server/model/tabular" >"$WORK/a1_tabular.json"
  curl -fsS "$URL_A2/server/model/tabular" >"$WORK/a2_tabular.json"
  if cmp -s "$WORK/single_tabular.json" "$WORK/a1_tabular.json" &&
     cmp -s "$WORK/single_tabular.json" "$WORK/a2_tabular.json"; then
    converged=yes
    break
  fi
  sleep 0.2
done
if [ -z "$converged" ]; then
  echo "FAIL: fleet never converged to the single-node model" >&2
  echo "--- single vs analyzer-1 ---" >&2
  diff "$WORK/single_tabular.json" "$WORK/a1_tabular.json" >&2 || true
  echo "--- single vs analyzer-2 ---" >&2
  diff "$WORK/single_tabular.json" "$WORK/a2_tabular.json" >&2 || true
  exit 1
fi

echo "== the topology must have actually carried the data =="
curl -fsS "$URL_BOARD/topology" >"$WORK/board.json"
for name in relay-1 relay-2 analyzer-1 analyzer-2; do
  if ! grep -q "\"$name\"" "$WORK/board.json"; then
    echo "FAIL: $name never announced on the board" >&2
    cat "$WORK/board.json" >&2
    exit 1
  fi
done
curl -fsS "$URL_R1/healthz" >"$WORK/r1_healthz.json"
curl -fsS "$URL_A1/healthz" >"$WORK/a1_healthz.json"
if ! grep -q '"role":"relay"' "$WORK/r1_healthz.json"; then
  echo "FAIL: relay healthz does not name its role" >&2
  exit 1
fi
if ! grep -oE '"batches":[0-9]+' "$WORK/r1_healthz.json" | grep -qv ':0$'; then
  echo "FAIL: relay-1 forwarded nothing — the fleet run proved nothing" >&2
  cat "$WORK/r1_healthz.json" >&2
  exit 1
fi
if ! grep -oE '"merges_applied":[0-9]+' "$WORK/a1_healthz.json" | grep -qv ':0$'; then
  echo "FAIL: analyzer-1 merged no peer state — convergence was vacuous" >&2
  cat "$WORK/a1_healthz.json" >&2
  exit 1
fi
# Non-vacuity: the converged model must actually contain mass.
if ! grep -o '"count":\[[^]]*\]' "$WORK/single_tabular.json" | grep -q '[1-9]'; then
  echo "FAIL: reference model is empty — the bit-identity check proved nothing" >&2
  exit 1
fi

echo "PASS: partitioned 2-relay/2-analyzer fleet converged bit-identically"
echo "      to the single combined node over the same workload"
