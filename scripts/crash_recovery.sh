#!/usr/bin/env bash
# Crash-recovery integration check (the CI "recovery" job, runnable
# locally). Proves the durability contract end to end:
#
#  1. A durable p2bnode ingests a first agent phase, then checkpoints.
#  2. A second agent phase streams batches; the node is SIGKILLed
#     mid-ingest (the agent's in-flight POST fails — that is expected).
#  3. The node restarts from the same -data-dir: it restores the
#     checkpoint, replays the WAL tail, truncates the torn record the
#     kill left behind, and serves model snapshots.
#  4. p2bwal replays the frozen data directory's full logged input stream
#     (checkpoint-covered records included: the node runs -wal-retain)
#     into a brand-new, never-crashed node with identical parameters.
#  5. The recovered snapshots must match the clean node's snapshots
#     byte-for-byte: kill -9 during ingest, then restart, yields a model
#     bit-identical to an uninterrupted run over the same input.
#
# The node runs -shards 1 -wal-sync 0: single-shard ingestion makes
# accumulation order fully deterministic, and per-append fsync makes every
# acked report durable, so the equivalence is exact, not approximate.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

PORT_A="${PORT_A:-18091}"
PORT_B="${PORT_B:-18092}"
URL_A="http://127.0.0.1:$PORT_A"
URL_B="http://127.0.0.1:$PORT_B"
WORK="$(mktemp -d)"
NODE_PID=""
CLEAN_PID=""

cleanup() {
  if [ -n "$NODE_PID" ]; then kill -9 "$NODE_PID" 2>/dev/null || true; fi
  if [ -n "$CLEAN_PID" ]; then kill -9 "$CLEAN_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

MODEL_FLAGS=(-k 64 -arms 20 -d 10)
NODE_FLAGS=("${MODEL_FLAGS[@]}" -threshold 4 -batch 64 -seed 5 -shards 1)

echo "== building =="
go build -o "$WORK/bin/" ./cmd/p2bnode ./cmd/p2bagent ./cmd/p2bwal

wait_healthy() {
  local url=$1
  for _ in $(seq 1 100); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "node at $url never became healthy" >&2
  return 1
}

echo "== phase 1: durable node ingests a clean agent run =="
"$WORK/bin/p2bnode" -addr ":$PORT_A" "${NODE_FLAGS[@]}" \
  -data-dir "$WORK/data" -wal-sync 0 -wal-retain >"$WORK/node1.log" 2>&1 &
NODE_PID=$!
wait_healthy "$URL_A"
"$WORK/bin/p2bagent" -node "$URL_A" "${MODEL_FLAGS[@]}" \
  -users 300 -T 8 -seed 7 -report-every 0

echo "== checkpoint, so recovery composes checkpoint + WAL tail =="
curl -fsS -X POST "$URL_A/admin/checkpoint"

echo "== phase 2: SIGKILL the node mid-ingest =="
set +e
"$WORK/bin/p2bagent" -node "$URL_A" "${MODEL_FLAGS[@]}" \
  -users 20000 -T 8 -seed 8 -report-every 0 >"$WORK/agent2.log" 2>&1 &
AGENT_PID=$!
sleep 2
kill -9 "$NODE_PID"
NODE_PID=""
wait "$AGENT_PID"
AGENT_STATUS=$?
set -e
echo "   (agent exited with status $AGENT_STATUS after the kill — expected nonzero)"

# Freeze the data dir as the kill left it, for the clean replay below:
# restart mutates it (torn-tail truncation, shutdown checkpoint).
cp -a "$WORK/data" "$WORK/data.frozen"

echo "== restart: recover from checkpoint + WAL =="
"$WORK/bin/p2bnode" -addr ":$PORT_A" "${NODE_FLAGS[@]}" \
  -data-dir "$WORK/data" -wal-sync 0 -wal-retain >"$WORK/node2.log" 2>&1 &
NODE_PID=$!
wait_healthy "$URL_A"
curl -fsS "$URL_A/healthz" >"$WORK/healthz.json"
grep -q '"checkpoint_seq"' "$WORK/healthz.json"
curl -fsS "$URL_A/server/model/tabular" >"$WORK/recovered_tabular.json"
curl -fsS "$URL_A/server/model/linucb" >"$WORK/recovered_linucb.json"
curl -fsS "$URL_A/shuffler/stats" >"$WORK/recovered_shuffler_stats.json"
kill -9 "$NODE_PID"
NODE_PID=""

echo "== clean run: replay the frozen log into a never-crashed node =="
"$WORK/bin/p2bwal" -dir "$WORK/data.frozen" verify
"$WORK/bin/p2bnode" -addr ":$PORT_B" "${NODE_FLAGS[@]}" >"$WORK/node3.log" 2>&1 &
CLEAN_PID=$!
wait_healthy "$URL_B"
"$WORK/bin/p2bwal" -dir "$WORK/data.frozen" -node "$URL_B" replay
curl -fsS "$URL_B/server/model/tabular" >"$WORK/clean_tabular.json"
curl -fsS "$URL_B/server/model/linucb" >"$WORK/clean_linucb.json"
curl -fsS "$URL_B/shuffler/stats" >"$WORK/clean_shuffler_stats.json"
kill -9 "$CLEAN_PID"
CLEAN_PID=""

echo "== compare: recovered state must be bit-identical to the clean run =="
diff "$WORK/recovered_tabular.json" "$WORK/clean_tabular.json"
diff "$WORK/recovered_linucb.json" "$WORK/clean_linucb.json"
# The overload block is process-lifetime admission telemetry, not logged
# state: the recovered node was restarted (counters reset to zero) while
# the clean node admitted its whole input as fresh HTTP traffic. Strip
# it; every other stats field is durable and must match exactly.
sed 's/,"overload":{[^}]*}//' "$WORK/recovered_shuffler_stats.json" >"$WORK/recovered_shuffler_stats.cmp"
sed 's/,"overload":{[^}]*}//' "$WORK/clean_shuffler_stats.json" >"$WORK/clean_shuffler_stats.cmp"
diff "$WORK/recovered_shuffler_stats.cmp" "$WORK/clean_shuffler_stats.cmp"

# The comparison must not be vacuous: phase 1 alone forwards hundreds of
# tuples, so the recovered model's count array must contain a nonzero
# entry (grep the array itself, not the whole JSON — "k":64 etc. always
# contain digits).
if ! grep -o '"count":\[[^]]*\]' "$WORK/recovered_tabular.json" | grep -q '[1-9]'; then
  echo "FAIL: recovered model is empty — the bit-identity check proved nothing" >&2
  exit 1
fi

echo "PASS: kill -9 mid-ingest + restart reproduced the clean run bit-for-bit"
echo "      (recovery: $(grep -o '"replayed_records":[0-9]*' "$WORK/healthz.json" || true))"
