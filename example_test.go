package p2b_test

import (
	"fmt"

	"p2b"
)

// ExampleEpsilon shows the paper's headline privacy guarantee: sampling at
// p = 0.5 plus crowd-blending yields epsilon = ln 2.
func ExampleEpsilon() {
	fmt.Printf("%.6f\n", p2b.Epsilon(0.5))
	// Output: 0.693147
}

// ExampleParticipationForEpsilon inverts the guarantee: given a privacy
// target, how much of the population's data may be sampled?
func ExampleParticipationForEpsilon() {
	p := p2b.ParticipationForEpsilon(0.693147)
	fmt.Printf("%.2f\n", p)
	// Output: 0.50
}

// ExampleCompose prices repeated disclosures by basic composition, as the
// paper's §6 remark does.
func ExampleCompose() {
	eps := p2b.Epsilon(0.5)
	fmt.Printf("%.4f\n", p2b.Compose(eps, 3))
	// Output: 2.0794
}

// ExampleNewGridEncoder reproduces Equation 1's cardinality for the
// paper's Figure 2 example: the d=3, q=1 simplex grid has 66 points.
func ExampleNewGridEncoder() {
	enc, err := p2b.NewGridEncoder(3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(enc.K())
	// Output: 66
}

// ExampleNewSystem runs a miniature P2B deployment end to end: users
// contribute through the private pipeline and a fresh cohort measures the
// warm-start benefit.
func ExampleNewSystem() {
	env, err := p2b.NewSyntheticEnvironment(p2b.SyntheticConfig{
		D: 6, Arms: 5, Beta: 0.1, Sigma: 0.1,
	}, 42)
	if err != nil {
		panic(err)
	}
	sys, err := p2b.NewSystem(p2b.Config{
		Mode:      p2b.WarmPrivate,
		T:         10,
		P:         0.5,
		K:         16,
		Threshold: 2,
		Seed:      1,
	}, env, nil)
	if err != nil {
		panic(err)
	}
	sys.RunRange(0, 2000, true)
	sys.Flush()
	eval := sys.RunRange(1_000_000, 100, false)
	fmt.Printf("interactions measured: %d\n", eval.Overall.Count())
	fmt.Printf("epsilon: %.6f\n", sys.Epsilon())
	// Output:
	// interactions measured: 1000
	// epsilon: 0.693147
}
