// Package p2b is the public API of this repository: a Go implementation of
// Privacy-Preserving Bandits (Malekzadeh et al., MLSys 2020).
//
// P2B lets contextual bandit agents running on user devices improve each
// other through a differentially-private data collection pipeline: each
// agent encodes an interaction's context into a coarse discrete code, with
// probability P submits the single tuple (code, action, reward) through a
// trusted shuffler that anonymizes, shuffles and crowd-blends reports, and
// the server aggregates surviving tuples into a global model that
// warm-starts new agents. Pre-sampling plus (l, 0)-crowd-blending yields
// (epsilon, delta)-differential privacy with
//
//	epsilon = ln(P(2-P)/(1-P) + (1-P))   — about 0.693 at P = 0.5.
//
// # Quick start
//
//	env, _ := p2b.NewSyntheticEnvironment(p2b.SyntheticConfig{
//		D: 10, Arms: 20, Beta: 0.1, Sigma: 0.1,
//	}, 42)
//	sys, _ := p2b.NewSystem(p2b.Config{
//		Mode: p2b.WarmPrivate, T: 10, P: 0.5, K: 64, Threshold: 10, Seed: 1,
//	}, env, nil)
//	sys.RunRange(0, 10_000, true) // users contribute
//	sys.Flush()
//	eval := sys.RunRange(1_000_000, 500, false) // fresh cohort, no sharing
//	fmt.Println("reward:", eval.Overall.Mean(), "epsilon:", sys.Epsilon())
//
// # Device SDK
//
// Package p2b/agent is the device-side SDK: an embeddable agent.Agent with
// a Select/Observe/Finish lifecycle that owns the encoder, the local
// learner, warm-start from the global model and randomized-participation
// reporting, behind two pluggable seams (agent.Transport, agent.ModelSource)
// with in-process and HTTP implementations. The population simulator here
// (System) drives exactly that SDK, so simulated results transfer to real
// deployments.
//
// The full experiment harness reproducing every figure of the paper lives
// behind cmd/p2bbench; see DESIGN.md for the per-experiment index.
package p2b

import (
	"net/http"

	"p2b/internal/adlogs"
	"p2b/internal/core"
	"p2b/internal/encoding"
	"p2b/internal/httpapi"
	"p2b/internal/mlabel"
	"p2b/internal/privacy"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/synthetic"
)

// Core system types, re-exported from the implementation packages.
type (
	// Mode selects cold, warm-non-private or warm-private operation.
	Mode = core.Mode
	// Config parameterizes a System; see the field docs in internal/core.
	Config = core.Config
	// System is one configured P2B deployment over an Environment.
	System = core.System
	// Environment is a bandit workload (context space, action set,
	// per-user sessions).
	Environment = core.Environment
	// UserSession yields one user's contexts and bandit feedback.
	UserSession = core.UserSession
	// RunResult aggregates rewards of a simulated user batch.
	RunResult = core.RunResult
	// Encoder maps context vectors to discrete codes.
	Encoder = encoding.Encoder
	// Rand is the deterministic random stream all components draw from.
	Rand = rng.Rand
	// Server is the analyzer: it folds privacy-scrubbed batches into the
	// global models and serves versioned snapshots. Exposed so SDK users
	// can wire an agent.Loopback to a System's components.
	Server = server.Server
	// Shuffler is the trusted anonymize/shuffle/threshold stage between
	// agents and the Server.
	Shuffler = shuffler.Shuffler
)

// Operation modes (the paper's three evaluation regimes).
const (
	// Cold runs standalone local agents with no communication.
	Cold = core.Cold
	// WarmNonPrivate shares raw contexts with the server (no privacy).
	WarmNonPrivate = core.WarmNonPrivate
	// WarmPrivate runs the full P2B pipeline.
	WarmPrivate = core.WarmPrivate
)

// Learner selects the warm-private agents' hypothesis class (see the
// Config.PrivateLearner docs).
type Learner = core.Learner

// Private learner variants.
const (
	// LearnerTabular keeps per-(code, action) statistics; right for small
	// code spaces with strong per-cluster structure.
	LearnerTabular = core.LearnerTabular
	// LearnerCentroid runs LinUCB over decoded centroids; right for large
	// code spaces where pooling matters.
	LearnerCentroid = core.LearnerCentroid
)

// NewSystem builds a P2B deployment over env. enc may be nil: the private
// mode then fits a k-means encoder with cfg.K codes on a public context
// sample from the environment.
func NewSystem(cfg Config, env Environment, enc Encoder) (*System, error) {
	return core.NewSystem(cfg, env, enc)
}

// AnalyzerConfig describes the model shapes a standalone analyzer Server
// maintains; see the field docs in internal/server.
type AnalyzerConfig = server.Config

// NewAnalyzerServer builds a standalone analyzer server — the node-side
// component that folds privacy-scrubbed batches into global models and
// serves versioned snapshots. Combine it with NewShuffler and
// NewNodeHandler to embed a full P2B node, or wire agent.NewLoopback to it
// for an in-process deployment.
func NewAnalyzerServer(cfg AnalyzerConfig) *Server { return server.New(cfg) }

// ShufflerConfig holds the trusted shuffler's batch size and
// crowd-blending threshold.
type ShufflerConfig = shuffler.Config

// NewShuffler builds a trusted shuffler delivering anonymized, shuffled,
// thresholded batches to the analyzer server, drawing permutation
// randomness from r.
func NewShuffler(cfg ShufflerConfig, srv *Server, r *Rand) *Shuffler {
	return shuffler.New(cfg, srv, r)
}

// NewNodeHandler mounts the shuffler and server HTTP surfaces on one
// handler — the layout cmd/p2bnode serves and the agent SDK's HTTP
// transport and model source speak to.
func NewNodeHandler(shuf *Shuffler, srv *Server) http.Handler {
	return httpapi.NewNodeHandler(shuf, srv)
}

// NewRand returns a seeded deterministic random stream.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Epsilon returns the differential-privacy epsilon achieved by
// participation probability p under P2B's sampling + crowd-blending
// analysis (Equation 3 of the paper).
func Epsilon(p float64) float64 { return privacy.Epsilon(p) }

// ParticipationForEpsilon inverts Epsilon: the largest p whose guarantee
// does not exceed the target.
func ParticipationForEpsilon(target float64) float64 {
	return privacy.ParticipationForEpsilon(target)
}

// Delta returns the delta bound exp(-omega*l*(1-p)^2) for crowd size l.
func Delta(l int, p, omega float64) float64 { return privacy.Delta(l, p, omega) }

// Compose prices r disclosures at eps each under basic composition.
func Compose(eps float64, r int) float64 { return privacy.Compose(eps, r) }

// AdvancedCompose prices r disclosures at eps each under advanced
// composition with the given delta slack, returning the tighter of the
// advanced and basic bounds.
func AdvancedCompose(eps float64, r int, deltaSlack float64) float64 {
	return privacy.AdvancedCompose(eps, r, deltaSlack)
}

// SyntheticConfig parameterizes the synthetic preference benchmark
// (paper §5.1).
type SyntheticConfig = synthetic.Config

// NewSyntheticEnvironment builds the softmax-preference benchmark with a
// random weight matrix drawn from the seed.
func NewSyntheticEnvironment(cfg SyntheticConfig, seed uint64) (Environment, error) {
	return synthetic.New(cfg, rng.New(seed))
}

// MultiLabelConfig parameterizes the multi-label dataset generator
// (paper §5.2 substrate).
type MultiLabelConfig = mlabel.Config

// MediaMillLikeConfig returns the generator configuration with the paper's
// MediaMill shape (d=20 features, 40 labels) at the given instance count.
func MediaMillLikeConfig(n int) MultiLabelConfig { return mlabel.MediaMillLike(n) }

// TextMiningLikeConfig returns the generator configuration with the paper's
// TextMining shape (d=20 features, 20 labels) at the given instance count.
func TextMiningLikeConfig(n int) MultiLabelConfig { return mlabel.TextMiningLike(n) }

// NewMultiLabelEnvironment generates a multi-label dataset, partitions it
// into agents holding up to perAgent samples each, and wraps it as an
// environment. It returns the environment and the number of agents.
func NewMultiLabelEnvironment(cfg MultiLabelConfig, agents, perAgent int, seed uint64) (Environment, int, error) {
	r := rng.New(seed)
	ds, err := mlabel.Generate(cfg, r.Split("data"))
	if err != nil {
		return nil, 0, err
	}
	parts, err := ds.Partition(agents, perAgent, r.Split("partition"))
	if err != nil {
		return nil, 0, err
	}
	env, err := mlabel.NewEnv(ds, parts)
	if err != nil {
		return nil, 0, err
	}
	return env, env.Agents(), nil
}

// AdLogConfig parameterizes the Criteo-shaped click-log generator
// (paper §5.3 substrate).
type AdLogConfig = adlogs.Config

// CriteoLikeConfig returns the generator configuration with the paper's
// shape (d=10 context, 40 hashed product categories) for the given number
// of impressions.
func CriteoLikeConfig(records int) AdLogConfig { return adlogs.CriteoLike(records) }

// NewAdLogEnvironment generates a click log and wraps it as an environment
// in which each agent replays perAgent consecutive impressions. It returns
// the environment and the number of agents the log supports.
func NewAdLogEnvironment(cfg AdLogConfig, perAgent int, seed uint64) (Environment, int, error) {
	log, err := adlogs.Generate(cfg, rng.New(seed))
	if err != nil {
		return nil, 0, err
	}
	env, err := adlogs.NewEnv(log, perAgent)
	if err != nil {
		return nil, 0, err
	}
	return env, env.Agents(), nil
}

// FitKMeansEncoder fits the paper's clustering encoder with k codes on a
// sample of contexts.
func FitKMeansEncoder(sample [][]float64, k int, seed uint64) (Encoder, error) {
	return encoding.FitKMeans(sample, k, 50, 1e-6, rng.New(seed))
}

// NewGridEncoder returns the fixed-precision grid quantizer for
// d-dimensional simplex contexts at q decimal digits (Equation 1 governs
// its code-space size).
func NewGridEncoder(d, q int) (Encoder, error) { return encoding.NewGridQuantizer(d, q) }

// NewLSHEncoder returns a random-hyperplane LSH encoder with 2^bits codes.
func NewLSHEncoder(d, bits int, seed uint64) (Encoder, error) {
	return encoding.NewLSH(d, bits, rng.New(seed))
}
