// Command p2bsim runs a single P2B population simulation on the synthetic
// preference benchmark and reports utility plus privacy parameters — the
// fastest way to poke at the system's behaviour under different settings.
//
// Usage:
//
//	p2bsim -mode warm-private -users 20000 -d 10 -arms 20 -T 10 -p 0.5 -k 1024
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"p2b/internal/core"
	"p2b/internal/rng"
	"p2b/internal/synthetic"
)

func main() {
	var (
		modeName  = flag.String("mode", "warm-private", "cold | warm-nonprivate | warm-private")
		users     = flag.Int("users", 10000, "contributing user population")
		evalUsers = flag.Int("eval", 500, "evaluation cohort size")
		d         = flag.Int("d", 10, "context dimension")
		arms      = flag.Int("arms", 20, "number of actions")
		t         = flag.Int("T", 10, "local interactions per user")
		p         = flag.Float64("p", 0.5, "participation probability")
		k         = flag.Int("k", 1024, "encoder code-space size")
		threshold = flag.Int("threshold", 10, "shuffler crowd-blending threshold")
		alpha     = flag.Float64("alpha", 1, "LinUCB exploration parameter")
		beta      = flag.Float64("beta", 0.1, "reward scaling factor")
		sigma     = flag.Float64("sigma", 0.1, "reward noise standard deviation")
		seed      = flag.Uint64("seed", 1, "root random seed")
		workers   = flag.Int("workers", 8, "simulation worker goroutines")
	)
	flag.Parse()

	var mode core.Mode
	switch *modeName {
	case "cold":
		mode = core.Cold
	case "warm-nonprivate":
		mode = core.WarmNonPrivate
	case "warm-private":
		mode = core.WarmPrivate
	default:
		fmt.Fprintf(os.Stderr, "p2bsim: unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	env, err := synthetic.New(synthetic.Config{D: *d, Arms: *arms, Beta: *beta, Sigma: *sigma}, rng.New(*seed+1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2bsim:", err)
		os.Exit(1)
	}
	sys, err := core.NewSystem(core.Config{
		Mode:      mode,
		T:         *t,
		P:         *p,
		Alpha:     *alpha,
		K:         *k,
		Threshold: *threshold,
		Workers:   *workers,
		Seed:      *seed,
	}, env, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2bsim:", err)
		os.Exit(1)
	}

	fmt.Printf("mode=%s users=%d T=%d d=%d arms=%d k=%d p=%g threshold=%d\n",
		mode, *users, *t, *d, *arms, *k, *p, *threshold)
	contrib := sys.RunRange(0, *users, true)
	sys.Flush()
	fmt.Printf("contributors: mean reward %.5f over %d interactions\n",
		contrib.Overall.Mean(), contrib.Overall.Count())

	eval := sys.RunRange(10_000_000, *evalUsers, false)
	fmt.Printf("fresh cohort: mean reward %.5f +- %.5f (95%% CI, %d users)\n",
		eval.Overall.Mean(), eval.Overall.CI95(), *evalUsers)

	if mode == core.WarmPrivate {
		shufStats := sys.Shuffler().Stats()
		srvStats := sys.Server().Stats()
		fmt.Printf("pipeline: submitted=%d shuffled-out=%d dropped-by-threshold=%d ingested=%d\n",
			sys.Submitted(), shufStats.Forwarded, shufStats.Dropped, srvStats.TuplesIngested)
		_, worst := sys.Accountant().WorstCase()
		fmt.Printf("privacy: epsilon=%.6f (p=%g), worst user budget=%.6f\n", sys.Epsilon(), *p, worst)
	} else if mode == core.Cold {
		fmt.Println("privacy: no data leaves the device (epsilon = 0)")
	} else {
		fmt.Println("privacy: none (raw contexts shared)")
	}
	if math.IsNaN(eval.Overall.Mean()) {
		os.Exit(1)
	}
}
