// Command p2bchaos runs the chaos HTTP proxy between an agent fleet and a
// p2bnode: it forwards everything, deterministically injecting the network
// failure modes a real deployment meets — added latency, connection
// resets, 5xx bursts with Retry-After, truncated model downloads.
//
// Faults are drawn from a seeded stream, so a chaos run is reproducible:
// the same seed and the same request arrival order yield the same fault
// sequence. Resets and synthesized 503s happen strictly before a request
// is forwarded (the node never sees it, so a client retry cannot
// double-ingest), and body truncation applies only to GET responses.
//
// GET /chaosz answers with the injected-fault counters as JSON (the one
// route the proxy does not forward), and the same counters are printed on
// SIGINT/SIGTERM.
//
// Usage:
//
//	p2bchaos -addr :8081 -upstream http://localhost:8080 \
//	         -seed 42 -latency-prob 0.2 -latency 50ms \
//	         -reset-prob 0.05 -error-prob 0.05 -error-burst 2 \
//	         -truncate-prob 0.1
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"p2b/internal/faultinject"
)

func main() {
	var (
		addr         = flag.String("addr", ":8081", "listen address")
		upstream     = flag.String("upstream", "http://localhost:8080", "p2bnode base URL to forward to")
		seed         = flag.Uint64("seed", 1, "seed for the fault decision stream")
		latencyProb  = flag.Float64("latency-prob", 0, "per-request chance of added latency")
		latency      = flag.Duration("latency", 50*time.Millisecond, "maximum injected delay")
		resetProb    = flag.Float64("reset-prob", 0, "per-request chance of a connection reset before forwarding")
		errorProb    = flag.Float64("error-prob", 0, "per-request chance of starting a synthesized 503 burst")
		errorBurst   = flag.Int("error-burst", 1, "consecutive requests per 503 burst")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on synthesized 503s")
		truncateProb = flag.Float64("truncate-prob", 0, "per-request chance of truncating a GET response body")
	)
	flag.Parse()

	proxy, err := faultinject.NewProxy(faultinject.ProxyConfig{
		Upstream:     *upstream,
		Seed:         *seed,
		LatencyProb:  *latencyProb,
		Latency:      *latency,
		ResetProb:    *resetProb,
		ErrorProb:    *errorProb,
		ErrorBurst:   *errorBurst,
		RetryAfter:   *retryAfter,
		TruncateProb: *truncateProb,
	})
	if err != nil {
		log.Fatalf("p2bchaos: %v", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /chaosz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(proxy.Stats())
	})
	mux.Handle("/", proxy)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("p2bchaos listening on %s -> %s (seed %d)", *addr, *upstream, *seed)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("p2bchaos: drain incomplete: %v", err)
	}
	st := proxy.Stats()
	log.Printf("p2bchaos: final: %d requests (%d forwarded, %d delayed, %d resets, %d 503s, %d truncated)",
		st.Requests, st.Forwarded, st.Delayed, st.Resets, st.Errors, st.Truncated)
}
