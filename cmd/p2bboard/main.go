// Command p2bboard runs the fleet's bulletin board: a tiny HTTP registry
// where p2bnode processes announce themselves and p2bagent fleets discover
// which relay (or combined node) to report to.
//
//	GET  /topology           current topology document (JSON)
//	POST /topology/register  announce/heartbeat one node
//	GET  /healthz            liveness
//
// The board is configuration infrastructure, never a data-path component:
// reports and model syncs flow directly between agents, relays and
// analyzers. A dead board stops NEW agents from discovering the fleet; it
// never loses a report. Announced entries expire after -ttl without a
// heartbeat (p2bnode heartbeats at ttl/3), so a crashed node falls off the
// board on its own. -static seeds the board with operator-pinned entries
// that never expire and cannot be re-announced.
//
// Usage:
//
//	p2bboard -addr :8070
//	p2bboard -addr :8070 -static fleet.json -ttl 30s
//
// where fleet.json is a topology document:
//
//	{"nodes": [{"name": "analyzer-1", "role": "analyzer", "url": "http://10.0.0.5:8080"}]}
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"p2b/internal/topology"
)

func main() {
	var (
		addr   = flag.String("addr", ":8070", "listen address")
		static = flag.String("static", "", "path to a JSON topology document of operator-pinned nodes (never expire)")
		ttl    = flag.Duration("ttl", topology.DefaultTTL, "how long an announced node stays on the board without a heartbeat")
	)
	flag.Parse()

	var doc *topology.Document
	if *static != "" {
		blob, err := os.ReadFile(*static)
		if err != nil {
			log.Fatalf("p2bboard: reading %s: %v", *static, err)
		}
		doc, err = topology.ParseDocument(blob)
		if err != nil {
			log.Fatalf("p2bboard: %s: %v", *static, err)
		}
		log.Printf("p2bboard: %d static node(s) pinned from %s", len(doc.Nodes), *static)
	}

	reg, err := topology.NewRegistry(doc, *ttl)
	if err != nil {
		log.Fatalf("p2bboard: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("p2bboard listening on %s (ttl %v)", *addr, *ttl)
	log.Fatal(srv.ListenAndServe())
}
