// Command p2bnode runs the P2B server-side components as a network
// service: the trusted shuffler and the analyzer server, wired together in
// one process and exposed over HTTP.
//
// Agents POST encoded reports to the shuffler surface — one at a time or,
// at scale, as batch streams — and GET model snapshots from the server
// surface:
//
//	POST /shuffler/report   {"meta":{...},"tuple":{"code":5,"action":1,"reward":1}}
//	POST /shuffler/reports  batch stream: length-prefixed binary frames
//	                        (Content-Type application/x-p2b-batch, see
//	                        internal/transport/wire.go) or NDJSON envelopes
//	                        (application/x-ndjson)
//	POST /shuffler/flush
//	GET  /shuffler/stats
//	GET  /server/model      versioned model sync for agent fleets: the
//	                        model version is the ETag, so an If-None-Match
//	                        poll of an unchanged model costs a 304; the
//	                        body is binary (Accept: application/x-p2b-model)
//	                        or JSON; ?kind=tabular|linucb|centroid
//	GET  /server/model/tabular
//	GET  /server/model/linucb
//	POST /server/raw        (non-private baseline ingestion)
//	GET  /server/stats
//	GET  /healthz           liveness + persistence status
//	GET  /metrics           Prometheus text exposition: per-route request
//	                        counts/latency, shuffler and server pipeline
//	                        counters, overload and WAL telemetry
//	POST /admin/checkpoint  force a checkpoint (with -data-dir only)
//
// # Multi-node topology
//
// -role splits the process into fleet roles (see internal/topology and the
// "Multi-node topology" section of DESIGN.md):
//
//	-role combined  the default: shuffler + analyzer in one process
//	-role relay     shuffler only; finished privacy batches are forwarded
//	                over the P2B1 wire to the analyzer named by -downstream
//	                instead of a local server
//	-role analyzer  full node that additionally expects relay traffic on
//	                POST /peer/ingest and sibling state on POST /peer/merge
//
// Analyzers (and combined nodes) push their local model contribution to
// every -peers URL on a -peer-sync interval, so any analyzer can serve
// GET /server/model with the fleet-wide model. On the -digest-sync
// interval they additionally pull: each round fetches every peer's
// /peer/digest high-water vector and retrieves only the contributions
// this node is missing, so an analyzer that was partitioned away (and
// whose siblings have nothing new to push) still converges on its own
// schedule. -peer-token authenticates the peer routes in both
// directions. With -registry the node announces itself on a p2bboard
// bulletin board so agents can discover it.
//
// # Durability
//
// With -data-dir the node is crash-safe: every accepted report batch is
// appended to a write-ahead log before it enters the shuffler, and
// checkpoints capture the server accumulators, the shuffler's pending
// buffer and its permutation-stream position. On boot the node restores
// the last checkpoint and replays the log tail, truncating a torn final
// record; a kill -9 therefore loses at most the appends not yet fsynced
// (none with -wal-sync 0), and the recovered model is bit-identical to an
// uninterrupted run over the logged input. See internal/persist and the
// durability section of DESIGN.md.
//
// On SIGINT/SIGTERM the node shuts down gracefully: the listener stops
// accepting, in-flight requests drain (bounded by -drain), and the
// shuffler's pending batch is flushed through the privacy pipeline into
// the server so reports already accepted are not dropped. A durable node
// logs the flush and writes a final checkpoint.
//
// Usage:
//
//	p2bnode -addr :8080 -k 1024 -arms 20 -d 10 -threshold 10 -batch 320 \
//	        -data-dir /var/lib/p2b -checkpoint-interval 1m -wal-sync 100ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p2b/internal/faultinject"
	"p2b/internal/httpapi"
	"p2b/internal/metrics"
	"p2b/internal/persist"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/topology"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 1024, "code-space size of the tabular model")
		arms      = flag.Int("arms", 20, "number of actions")
		d         = flag.Int("d", 10, "raw context dimension (baseline model)")
		alpha     = flag.Float64("alpha", 1, "exploration parameter baked into snapshots")
		threshold = flag.Int("threshold", 10, "crowd-blending threshold l")
		batch     = flag.Int("batch", 0, "shuffler batch size (default 32*threshold)")
		seed      = flag.Uint64("seed", 1, "seed for the shuffler's permutation stream")
		shards    = flag.Int("shards", 0, "server ingestion shards (0 = GOMAXPROCS capped at 16; 1 makes ingestion order fully deterministic)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")

		dataDir   = flag.String("data-dir", "", "directory for WAL + checkpoints (empty = in-memory only, state dies with the process)")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "automatic checkpoint interval (0 = manual via /admin/checkpoint and shutdown)")
		walSync   = flag.Duration("wal-sync", 100*time.Millisecond, "WAL fsync batching interval (0 = fsync every append; strongest durability)")
		walRetain = flag.Bool("wal-retain", false, "keep checkpoint-covered WAL segments instead of pruning (full input stream stays replayable)")
		walPolicy = flag.String("wal-policy", "fail-closed", "ingest behavior when the WAL refuses a write: fail-closed (503 + Retry-After) or degrade (accept into memory, flag degraded on /healthz)")

		maxInFlight      = flag.Int("max-inflight", 256, "max concurrently admitted ingest requests (0 = unbounded)")
		maxInFlightBytes = flag.Int64("max-inflight-bytes", 64<<20, "max summed declared body bytes of admitted ingest requests (0 = unbounded)")
		readTimeout      = flag.Duration("read-timeout", 30*time.Second, "per-request body read deadline on admitted ingest requests (0 = none)")
		retryAfter       = flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")

		faults    = flag.String("faults", "", "failpoint specs for chaos runs, e.g. \"wal/sync:after=100,count=1;wal/torn:count=1\" (see internal/faultinject)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for probabilistic failpoints")

		roleFlag    = flag.String("role", "combined", "fleet role: combined, relay or analyzer (see internal/topology)")
		name        = flag.String("name", "", "node name in peer protocols and on the bulletin board (default <role>@<addr>)")
		advertise   = flag.String("advertise", "", "base URL other fleet members reach this node at (default http://localhost<addr>)")
		downstream  = flag.String("downstream", "", "relay only: base URL of the analyzer finished batches are forwarded to")
		peersFlag   = flag.String("peers", "", "comma-separated base URLs of sibling analyzers to push local state to")
		peerSync    = flag.Duration("peer-sync", 2*time.Second, "anti-entropy push interval to -peers")
		digestSync  = flag.Duration("digest-sync", 15*time.Second, "pull-based anti-entropy interval: each round fetches peer digests and pulls only missing contributions, so a partitioned analyzer converges without waiting for inbound pushes (0 = pushes only)")
		peerToken   = flag.String("peer-token", "", "bearer token required on inbound /peer/* routes and sent on outbound peer traffic (empty = open)")
		registry    = flag.String("registry", "", "bulletin-board base URL to announce this node on (see cmd/p2bboard; empty = no announcement)")
		registryTTL = flag.Duration("registry-ttl", topology.DefaultTTL, "announcement TTL on the bulletin board")
	)
	flag.Parse()
	if *batch == 0 {
		*batch = 32 * *threshold
		if *batch == 0 {
			*batch = 256
		}
	}

	policy, err := httpapi.ParseWALPolicy(*walPolicy)
	if err != nil {
		log.Fatalf("p2bnode: %v", err)
	}
	role, err := topology.ParseRole(*roleFlag)
	if err != nil {
		log.Fatalf("p2bnode: %v", err)
	}
	if role == topology.RoleRelay && *downstream == "" {
		log.Fatalf("p2bnode: -role relay requires -downstream (the analyzer URL batches forward to)")
	}
	if role != topology.RoleRelay && *downstream != "" {
		log.Fatalf("p2bnode: -downstream only makes sense with -role relay")
	}
	var peerURLs []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerURLs = append(peerURLs, p)
		}
	}
	if role == topology.RoleRelay && len(peerURLs) > 0 {
		log.Fatalf("p2bnode: -peers only makes sense on analyzer or combined nodes (relays forward, they do not merge)")
	}
	if *name == "" {
		*name = fmt.Sprintf("%s@%s", role, *addr)
	}
	if *advertise == "" {
		if strings.HasPrefix(*addr, ":") {
			*advertise = "http://localhost" + *addr
		} else {
			*advertise = "http://" + *addr
		}
	}
	if *faults != "" {
		specs, err := faultinject.ParseSpecs(*faults)
		if err != nil {
			log.Fatalf("p2bnode: %v", err)
		}
		reg := faultinject.NewRegistry(*faultSeed)
		reg.EnableAll(specs)
		persist.SetFSHooks(&persist.FSHooks{
			BeforeWrite:    reg.FSWrite,
			BeforeSync:     reg.FSSync,
			BeforeTruncate: reg.FSTruncate,
		})
		log.Printf("p2bnode: CHAOS MODE: failpoints armed (%s, seed %d) — not for production", *faults, *faultSeed)
	}

	// The server is constructed for every role. A relay never serves models
	// from it, but the persist layer checkpoints through it, so a durable
	// relay reuses the exact same recovery machinery as a combined node.
	srv := server.New(server.Config{K: *k, Arms: *arms, D: *d, Alpha: *alpha, Seed: *seed, Shards: *shards})

	// The shuffler's sink decides the role's data path: combined and
	// analyzer nodes deliver finished privacy batches into the local server,
	// a relay forwards them downstream over the P2B1 wire.
	var fwd *topology.Forwarder
	var sink shuffler.Sink = srv
	if role == topology.RoleRelay {
		var err error
		fwd, err = topology.NewForwarder(*downstream, topology.ForwarderOptions{
			Origin: *name,
			Token:  *peerToken,
			Logf:   log.Printf,
		})
		if err != nil {
			log.Fatalf("p2bnode: %v", err)
		}
		sink = fwd
	}
	shuf := shuffler.New(shuffler.Config{BatchSize: *batch, Threshold: *threshold}, sink, rng.New(*seed).Split("shuffler"))

	reg := metrics.NewRegistry()
	adm := httpapi.NewAdmission(httpapi.AdmissionConfig{
		MaxInFlight:      *maxInFlight,
		MaxInFlightBytes: *maxInFlightBytes,
		RetryAfter:       *retryAfter,
		ReadTimeout:      *readTimeout,
	})
	var mgr *persist.Manager
	if *dataDir != "" {
		popts := persist.Options{
			SyncInterval:       *walSync,
			CheckpointInterval: *ckptEvery,
			RetainWAL:          *walRetain,
			Metrics:            persist.NewMetrics(reg),
		}
		if fwd != nil {
			// A durable relay persists its forwarding identity: recovery
			// restores the (epoch, seq) cursor before the replay below can
			// re-forward a batch, so WAL-tail retransmits reuse the
			// pre-crash epoch and the analyzer's duplicate guard drops them.
			popts.Cursor = fwd
		}
		var err error
		mgr, err = persist.Open(*dataDir, shuf, srv, popts)
		if err != nil {
			log.Fatalf("p2bnode: recovering %s: %v", *dataDir, err)
		}
		if fwd != nil {
			// Every forwarded batch first syncs the WAL records behind it,
			// so a crash can never truncate records a downstream analyzer
			// already counted under this (epoch, seq).
			fwd.SetSync(mgr.SyncWAL)
			epoch, fseq := fwd.Cursor()
			log.Printf("p2bnode: relay cursor epoch %d seq %d (restored: %v)", epoch, fseq, mgr.Recovery().CursorRestored)
		}
		rec := mgr.Recovery()
		log.Printf("p2bnode: durable in %s (checkpoint seq %d, replayed %d records, wal at seq %d)",
			*dataDir, rec.CheckpointSeq, rec.ReplayedRecords, rec.LastSeq)
		// WAL position gauges: sampled from the same Info() /healthz serves.
		reg.GaugeFunc("p2b_wal_seq", "",
			"Sequence number of the last WAL append.",
			func() float64 { return float64(mgr.Info().WALSeq) })
		reg.GaugeFunc("p2b_wal_checkpoint_seq", "",
			"WAL position of the last completed checkpoint.",
			func() float64 { return float64(mgr.Info().CheckpointSeq) })
		reg.GaugeFunc("p2b_wal_segments", "",
			"Live WAL segment files on disk.",
			func() float64 { return float64(mgr.Info().Segments) })
	}

	// One boot epoch qualifies every position this node advertises for its
	// own contribution stream — outbound pushes and the /peer/digest and
	// /peer/contrib self entries — so a sibling that learned our position
	// from a push and one that learned it from a digest agree.
	peerEpoch := topology.BootEpoch()

	// Outbound anti-entropy: analyzers and combined nodes with -peers push
	// their local contribution to every sibling on the -peer-sync interval,
	// and — unless -digest-sync is 0 — pull what they are missing on the
	// digest-round interval.
	var peering *topology.Peering
	if len(peerURLs) > 0 {
		var err error
		peering, err = topology.NewPeering(topology.PeeringOptions{
			Origin:         *name,
			Epoch:          peerEpoch,
			Peers:          peerURLs,
			Interval:       *peerSync,
			Token:          *peerToken,
			Export:         srv.ExportState,
			LocalVersion:   srv.LocalVersion,
			Logf:           log.Printf,
			DigestInterval: *digestSync,
			Local: func() []topology.DigestEntry {
				var out []topology.DigestEntry
				for _, c := range srv.PeerStatus().Contributions {
					out = append(out, topology.DigestEntry{Origin: c.Origin, Epoch: c.Epoch, Seq: c.Seq})
				}
				return out
			},
			Apply: func(u topology.PeerUpdate) (bool, error) {
				return srv.MergePeerState(u.Origin, u.Epoch, u.Seq, u.State)
			},
		})
		if err != nil {
			log.Fatalf("p2bnode: %v", err)
		}
		peering.Start()
		log.Printf("p2bnode: pushing state to %d peer(s) every %v as origin %q (digest round: %v)", len(peerURLs), *peerSync, *name, *digestSync)
	}

	// The heartbeat handle exists before the handlers so its Status can be
	// wired into /healthz and /metrics; the loop itself starts only once
	// the listener is up, so agents discovering this node find it
	// reachable. ovProbe is filled by the handler constructor below and
	// lets each announcement carry the node's live degrade state.
	var hb *topology.Heartbeat
	var ovProbe func() httpapi.OverloadStats
	if *registry != "" {
		hb = topology.NewHeartbeat(*registry,
			topology.Node{Name: *name, Role: role, URL: *advertise},
			topology.HeartbeatOptions{
				TTL:      *registryTTL,
				Logf:     log.Printf,
				Seed:     *seed,
				Degraded: func() bool { return ovProbe != nil && ovProbe().Degraded },
			})
	}
	var boardStatus func() topology.HeartbeatStatus
	if hb != nil {
		boardStatus = hb.Status
	}

	var handler http.Handler
	if role == topology.RoleRelay {
		ropts := httpapi.RelayOptions{
			Admission: adm,
			WALPolicy: policy,
			Metrics:   reg,
			Shapes:    httpapi.ModelShapes{K: *k, Arms: *arms, D: *d},
			Board:     boardStatus,
			Overload:  &ovProbe,
		}
		if mgr != nil {
			ropts.Ingest = mgr
			ropts.Checkpoint = mgr.Checkpoint
			ropts.Health = func() any { return mgr.Info() }
		}
		handler = httpapi.NewRelayHandler(shuf, fwd, ropts)
	} else {
		opts := httpapi.NodeOptions{
			WALPolicy: policy,
			Metrics:   reg,
			Admission: adm,
			Role:      string(role),
			Board:     boardStatus,
			Overload:  &ovProbe,
			Peer: &httpapi.PeerOptions{
				Origin: *name,
				Token:  *peerToken,
				Epoch:  peerEpoch,
				Export: srv.ExportState,
			},
		}
		if mgr != nil {
			opts.Ingest = mgr
			opts.Checkpoint = mgr.Checkpoint
			opts.Health = func() any { return mgr.Info() }
			// Relay batches ride the same WAL as agent reports, so a crash
			// between accept and apply replays them instead of losing them.
			opts.Peer.Deliver = mgr.DeliverPeer
		}
		if peering != nil {
			opts.Peer.Sync = peering.Status
		}
		handler = httpapi.NewNodeHandlerOpts(shuf, srv, opts)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Announce on the bulletin board last, once the listener is about to
	// accept: agents discovering this node should find it reachable. An
	// unreachable board is retried on a jittered backoff inside the loop.
	if hb != nil {
		hb.Start()
		log.Printf("p2bnode: announcing %q (%s) at %s on board %s", *name, role, *advertise, *registry)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("p2bnode listening on %s as %s %q (k=%d arms=%d d=%d threshold=%d batch=%d)",
		*addr, role, *name, *k, *arms, *d, *threshold, *batch)

	select {
	case err := <-errCh:
		// The listener died on its own (port in use, ...): nothing to drain.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("p2bnode: shutting down (drain %v)", *drain)
	if hb != nil {
		hb.Stop() // let the board entry expire; agents stop picking us
	}

	// Stop accepting and drain in-flight requests first, so no report can
	// slip into the shuffler after the final flush below.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("p2bnode: drain incomplete: %v", err)
	}

	// Push the pending sub-batch through the privacy pipeline. Small
	// flushed batches are the ones most exposed to thresholding — that is
	// correct privacy behaviour, not data loss. On a durable node the flush
	// is logged (replay must flush at the same position) and followed by a
	// final checkpoint, so the next boot starts from this exact state.
	if mgr != nil {
		if err := mgr.Flush(); err != nil {
			log.Printf("p2bnode: final flush: %v", err)
		}
		if err := mgr.Checkpoint(); err != nil {
			log.Printf("p2bnode: final checkpoint: %v", err)
		}
		if err := mgr.Close(); err != nil {
			log.Printf("p2bnode: closing wal: %v", err)
		}
	} else {
		shuf.Flush()
	}

	// Hand the siblings everything local before exiting, then stop the
	// anti-entropy loop. The final flush above already landed in srv, so
	// this last push carries the node's complete contribution.
	if peering != nil {
		peering.Sync()
		peering.Close()
	}

	sst, shst := srv.Stats(), shuf.Stats()
	log.Printf("p2bnode: final state: %d tuples ingested, %d raw, %d batches shuffled (%d forwarded, %d thresholded)",
		sst.TuplesIngested, sst.RawIngested, shst.Batches, shst.Forwarded, shst.Dropped)
	if fwd != nil {
		fst := fwd.Stats()
		log.Printf("p2bnode: forwarded downstream: %d batches (%d tuples), %d duplicates, %d retries, %d dropped",
			fst.Batches, fst.Tuples, fst.Duplicates, fst.Retries, fst.Dropped)
	}
}
