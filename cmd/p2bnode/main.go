// Command p2bnode runs the P2B server-side components as a network
// service: the trusted shuffler and the analyzer server, wired together in
// one process and exposed over HTTP.
//
// Agents POST encoded reports to the shuffler surface and GET model
// snapshots from the server surface:
//
//	POST /shuffler/report   {"meta":{...},"tuple":{"code":5,"action":1,"reward":1}}
//	POST /shuffler/flush
//	GET  /shuffler/stats
//	GET  /server/model/tabular
//	GET  /server/model/linucb
//	POST /server/raw        (non-private baseline ingestion)
//	GET  /server/stats
//
// Usage:
//
//	p2bnode -addr :8080 -k 1024 -arms 20 -d 10 -threshold 10 -batch 320
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"p2b/internal/httpapi"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 1024, "code-space size of the tabular model")
		arms      = flag.Int("arms", 20, "number of actions")
		d         = flag.Int("d", 10, "raw context dimension (baseline model)")
		alpha     = flag.Float64("alpha", 1, "exploration parameter baked into snapshots")
		threshold = flag.Int("threshold", 10, "crowd-blending threshold l")
		batch     = flag.Int("batch", 0, "shuffler batch size (default 32*threshold)")
		seed      = flag.Uint64("seed", 1, "seed for the shuffler's permutation stream")
	)
	flag.Parse()
	if *batch == 0 {
		*batch = 32 * *threshold
		if *batch == 0 {
			*batch = 256
		}
	}

	srv := server.New(server.Config{K: *k, Arms: *arms, D: *d, Alpha: *alpha, Seed: *seed})
	shuf := shuffler.New(shuffler.Config{BatchSize: *batch, Threshold: *threshold}, srv, rng.New(*seed).Split("shuffler"))

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewNodeHandler(shuf, srv),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("p2bnode listening on %s (k=%d arms=%d threshold=%d batch=%d)", *addr, *k, *arms, *threshold, *batch)
	log.Fatal(httpSrv.ListenAndServe())
}
