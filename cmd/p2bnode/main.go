// Command p2bnode runs the P2B server-side components as a network
// service: the trusted shuffler and the analyzer server, wired together in
// one process and exposed over HTTP.
//
// Agents POST encoded reports to the shuffler surface — one at a time or,
// at scale, as batch streams — and GET model snapshots from the server
// surface:
//
//	POST /shuffler/report   {"meta":{...},"tuple":{"code":5,"action":1,"reward":1}}
//	POST /shuffler/reports  batch stream: length-prefixed binary frames
//	                        (Content-Type application/x-p2b-batch, see
//	                        internal/transport/wire.go) or NDJSON envelopes
//	                        (application/x-ndjson)
//	POST /shuffler/flush
//	GET  /shuffler/stats
//	GET  /server/model      versioned model sync for agent fleets: the
//	                        model version is the ETag, so an If-None-Match
//	                        poll of an unchanged model costs a 304; the
//	                        body is binary (Accept: application/x-p2b-model)
//	                        or JSON; ?kind=tabular|linucb|centroid
//	GET  /server/model/tabular
//	GET  /server/model/linucb
//	POST /server/raw        (non-private baseline ingestion)
//	GET  /server/stats
//	GET  /healthz           liveness + persistence status
//	GET  /metrics           Prometheus text exposition: per-route request
//	                        counts/latency, shuffler and server pipeline
//	                        counters, overload and WAL telemetry
//	POST /admin/checkpoint  force a checkpoint (with -data-dir only)
//
// # Durability
//
// With -data-dir the node is crash-safe: every accepted report batch is
// appended to a write-ahead log before it enters the shuffler, and
// checkpoints capture the server accumulators, the shuffler's pending
// buffer and its permutation-stream position. On boot the node restores
// the last checkpoint and replays the log tail, truncating a torn final
// record; a kill -9 therefore loses at most the appends not yet fsynced
// (none with -wal-sync 0), and the recovered model is bit-identical to an
// uninterrupted run over the logged input. See internal/persist and the
// durability section of DESIGN.md.
//
// On SIGINT/SIGTERM the node shuts down gracefully: the listener stops
// accepting, in-flight requests drain (bounded by -drain), and the
// shuffler's pending batch is flushed through the privacy pipeline into
// the server so reports already accepted are not dropped. A durable node
// logs the flush and writes a final checkpoint.
//
// Usage:
//
//	p2bnode -addr :8080 -k 1024 -arms 20 -d 10 -threshold 10 -batch 320 \
//	        -data-dir /var/lib/p2b -checkpoint-interval 1m -wal-sync 100ms
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"p2b/internal/faultinject"
	"p2b/internal/httpapi"
	"p2b/internal/metrics"
	"p2b/internal/persist"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 1024, "code-space size of the tabular model")
		arms      = flag.Int("arms", 20, "number of actions")
		d         = flag.Int("d", 10, "raw context dimension (baseline model)")
		alpha     = flag.Float64("alpha", 1, "exploration parameter baked into snapshots")
		threshold = flag.Int("threshold", 10, "crowd-blending threshold l")
		batch     = flag.Int("batch", 0, "shuffler batch size (default 32*threshold)")
		seed      = flag.Uint64("seed", 1, "seed for the shuffler's permutation stream")
		shards    = flag.Int("shards", 0, "server ingestion shards (0 = GOMAXPROCS capped at 16; 1 makes ingestion order fully deterministic)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")

		dataDir   = flag.String("data-dir", "", "directory for WAL + checkpoints (empty = in-memory only, state dies with the process)")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "automatic checkpoint interval (0 = manual via /admin/checkpoint and shutdown)")
		walSync   = flag.Duration("wal-sync", 100*time.Millisecond, "WAL fsync batching interval (0 = fsync every append; strongest durability)")
		walRetain = flag.Bool("wal-retain", false, "keep checkpoint-covered WAL segments instead of pruning (full input stream stays replayable)")
		walPolicy = flag.String("wal-policy", "fail-closed", "ingest behavior when the WAL refuses a write: fail-closed (503 + Retry-After) or degrade (accept into memory, flag degraded on /healthz)")

		maxInFlight      = flag.Int("max-inflight", 256, "max concurrently admitted ingest requests (0 = unbounded)")
		maxInFlightBytes = flag.Int64("max-inflight-bytes", 64<<20, "max summed declared body bytes of admitted ingest requests (0 = unbounded)")
		readTimeout      = flag.Duration("read-timeout", 30*time.Second, "per-request body read deadline on admitted ingest requests (0 = none)")
		retryAfter       = flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")

		faults    = flag.String("faults", "", "failpoint specs for chaos runs, e.g. \"wal/sync:after=100,count=1;wal/torn:count=1\" (see internal/faultinject)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for probabilistic failpoints")
	)
	flag.Parse()
	if *batch == 0 {
		*batch = 32 * *threshold
		if *batch == 0 {
			*batch = 256
		}
	}

	policy, err := httpapi.ParseWALPolicy(*walPolicy)
	if err != nil {
		log.Fatalf("p2bnode: %v", err)
	}
	if *faults != "" {
		specs, err := faultinject.ParseSpecs(*faults)
		if err != nil {
			log.Fatalf("p2bnode: %v", err)
		}
		reg := faultinject.NewRegistry(*faultSeed)
		reg.EnableAll(specs)
		persist.SetFSHooks(&persist.FSHooks{
			BeforeWrite:    reg.FSWrite,
			BeforeSync:     reg.FSSync,
			BeforeTruncate: reg.FSTruncate,
		})
		log.Printf("p2bnode: CHAOS MODE: failpoints armed (%s, seed %d) — not for production", *faults, *faultSeed)
	}

	srv := server.New(server.Config{K: *k, Arms: *arms, D: *d, Alpha: *alpha, Seed: *seed, Shards: *shards})
	shuf := shuffler.New(shuffler.Config{BatchSize: *batch, Threshold: *threshold}, srv, rng.New(*seed).Split("shuffler"))

	reg := metrics.NewRegistry()
	opts := httpapi.NodeOptions{
		WALPolicy: policy,
		Metrics:   reg,
		Admission: httpapi.NewAdmission(httpapi.AdmissionConfig{
			MaxInFlight:      *maxInFlight,
			MaxInFlightBytes: *maxInFlightBytes,
			RetryAfter:       *retryAfter,
			ReadTimeout:      *readTimeout,
		}),
	}
	var mgr *persist.Manager
	if *dataDir != "" {
		var err error
		mgr, err = persist.Open(*dataDir, shuf, srv, persist.Options{
			SyncInterval:       *walSync,
			CheckpointInterval: *ckptEvery,
			RetainWAL:          *walRetain,
			Metrics:            persist.NewMetrics(reg),
		})
		if err != nil {
			log.Fatalf("p2bnode: recovering %s: %v", *dataDir, err)
		}
		rec := mgr.Recovery()
		log.Printf("p2bnode: durable in %s (checkpoint seq %d, replayed %d records, wal at seq %d)",
			*dataDir, rec.CheckpointSeq, rec.ReplayedRecords, rec.LastSeq)
		opts.Ingest = mgr
		opts.Checkpoint = mgr.Checkpoint
		opts.Health = func() any { return mgr.Info() }
		// WAL position gauges: sampled from the same Info() /healthz serves.
		reg.GaugeFunc("p2b_wal_seq", "",
			"Sequence number of the last WAL append.",
			func() float64 { return float64(mgr.Info().WALSeq) })
		reg.GaugeFunc("p2b_wal_checkpoint_seq", "",
			"WAL position of the last completed checkpoint.",
			func() float64 { return float64(mgr.Info().CheckpointSeq) })
		reg.GaugeFunc("p2b_wal_segments", "",
			"Live WAL segment files on disk.",
			func() float64 { return float64(mgr.Info().Segments) })
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewNodeHandlerOpts(shuf, srv, opts),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("p2bnode listening on %s (k=%d arms=%d d=%d threshold=%d batch=%d)", *addr, *k, *arms, *d, *threshold, *batch)

	select {
	case err := <-errCh:
		// The listener died on its own (port in use, ...): nothing to drain.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("p2bnode: shutting down (drain %v)", *drain)

	// Stop accepting and drain in-flight requests first, so no report can
	// slip into the shuffler after the final flush below.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("p2bnode: drain incomplete: %v", err)
	}

	// Push the pending sub-batch through the privacy pipeline. Small
	// flushed batches are the ones most exposed to thresholding — that is
	// correct privacy behaviour, not data loss. On a durable node the flush
	// is logged (replay must flush at the same position) and followed by a
	// final checkpoint, so the next boot starts from this exact state.
	if mgr != nil {
		if err := mgr.Flush(); err != nil {
			log.Printf("p2bnode: final flush: %v", err)
		}
		if err := mgr.Checkpoint(); err != nil {
			log.Printf("p2bnode: final checkpoint: %v", err)
		}
		if err := mgr.Close(); err != nil {
			log.Printf("p2bnode: closing wal: %v", err)
		}
	} else {
		shuf.Flush()
	}

	sst, shst := srv.Stats(), shuf.Stats()
	log.Printf("p2bnode: final state: %d tuples ingested, %d raw, %d batches shuffled (%d forwarded, %d thresholded)",
		sst.TuplesIngested, sst.RawIngested, shst.Batches, shst.Forwarded, shst.Dropped)
}
