// Command p2bgate is the CI bench-regression gate. It compares freshly
// produced benchmark results against the baselines committed under
// testdata/bench_baseline/ and exits non-zero when throughput regressed
// beyond the configured tolerance (default 30%).
//
// The gate configuration (which files and series to compare, tolerances,
// absolute floors) is itself committed next to the baselines as
// gate.json, so tightening or extending the gate is an ordinary reviewed
// change.
//
// Usage (what the CI workflow runs; $GUARD_BENCH_REGEX is defined in
// .github/workflows/ci.yml and must stay equal to
// benchgate.GuardBenchRegex):
//
//	go test -run '^$' -bench "$GUARD_BENCH_REGEX" -benchmem . ./internal/httpapi/ | tee results/guard_bench.txt
//	go run ./cmd/p2bbench -experiment http-pipeline -json -quiet -out results
//	go run ./cmd/p2bgate -baseline testdata/bench_baseline -results results
//
// Refreshing the baselines after an intentional performance change:
//
//	go run ./cmd/p2bgate -update
//
// -update reruns the exact benchmark commands CI runs (same regex, same
// packages — both taken from internal/benchgate, so refreshed baselines
// can never silently drop benchmarks from the gate) and rewrites the
// baseline directory from the fresh run. Run it on the reference machine,
// inspect the diff, and commit.
//
// The load-SLO gate (testdata/bench_baseline/load_slo) is a separate
// baseline tree with its own gate.json, compared by the CI load-slo job:
//
//	go run ./cmd/p2bgate -baseline testdata/bench_baseline/load_slo -results results-load
//
// Its baseline is refreshed by a real measured run, not by -update:
//
//	scripts/load_slo.sh testdata/bench_baseline/load_slo
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"p2b/internal/benchgate"
)

func main() {
	var (
		baseline  = flag.String("baseline", "testdata/bench_baseline", "directory holding committed baselines and gate.json")
		results   = flag.String("results", "results", "directory holding freshly produced results")
		config    = flag.String("config", "", "gate config path (default <baseline>/gate.json)")
		tolerance = flag.Float64("tolerance", 0, "override the config's default tolerance (0 = use config)")
		update    = flag.Bool("update", false, "regenerate the baseline directory from a fresh benchmark run instead of gating")
	)
	flag.Parse()

	if *update {
		if err := refreshBaselines(*baseline); err != nil {
			fmt.Fprintln(os.Stderr, "p2bgate:", err)
			os.Exit(2)
		}
		fmt.Printf("p2bgate: baselines in %s refreshed; inspect the diff and commit\n", *baseline)
		return
	}

	cfgPath := *config
	if cfgPath == "" {
		cfgPath = filepath.Join(*baseline, "gate.json")
	}
	cfg, err := benchgate.LoadConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2bgate:", err)
		os.Exit(2)
	}
	if *tolerance != 0 {
		cfg.Tolerance = *tolerance
	}
	findings, err := benchgate.Run(*baseline, *results, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2bgate:", err)
		os.Exit(2)
	}
	fmt.Print(benchgate.Render(findings))
	if fails := benchgate.Failures(findings); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "p2bgate: %d of %d checks regressed beyond tolerance\n", len(fails), len(findings))
		os.Exit(1)
	}
	fmt.Printf("p2bgate: all %d checks within tolerance\n", len(findings))
}

// refreshBaselines reruns the gate's benchmark commands and rewrites dir.
// The commands mirror the CI workflow exactly; the guard regex and package
// list come from internal/benchgate so the two cannot drift apart here.
func refreshBaselines(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	for _, exp := range benchgate.GateExperiments {
		fmt.Printf("p2bgate: running %s experiment (p2bbench)\n", exp)
		bench := exec.Command("go", "run", "./cmd/p2bbench", "-experiment", exp, "-json", "-quiet", "-out", dir)
		bench.Stdout, bench.Stderr = os.Stdout, os.Stderr
		if err := bench.Run(); err != nil {
			return fmt.Errorf("p2bbench %s: %w", exp, err)
		}
	}

	fmt.Printf("p2bgate: running guard benchmarks %s\n", benchgate.GuardBenchRegex)
	args := []string{"test", "-run", "^$", "-bench", benchgate.GuardBenchRegex, "-benchmem"}
	args = append(args, benchgate.GuardBenchPackages...)
	guard := exec.Command("go", args...)
	out, err := os.Create(filepath.Join(dir, "guard_bench.txt"))
	if err != nil {
		return err
	}
	defer out.Close()
	guard.Stdout = out
	guard.Stderr = os.Stderr
	if err := guard.Run(); err != nil {
		return fmt.Errorf("guard benchmarks: %w", err)
	}
	return out.Close()
}
