// Command p2bgate is the CI bench-regression gate. It compares freshly
// produced benchmark results against the baselines committed under
// testdata/bench_baseline/ and exits non-zero when throughput regressed
// beyond the configured tolerance (default 30%).
//
// The gate configuration (which files and series to compare, tolerances,
// absolute floors) is itself committed next to the baselines as
// gate.json, so tightening or extending the gate is an ordinary reviewed
// change.
//
// Usage (what the CI workflow runs; $GUARD_BENCH_REGEX is defined in
// .github/workflows/ci.yml and must stay in sync with the refresh
// commands below):
//
//	go test -run '^$' -bench "$GUARD_BENCH_REGEX" -benchmem . ./internal/httpapi/ | tee results/guard_bench.txt
//	go run ./cmd/p2bbench -experiment http-pipeline -json -quiet -out results
//	go run ./cmd/p2bgate -baseline testdata/bench_baseline -results results
//
// Refreshing the baselines after an intentional performance change (the
// bench invocation must match CI's exactly — same regex, same packages —
// or refreshed baselines would silently drop benchmarks from the gate):
//
//	go run ./cmd/p2bbench -experiment http-pipeline -json -quiet -out testdata/bench_baseline
//	go test -run '^$' -bench "$GUARD_BENCH_REGEX" -benchmem . ./internal/httpapi/ > testdata/bench_baseline/guard_bench.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"p2b/internal/benchgate"
)

func main() {
	var (
		baseline  = flag.String("baseline", "testdata/bench_baseline", "directory holding committed baselines and gate.json")
		results   = flag.String("results", "results", "directory holding freshly produced results")
		config    = flag.String("config", "", "gate config path (default <baseline>/gate.json)")
		tolerance = flag.Float64("tolerance", 0, "override the config's default tolerance (0 = use config)")
	)
	flag.Parse()

	cfgPath := *config
	if cfgPath == "" {
		cfgPath = filepath.Join(*baseline, "gate.json")
	}
	cfg, err := benchgate.LoadConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2bgate:", err)
		os.Exit(2)
	}
	if *tolerance != 0 {
		cfg.Tolerance = *tolerance
	}
	findings, err := benchgate.Run(*baseline, *results, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2bgate:", err)
		os.Exit(2)
	}
	fmt.Print(benchgate.Render(findings))
	if fails := benchgate.Failures(findings); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "p2bgate: %d of %d checks regressed beyond tolerance\n", len(fails), len(findings))
		os.Exit(1)
	}
	fmt.Printf("p2bgate: all %d checks within tolerance\n", len(findings))
}
