// Command p2bload is the fleet-scale load harness: it drives a running
// p2bnode over real HTTP with open-loop Poisson arrivals — tens of
// thousands of simulated device identities posting reports and polling
// the model with conditional GETs — and reports the latency quantiles and
// achieved throughput that define the node's service-level objectives.
//
// Usage:
//
//	p2bload -node http://localhost:8080 -rate 2000 -fetch-rate 400 -duration 30s
//	p2bload -node $NODE -smoke -json results/BENCH_load_slo.json   # CI preset
//	p2bload -node $NODE -check-metrics                             # exposition check only
//
// With -json the run is written in p2bbench's BENCH_*.json schema, so
// p2bgate can compare it against the committed baseline in
// testdata/bench_baseline/load_slo (throughput floor, p99 ceiling).
// -check-metrics scrapes the node's /metrics route and fails unless it is
// valid Prometheus text exposition covering the instrumented subsystems.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p2b/internal/httpapi"
	"p2b/internal/loadgen"
)

func main() {
	var (
		node      = flag.String("node", "", "base URL of the p2bnode under test (required)")
		rate      = flag.Float64("rate", 1000, "offered ingest load, reports/sec")
		fetchRate = flag.Float64("fetch-rate", 200, "offered conditional model-fetch load, requests/sec")
		duration  = flag.Duration("duration", 30*time.Second, "how long to generate arrivals")
		devices   = flag.Int("devices", 10000, "simulated device-identity pool size")
		workers   = flag.Int("workers", 64, "max in-flight requests per traffic class")
		seed      = flag.Uint64("seed", 1, "arrival-process seed")
		smoke     = flag.Bool("smoke", false, "CI smoke preset: 600 rps ingest, 150 rps fetch, 15s")
		jsonOut   = flag.String("json", "", "write the run as BENCH_load_slo.json to this path")
		checkOnly = flag.Bool("check-metrics", false, "only verify the node's /metrics exposition, generate no load")
	)
	flag.Parse()

	if *node == "" {
		fmt.Fprintln(os.Stderr, "p2bload: -node is required")
		os.Exit(2)
	}
	if *smoke {
		*rate, *fetchRate, *duration, *workers = 600, 150, 15*time.Second, 32
	}

	// Preflight: fail fast with a useful message if the node is absent or
	// misconfigured, instead of counting a whole run of refused connections.
	if _, err := httpapi.NewNodeClient(*node).FetchHealth(); err != nil {
		fmt.Fprintf(os.Stderr, "p2bload: preflight failed: %v\n", err)
		os.Exit(1)
	}

	if *checkOnly {
		if err := loadgen.VerifyMetrics(nil, *node, loadgen.NodeMetricFamilies); err != nil {
			fmt.Fprintln(os.Stderr, "p2bload:", err)
			os.Exit(1)
		}
		fmt.Printf("p2bload: /metrics exposition valid, %d required families present\n", len(loadgen.NodeMetricFamilies))
		return
	}

	res, err := loadgen.Run(loadgen.Config{
		NodeURL:   *node,
		Rate:      *rate,
		FetchRate: *fetchRate,
		Duration:  *duration,
		Devices:   *devices,
		Workers:   *workers,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2bload:", err)
		os.Exit(1)
	}
	fmt.Print(loadgen.Summary(res))

	if *jsonOut != "" {
		blob, err := loadgen.BenchJSON(res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p2bload:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "p2bload: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("p2bload: wrote %s\n", *jsonOut)
	}

	// A run where nothing was accepted is a failed run regardless of what
	// the gate would later say about the numbers.
	if res.IngestOK == 0 {
		fmt.Fprintln(os.Stderr, "p2bload: node accepted no reports")
		os.Exit(1)
	}
}
