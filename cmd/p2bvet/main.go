// Command p2bvet runs the repo's custom static-analysis suite: five
// analyzers enforcing the project's determinism, hot-path, WAL and
// telemetry contracts at compile time (see DESIGN.md "Static invariants
// & p2bvet").
//
// Usage:
//
//	p2bvet [-C dir] [-json] [patterns...]
//
// Patterns default to ./... (the whole module). A pattern may also be a
// package directory relative to the module root (./internal/persist).
// Exit status is 1 when any unsuppressed finding remains; suppressed
// findings are counted in the budget line but do not fail the run.
//
// With -json the full findings list (including suppressed entries and
// their written reasons) and the per-analyzer suppression budget are
// printed to stdout as one JSON document — CI uploads it as an artifact
// so budget growth is reviewable per PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"p2b/internal/analyzers"
	"p2b/internal/analyzers/load"
)

func main() {
	var (
		dir      = flag.String("C", ".", "module root to analyze")
		jsonOut  = flag.Bool("json", false, "emit the findings report as JSON on stdout")
		listOnly = flag.Bool("help-analyzers", false, "print the suite's analyzers and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	loader, err := load.New(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := resolve(loader, root, patterns)
	if err != nil {
		fatal(err)
	}

	rep, err := analyzers.Run(loader, pkgs, analyzers.Suite())
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		rep.Render(os.Stdout)
	}
	if rep.Active > 0 {
		os.Exit(1)
	}
}

// resolve maps command-line patterns to loaded packages. "./..." (or
// "all") loads the whole module; other patterns are module-relative
// package directories.
func resolve(loader *load.Loader, root string, patterns []string) ([]*load.Package, error) {
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "all" {
			return loader.LoadAll()
		}
	}
	mod, err := modulePathOf(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*load.Package
	for _, p := range patterns {
		rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(p, "./")))
		imp := mod
		if rel != "." {
			imp = mod + "/" + rel
		}
		pkg, err := loader.Load(imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("p2bvet: no go.mod found above %s", abs)
		}
		d = parent
	}
}

func modulePathOf(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("p2bvet: no module line in %s/go.mod", root)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2bvet:", err)
	os.Exit(2)
}
