// Command p2bagent simulates a fleet of P2B devices against a running
// p2bnode: every simulated user fetches the current global model over HTTP,
// runs its local interactions on the synthetic preference benchmark, and
// participates in randomized reporting through the node's shuffler surface.
//
// Reports travel over the batched wire protocol by default: an
// httpapi.BatchingClient coalesces them into binary batch POSTs against
// /shuffler/reports (flushing on size or age, with bounded in-flight
// buffering and retry), which is what lets one agent process stand in for
// tens of thousands of devices. -wire switches to the NDJSON batch
// fallback or to the one-POST-per-report path for comparison.
//
// Usage (with `p2bnode -addr :8080 -k 64 -arms 20 -d 10 -threshold 4` running):
//
//	p2bagent -node http://localhost:8080 -users 2000 -k 64 -arms 20 -d 10
//
// The -k/-arms/-d flags must match the node's model shapes; the encoder is
// fitted locally from the public context distribution, mirroring a real
// deployment where the encoder ships inside the app.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"p2b/internal/bandit"
	"p2b/internal/encoding"
	"p2b/internal/httpapi"
	"p2b/internal/privacy"
	"p2b/internal/rng"
	"p2b/internal/synthetic"
	"p2b/internal/transport"
)

func main() {
	var (
		node     = flag.String("node", "http://localhost:8080", "base URL of the p2bnode")
		users    = flag.Int("users", 1000, "number of simulated devices")
		t        = flag.Int("T", 10, "local interactions per device")
		p        = flag.Float64("p", 0.5, "participation probability")
		d        = flag.Int("d", 10, "context dimension (must match the node)")
		arms     = flag.Int("arms", 20, "number of actions (must match the node)")
		k        = flag.Int("k", 64, "encoder code-space size (must match the node)")
		seed     = flag.Uint64("seed", 1, "root random seed")
		every    = flag.Int("report-every", 500, "progress line frequency in users")
		wire     = flag.String("wire", "batch", "report path: batch (binary frames), ndjson, or single (one POST per report)")
		maxBatch = flag.Int("max-batch", 256, "reports per batch POST (batch/ndjson wire)")
		maxAge   = flag.Duration("max-age", 250*time.Millisecond, "max report age before a partial batch ships")
	)
	flag.Parse()

	root := rng.New(*seed)
	env, err := synthetic.New(synthetic.Config{D: *d, Arms: *arms, Beta: 0.1, Sigma: 0.1}, root.Split("env"))
	if err != nil {
		log.Fatal(err)
	}
	enc, err := encoding.FitKMeans(
		env.SampleContexts(4096, root.Split("encoder-sample")),
		*k, 50, 1e-6, root.Split("encoder-fit"))
	if err != nil {
		log.Fatal(err)
	}
	client := httpapi.NewNodeClient(*node)
	sampler := privacy.NewSampler(*p, root.Split("sampler"))

	// report ships one envelope; finish settles the pipeline at the end.
	var report func(transport.Envelope) error
	finish := func() error { return nil }
	switch *wire {
	case "batch", "ndjson":
		bc := httpapi.NewBatchingClient(client, httpapi.BatchingConfig{
			MaxBatch: *maxBatch,
			MaxAge:   *maxAge,
			NDJSON:   *wire == "ndjson",
			Seed:     *seed,
		})
		report = bc.Report
		finish = bc.Close
	case "single":
		report = client.Report
	default:
		fmt.Fprintf(os.Stderr, "p2bagent: unknown -wire %q (want batch, ndjson or single)\n", *wire)
		os.Exit(2)
	}

	fmt.Printf("p2bagent: %d devices -> %s over %s wire (epsilon per disclosure %.4f)\n",
		*users, *node, *wire, privacy.Epsilon(*p))

	var totalReward float64
	var interactions, submitted int64
	start := time.Now()
	for u := 0; u < *users; u++ {
		ur := root.SplitIndex("user", u)
		state, err := client.FetchTabular()
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2bagent: fetching model: %v\n", err)
			os.Exit(1)
		}
		agent, err := bandit.NewTabularUCBFromState(state, ur.Split("agent"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2bagent: node model unusable: %v\n", err)
			os.Exit(1)
		}
		session := env.User(u, ur.Split("session"))
		history := make([]transport.Tuple, 0, *t)
		for step := 0; step < *t; step++ {
			x := session.Context(step)
			y := enc.Encode(x)
			a := agent.SelectCode(y)
			reward := session.Reward(step, a)
			agent.UpdateCode(y, a, reward)
			totalReward += reward
			interactions++
			history = append(history, transport.Tuple{Code: y, Action: a, Reward: reward})
		}
		if sampler.Participates() {
			tup := history[ur.Split("pick").IntN(len(history))]
			err := report(transport.Envelope{
				Meta: transport.Metadata{
					DeviceID: fmt.Sprintf("device-%08d", u),
					SentAt:   time.Now().UnixNano(),
				},
				Tuple: tup,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "p2bagent: report failed: %v\n", err)
				os.Exit(1)
			}
			submitted++
		}
		if *every > 0 && (u+1)%*every == 0 {
			fmt.Printf("  %6d devices done, mean reward %.5f, %d tuples submitted\n",
				u+1, totalReward/float64(interactions), submitted)
		}
	}
	if err := finish(); err != nil {
		fmt.Fprintf(os.Stderr, "p2bagent: settling batches: %v\n", err)
		os.Exit(1)
	}
	if err := client.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "p2bagent: flush failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("done in %v: %d devices, mean reward %.5f, %d tuples submitted (rate %.3f)\n",
		time.Since(start).Round(time.Millisecond), *users,
		totalReward/float64(interactions), submitted, float64(submitted)/float64(*users))
}
