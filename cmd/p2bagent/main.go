// Command p2bagent simulates a fleet of P2B devices against a running
// p2bnode, driving the same public p2b/agent SDK a real deployment embeds:
// every simulated user is an agent.Agent that warm-starts from the node's
// versioned model route, runs its local interactions on the synthetic
// preference benchmark, and participates in randomized reporting through
// the node's shuffler surface.
//
// Model sync is versioned: the fleet shares one agent.HTTPSource, so a
// thousand warm starts cost one model payload plus conditional re-fetches
// (If-None-Match against the node's model-version ETag) that come back as
// 304s while the global model is unchanged. Reports travel over the
// batched wire protocol by default through a shared agent.HTTPTransport;
// -wire switches to the NDJSON batch fallback or to the
// one-POST-per-report path for comparison.
//
// On startup the command preflights the node: /healthz must answer ok, and
// the -d/-arms/-k flags must match the node's model shapes — a mismatch
// fails fast with a clear error instead of silently producing
// shape-mismatched reports the server would drop.
//
// Usage (with `p2bnode -addr :8080 -k 64 -arms 20 -d 10 -threshold 4` running):
//
//	p2bagent -node http://localhost:8080 -users 2000 -k 64 -arms 20 -d 10
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"p2b/agent"
	"p2b/internal/encoding"
	"p2b/internal/metrics"
	"p2b/internal/privacy"
	"p2b/internal/rng"
	"p2b/internal/synthetic"
	"p2b/internal/topology"
)

func main() {
	var (
		node     = flag.String("node", "http://localhost:8080", "base URL of the p2bnode (ignored with -registry)")
		board    = flag.String("registry", "", "bulletin-board URL to discover a report target from instead of -node (see cmd/p2bboard)")
		users    = flag.Int("users", 1000, "number of simulated devices")
		t        = flag.Int("T", 10, "local interactions per device")
		p        = flag.Float64("p", 0.5, "participation probability")
		d        = flag.Int("d", 10, "context dimension (must match the node)")
		arms     = flag.Int("arms", 20, "number of actions (must match the node)")
		k        = flag.Int("k", 64, "encoder code-space size (must match the node)")
		seed     = flag.Uint64("seed", 1, "root random seed")
		every    = flag.Int("report-every", 500, "progress line frequency in users")
		wire     = flag.String("wire", "batch", "report path: batch (binary frames), ndjson, or single (one POST per report)")
		maxBatch = flag.Int("max-batch", 256, "reports per batch POST (batch/ndjson wire)")
		maxAge   = flag.Duration("max-age", 250*time.Millisecond, "max report age before a partial batch ships")
		inflight = flag.Int("inflight", 4, "concurrently outstanding batch POSTs (1 = deterministic delivery order, what chaos bit-exactness runs use)")
		retries  = flag.Int("retries", 3, "per-batch retry budget for transient failures (429/503/408/5xx, resets)")
		retryAt  = flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff delay (doubles per attempt, jittered)")
		refresh  = flag.Duration("model-refresh", 2*time.Second, "background model refresh interval (0 disables; unchanged models cost a 304)")
		jsonWire = flag.Bool("model-json", false, "fetch models as JSON instead of the binary encoding")
		metAddr  = flag.String("metrics-addr", "", "serve the fleet's client-side telemetry as Prometheus text exposition on this address (e.g. :9090; empty = off)")
	)
	flag.Parse()

	wireMode, err := agent.ParseWireMode(*wire)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2bagent: %v\n", err)
		os.Exit(2)
	}

	// Fleet discovery: reports go through the SDK's FailoverTransport,
	// which owns the board fetch, picks a live report target
	// deterministically from the seed (so a fleet launcher with spread
	// seeds spreads its load across the relay tier) and — when that
	// target's circuit breaker trips mid-run — re-discovers and fails over
	// to a surviving relay without restarting the fleet. Model syncs may
	// land on a different process: a relay accepts reports but holds no
	// model, so model traffic picks from the analyzers.
	topts := agent.HTTPTransportOptions{
		Wire:        wireMode,
		MaxBatch:    *maxBatch,
		MaxAge:      *maxAge,
		MaxInFlight: *inflight,
		MaxRetries:  *retries,
		RetryBase:   *retryAt,
		Seed:        *seed,
	}
	modelNode := *node
	var tr reportTransport
	if *board != "" {
		var ft *agent.FailoverTransport
		err := withRetries(10, func() error {
			doc, err := topology.FetchDocument(*board)
			if err != nil {
				return err
			}
			models, err := topology.Pick(doc.Analyzers(), *seed)
			if err != nil {
				return fmt.Errorf("no model-serving node: %w", err)
			}
			ft, err = agent.NewFailoverTransport(*board, agent.FailoverOptions{
				Seed:      *seed,
				Transport: topts,
				Logf:      log.Printf,
			})
			if err != nil {
				return err
			}
			modelNode = models.URL
			st := ft.Status()
			*node = st.URL
			fmt.Printf("p2bagent: board %s assigned reports -> %q (%s), models -> %s %q (%s)\n",
				*board, st.Node, st.URL, models.Role, models.Name, models.URL)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2bagent: discovering the fleet on %s: %v\n", *board, err)
			os.Exit(1)
		}
		tr = ft
	} else {
		tr = agent.NewHTTPTransport(*node, topts)
	}

	root := rng.New(*seed)
	env, err := synthetic.New(synthetic.Config{D: *d, Arms: *arms, Beta: 0.1, Sigma: 0.1}, root.Split("env"))
	if err != nil {
		log.Fatal(err)
	}
	// The encoder is fitted locally from the public context distribution,
	// mirroring a real deployment where the encoder ships inside the app.
	enc, err := encoding.FitKMeans(
		env.SampleContexts(4096, root.Split("encoder-sample")),
		*k, 50, 1e-6, root.Split("encoder-fit"))
	if err != nil {
		log.Fatal(err)
	}

	src := agent.NewHTTPSource(modelNode, agent.HTTPSourceOptions{
		Refresh: *refresh,
		JSON:    *jsonWire,
		Seed:    *seed,
	})
	defer src.Close()
	// Preflight and the first model fetch ride plain GETs with no retry
	// layer of their own; behind a chaos proxy (or against a node still
	// coming up) a transient failure here should not kill the fleet.
	if err := withRetries(10, func() error { return preflight(*node, *d, *arms, *k) }); err != nil {
		fmt.Fprintf(os.Stderr, "p2bagent: preflight failed: %v\n", err)
		os.Exit(1)
	}
	if err := withRetries(10, func() error { return src.Refresh(agent.ModelTabular) }); err != nil {
		fmt.Fprintf(os.Stderr, "p2bagent: warm-start model fetch failed: %v\n", err)
		os.Exit(1)
	}

	if *metAddr != "" {
		go serveMetrics(*metAddr, tr, src)
	}

	fmt.Printf("p2bagent: %d devices -> %s over %s wire (epsilon per disclosure %.4f)\n",
		*users, *node, wireMode, privacy.Epsilon(*p))

	var totalReward float64
	var interactions, submitted int64
	start := time.Now()
	for u := 0; u < *users; u++ {
		ur := root.SplitIndex("user", u)
		device := fmt.Sprintf("device-%08d", u)
		ag, err := agent.New(agent.Config{
			Policy:    agent.PolicyTabular,
			P:         *p,
			Arms:      *arms,
			Encoder:   enc,
			Source:    src,
			Transport: tr,
			Rand:      ur,
			ReportMeta: func(int) agent.Metadata {
				return agent.Metadata{DeviceID: device, SentAt: time.Now().UnixNano()}
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2bagent: building device agent: %v\n", err)
			os.Exit(1)
		}
		session := env.User(u, ur.Split("session"))
		for step := 0; step < *t; step++ {
			x := session.Context(step)
			a := ag.Select(x)
			reward := session.Reward(step, a)
			ag.Observe(a, reward)
			totalReward += reward
			interactions++
		}
		n, err := ag.Finish()
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2bagent: report failed: %v\n", err)
			os.Exit(1)
		}
		submitted += int64(n)
		if *every > 0 && (u+1)%*every == 0 {
			fmt.Printf("  %6d devices done, mean reward %.5f, %d tuples submitted\n",
				u+1, totalReward/float64(interactions), submitted)
		}
	}
	if err := tr.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "p2bagent: settling batches: %v\n", err)
		os.Exit(1)
	}
	if err := tr.FlushNode(); err != nil {
		fmt.Fprintf(os.Stderr, "p2bagent: flush failed: %v\n", err)
		os.Exit(1)
	}
	st := src.Stats()
	fmt.Printf("done in %v: %d devices, mean reward %.5f, %d tuples submitted (rate %.3f)\n",
		time.Since(start).Round(time.Millisecond), *users,
		totalReward/float64(interactions), submitted, float64(submitted)/float64(*users))
	fmt.Printf("model sync: %d fetches, %d not-modified (304), %d refreshed\n",
		st.Fetches, st.NotModified, st.Refreshed)
	bst := tr.Stats()
	fmt.Printf("delivery: %d batches, %d retries, %d dropped batches, %d dropped reports\n",
		bst.Batches, bst.Retries, bst.DroppedBatches, bst.DroppedReports)
}

// serveMetrics exposes the fleet's client-side telemetry — batch delivery,
// retry backoff, and model-sync counters — as GET /metrics. Every family is
// a Func collector sampling the same Stats() the end-of-run summary prints,
// so a scrape mid-run costs a few atomic loads and two mutexes, never a
// simulation stall.
func serveMetrics(addr string, tr reportTransport, src *agent.HTTPSource) {
	reg := metrics.NewRegistry()
	reg.CounterFunc("p2b_agent_reports_total", "",
		"Reports handed to the transport.",
		func() float64 { return float64(tr.Stats().Reported) })
	reg.CounterFunc("p2b_agent_batches_total", "",
		"Batch POSTs delivered.",
		func() float64 { return float64(tr.Stats().Batches) })
	reg.CounterFunc("p2b_agent_retries_total", "",
		"Batch delivery retries after transient failures.",
		func() float64 { return float64(tr.Stats().Retries) })
	reg.CounterFunc("p2b_agent_backoff_waits_total", "",
		"Retry backoff sleeps taken.",
		func() float64 { return float64(tr.Stats().BackoffWaits) })
	reg.CounterFunc("p2b_agent_backoff_seconds_total", "",
		"Total time spent sleeping between retries.",
		func() float64 { return float64(tr.Stats().BackoffNanos) / 1e9 })
	reg.CounterFunc("p2b_agent_dropped_batches_total", "",
		"Batches abandoned after exhausting their retry budget.",
		func() float64 { return float64(tr.Stats().DroppedBatches) })
	reg.CounterFunc("p2b_agent_model_fetches_total", "",
		"Model GETs issued by the shared source.",
		func() float64 { return float64(src.Stats().Fetches) })
	reg.CounterFunc("p2b_agent_model_not_modified_total", "",
		"Model fetches answered 304 Not Modified.",
		func() float64 { return float64(src.Stats().NotModified) })
	reg.CounterFunc("p2b_agent_model_refreshed_total", "",
		"Model fetches that replaced the cached model.",
		func() float64 { return float64(src.Stats().Refreshed) })
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Handler(reg))
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		log.Printf("p2bagent: metrics listener: %v", err)
	}
}

// reportTransport is the method set the fleet drives on its report path,
// satisfied by both the plain HTTPTransport (-node) and the board-driven
// FailoverTransport (-registry).
type reportTransport interface {
	agent.Transport
	FlushNode() error
	Close() error
	Stats() agent.BatchStats
}

// withRetries runs fn up to attempts times, 200ms apart.
func withRetries(attempts int, fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return err
}

// preflight fails fast when the node is unreachable, unhealthy, or shaped
// differently from the fleet's flags. One /healthz probe carries the
// node's model shapes, so no model payload is downloaded before the fleet
// actually needs one.
func preflight(node string, d, arms, k int) error {
	h, err := agent.FetchHealth(node)
	if err != nil {
		return err
	}
	if h.Model.K != k {
		return fmt.Errorf("-k %d does not match the node's code space K=%d", k, h.Model.K)
	}
	if h.Model.Arms != arms {
		return fmt.Errorf("-arms %d does not match the node's action count Arms=%d", arms, h.Model.Arms)
	}
	if h.Model.D != d {
		return fmt.Errorf("-d %d does not match the node's context dimension D=%d", d, h.Model.D)
	}
	return nil
}
