// Command p2bwal inspects and replays a p2bnode data directory (the WAL
// segments and checkpoint written by internal/persist). All modes read the
// directory strictly read-only — no truncation, no appends — so inspecting
// a data dir can never corrupt it, even while a node is running against it
// (though a live dir is a moving target; freeze a copy for exact work).
//
// Modes:
//
//	p2bwal -dir DATA verify
//	    Scan the checkpoint and every segment, validating magic, CRCs and
//	    sequence continuity. Exits non-zero on corruption. A torn tail is
//	    reported (node recovery would truncate it).
//
//	p2bwal -dir DATA dump
//	    Print the checkpoint position and every record: sequence number,
//	    type, and tuple count.
//
//	p2bwal -dir DATA replay -node URL [-peer-token TOKEN]
//	    Re-submit the logged input stream, in order, against a running
//	    p2bnode: tuple records as binary batch POSTs to /shuffler/reports,
//	    flush markers as POST /shuffler/flush, and relay-delivered records
//	    to /peer/ingest at their original (origin, epoch, seq) position —
//	    the target's duplicate guard makes re-running a replay idempotent.
//	    Run the source node with
//	    -wal-retain so the full history is present (replay refuses a
//	    pruned log); a fresh node fed this stream reproduces the original
//	    node's model bit-for-bit, which is what the crash-recovery CI job
//	    asserts.
//
// Replay mutates the target node; point it at a clean one.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"p2b/internal/persist"
	"p2b/internal/topology"
	"p2b/internal/transport"
)

func main() {
	var (
		dir       = flag.String("dir", "", "p2bnode data directory (required)")
		node      = flag.String("node", "", "base URL of the target p2bnode (replay mode)")
		peerToken = flag.String("peer-token", "", "bearer token for replaying relay-delivered records to the target's /peer/ingest")
	)
	flag.Parse()
	mode := flag.Arg(0)
	if *dir == "" || mode == "" {
		fmt.Fprintln(os.Stderr, "usage: p2bwal -dir DATA [-node URL] verify|dump|replay")
		os.Exit(2)
	}

	ckpt, err := persist.LoadCheckpoint(*dir)
	if err != nil {
		fatal(err)
	}

	switch mode {
	case "verify":
		if ckpt != nil {
			fmt.Printf("checkpoint: ok, covers seq %d", ckpt.WALSeq)
			if ckpt.Relay != nil {
				fmt.Printf(", relay cursor epoch=%d seq=%d", ckpt.Relay.Epoch, ckpt.Relay.Seq)
			}
			fmt.Println()
		} else {
			fmt.Println("checkpoint: none")
		}
		info, err := persist.ReadLog(*dir, 0, func(persist.Record) error { return nil })
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wal: ok, %d records in %d segments, seq %d..%d", info.Records, info.Segments, info.FirstSeq, info.LastSeq)
		if info.TruncatedBytes > 0 {
			fmt.Printf(" (torn tail of %d bytes; node recovery would truncate it)", info.TruncatedBytes)
		}
		fmt.Println()
	case "dump":
		if ckpt != nil {
			fmt.Printf("checkpoint seq=%d pending=%d\n", ckpt.WALSeq, len(ckpt.Shuffler.Pending))
		}
		if _, err := persist.ReadLog(*dir, 0, func(rec persist.Record) error {
			switch rec.Type {
			case persist.RecordFlush:
				fmt.Printf("seq=%d flush\n", rec.Seq)
			case persist.RecordDeliver:
				fmt.Printf("seq=%d deliver origin=%s epoch=%d peer_seq=%d n=%d\n",
					rec.Seq, rec.Origin, rec.Epoch, rec.PeerSeq, len(rec.Tuples))
			case persist.RecordTuples:
				fmt.Printf("seq=%d tuples n=%d\n", rec.Seq, len(rec.Tuples))
			case persist.RecordCursor:
				fmt.Printf("seq=%d cursor epoch=%d fwd_seq=%d\n", rec.Seq, rec.Epoch, rec.PeerSeq)
			default:
				return fmt.Errorf("unknown record type %d at seq %d", rec.Type, rec.Seq)
			}
			return nil
		}); err != nil {
			fatal(err)
		}
	case "replay":
		if *node == "" {
			fatal(fmt.Errorf("replay needs -node URL"))
		}
		// Pre-scan: validate the log and refuse a pruned history before a
		// single record reaches the target node.
		info, err := persist.ReadLog(*dir, 0, func(persist.Record) error { return nil })
		if err != nil {
			fatal(err)
		}
		if info.FirstSeq != 1 {
			fatal(fmt.Errorf("log starts at seq %d, not 1: earlier records were pruned (run the source node with -wal-retain for a replayable history)", info.FirstSeq))
		}
		client := &http.Client{Timeout: 30 * time.Second}
		var records, tuples int
		enc := []byte(nil)
		_, err = persist.ReadLog(*dir, 0, func(rec persist.Record) error {
			records++
			switch rec.Type {
			case persist.RecordFlush:
				return post(client, *node+"/shuffler/flush", "", nil, http.StatusNoContent)
			case persist.RecordDeliver:
				// Relay-forwarded batches bypassed the shuffler originally, so
				// the replay must too: re-deliver at the original (origin,
				// epoch, seq) position. The target's duplicate guard makes the
				// replay idempotent.
				tuples += len(rec.Tuples)
				enc = encodeTuples(enc, rec.Tuples)
				return deliverPeer(client, *node, *peerToken, rec, enc)
			case persist.RecordTuples:
				tuples += len(rec.Tuples)
				enc = encodeTuples(enc, rec.Tuples)
				return post(client, *node+"/shuffler/reports", transport.ContentTypeBinary, enc, http.StatusAccepted)
			case persist.RecordCursor:
				// The source relay's forwarding identity, not ingestion input:
				// nothing to re-submit. The record is counted but carries no
				// tuples, so replay equivalence is unaffected.
				return nil
			default:
				return fmt.Errorf("unknown record type %d at seq %d", rec.Type, rec.Seq)
			}
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d records (%d tuples) to %s\n", records, tuples, *node)
	default:
		fatal(fmt.Errorf("unknown mode %q (want verify, dump or replay)", mode))
	}
}

// encodeTuples re-encodes a replayed record's tuples as one P2B1 batch
// stream into dst's storage.
func encodeTuples(dst []byte, tuples []transport.Tuple) []byte {
	dst = transport.AppendMagic(dst[:0])
	e := transport.Envelope{}
	for _, t := range tuples {
		e.Tuple = t
		dst = e.AppendFrame(dst)
	}
	return dst
}

// deliverPeer re-delivers one relay-forwarded batch to the target's
// /peer/ingest route at its original stream position.
func deliverPeer(client *http.Client, node, token string, rec persist.Record, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, node+"/peer/ingest", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", transport.ContentTypeBinary)
	req.Header.Set(topology.OriginHeader, rec.Origin)
	req.Header.Set(topology.EpochHeader, strconv.FormatUint(rec.Epoch, 10))
	req.Header.Set(topology.SeqHeader, strconv.FormatUint(rec.PeerSeq, 10))
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("post %s/peer/ingest: status %d: %s", node, resp.StatusCode, msg)
	}
	return nil
}

func post(client *http.Client, url, contentType string, body []byte, want int) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	resp, err := client.Post(url, contentType, rd)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("post %s: status %d: %s", url, resp.StatusCode, msg)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2bwal:", err)
	os.Exit(1)
}
