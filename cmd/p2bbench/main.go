// Command p2bbench regenerates the paper's tables and figures.
//
// Usage:
//
//	p2bbench -list
//	p2bbench -experiment fig4 [-scale 1] [-seed 7] [-workers 8] [-csv]
//	p2bbench -experiment all
//
// Scale 1 regenerates every figure in seconds at reduced population sizes;
// the per-figure doc comments in internal/experiments state the scale that
// reaches the paper's full sizes (e.g. -scale 100 for Figure 4's 10^6
// users).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p2b/internal/experiments"
)

func main() {
	var (
		name    = flag.String("experiment", "", "experiment id (see -list) or 'all'")
		scale   = flag.Float64("scale", 1, "population scale factor (1 = seconds-fast, larger = closer to paper scale)")
		seed    = flag.Uint64("seed", 20200302, "root random seed")
		workers = flag.Int("workers", 8, "simulation worker goroutines")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list    = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "p2bbench: -experiment is required (use -list to see options)")
		os.Exit(2)
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale, Workers: *workers}

	names := []string{*name}
	if *name == "all" {
		names = experiments.Names()
	}
	for _, n := range names {
		run, ok := experiments.Registry[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "p2bbench: unknown experiment %q (use -list)\n", n)
			os.Exit(2)
		}
		start := time.Now()
		res, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2bbench: %s failed: %v\n", n, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(res.Render())
			fmt.Printf("\n(%s completed in %v at scale %g)\n\n", n, time.Since(start).Round(time.Millisecond), *scale)
		}
	}
}
