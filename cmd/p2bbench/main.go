// Command p2bbench regenerates the paper's tables and figures.
//
// Usage:
//
//	p2bbench -list
//	p2bbench -experiment fig4 [-scale 1] [-seed 7] [-workers 8] [-csv]
//	p2bbench -experiment all -json [-out results/]
//
// Scale 1 regenerates every figure in seconds at reduced population sizes;
// the per-figure doc comments in internal/experiments state the scale that
// reaches the paper's full sizes (e.g. -scale 100 for Figure 4's 10^6
// users).
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<id>.json file (schema below) so successive PRs can diff result
// and runtime trajectories without scraping text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"p2b/internal/experiments"
	"p2b/internal/stats"
)

// benchJSON is the stable machine-readable schema emitted by -json.
type benchJSON struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Seed        uint64      `json:"seed"`
	Scale       float64     `json:"scale"`
	Workers     int         `json:"workers"`
	ElapsedMS   float64     `json:"elapsed_ms"`
	Tables      []tableJSON `json:"tables"`
	Notes       []string    `json:"notes,omitempty"`
}

type tableJSON struct {
	XLabel string       `json:"x_label,omitempty"`
	Series []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Name   string      `json:"name"`
	Points []pointJSON `json:"points"`
}

type pointJSON struct {
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	Err float64 `json:"err,omitempty"`
}

func toBenchJSON(res *experiments.Result, opts experiments.Options, elapsed time.Duration) benchJSON {
	out := benchJSON{
		Name:        res.Name,
		Description: res.Description,
		Seed:        opts.Seed,
		Scale:       opts.Scale,
		Workers:     opts.Workers,
		ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
		Notes:       res.Notes,
	}
	for _, tab := range res.Tables {
		tj := tableJSON{XLabel: tab.XLabel}
		for _, s := range tab.Series {
			tj.Series = append(tj.Series, toSeriesJSON(s))
		}
		out.Tables = append(out.Tables, tj)
	}
	return out
}

func toSeriesJSON(s *stats.Series) seriesJSON {
	sj := seriesJSON{Name: s.Name, Points: make([]pointJSON, 0, len(s.Points))}
	for _, p := range s.Points {
		sj.Points = append(sj.Points, pointJSON{X: p.X, Y: p.Y, Err: p.Err})
	}
	return sj
}

func main() {
	var (
		name     = flag.String("experiment", "", "experiment id (see -list) or 'all'")
		scale    = flag.Float64("scale", 1, "population scale factor (1 = seconds-fast, larger = closer to paper scale)")
		seed     = flag.Uint64("seed", 20200302, "root random seed")
		workers  = flag.Int("workers", 8, "simulation worker goroutines")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = flag.Bool("json", false, "also write BENCH_<experiment>.json files")
		outDir   = flag.String("out", ".", "directory for -json output files")
		list     = flag.Bool("list", false, "list available experiments")
		quietRun = flag.Bool("quiet", false, "suppress table output (useful with -json)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "p2bbench: -experiment is required (use -list to see options)")
		os.Exit(2)
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale, Workers: *workers}
	if *jsonOut {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "p2bbench: creating -out directory: %v\n", err)
			os.Exit(1)
		}
	}

	names := []string{*name}
	if *name == "all" {
		names = experiments.Names()
	}
	for _, n := range names {
		run, ok := experiments.Registry[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "p2bbench: unknown experiment %q (use -list)\n", n)
			os.Exit(2)
		}
		start := time.Now()
		res, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2bbench: %s failed: %v\n", n, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		switch {
		case *quietRun:
		case *csv:
			fmt.Print(res.CSV())
		default:
			fmt.Print(res.Render())
			fmt.Printf("\n(%s completed in %v at scale %g)\n\n", n, elapsed.Round(time.Millisecond), *scale)
		}
		if *jsonOut {
			blob, err := json.MarshalIndent(toBenchJSON(res, opts, elapsed), "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "p2bbench: marshaling %s: %v\n", n, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, "BENCH_"+n+".json")
			if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "p2bbench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "p2bbench: wrote %s\n", path)
		}
	}
}
