// Command p2bprivacy computes P2B's differential-privacy parameters: the
// epsilon achieved by a participation probability (Equation 3), the inverse
// map from a target epsilon, the delta bound for a crowd-blending size, and
// composed budgets over repeated disclosures.
//
// Usage:
//
//	p2bprivacy -p 0.5 -l 10            # epsilon & delta for one deployment
//	p2bprivacy -eps 1.0                # participation probability for a target
//	p2bprivacy -p 0.5 -r 5             # composed budget over 5 disclosures
//	p2bprivacy -table                  # the Figure 3 sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"p2b/internal/privacy"
)

func main() {
	var (
		p     = flag.Float64("p", -1, "participation probability in [0, 1)")
		eps   = flag.Float64("eps", -1, "target epsilon; prints the largest p achieving it")
		l     = flag.Int("l", 0, "crowd-blending size (shuffler threshold); adds the delta bound")
		omega = flag.Float64("omega", privacy.DefaultOmega, "constant in the delta bound exp(-omega*l*(1-p)^2)")
		r     = flag.Int("r", 1, "number of disclosures per user (basic composition)")
		table = flag.Bool("table", false, "print the epsilon(p) sweep of Figure 3")
	)
	flag.Parse()

	switch {
	case *table:
		fmt.Println("p       epsilon")
		for pp := 0.05; pp < 0.96; pp += 0.05 {
			fmt.Printf("%.2f    %.6f\n", pp, privacy.Epsilon(pp))
		}
	case *eps >= 0:
		pp := privacy.ParticipationForEpsilon(*eps)
		fmt.Printf("target epsilon %.6f -> participation probability p = %.6f\n", *eps, pp)
		fmt.Printf("check: Epsilon(%.6f) = %.6f\n", pp, privacy.Epsilon(pp))
	case *p >= 0:
		if *p >= 1 {
			fmt.Fprintln(os.Stderr, "p2bprivacy: p must be in [0, 1)")
			os.Exit(2)
		}
		e := privacy.Epsilon(*p)
		fmt.Printf("participation p = %.4f\n", *p)
		fmt.Printf("per-disclosure epsilon = %.6f\n", e)
		if *r > 1 {
			fmt.Printf("composed epsilon over %d disclosures = %.6f (basic)\n", *r, privacy.Compose(e, *r))
			fmt.Printf("composed epsilon over %d disclosures = %.6f (advanced, slack 1e-6)\n",
				*r, privacy.AdvancedCompose(e, *r, 1e-6))
		}
		if *l > 0 {
			fmt.Printf("delta bound (l=%d, omega=%.2f) = %.3e\n", *l, *omega, privacy.Delta(*l, *p, *omega))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
