// Quickstart: the smallest end-to-end P2B run. A population of simulated
// users contributes encoded interactions through the private pipeline, and
// a fresh user cohort shows the warm-start benefit — at a concrete,
// quantified privacy cost.
package main

import (
	"fmt"
	"log"

	"p2b"
)

func main() {
	// A synthetic personalization task: 10-dimensional user preference
	// vectors, 20 candidate actions, rewards following the paper's scaled
	// softmax model.
	env, err := p2b.NewSyntheticEnvironment(p2b.SyntheticConfig{
		D: 10, Arms: 20, Beta: 0.1, Sigma: 0.1,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's default deployment: 10 local interactions per user,
	// participation probability 0.5 (epsilon = ln 2), k-means encoder, and
	// a shuffler enforcing crowd-blending threshold 10. The code space is
	// sized so that codes can actually clear the threshold at this
	// population scale (the paper notes l must be matched to the data).
	sys, err := p2b.NewSystem(p2b.Config{
		Mode:      p2b.WarmPrivate,
		T:         10,
		P:         0.5,
		K:         1 << 4,
		Threshold: 10,
		Workers:   8,
		Seed:      1,
	}, env, nil)
	if err != nil {
		log.Fatal(err)
	}

	// A cold-only system for comparison: same task, no sharing.
	cold, err := p2b.NewSystem(p2b.Config{
		Mode: p2b.Cold, T: 10, Workers: 8, Seed: 1,
	}, env, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("P2B quickstart: private warm-start vs cold-start")
	fmt.Printf("privacy guarantee: epsilon = %.4f per disclosure (p = 0.5)\n\n", sys.Epsilon())
	fmt.Printf("%-12s  %-14s  %-14s\n", "users", "cold reward", "private reward")

	const evalCohort = 400
	contributors := 0
	for _, u := range []int{100, 1000, 10000, 30000} {
		sys.RunRange(contributors, u-contributors, true)
		contributors = u
		sys.Flush()

		coldEval := cold.RunRange(1_000_000, evalCohort, false)
		privEval := sys.RunRange(1_000_000, evalCohort, false)
		fmt.Printf("%-12d  %-14.5f  %-14.5f\n", u, coldEval.Overall.Mean(), privEval.Overall.Mean())
	}

	shufStats := sys.Shuffler().Stats()
	fmt.Printf("\npipeline: %d tuples submitted, %d forwarded, %d consumed by the l=10 threshold\n",
		sys.Submitted(), shufStats.Forwarded, shufStats.Dropped)
	fmt.Println("note: every forwarded tuple blended with >= 10 same-code tuples in its batch.")
}
