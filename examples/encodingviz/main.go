// Encoding visualization: reproduces the paper's Figure 2. The normalized
// 3-dimensional vector space at precision q=1 contains exactly
// n = C(12, 2) = 66 grid points; a k-means encoding with k=6 partitions
// them into clusters whose minimum size is the crowd-blending parameter l.
//
// The program prints the triangular grid (each cell shows its cluster id)
// and the cluster size histogram.
package main

import (
	"fmt"
	"log"

	"p2b/internal/encoding"
	"p2b/internal/rng"
)

func main() {
	g, err := encoding.NewGridQuantizer(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normalized vector space: d=3, q=1, cardinality n = %d (paper: 66)\n\n", g.Cardinality())

	points := g.EnumerateAll(100)
	km, err := encoding.FitKMeans(points, 6, 200, 1e-9, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}

	// Lay the simplex out as a triangle: rows by x1 = 0.0 .. 1.0, columns
	// by x2. x3 is implied (sizes of the circles in the paper's figure).
	fmt.Println("cluster assignment over the simplex grid (rows: x1, cols: x2):")
	fmt.Print("        x2:  ")
	for c := 0; c <= 10; c++ {
		fmt.Printf("%3.1f ", float64(c)/10)
	}
	fmt.Println()
	for r := 0; r <= 10; r++ {
		fmt.Printf("  x1=%3.1f     ", float64(r)/10)
		for c := 0; c <= 10-r; c++ {
			x := []float64{float64(r) / 10, float64(c) / 10, float64(10-r-c) / 10}
			fmt.Printf("  %d ", km.Encode(x))
		}
		fmt.Println()
	}

	sizes := km.ClusterSizes(points)
	fmt.Println("\ncluster sizes:")
	total := 0
	for c, n := range sizes {
		fmt.Printf("  cluster %d: %2d points %s\n", c, n, bar(n))
		total += n
	}
	fmt.Printf("  total: %d points\n", total)
	fmt.Printf("\nminimum cluster size l = %d (paper's example: l = 9)\n", km.MinClusterSize(points))
	fmt.Println("l is the crowd-blending parameter: the shuffler threshold must not exceed it")
	fmt.Println("for this encoder if no tuple is to be wasted.")
}

func bar(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
