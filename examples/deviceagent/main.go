// Example deviceagent shows the device SDK end to end: it starts an
// in-process P2B node (shuffler + analyzer server behind the real HTTP
// surface), then runs a small fleet of agent.Agent devices against it —
// warm-starting through the versioned model route, reporting through the
// batched wire — and finally measures what a fresh cohort gains from the
// collected model.
//
// Everything a real deployment does happens here, just inside one process:
// swap the httptest listener for a p2bnode address and the code is a real
// fleet. Run with:
//
//	go run ./examples/deviceagent
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"p2b"
	"p2b/agent"
)

const (
	dim      = 6
	arms     = 5
	k        = 16
	perUser  = 10
	fleet    = 2000
	evalSize = 300
)

func main() {
	// The workload: the paper's synthetic preference benchmark.
	env, err := p2b.NewSyntheticEnvironment(p2b.SyntheticConfig{
		D: dim, Arms: arms, Beta: 0.1, Sigma: 0.1,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	root := p2b.NewRand(1)

	// The encoder ships inside the app: fitted on a public context sample.
	enc, err := p2b.FitKMeansEncoder(env.SampleContexts(4096, root.Split("sample")), k, 7)
	if err != nil {
		log.Fatal(err)
	}

	// An in-process node. A real deployment runs `p2bnode` instead and the
	// SDK code below is unchanged.
	srv := p2b.NewAnalyzerServer(p2b.AnalyzerConfig{K: k, Arms: arms, D: dim, Alpha: 1})
	shuf := p2b.NewShuffler(p2b.ShufflerConfig{BatchSize: 64, Threshold: 2}, srv, root.Split("shuffler"))
	node := httptest.NewServer(p2b.NewNodeHandler(shuf, srv))
	defer node.Close()

	// The SDK seams, shared by the whole fleet: one model cache (304-cheap
	// revalidation), one batching report pipeline.
	src := agent.NewHTTPSource(node.URL, agent.HTTPSourceOptions{Refresh: 500 * time.Millisecond})
	defer src.Close()
	tr := agent.NewHTTPTransport(node.URL, agent.HTTPTransportOptions{MaxBatch: 128, MaxAge: 100 * time.Millisecond})

	fmt.Printf("deviceagent: %d devices -> %s (epsilon per disclosure %.4f)\n",
		fleet, node.URL, p2b.Epsilon(0.5))

	runUser := func(u int, transport agent.Transport, p float64) float64 {
		ur := root.SplitIndex("user", u)
		device := fmt.Sprintf("device-%08d", u)
		ag, err := agent.New(agent.Config{
			Policy:    agent.PolicyTabular,
			P:         p,
			Arms:      arms,
			Encoder:   enc,
			Source:    src,
			Transport: transport,
			Rand:      ur,
			ReportMeta: func(int) agent.Metadata {
				return agent.Metadata{DeviceID: device, SentAt: time.Now().UnixNano()}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		session := env.User(u, ur.Split("session"))
		total := 0.0
		for t := 0; t < perUser; t++ {
			x := session.Context(t)
			a := ag.Select(x)
			reward := session.Reward(t, a)
			ag.Observe(a, reward)
			total += reward
		}
		if _, err := ag.Finish(); err != nil {
			log.Fatal(err)
		}
		return total
	}

	// Contribution phase: devices improve the global model through the
	// private pipeline.
	for u := 0; u < fleet; u++ {
		runUser(u, tr, 0.5)
	}
	if err := tr.Close(); err != nil {
		log.Fatal(err)
	}
	if err := tr.FlushNode(); err != nil {
		log.Fatal(err)
	}
	if err := src.Refresh(agent.ModelTabular); err != nil {
		log.Fatal(err)
	}

	// Evaluation: a fresh cohort warm-starts from the collected model but
	// shares nothing.
	warm := 0.0
	for u := 0; u < evalSize; u++ {
		warm += runUser(1_000_000+u, nil, 0)
	}

	// One more revalidation against the now-quiescent node: the model
	// version is unchanged, so this costs a 304, not a payload.
	if err := src.Refresh(agent.ModelTabular); err != nil {
		log.Fatal(err)
	}
	st := src.Stats()
	fmt.Printf("model sync: %d fetches, %d not-modified (304), %d payloads\n",
		st.Fetches, st.NotModified, st.Refreshed)
	fmt.Printf("evaluation cohort mean reward: %.5f (model version %d)\n",
		warm/float64(evalSize*perUser), srv.ModelVersion())
}
