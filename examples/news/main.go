// News personalization: the scenario from the paper's introduction. A news
// app recommends one of several article topics to each reader based on
// their interest profile. Keeping interest profiles on-device protects
// privacy but cold-starts every reader; P2B shares coarse encoded feedback
// so new readers get useful recommendations immediately.
//
// This example contrasts all three regimes and reports how many local
// interactions a fresh reader needs before the recommender is "useful"
// (mean reward above a threshold).
package main

import (
	"fmt"
	"log"

	"p2b"
)

const (
	topics  = 25 // candidate article topics (the actions)
	profile = 12 // interest profile dimension (the context)
	reads   = 20 // local interactions per reader
)

func main() {
	env, err := p2b.NewSyntheticEnvironment(p2b.SyntheticConfig{
		D: profile, Arms: topics, Beta: 0.1, Sigma: 0.1,
	}, 2024)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("news personalization: cold vs non-private vs P2B")
	fmt.Printf("readers' interest profiles: %d dims; article topics: %d; reads per reader: %d\n\n",
		profile, topics, reads)

	type regime struct {
		name string
		mode p2b.Mode
	}
	regimes := []regime{
		{"cold (full privacy, no sharing)", p2b.Cold},
		{"warm non-private (raw profiles shared)", p2b.WarmNonPrivate},
		{"warm private / P2B (epsilon = 0.693)", p2b.WarmPrivate},
	}

	const population = 20000
	for _, rg := range regimes {
		sys, err := p2b.NewSystem(p2b.Config{
			Mode:      rg.mode,
			T:         reads,
			P:         0.5,
			K:         1 << 8,
			Threshold: 10,
			// The code space is large relative to the population, so the
			// private agents pool observations through the centroid
			// learner (see the Learner docs).
			PrivateLearner: p2b.LearnerCentroid,
			Workers:        8,
			Seed:           7,
		}, env, nil)
		if err != nil {
			log.Fatal(err)
		}
		sys.RunRange(0, population, true)
		sys.Flush()

		// A fresh cohort of readers measures the out-of-the-box experience.
		eval := sys.RunRange(5_000_000, 300, false)

		// How quickly does a fresh reader's session become useful? Compare
		// the reward in the first 5 reads with the last 5.
		early := eval.PrefixMean(5)
		overall := eval.Overall.Mean()
		fmt.Printf("%-42s first-5-reads %.5f   overall %.5f\n", rg.name, early, overall)
	}

	fmt.Println("\nexpected shape: both warm regimes lift the first reads well above cold;")
	fmt.Println("P2B trails the non-private upper bound slightly while guaranteeing")
	fmt.Printf("differential privacy at epsilon = %.4f.\n", p2b.Epsilon(0.5))
}
