// Advertising: the paper's §5.3 scenario on a Criteo-shaped click log.
// Agents recommend one of 40 product categories; a recommendation only pays
// off when it matches the logged impression and the user actually clicked.
// The punchline reproduced here is the paper's surprising Figure 7 result:
// with enough local interactions, the private agents (tabular over encoded
// contexts) overtake their non-private counterparts, because the encoded
// context space is small, fast to explore, and aligned with the nonlinear
// click behaviour.
package main

import (
	"fmt"
	"log"

	"p2b"
)

func main() {
	const (
		agents       = 600
		perAgent     = 300
		interactions = 300
	)
	env, total, err := p2b.NewAdLogEnvironment(p2b.CriteoLikeConfig(agents*perAgent*11/10), perAgent, 99)
	if err != nil {
		log.Fatal(err)
	}
	n := agents
	if total < n {
		n = total
	}
	trainN := n * 70 / 100

	fmt.Println("online advertising on a Criteo-shaped log")
	fmt.Printf("%d agents x %d impressions, 40 product categories, d=10 context\n\n", n, perAgent)
	fmt.Printf("%-10s  %-12s  %-16s  %-14s\n", "reads", "cold CTR", "non-private CTR", "private CTR")

	for _, reads := range []int{25, 100, 300} {
		row := map[p2b.Mode]float64{}
		for _, mode := range []p2b.Mode{p2b.Cold, p2b.WarmNonPrivate, p2b.WarmPrivate} {
			sys, err := p2b.NewSystem(p2b.Config{
				Mode:         mode,
				T:            reads,
				P:            0.5,
				K:            1 << 5, // the paper's k = 2^5 panel
				Threshold:    10,
				ReportWindow: 10, // one reporting opportunity per 10 reads
				Workers:      8,
				Seed:         3,
			}, env, nil)
			if err != nil {
				log.Fatal(err)
			}
			train := make([]int, trainN)
			for i := range train {
				train[i] = i
			}
			test := make([]int, n-trainN)
			for i := range test {
				test[i] = trainN + i
			}
			sys.RunUsers(train, true)
			sys.Flush()
			eval := sys.RunUsers(test, false)
			row[mode] = eval.Overall.Mean()
		}
		fmt.Printf("%-10d  %-12.5f  %-16.5f  %-14.5f\n",
			reads, row[p2b.Cold], row[p2b.WarmNonPrivate], row[p2b.WarmPrivate])
	}

	fmt.Println("\nexpected shape: at low interaction counts private and non-private are")
	fmt.Println("close; as local interactions grow the private agents catch up and often")
	fmt.Println("pass the non-private ones (the paper reports a +0.0025 CTR difference).")
	fmt.Printf("privacy: every contribution is one tuple at epsilon = %.4f.\n", p2b.Epsilon(0.5))
}
