module p2b

go 1.24
