package experiments

import (
	"fmt"
	"math"

	"p2b/internal/encoding"
	"p2b/internal/privacy"
	"p2b/internal/rng"
	"p2b/internal/stats"
)

// Figure2 reproduces the paper's encoding illustration: the d=3, q=1
// normalized vector space has exactly 66 grid points (Equation 1), and a
// k-means encoding with k=6 clusters partitions it with a minimum cluster
// size of about 9 — the crowd-blending l of the example. Scale has no
// effect (the space is fixed by d and q).
func Figure2(opts Options) (*Result, error) {
	opts.fill()
	g, err := encoding.NewGridQuantizer(3, 1)
	if err != nil {
		return nil, err
	}
	points := g.EnumerateAll(100)
	km, err := encoding.FitKMeans(points, 6, 100, 1e-9, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	sizes := km.ClusterSizes(points)
	tab := &stats.Table{XLabel: "cluster"}
	s := &stats.Series{Name: "size"}
	for c, n := range sizes {
		s.Append(float64(c), float64(n), 0)
	}
	tab.Series = []*stats.Series{s}
	return &Result{
		Name:        "Figure 2",
		Description: "Encoding of the d=3, q=1 normalized vector space (n=66 grid points) into k=6 clusters.",
		Tables:      []*stats.Table{tab},
		Notes: []string{
			fmt.Sprintf("grid cardinality n = %d (paper: 66)", g.Cardinality()),
			fmt.Sprintf("minimum cluster size l = %d (paper example: 9)", km.MinClusterSize(points)),
		},
	}, nil
}

// Figure3 reproduces the analytic curve of epsilon as a function of the
// participation probability p (Equation 3), plus the delta bound for a few
// crowd sizes. Scale has no effect.
func Figure3(opts Options) (*Result, error) {
	opts.fill()
	eps := &stats.Series{Name: "epsilon"}
	for p := 0.05; p < 0.96; p += 0.05 {
		eps.Append(round2(p), privacy.Epsilon(round2(p)), 0)
	}
	tabEps := &stats.Table{XLabel: "p", Series: []*stats.Series{eps}}

	tabDelta := &stats.Table{XLabel: "l"}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		s := &stats.Series{Name: fmt.Sprintf("delta(p=%.2f)", p)}
		for _, l := range []int{1, 5, 10, 20, 50, 100} {
			s.Append(float64(l), privacy.Delta(l, p, privacy.DefaultOmega), 0)
		}
		tabDelta.Series = append(tabDelta.Series, s)
	}
	return &Result{
		Name:        "Figure 3",
		Description: "Differential privacy epsilon as a function of participation probability p (Equation 3), and the delta bound exp(-l(1-p)^2).",
		Tables:      []*stats.Table{tabEps, tabDelta},
		Notes: []string{
			fmt.Sprintf("epsilon at p=0.5 is %.6f (paper: ~0.693)", privacy.Epsilon(0.5)),
			fmt.Sprintf("p for epsilon=1.0 is %.4f (inverse map)", privacy.ParticipationForEpsilon(1.0)),
		},
	}, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
