// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the ablations called out in DESIGN.md. Each Figure*
// function is self-contained: it builds the workload, runs the three
// regimes (cold / warm-non-private / warm-private) and returns the same
// series the paper plots, as text tables.
//
// Scale semantics: the paper's full populations (up to 10^6 users) are
// reachable but slow; Options.Scale multiplies the population/data sizes,
// with Scale=1 tuned so every figure regenerates in seconds. The per-
// experiment index in DESIGN.md records the scale at which EXPERIMENTS.md
// numbers were produced.
package experiments

import (
	"fmt"
	"strings"

	"p2b/internal/core"
	"p2b/internal/stats"
)

// Options are shared by all experiment runners.
type Options struct {
	// Seed is the root seed; every run with the same seed and scale is
	// reproducible.
	Seed uint64
	// Scale multiplies population sizes. 1 (default) is bench scale;
	// the per-figure doc comments state the factor that reaches the
	// paper's full scale.
	Scale float64
	// Workers bounds simulation concurrency (default 4).
	Workers int
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Seed == 0 {
		o.Seed = 20200302 // MLSys 2020 opening day; any fixed value works
	}
}

func (o Options) scaled(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 1 {
		return 1
	}
	return n
}

// Result is one regenerated figure: a set of text tables (one per panel)
// and free-form notes (headline numbers, drop rates, epsilons).
type Result struct {
	Name        string
	Description string
	Tables      []*stats.Table
	Notes       []string
}

// Render returns the result as human-readable text, the tool's output
// format.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n%s\n", r.Name, r.Description)
	for _, tab := range r.Tables {
		b.WriteString("\n")
		if tab.XLabel != "" {
			fmt.Fprintf(&b, "[%s]\n", tab.XLabel)
		}
		b.WriteString(tab.Render())
	}
	if len(r.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// CSV returns all tables in CSV form, separated by blank lines.
func (r *Result) CSV() string {
	var b strings.Builder
	for i, tab := range r.Tables {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(tab.CSV())
	}
	return b.String()
}

// modes lists the paper's three regimes in presentation order.
var modes = []core.Mode{core.Cold, core.WarmNonPrivate, core.WarmPrivate}

// averageSeries pointwise-averages replica series sharing an X grid. The
// reported uncertainty is the 95% CI of the between-replica spread, which
// captures model-to-model variation that a single run's within-cohort CI
// misses.
func averageSeries(name string, replicas []*stats.Series) *stats.Series {
	out := &stats.Series{Name: name}
	if len(replicas) == 0 {
		return out
	}
	for i := range replicas[0].Points {
		var agg stats.Running
		for _, rep := range replicas {
			agg.Add(rep.Points[i].Y)
		}
		out.Append(replicas[0].Points[i].X, agg.Mean(), agg.CI95())
	}
	return out
}

// Registry maps experiment ids (as accepted by cmd/p2bbench) to runners.
var Registry = map[string]func(Options) (*Result, error){
	"fig2":       Figure2,
	"fig3":       Figure3,
	"fig4":       Figure4,
	"fig5":       Figure5,
	"fig6":       Figure6,
	"fig7":       Figure7,
	"headline":   Headline,
	"ab-encoder": AblationEncoders,
	"ab-p":       AblationParticipation,
	"ab-l":       AblationThreshold,
	"ab-k":       AblationCodeSpace,
	"ab-policy":  AblationPolicies,
	"ab-learner": AblationLearners,

	// Systems experiments (no paper counterpart).
	"http-pipeline": HTTPPipeline,
	"model_path":    ModelPath,
}

// Names returns the registry keys in a stable order.
func Names() []string {
	return []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "headline",
		"ab-encoder", "ab-p", "ab-l", "ab-k", "ab-policy", "ab-learner",
		"http-pipeline", "model_path"}
}
