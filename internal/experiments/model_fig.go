// The model_path experiment: throughput of the fleet model-sync read path.
// Like http-pipeline it reproduces no paper panel — it guards the
// ROADMAP's warm-start scale story by driving GET /server/model on a real
// loopback p2bnode in the three regimes a fleet keeps a node in:
//
//   - cached: full-body GETs at an unchanged model version (steady-state
//     polling fleet) — served from the shared encoded-payload cache;
//   - revalidate: If-None-Match GETs at an unchanged version — answered
//     304 from the version counters alone;
//   - rebuild: every GET preceded by an ingest, so each one pays a real
//     snapshot merge + encode (the worst case the cache amortizes away).
//
// The headline series is the cached-vs-rebuild speedup; the bench gate
// holds it to an absolute floor.
package experiments

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"p2b/internal/bandit"
	"p2b/internal/stats"
	"p2b/internal/transport"
)

// modelPathGet issues one GET of url with the given headers and drains the
// body; it returns the response status and ETag.
func modelPathGet(client *http.Client, url, accept, inm string) (int, string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Accept", accept)
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("ETag"), nil
}

// runModelPhase fires total GETs across workers goroutines and returns
// requests/sec. inm, when non-empty, turns every GET into a revalidation
// that must come back 304; otherwise a 200 with a body is required.
func runModelPhase(client *http.Client, url string, workers, total int, inm string) (float64, error) {
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	wantStatus := http.StatusOK
	if inm != "" {
		wantStatus = http.StatusNotModified
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if next.Add(1) > int64(total) {
					return
				}
				status, _, err := modelPathGet(client, url, transport.ContentTypeModel, inm)
				if err == nil && status != wantStatus {
					err = fmt.Errorf("model_path: GET answered %d, want %d", status, wantStatus)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(total) / elapsed.Seconds(), nil
}

// fetchTabularPayload downloads and decodes one binary tabular model
// payload.
func fetchTabularPayload(client *http.Client, url string) (*bandit.TabularState, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", transport.ContentTypeModel)
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	_, tab, _, err := transport.DecodeModel(body)
	if err != nil {
		return nil, fmt.Errorf("model_path: decoding payload: %w", err)
	}
	return tab, nil
}

// ModelPath measures the model-sync read path over loopback HTTP; see the
// package comment above for the three regimes. Scale 1 runs in a few
// seconds.
func ModelPath(opts Options) (*Result, error) {
	opts.fill()
	const (
		k    = 2048
		arms = 16
	)
	node, err := startPipelineNode(k, arms, 256, 2, opts.Seed)
	if err != nil {
		return nil, err
	}
	defer node.close()
	// A populated model: data in every cell is the worst case for any
	// read path that copies or re-encodes per request.
	batch := make([]transport.Tuple, 4*k)
	for i := range batch {
		batch[i] = transport.Tuple{Code: i % k, Action: i % arms, Reward: 0.5}
	}
	node.srv.Deliver(batch)

	workers := opts.Workers
	client := pipelineHTTPClient(workers)
	url := node.url + "/server/model?kind=tabular"

	cachedN := opts.scaled(3000)
	revalN := opts.scaled(20000)
	rebuildN := opts.scaled(300)

	cachedRPS, err := runModelPhase(client, url, workers, cachedN, "")
	if err != nil {
		return nil, fmt.Errorf("model_path: cached phase: %w", err)
	}
	// The gated speedup ratio compares cached and rebuild GETs at the
	// SAME concurrency (both serial): the rebuild phase must be serial to
	// defeat singleflight sharing, and a concurrent numerator would make
	// the ratio scale with the host's core count instead of with the
	// cache. cached_get_rps above stays concurrent — it is the absolute
	// throughput number, not the portable ratio.
	cachedSerialRPS, err := runModelPhase(client, url, 1, rebuildN, "")
	if err != nil {
		return nil, fmt.Errorf("model_path: serial cached phase: %w", err)
	}
	_, etag, err := modelPathGet(client, url, transport.ContentTypeModel, "")
	if err != nil {
		return nil, err
	}
	revalRPS, err := runModelPhase(client, url, workers, revalN, etag)
	if err != nil {
		return nil, fmt.Errorf("model_path: revalidation phase: %w", err)
	}

	// Rebuild regime: bump the model version before every GET so each one
	// pays a snapshot merge plus an encode. Single-threaded on purpose —
	// concurrent GETs would share rebuilds through the singleflight cache,
	// which is exactly the effect this phase must not benefit from.
	start := time.Now()
	for i := 0; i < rebuildN; i++ {
		node.srv.Deliver(batch[i%len(batch) : i%len(batch)+1])
		status, _, err := modelPathGet(client, url, transport.ContentTypeModel, "")
		if err != nil {
			return nil, fmt.Errorf("model_path: rebuild phase: %w", err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("model_path: rebuild GET answered %d", status)
		}
	}
	rebuildRPS := float64(rebuildN) / time.Since(start).Seconds()

	speedup := 0.0
	if rebuildRPS > 0 {
		speedup = cachedSerialRPS / rebuildRPS
	}

	// Exactness: the cached payload must decode bit-identical to the live
	// snapshot — cached bytes are an optimization, never a staleness bug.
	fetched, err := fetchTabularPayload(client, url)
	if err != nil {
		return nil, err
	}
	identical := reflect.DeepEqual(fetched, node.srv.TabularSnapshot())

	tab := &stats.Table{XLabel: "workers"}
	for _, s := range []struct {
		name string
		y    float64
	}{
		{"cached_get_rps", cachedRPS},
		{"revalidate_304_rps", revalRPS},
		{"rebuild_get_rps", rebuildRPS},
		{"speedup_cached_vs_rebuild", speedup},
	} {
		series := &stats.Series{Name: s.name}
		series.Append(float64(workers), s.y, 0)
		tab.Series = append(tab.Series, series)
	}
	return &Result{
		Name: "model_path",
		Description: "Loopback model-sync read path: cached full-body GETs and 304 revalidations " +
			"vs per-request snapshot rebuilds (requests/sec, higher is better).",
		Tables: []*stats.Table{tab},
		Notes: []string{
			fmt.Sprintf("cached: %d GETs at %.0f req/sec (%d workers; %.0f req/sec serial)", cachedN, cachedRPS, workers, cachedSerialRPS),
			fmt.Sprintf("revalidate: %d conditional GETs at %.0f req/sec (all 304)", revalN, revalRPS),
			fmt.Sprintf("rebuild: %d GETs at %.0f req/sec (version bumped before each)", rebuildN, rebuildRPS),
			fmt.Sprintf("speedup cached vs rebuild (both serial, machine-portable): %.1fx", speedup),
			fmt.Sprintf("cached payload decodes bit-identical to the live snapshot: %v", identical),
		},
	}, nil
}
