package experiments

import (
	"fmt"
	"math"

	"p2b/internal/core"
	"p2b/internal/rng"
	"p2b/internal/stats"
	"p2b/internal/synthetic"
)

// evalOffset keeps evaluation-cohort user ids disjoint from contributors.
const evalOffset = 10_000_000

// populationSweep grows the contributing population to each checkpoint and
// measures an evaluation cohort against the then-current global model. The
// same cohort ids are reused at every checkpoint (evaluation has no side
// effects), so consecutive points differ only through the global model —
// a paired design that keeps the curves smooth at bench scale.
func populationSweep(sys *core.System, checkpoints []int, evalUsers int) *stats.Series {
	s := &stats.Series{Name: sys.Config().Mode.String()}
	done := 0
	for _, u := range checkpoints {
		if u > done {
			sys.RunRange(done, u-done, true)
			done = u
			sys.Flush()
		}
		res := sys.RunRange(evalOffset, evalUsers, false)
		s.Append(float64(u), res.Overall.Mean(), res.Overall.CI95())
	}
	return s
}

// Figure4 reproduces the synthetic population sweeps: average reward of a
// fresh agent as the contributing population U grows, for A = 10, 20 and
// 50 arms (d=10, T=10, k=2^10, p=0.5). The paper sweeps U to 10^6;
// Scale=1 reaches 10^4 and Scale=100 the full 10^6.
func Figure4(opts Options) (*Result, error) {
	opts.fill()
	res := &Result{
		Name:        "Figure 4",
		Description: "Synthetic benchmark: average reward vs user population U, one panel per arm count (d=10, T=10, p=0.5, k=2^10).",
	}
	checkpoints := geometricCheckpoints(100, opts.scaled(10_000), 8)
	for _, arms := range []int{10, 20, 50} {
		env, err := synthetic.New(synthetic.Config{D: 10, Arms: arms, Beta: 0.1, Sigma: 0.1},
			rng.New(opts.Seed).SplitIndex("fig4-env", arms))
		if err != nil {
			return nil, err
		}
		tab := &stats.Table{XLabel: fmt.Sprintf("users (A=%d)", arms)}
		for _, mode := range modes {
			// Average over replicas: a single bandit run's top-arm ranking
			// can flip between checkpoints, and the paper's curves are
			// ensemble behaviour.
			var replicas []*stats.Series
			for rep := 0; rep < 3; rep++ {
				sys, err := core.NewSystem(core.Config{
					Mode:           mode,
					T:              10,
					P:              0.5,
					Alpha:          1,
					K:              1 << 10,
					Threshold:      2,
					PrivateLearner: core.LearnerCentroid,
					Workers:        opts.Workers,
					Seed:           opts.Seed + uint64(arms*10+rep),
				}, env, nil)
				if err != nil {
					return nil, err
				}
				replicas = append(replicas, populationSweep(sys, checkpoints, 300))
			}
			tab.Series = append(tab.Series, averageSeries(mode.String(), replicas))
		}
		res.Tables = append(res.Tables, tab)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"A=%d: expected ordering warm-nonprivate >= warm-private > cold at the largest U", arms))
	}
	return res, nil
}

// Figure5 reproduces the context-dimension sweep: final average reward of a
// fresh agent after U contributors, for d = 6..20 (A=20, T=20, p=0.5).
// The paper uses U=20000; Scale=1 runs U=2000, Scale=10 the full size.
func Figure5(opts Options) (*Result, error) {
	opts.fill()
	users := opts.scaled(2000)
	tab := &stats.Table{XLabel: "context dimension d"}
	series := map[core.Mode]*stats.Series{}
	for _, mode := range modes {
		series[mode] = &stats.Series{Name: mode.String()}
		tab.Series = append(tab.Series, series[mode])
	}
	for d := 6; d <= 20; d += 2 {
		env, err := synthetic.New(synthetic.Config{D: d, Arms: 20, Beta: 0.1, Sigma: 0.1},
			rng.New(opts.Seed).SplitIndex("fig5-env", d))
		if err != nil {
			return nil, err
		}
		for _, mode := range modes {
			var agg stats.Running
			for rep := 0; rep < 3; rep++ {
				sys, err := core.NewSystem(core.Config{
					Mode:           mode,
					T:              20,
					P:              0.5,
					Alpha:          1,
					K:              1 << 10,
					Threshold:      2,
					PrivateLearner: core.LearnerCentroid,
					Workers:        opts.Workers,
					Seed:           opts.Seed + uint64(d*10+rep),
				}, env, nil)
				if err != nil {
					return nil, err
				}
				sys.RunRange(0, users, true)
				sys.Flush()
				eval := sys.RunRange(evalOffset, 300, false)
				agg.Add(eval.Overall.Mean())
			}
			series[mode].Append(float64(d), agg.Mean(), agg.CI95())
		}
	}
	return &Result{
		Name:        "Figure 5",
		Description: fmt.Sprintf("Synthetic benchmark: average reward vs context dimension (U=%d, A=20, T=20).", users),
		Tables:      []*stats.Table{tab},
		Notes: []string{
			"expected shape: reward decreases with d as agents spend longer exploring",
			"warm-private stays competitive with warm-nonprivate, especially at low d",
		},
	}, nil
}

// geometricCheckpoints returns up to maxPoints populations growing
// geometrically from start to end (inclusive).
func geometricCheckpoints(start, end, maxPoints int) []int {
	if end <= start {
		return []int{end}
	}
	ratio := float64(end) / float64(start)
	steps := maxPoints - 1
	var out []int
	prev := 0
	for i := 0; i <= steps; i++ {
		v := int(float64(start) * math.Pow(ratio, float64(i)/float64(steps)))
		if v <= prev {
			v = prev + 1
		}
		out = append(out, v)
		prev = v
	}
	out[len(out)-1] = end
	return out
}
