package experiments

import (
	"fmt"

	"p2b/internal/bandit"
	"p2b/internal/core"
	"p2b/internal/encoding"
	"p2b/internal/privacy"
	"p2b/internal/rng"
	"p2b/internal/stats"
	"p2b/internal/synthetic"
)

// ablationEnv builds the shared synthetic workload the ablations run on.
func ablationEnv(opts Options) (*synthetic.Preference, error) {
	return synthetic.New(synthetic.Config{D: 6, Arms: 10, Beta: 0.1, Sigma: 0.1},
		rng.New(opts.Seed).Split("ablation-env"))
}

// runPrivate builds a WarmPrivate system with the given overrides, runs the
// contributing population and returns the evaluation-cohort mean and CI.
func runPrivate(opts Options, env core.Environment, enc encoding.Encoder,
	over func(*core.Config)) (*core.System, float64, float64, error) {
	cfg := core.Config{
		Mode:      core.WarmPrivate,
		T:         10,
		P:         0.5,
		Alpha:     1,
		K:         64,
		Threshold: 2,
		BatchSize: 256,
		Workers:   opts.Workers,
		Seed:      opts.Seed,
	}
	if over != nil {
		over(&cfg)
	}
	sys, err := core.NewSystem(cfg, env, enc)
	if err != nil {
		return nil, 0, 0, err
	}
	sys.RunRange(0, opts.scaled(4000), true)
	sys.Flush()
	eval := sys.RunRange(evalOffset, 300, false)
	return sys, eval.Overall.Mean(), eval.Overall.CI95(), nil
}

// AblationEncoders compares the encoder families at (approximately) equal
// code-space sizes on the downstream task: the utility of the warm-private
// pipeline using a grid quantizer, Lloyd k-means, mini-batch k-means and
// random-hyperplane LSH.
func AblationEncoders(opts Options) (*Result, error) {
	opts.fill()
	env, err := ablationEnv(opts)
	if err != nil {
		return nil, err
	}
	sample := env.SampleContexts(4096, rng.New(opts.Seed).Split("ab-enc-sample"))

	km, err := encoding.FitKMeans(sample, 64, 50, 1e-6, rng.New(opts.Seed).Split("ab-enc-km"))
	if err != nil {
		return nil, err
	}
	mb, err := encoding.FitMiniBatchKMeans(sample, 64, 64, 300, rng.New(opts.Seed).Split("ab-enc-mb"))
	if err != nil {
		return nil, err
	}
	lsh, err := encoding.NewLSH(6, 6, rng.New(opts.Seed).Split("ab-enc-lsh"))
	if err != nil {
		return nil, err
	}
	grid, err := encoding.NewGridQuantizer(6, 1) // k = C(15,5) = 3003
	if err != nil {
		return nil, err
	}
	encoders := []struct {
		name string
		enc  encoding.Encoder
	}{
		{"kmeans(k=64)", km},
		{"minibatch-kmeans(k=64)", mb},
		{"lsh(k=64)", lsh},
		{fmt.Sprintf("grid(q=1,k=%d)", grid.K()), grid},
	}
	tab := &stats.Table{XLabel: "encoder#"}
	s := &stats.Series{Name: "eval reward"}
	res := &Result{
		Name:        "Ablation: encoder family",
		Description: "Warm-private pipeline utility per encoder (synthetic d=6, A=10, p=0.5).",
	}
	for i, e := range encoders {
		_, mean, ci, err := runPrivate(opts, env, e.enc, nil)
		if err != nil {
			return nil, err
		}
		s.Append(float64(i), mean, ci)
		res.Notes = append(res.Notes, fmt.Sprintf("encoder %d = %s: reward %.5f +- %.5f", i, e.name, mean, ci))
	}
	tab.Series = []*stats.Series{s}
	res.Tables = []*stats.Table{tab}
	return res, nil
}

// AblationParticipation sweeps the participation probability p, showing the
// privacy/utility trade-off: epsilon grows with p while utility saturates.
func AblationParticipation(opts Options) (*Result, error) {
	opts.fill()
	env, err := ablationEnv(opts)
	if err != nil {
		return nil, err
	}
	reward := &stats.Series{Name: "eval reward"}
	eps := &stats.Series{Name: "epsilon"}
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		_, mean, ci, err := runPrivate(opts, env, nil, func(c *core.Config) { c.P = p })
		if err != nil {
			return nil, err
		}
		reward.Append(p, mean, ci)
		eps.Append(p, privacy.Epsilon(p), 0)
	}
	return &Result{
		Name:        "Ablation: participation probability",
		Description: "Utility and epsilon as p varies (synthetic d=6, A=10).",
		Tables:      []*stats.Table{{XLabel: "p", Series: []*stats.Series{reward, eps}}},
	}, nil
}

// AblationThreshold sweeps the shuffler's crowd-blending threshold l,
// reporting the fraction of tuples consumed by thresholding and the
// resulting utility.
func AblationThreshold(opts Options) (*Result, error) {
	opts.fill()
	env, err := ablationEnv(opts)
	if err != nil {
		return nil, err
	}
	reward := &stats.Series{Name: "eval reward"}
	dropped := &stats.Series{Name: "drop fraction"}
	for _, l := range []int{0, 2, 5, 10, 20, 50} {
		sys, mean, ci, err := runPrivate(opts, env, nil, func(c *core.Config) {
			c.Threshold = l
			c.BatchSize = 256
		})
		if err != nil {
			return nil, err
		}
		st := sys.Shuffler().Stats()
		frac := 0.0
		if st.Received > 0 {
			frac = float64(st.Dropped) / float64(st.Received)
		}
		reward.Append(float64(l), mean, ci)
		dropped.Append(float64(l), frac, 0)
	}
	return &Result{
		Name:        "Ablation: shuffler threshold",
		Description: "Utility and thresholding losses as the crowd-blending l grows (synthetic d=6, A=10, batch 256).",
		Tables:      []*stats.Table{{XLabel: "threshold l", Series: []*stats.Series{reward, dropped}}},
	}, nil
}

// AblationCodeSpace sweeps the encoder size k: small k merges unrelated
// contexts, large k fragments the population and slows warm-up — the
// utility/privacy balance the paper discusses in §3.2.
func AblationCodeSpace(opts Options) (*Result, error) {
	opts.fill()
	env, err := ablationEnv(opts)
	if err != nil {
		return nil, err
	}
	reward := &stats.Series{Name: "eval reward"}
	for _, k := range []int{8, 16, 32, 64, 128, 256, 512, 1024} {
		_, mean, ci, err := runPrivate(opts, env, nil, func(c *core.Config) { c.K = k })
		if err != nil {
			return nil, err
		}
		reward.Append(float64(k), mean, ci)
	}
	return &Result{
		Name:        "Ablation: code-space size",
		Description: "Warm-private utility as the k-means code space grows (synthetic d=6, A=10).",
		Tables:      []*stats.Table{{XLabel: "k", Series: []*stats.Series{reward}}},
	}, nil
}

// AblationLearners compares the two warm-private hypothesis classes — the
// per-(code, action) tabular learner and the centroid LinUCB — across code
// space sizes on the synthetic workload. It quantifies the trade DESIGN.md
// describes: tabular representation power vs centroid sample efficiency.
func AblationLearners(opts Options) (*Result, error) {
	opts.fill()
	env, err := ablationEnv(opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:        "Ablation: private learner",
		Description: "Warm-private utility per hypothesis class and code-space size (synthetic d=6, A=10, p=0.5).",
	}
	tab := &stats.Table{XLabel: "k"}
	for _, learner := range []core.Learner{core.LearnerTabular, core.LearnerCentroid} {
		s := &stats.Series{Name: learner.String()}
		for _, k := range []int{16, 64, 256, 1024} {
			_, mean, ci, err := runPrivate(opts, env, nil, func(c *core.Config) {
				c.K = k
				c.PrivateLearner = learner
			})
			if err != nil {
				return nil, err
			}
			s.Append(float64(k), mean, ci)
		}
		tab.Series = append(tab.Series, s)
	}
	res.Tables = []*stats.Table{tab}
	res.Notes = append(res.Notes,
		"expected: centroid dominates at large k (pooled linear model); tabular catches up as k shrinks")
	return res, nil
}

// AblationPolicies compares local learners over encoded contexts without
// any data sharing: which bandit algorithm makes the best on-device
// consumer of the encoder's codes (the paper's future-work question). All
// policies see identical context/reward streams.
func AblationPolicies(opts Options) (*Result, error) {
	opts.fill()
	env, err := ablationEnv(opts)
	if err != nil {
		return nil, err
	}
	root := rng.New(opts.Seed)
	enc, err := encoding.FitKMeans(
		env.SampleContexts(4096, root.Split("ab-pol-sample")),
		64, 50, 1e-6, root.Split("ab-pol-fit"))
	if err != nil {
		return nil, err
	}
	factories := []struct {
		name string
		mk   func(r *rng.Rand) bandit.CodePolicy
	}{
		{"tabular-ucb", func(r *rng.Rand) bandit.CodePolicy { return bandit.NewTabularUCB(enc.K(), env.Arms(), 1, r) }},
		{"eps-greedy(0.1)", func(r *rng.Rand) bandit.CodePolicy { return bandit.NewEpsilonGreedy(enc.K(), env.Arms(), 0.1, r) }},
		{"thompson", func(r *rng.Rand) bandit.CodePolicy { return bandit.NewThompson(enc.K(), env.Arms(), r) }},
		{"ucb1(context-free)", func(r *rng.Rand) bandit.CodePolicy { return bandit.NewUCB1(env.Arms(), r) }},
		{"random", func(r *rng.Rand) bandit.CodePolicy { return bandit.NewRandom(env.Arms(), r) }},
	}
	const T = 60
	users := opts.scaled(500)
	tab := &stats.Table{XLabel: "policy#"}
	s := &stats.Series{Name: "mean reward"}
	res := &Result{
		Name:        "Ablation: local policy",
		Description: fmt.Sprintf("Standalone local learners on encoded contexts (k=64, T=%d, %d users).", T, users),
	}
	for pi, f := range factories {
		var agg stats.Running
		for u := 0; u < users; u++ {
			ur := root.SplitIndex(fmt.Sprintf("ab-pol-user-%d", pi), u)
			session := env.User(u, ur.Split("session"))
			policy := f.mk(ur.Split("policy"))
			for t := 0; t < T; t++ {
				x := session.Context(t)
				y := enc.Encode(x)
				if policy.Codes() == 1 {
					y = 0
				}
				a := policy.SelectCode(y)
				rw := session.Reward(t, a)
				policy.UpdateCode(y, a, rw)
				agg.Add(rw)
			}
		}
		s.Append(float64(pi), agg.Mean(), agg.CI95())
		res.Notes = append(res.Notes, fmt.Sprintf("policy %d = %s: reward %.5f", pi, f.name, agg.Mean()))
	}
	tab.Series = []*stats.Series{s}
	res.Tables = []*stats.Table{tab}
	return res, nil
}
