// The http-pipeline experiment: throughput of the distributed ingestion
// path. Unlike the figures, this one reproduces no paper panel — it guards
// the ROADMAP's scale story by driving a real p2bnode over loopback HTTP
// and measuring reports/sec through the per-envelope route versus the
// batched wire protocol, plus an exactness check that both routes leave
// the server in bit-identical state.
package experiments

import (
	"fmt"
	"net"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"p2b/internal/httpapi"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/stats"
	"p2b/internal/transport"
)

// pipelineNode is one loopback p2bnode: shuffler + server behind a real
// TCP listener, so the benchmark pays genuine HTTP costs.
type pipelineNode struct {
	srv  *server.Server
	shuf *shuffler.Shuffler
	hs   *http.Server
	url  string
}

func startPipelineNode(k, arms, batch, threshold int, seed uint64) (*pipelineNode, error) {
	srv := server.New(server.Config{K: k, Arms: arms, D: 3, Alpha: 1, Seed: seed})
	shuf := shuffler.New(shuffler.Config{BatchSize: batch, Threshold: threshold}, srv, rng.New(seed).Split("shuffler"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("http-pipeline: listen: %w", err)
	}
	n := &pipelineNode{
		srv:  srv,
		shuf: shuf,
		hs:   &http.Server{Handler: httpapi.NewNodeHandler(shuf, srv)},
		url:  "http://" + ln.Addr().String(),
	}
	go func() { _ = n.hs.Serve(ln) }()
	return n, nil
}

func (n *pipelineNode) close() { _ = n.hs.Close() }

// pipelineHTTPClient returns an http.Client whose connection pool does not
// throttle the benchmark: the default Transport keeps only two idle
// connections per host, which would bill connection churn — not protocol
// cost — to the per-envelope path.
func pipelineHTTPClient(workers int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        4 * workers,
		MaxIdleConnsPerHost: 4 * workers,
	}
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// pipelineTuple deterministically generates the i-th report of worker w.
func pipelineTuple(r *rng.Rand, k, arms int) transport.Tuple {
	return transport.Tuple{Code: r.IntN(k), Action: r.IntN(arms), Reward: r.Float64()}
}

// HTTPPipeline measures loopback ingestion throughput: Options.Workers
// concurrent agents pushing reports through (a) one POST /shuffler/report
// per envelope and (b) the batched POST /shuffler/reports wire protocol,
// then verifies on a fresh pair of nodes that the two routes produce
// bit-identical tabular state. Scale 1 runs in a few seconds; the batched
// path gets proportionally more traffic because it is expected to be an
// order of magnitude faster.
func HTTPPipeline(opts Options) (*Result, error) {
	opts.fill()
	const (
		k         = 64
		arms      = 8
		threshold = 2
		shufBatch = 256
	)
	singleN := opts.scaled(4000)
	batchedN := opts.scaled(80000)
	workers := opts.Workers
	httpClient := pipelineHTTPClient(workers)

	// Phase (a): one envelope per POST.
	nodeA, err := startPipelineNode(k, arms, shufBatch, threshold, opts.Seed)
	if err != nil {
		return nil, err
	}
	singleRPS, err := runPipelinePhase(workers, singleN, func(w int) (func(transport.Envelope) error, func() error) {
		client := httpapi.NewNodeClient(nodeA.url)
		client.HTTP = httpClient
		return client.Report, func() error { return nil }
	}, opts, k, arms)
	nodeA.close()
	if err != nil {
		return nil, fmt.Errorf("http-pipeline: single-envelope phase: %w", err)
	}

	// Phase (b): the batched wire protocol.
	nodeB, err := startPipelineNode(k, arms, shufBatch, threshold, opts.Seed)
	if err != nil {
		return nil, err
	}
	batchedRPS, err := runPipelinePhase(workers, batchedN, func(w int) (func(transport.Envelope) error, func() error) {
		client := httpapi.NewNodeClient(nodeB.url)
		client.HTTP = httpClient
		bc := httpapi.NewBatchingClient(client, httpapi.BatchingConfig{
			MaxBatch: 256,
			MaxAge:   50 * time.Millisecond,
			Seed:     opts.Seed + uint64(w) + 1,
		})
		return bc.Report, bc.Close
	}, opts, k, arms)
	ingestedB := nodeB.srv.Stats().TuplesIngested
	nodeB.close()
	if err != nil {
		return nil, fmt.Errorf("http-pipeline: batched phase: %w", err)
	}

	// Exactness: the batch route must leave the server in bit-identical
	// state to the per-envelope route for the same report sequence.
	identical, err := pipelineRoutesAgree(opts, k, arms, threshold)
	if err != nil {
		return nil, err
	}

	speedup := 0.0
	if singleRPS > 0 {
		speedup = batchedRPS / singleRPS
	}
	tab := &stats.Table{XLabel: "workers"}
	single := &stats.Series{Name: "single_envelope_rps"}
	single.Append(float64(workers), singleRPS, 0)
	batched := &stats.Series{Name: "batched_rps"}
	batched.Append(float64(workers), batchedRPS, 0)
	ratio := &stats.Series{Name: "speedup_batched_vs_single"}
	ratio.Append(float64(workers), speedup, 0)
	tab.Series = []*stats.Series{single, batched, ratio}

	return &Result{
		Name: "http-pipeline",
		Description: "Loopback distributed ingestion throughput: per-envelope POSTs vs the " +
			"batched binary wire protocol (reports/sec, higher is better).",
		Tables: []*stats.Table{tab},
		Notes: []string{
			fmt.Sprintf("single-envelope: %d reports at %.0f reports/sec", singleN, singleRPS),
			fmt.Sprintf("batched: %d reports at %.0f reports/sec (%d ingested post-threshold)", batchedN, batchedRPS, ingestedB),
			fmt.Sprintf("speedup: %.1fx", speedup),
			fmt.Sprintf("batched and per-envelope routes bit-identical: %v", identical),
		},
	}, nil
}

// runPipelinePhase pushes total reports through `workers` goroutines, each
// reporting via the function `mk` returns for it, and returns reports/sec.
func runPipelinePhase(workers, total int, mk func(w int) (func(transport.Envelope) error, func() error), opts Options, k, arms int) (float64, error) {
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			report, finish := mk(w)
			r := rng.New(opts.Seed).SplitIndex("pipeline-worker", w)
			for {
				i := next.Add(1)
				if i > int64(total) {
					break
				}
				e := transport.Envelope{
					Meta:  transport.Metadata{DeviceID: fmt.Sprintf("device-%06d", i), SentAt: i},
					Tuple: pipelineTuple(r, k, arms),
				}
				if err := report(e); err != nil {
					firstErr.CompareAndSwap(nil, err)
					break
				}
			}
			if err := finish(); err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(total) / elapsed.Seconds(), nil
}

// pipelineRoutesAgree replays one deterministic report stream through both
// ingestion routes on fresh nodes and compares the resulting tabular
// snapshots bit for bit.
func pipelineRoutesAgree(opts Options, k, arms, threshold int) (bool, error) {
	const shufBatch = 32
	n := opts.scaled(600)
	r := rng.New(opts.Seed).Split("pipeline-exactness")
	envs := make([]transport.Envelope, n)
	for i := range envs {
		envs[i] = transport.Envelope{
			Meta:  transport.Metadata{DeviceID: fmt.Sprintf("device-%06d", i), SentAt: int64(i)},
			Tuple: pipelineTuple(r, k, arms),
		}
	}

	nodeA, err := startPipelineNode(k, arms, shufBatch, threshold, opts.Seed+101)
	if err != nil {
		return false, err
	}
	defer nodeA.close()
	clientA := httpapi.NewNodeClient(nodeA.url)
	for i := range envs {
		if err := clientA.Report(envs[i]); err != nil {
			return false, fmt.Errorf("http-pipeline: exactness single route: %w", err)
		}
	}
	if err := clientA.Flush(); err != nil {
		return false, err
	}

	nodeB, err := startPipelineNode(k, arms, shufBatch, threshold, opts.Seed+101)
	if err != nil {
		return false, err
	}
	defer nodeB.close()
	clientB := httpapi.NewNodeClient(nodeB.url)
	// Ship in several batch POSTs to exercise chunked submission too.
	for at := 0; at < len(envs); at += 100 {
		end := min(at+100, len(envs))
		if _, err := clientB.ReportBatch(envs[at:end]); err != nil {
			return false, fmt.Errorf("http-pipeline: exactness batch route: %w", err)
		}
	}
	if err := clientB.Flush(); err != nil {
		return false, err
	}

	return reflect.DeepEqual(nodeA.srv.TabularSnapshot(), nodeB.srv.TabularSnapshot()), nil
}
