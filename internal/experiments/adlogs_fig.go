package experiments

import (
	"fmt"

	"p2b/internal/adlogs"
	"p2b/internal/core"
	"p2b/internal/rng"
	"p2b/internal/stats"
)

// Figure7 reproduces the online-advertising CTR curves on the Criteo-shaped
// log: d=10 numeric context, A=40 hashed product categories, shuffler
// threshold 10, one panel per encoder size k = 2^5 and 2^7. CTR is the mean
// reward (1 only when the proposal matches a clicked logged action) of
// held-out agents as a function of their local interaction count. The paper
// runs 3000 agents with 300 interactions each; Scale=1 runs 300 agents and
// Scale=10 the full population.
func Figure7(opts Options) (*Result, error) {
	opts.fill()
	agents := opts.scaled(600)
	perAgent := 300
	log, err := adlogs.Generate(adlogs.CriteoLike(agents*perAgent*11/10), // headroom for top-K discards
		rng.New(opts.Seed).Split("fig7-log"))
	if err != nil {
		return nil, err
	}
	env, err := adlogs.NewEnv(log, perAgent)
	if err != nil {
		return nil, err
	}
	if env.Agents() < agents {
		agents = env.Agents()
	}
	trainN := agents * 70 / 100
	trainIDs := idRange(0, trainN)
	testIDs := idRange(trainN, agents-trainN)
	grid := []int{10, 25, 50, 100, 200, 300}

	res := &Result{
		Name: "Figure 7",
		Description: fmt.Sprintf(
			"Online advertising: CTR vs local interactions on a Criteo-shaped log (d=10, A=40, %d agents, threshold 10).", agents),
	}
	for _, kbits := range []int{5, 7} {
		tab := &stats.Table{XLabel: fmt.Sprintf("local interactions (k=2^%d)", kbits)}
		series := map[core.Mode]*stats.Series{}
		for _, mode := range modes {
			series[mode] = &stats.Series{Name: mode.String()}
			tab.Series = append(tab.Series, series[mode])
		}
		for _, n := range grid {
			for _, mode := range modes {
				sys, err := core.NewSystem(core.Config{
					Mode:         mode,
					T:            n,
					P:            0.5,
					Alpha:        1,
					K:            1 << kbits,
					Threshold:    10,
					ReportWindow: 10,
					Workers:      opts.Workers,
					Seed:         opts.Seed + uint64(kbits*10000+n),
				}, env, nil)
				if err != nil {
					return nil, err
				}
				sys.RunUsers(trainIDs, true)
				sys.Flush()
				eval := sys.RunUsers(testIDs, false)
				series[mode].Append(float64(n), eval.Overall.Mean(), eval.Overall.CI95())
			}
		}
		res.Tables = append(res.Tables, tab)
		np, _ := series[core.WarmNonPrivate].YAt(float64(grid[len(grid)-1]))
		pv, _ := series[core.WarmPrivate].YAt(float64(grid[len(grid)-1]))
		res.Notes = append(res.Notes, fmt.Sprintf(
			"k=2^%d: private minus non-private CTR at n=%d is %+.4f (paper: about +0.0025 in favour of private)",
			kbits, grid[len(grid)-1], pv-np))
	}
	res.Notes = append(res.Notes, fmt.Sprintf("logging-policy CTR of the generated stream: %.4f", log.CTR()))
	return res, nil
}

// Headline aggregates the numbers quoted in the paper's abstract and
// conclusion: epsilon at p=0.5, the multi-label accuracy gaps, and the
// advertising CTR difference. It reuses Figure6 and Figure7 at the given
// scale.
func Headline(opts Options) (*Result, error) {
	opts.fill()
	fig6, err := Figure6(opts)
	if err != nil {
		return nil, err
	}
	fig7, err := Figure7(opts)
	if err != nil {
		return nil, err
	}
	fig3, err := Figure3(opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:        "Headline numbers",
		Description: "The abstract's quantitative claims, recomputed on this build.",
	}
	res.Notes = append(res.Notes, fig3.Notes...)
	res.Notes = append(res.Notes, fig6.Notes...)
	res.Notes = append(res.Notes, fig7.Notes...)
	return res, nil
}
