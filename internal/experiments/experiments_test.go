package experiments

import (
	"strings"
	"testing"

	"p2b/internal/core"
)

// tiny returns options that keep smoke tests fast.
func tiny() Options { return Options{Seed: 7, Scale: 0.02, Workers: 4} }

func TestOptionsFill(t *testing.T) {
	var o Options
	o.fill()
	if o.Scale != 1 || o.Workers != 4 || o.Seed == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	if o.scaled(100) != 100 {
		t.Fatalf("scaled(100) = %d", o.scaled(100))
	}
	small := Options{Scale: 0.001}
	small.fill()
	if small.scaled(100) != 1 {
		t.Fatal("scaled must clamp to 1")
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, name := range Names() {
		if Registry[name] == nil {
			t.Fatalf("experiment %q missing from registry", name)
		}
	}
	if len(Names()) != len(Registry) {
		t.Fatalf("Names() lists %d, registry has %d", len(Names()), len(Registry))
	}
}

func TestFigure2MatchesPaperConstants(t *testing.T) {
	res, err := Figure2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "n = 66") {
		t.Fatalf("cardinality note missing:\n%s", out)
	}
	// 66 points in 6 clusters must put at least 6 in the smallest cluster
	// only if perfectly balanced; assert a sane positive minimum instead.
	if !strings.Contains(out, "minimum cluster size l =") {
		t.Fatalf("cluster note missing:\n%s", out)
	}
}

func TestFigure3Epsilons(t *testing.T) {
	res, err := Figure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	eps := res.Tables[0].Series[0]
	// Monotone increasing in p.
	for i := 1; i < len(eps.Points); i++ {
		if eps.Points[i].Y <= eps.Points[i-1].Y {
			t.Fatalf("epsilon not increasing at %v", eps.Points[i].X)
		}
	}
	if v, ok := eps.YAt(0.5); !ok || v < 0.69 || v > 0.70 {
		t.Fatalf("epsilon(0.5) = %v, want ~0.693", v)
	}
	// Delta table: decreasing in l for each p.
	for _, s := range res.Tables[1].Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y >= s.Points[i-1].Y {
				t.Fatalf("delta not decreasing for %s", s.Name)
			}
		}
	}
}

func TestFigure4SmokeShape(t *testing.T) {
	res, err := Figure4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("expected 3 panels, got %d", len(res.Tables))
	}
	for _, tab := range res.Tables {
		if len(tab.Series) != 3 {
			t.Fatalf("expected 3 curves, got %d", len(tab.Series))
		}
		for _, s := range tab.Series {
			if len(s.Points) == 0 {
				t.Fatalf("series %s empty", s.Name)
			}
			for _, p := range s.Points {
				// Mean rewards live in [0, beta] up to noise; sampling
				// error can dip a cohort mean slightly below zero.
				if p.Y < -0.05 || p.Y > 0.2 {
					t.Fatalf("reward %v outside plausible range", p.Y)
				}
			}
		}
	}
}

func TestFigure5SmokeShape(t *testing.T) {
	res, err := Figure5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Series) != 3 {
		t.Fatalf("expected 3 curves")
	}
	for _, s := range tab.Series {
		if len(s.Points) != 8 { // d = 6, 8, ..., 20
			t.Fatalf("series %s has %d points, want 8", s.Name, len(s.Points))
		}
	}
}

func TestFigure6SmokeShape(t *testing.T) {
	res, err := Figure6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("expected 2 datasets, got %d", len(res.Tables))
	}
	for _, tab := range res.Tables {
		for _, s := range tab.Series {
			if len(s.Points) != 5 {
				t.Fatalf("series %s has %d points, want 5", s.Name, len(s.Points))
			}
			// Accuracy should not collapse from n=5 to n=100 for warm
			// modes. The smoke scale uses tiny evaluation cohorts, so
			// allow generous sampling noise; the scale-1 run in
			// EXPERIMENTS.md checks the real monotonicity.
			if s.Name != core.Cold.String() {
				first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
				if last < first-0.15 {
					t.Fatalf("series %s regressed: %v -> %v", s.Name, first, last)
				}
			}
		}
	}
	if len(res.Notes) < 2 {
		t.Fatal("headline gap notes missing")
	}
}

func TestFigure7SmokeShape(t *testing.T) {
	res, err := Figure7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("expected 2 panels (k=2^5, 2^7), got %d", len(res.Tables))
	}
	for _, tab := range res.Tables {
		if len(tab.Series) != 3 {
			t.Fatal("expected 3 curves")
		}
		for _, s := range tab.Series {
			if len(s.Points) != 6 {
				t.Fatalf("series %s has %d points, want 6", s.Name, len(s.Points))
			}
		}
	}
}

func TestHeadlineAggregates(t *testing.T) {
	res, err := Headline(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, needle := range []string{"epsilon at p=0.5", "mediamill-like", "k=2^5"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("headline missing %q:\n%s", needle, out)
		}
	}
}

func TestAblationEncodersSmoke(t *testing.T) {
	res, err := AblationEncoders(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) != 4 {
		t.Fatalf("expected 4 encoder notes, got %d", len(res.Notes))
	}
}

func TestAblationParticipationSmoke(t *testing.T) {
	res, err := AblationParticipation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	eps := res.Tables[0].Series[1]
	for i := 1; i < len(eps.Points); i++ {
		if eps.Points[i].Y <= eps.Points[i-1].Y {
			t.Fatal("epsilon column must increase with p")
		}
	}
}

func TestAblationThresholdSmoke(t *testing.T) {
	res, err := AblationThreshold(tiny())
	if err != nil {
		t.Fatal(err)
	}
	drop := res.Tables[0].Series[1]
	// Drop fraction is non-decreasing in l.
	for i := 1; i < len(drop.Points); i++ {
		if drop.Points[i].Y < drop.Points[i-1].Y-1e-9 {
			t.Fatalf("drop fraction decreased with larger threshold: %+v", drop.Points)
		}
	}
	if drop.Points[0].Y != 0 {
		t.Fatalf("threshold 0 must drop nothing, got %v", drop.Points[0].Y)
	}
}

func TestAblationCodeSpaceSmoke(t *testing.T) {
	res, err := AblationCodeSpace(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Series[0].Points) != 8 {
		t.Fatal("expected 8 k values")
	}
}

func TestAblationLearnersSmoke(t *testing.T) {
	res, err := AblationLearners(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Series) != 2 {
		t.Fatalf("expected 2 learner series, got %d", len(tab.Series))
	}
	for _, s := range tab.Series {
		if len(s.Points) != 4 {
			t.Fatalf("series %s has %d points, want 4", s.Name, len(s.Points))
		}
	}
}

func TestAblationPoliciesOrdering(t *testing.T) {
	res, err := AblationPolicies(tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Tables[0].Series[0]
	// Learning policies (index 0-3) must beat random (index 4).
	random := s.Points[4].Y
	tabular := s.Points[0].Y
	if tabular <= random {
		t.Fatalf("tabular UCB %.5f should beat random %.5f", tabular, random)
	}
}

func TestResultRenderAndCSV(t *testing.T) {
	res, err := Figure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "== Figure 3 ==") {
		t.Fatal("render header missing")
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "p,epsilon") {
		t.Fatalf("CSV header wrong: %q", csv[:40])
	}
}

func TestGeometricCheckpoints(t *testing.T) {
	cps := geometricCheckpoints(100, 10000, 5)
	if len(cps) != 5 {
		t.Fatalf("got %d checkpoints", len(cps))
	}
	if cps[0] != 100 || cps[len(cps)-1] != 10000 {
		t.Fatalf("endpoints wrong: %v", cps)
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("not increasing: %v", cps)
		}
	}
	// Degenerate range collapses to the endpoint.
	if got := geometricCheckpoints(100, 50, 5); len(got) != 1 || got[0] != 50 {
		t.Fatalf("degenerate range: %v", got)
	}
}

func TestHTTPPipelineSmoke(t *testing.T) {
	res, err := HTTPPipeline(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Series) != 3 {
		t.Fatalf("expected 3 series, got %d", len(tab.Series))
	}
	for _, s := range tab.Series[:2] {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Fatalf("series %s has no positive throughput: %+v", s.Name, s.Points)
		}
	}
	// Throughput at smoke scale is too noisy to gate on, but correctness
	// is not: both routes must leave the server in bit-identical state.
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "bit-identical: true") {
			found = true
		}
		if strings.Contains(n, "bit-identical: false") {
			t.Fatalf("routes diverged: %v", res.Notes)
		}
	}
	if !found {
		t.Fatalf("exactness note missing: %v", res.Notes)
	}
}
