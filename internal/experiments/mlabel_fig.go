package experiments

import (
	"fmt"

	"p2b/internal/core"
	"p2b/internal/mlabel"
	"p2b/internal/rng"
	"p2b/internal/stats"
)

// Figure6 reproduces the multi-label classification accuracy curves: for
// MediaMill-shaped (d=20, A=40) and TextMining-shaped (d=20, A=20) data,
// each agent holds up to 100 samples, 70% of agents contribute and accuracy
// is the mean reward of the remaining 30% as a function of how many local
// interactions every agent has. Scale=1 uses 6000/4000 instances; Scale=7
// reaches the papers' dataset sizes (43,907 / 28,596).
func Figure6(opts Options) (*Result, error) {
	opts.fill()
	res := &Result{
		Name:        "Figure 6",
		Description: "Multi-label accuracy vs local interactions (70% of agents contribute, accuracy on the held-out 30%, k=2^5).",
	}
	type dataset struct {
		name string
		cfg  mlabel.Config
	}
	sets := []dataset{
		{"mediamill-like", mlabel.MediaMillLike(opts.scaled(12000))},
		{"textmining-like", mlabel.TextMiningLike(opts.scaled(8000))},
	}
	grid := []int{5, 10, 25, 50, 100}
	for si, set := range sets {
		ds, err := mlabel.Generate(set.cfg, rng.New(opts.Seed).SplitIndex("fig6-data", si))
		if err != nil {
			return nil, err
		}
		// Up to 100 samples per agent; at tiny scales keep at least 10
		// agents so the 70/30 split stays meaningful.
		perAgent := 100
		agents := ds.N() / perAgent
		if agents < 10 {
			agents = 10
			perAgent = ds.N() / agents
		}
		parts, err := ds.Partition(agents, perAgent, rng.New(opts.Seed).SplitIndex("fig6-part", si))
		if err != nil {
			return nil, err
		}
		env, err := mlabel.NewEnv(ds, parts)
		if err != nil {
			return nil, err
		}
		trainN := agents * 70 / 100
		trainIDs := idRange(0, trainN)
		testIDs := idRange(trainN, agents-trainN)

		tab := &stats.Table{XLabel: fmt.Sprintf("local interactions (%s)", set.name)}
		series := map[core.Mode]*stats.Series{}
		for _, mode := range modes {
			series[mode] = &stats.Series{Name: mode.String()}
			tab.Series = append(tab.Series, series[mode])
		}
		for _, n := range grid {
			for _, mode := range modes {
				sys, err := core.NewSystem(core.Config{
					Mode:         mode,
					T:            n,
					P:            0.5,
					Alpha:        1,
					K:            1 << 5,
					Threshold:    2,
					ReportWindow: 10,
					Workers:      opts.Workers,
					Seed:         opts.Seed + uint64(si*1000+n),
				}, env, nil)
				if err != nil {
					return nil, err
				}
				sys.RunUsers(trainIDs, true)
				sys.Flush()
				eval := sys.RunUsers(testIDs, false)
				series[mode].Append(float64(n), eval.Overall.Mean(), eval.Overall.CI95())
			}
		}
		res.Tables = append(res.Tables, tab)
		// Headline gap at the largest interaction count.
		np, _ := series[core.WarmNonPrivate].YAt(float64(grid[len(grid)-1]))
		pv, _ := series[core.WarmPrivate].YAt(float64(grid[len(grid)-1]))
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: non-private minus private accuracy at n=%d is %+.4f (paper: ~0.026 MediaMill / ~0.036 TextMining)",
			set.name, grid[len(grid)-1], np-pv))
	}
	return res, nil
}

func idRange(start, n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = start + i
	}
	return ids
}
