// Package synthetic implements the paper's synthetic preference benchmark
// (§5.1): a stochastic reward function F that relates context vectors to
// the probability of a proposed action being rewarded, defined as the
// scaled softmax of a matrix-vector product with a random weight matrix W:
//
//	mean reward of arm a at context x = beta * softmax(W x)_a
//	observed reward                   = mean + N(0, sigma^2), clipped to [0, 1]
//
// Each simulated user carries a preference vector drawn uniformly from the
// probability simplex, which is the context its local agent observes.
package synthetic

import (
	"fmt"
	"math"

	"p2b/internal/core"
	"p2b/internal/rng"
)

// Preference implements the core environment contract.
var _ core.Environment = (*Preference)(nil)

// Preference is the synthetic benchmark environment. It satisfies
// core.Environment.
type Preference struct {
	d     int
	arms  int
	beta  float64
	sigma float64
	w     [][]float64 // arms x d
}

// DefaultSharpness is the default softmax logit scale. The paper leaves
// the variance of W unspecified; with unit-variance weights and simplex
// contexts the logits stay within ~±0.5 and the softmax is almost flat,
// which would make every regime in Figure 4 indistinguishable under the
// sigma = 0.1 reward noise. A logit scale of 4 concentrates roughly a third
// to half of the preference mass on the best action, giving the visible
// more-than-2x warm/cold separation the paper reports.
const DefaultSharpness = 4.0

// Config holds the benchmark parameters; the paper's defaults are
// Beta = 0.1 and Sigma2 = 0.01.
type Config struct {
	D     int     // context dimension
	Arms  int     // number of actions
	Beta  float64 // reward scaling factor in [0, 1]
	Sigma float64 // reward noise standard deviation
	// Sharpness scales the softmax logits (equivalently, the standard
	// deviation of W's entries). 0 means DefaultSharpness.
	Sharpness float64
}

// New creates a benchmark with weight matrix entries drawn i.i.d. from
// N(0, Sharpness^2) using r.
func New(cfg Config, r *rng.Rand) (*Preference, error) {
	if cfg.D < 1 || cfg.Arms < 1 {
		return nil, fmt.Errorf("synthetic: invalid shape d=%d arms=%d", cfg.D, cfg.Arms)
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("synthetic: beta %v outside [0, 1]", cfg.Beta)
	}
	if cfg.Sigma < 0 {
		return nil, fmt.Errorf("synthetic: sigma %v negative", cfg.Sigma)
	}
	if cfg.Sharpness < 0 {
		return nil, fmt.Errorf("synthetic: sharpness %v negative", cfg.Sharpness)
	}
	if cfg.Sharpness == 0 {
		cfg.Sharpness = DefaultSharpness
	}
	p := &Preference{d: cfg.D, arms: cfg.Arms, beta: cfg.Beta, sigma: cfg.Sigma}
	p.w = make([][]float64, cfg.Arms)
	for a := range p.w {
		p.w[a] = r.NormVec(cfg.D, cfg.Sharpness)
	}
	return p, nil
}

// Dim returns the context dimension.
func (p *Preference) Dim() int { return p.d }

// Arms returns the number of actions.
func (p *Preference) Arms() int { return p.arms }

// Softmax returns softmax(W x), the preference profile over actions for
// context x.
func (p *Preference) Softmax(x []float64) []float64 {
	if len(x) != p.d {
		panic(fmt.Sprintf("synthetic: context dimension %d, want %d", len(x), p.d))
	}
	logits := make([]float64, p.arms)
	maxLogit := math.Inf(-1)
	for a, w := range p.w {
		s := 0.0
		for i, v := range w {
			s += v * x[i]
		}
		logits[a] = s
		if s > maxLogit {
			maxLogit = s
		}
	}
	total := 0.0
	for a := range logits {
		logits[a] = math.Exp(logits[a] - maxLogit)
		total += logits[a]
	}
	for a := range logits {
		logits[a] /= total
	}
	return logits
}

// Mean returns the expected reward of arm a at context x,
// beta * softmax(Wx)_a.
func (p *Preference) Mean(x []float64, a int) float64 {
	return p.beta * p.Softmax(x)[a]
}

// BestArm returns the arm with the highest expected reward at x.
func (p *Preference) BestArm(x []float64) int {
	sm := p.Softmax(x)
	best := 0
	for a := 1; a < p.arms; a++ {
		if sm[a] > sm[best] {
			best = a
		}
	}
	return best
}

// SampleContexts draws n user preference vectors uniformly from the
// simplex — the public sample the encoder is fitted on.
func (p *Preference) SampleContexts(n int, r *rng.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = r.Simplex(p.d)
	}
	return out
}

// User creates the session of one simulated user: a fixed preference
// vector (the user's interests) observed as the context of every local
// interaction, with independent reward noise per interaction.
func (p *Preference) User(id int, r *rng.Rand) core.UserSession {
	return UserSession{
		env: p,
		x:   r.Split("preferences").Simplex(p.d),
		r:   r.Split("noise"),
	}
}

// UserSession is one synthetic user's interaction stream.
type UserSession struct {
	env *Preference
	x   []float64
	r   *rng.Rand
}

// Context returns the user's preference vector (constant across t).
func (u UserSession) Context(t int) []float64 { return u.x }

// Reward returns beta * softmax(Wx)_a + Gaussian noise. The value is not
// clipped: with beta = 0.1 and sigma = 0.1 the noise routinely dips below
// zero, and clipping would add an asymmetric offset (~E[max(0, N(0,s))])
// that buries the tiny between-arm signal the benchmark is about. The
// paper's formula r = beta*f(x) + z likewise produces values outside [0, 1].
func (u UserSession) Reward(t, action int) float64 {
	return u.env.Mean(u.x, action) + u.r.Norm(0, u.env.sigma)
}
