package synthetic

import (
	"math"
	"testing"

	"p2b/internal/rng"
)

func newBench(t *testing.T, d, arms int) *Preference {
	t.Helper()
	p, err := New(Config{D: d, Arms: arms, Beta: 0.1, Sigma: 0.1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	r := rng.New(1)
	cases := []Config{
		{D: 0, Arms: 2, Beta: 0.1},
		{D: 2, Arms: 0, Beta: 0.1},
		{D: 2, Arms: 2, Beta: -0.1},
		{D: 2, Arms: 2, Beta: 1.1},
		{D: 2, Arms: 2, Beta: 0.1, Sigma: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, r); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSoftmaxIsDistribution(t *testing.T) {
	p := newBench(t, 5, 10)
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		sm := p.Softmax(r.Simplex(5))
		sum := 0.0
		for _, v := range sm {
			if v < 0 || v > 1 {
				t.Fatalf("softmax entry %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax sums to %v", sum)
		}
	}
}

func TestSoftmaxDimPanics(t *testing.T) {
	p := newBench(t, 3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong dimension did not panic")
		}
	}()
	p.Softmax([]float64{1, 0})
}

func TestMeanBoundedByBeta(t *testing.T) {
	p := newBench(t, 4, 6)
	r := rng.New(3)
	for i := 0; i < 200; i++ {
		x := r.Simplex(4)
		for a := 0; a < 6; a++ {
			m := p.Mean(x, a)
			if m < 0 || m > 0.1 {
				t.Fatalf("mean reward %v outside [0, beta]", m)
			}
		}
	}
}

func TestBestArmConsistentWithMean(t *testing.T) {
	p := newBench(t, 4, 8)
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		x := r.Simplex(4)
		best := p.BestArm(x)
		for a := 0; a < 8; a++ {
			if p.Mean(x, a) > p.Mean(x, best) {
				t.Fatalf("arm %d beats reported best %d", a, best)
			}
		}
	}
}

func TestUserContextIsFixedPreference(t *testing.T) {
	p := newBench(t, 5, 4)
	u := p.User(7, rng.New(5))
	x0 := u.Context(0)
	x9 := u.Context(9)
	for i := range x0 {
		if x0[i] != x9[i] {
			t.Fatal("user preference should be constant across interactions")
		}
	}
	sum := 0.0
	for _, v := range x0 {
		if v < 0 {
			t.Fatal("preference has negative entries")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("preference sums to %v", sum)
	}
}

func TestUsersDiffer(t *testing.T) {
	p := newBench(t, 5, 4)
	root := rng.New(6)
	a := p.User(1, root.SplitIndex("user", 1)).Context(0)
	b := p.User(2, root.SplitIndex("user", 2)).Context(0)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different users drew identical preferences")
	}
}

func TestRewardBoundedByMeanPlusNoise(t *testing.T) {
	p := newBench(t, 4, 5)
	u := p.User(0, rng.New(7))
	for t_ := 0; t_ < 500; t_++ {
		v := u.Reward(t_, t_%5)
		// Mean is within [0, beta]; noise has sigma 0.1, so |v| beyond
		// ~0.7 would be a 6-sigma event.
		if v < -0.7 || v > 0.8 {
			t.Fatalf("reward %v outside plausible range", v)
		}
	}
}

func TestRewardMeanTracksPreference(t *testing.T) {
	p := newBench(t, 4, 5)
	u := p.User(3, rng.New(8))
	x := u.Context(0)
	best := p.BestArm(x)
	// Average many noisy draws; they should be within noise of the mean.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += u.Reward(i, best)
	}
	got := sum / n
	want := p.Mean(x, best)
	// Noise is zero-mean, so the empirical mean converges to the model
	// mean; with n=20000 and sigma=0.1 the SE is ~0.0007.
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("empirical mean %v too far from %v", got, want)
	}
}

func TestSampleContexts(t *testing.T) {
	p := newBench(t, 6, 3)
	xs := p.SampleContexts(50, rng.New(9))
	if len(xs) != 50 {
		t.Fatalf("sampled %d", len(xs))
	}
	for _, x := range xs {
		if len(x) != 6 {
			t.Fatalf("context dim %d", len(x))
		}
	}
}

func TestEnvironmentDeterminism(t *testing.T) {
	mk := func() *Preference { return newBench(t, 5, 4) }
	a, b := mk(), mk()
	x := rng.New(10).Simplex(5)
	for arm := 0; arm < 4; arm++ {
		if a.Mean(x, arm) != b.Mean(x, arm) {
			t.Fatal("same seed produced different environments")
		}
	}
}
