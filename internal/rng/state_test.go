package rng

import (
	"testing"
)

// A restored stream must continue the exact sequence the captured stream
// would have produced — the checkpointed shuffler depends on it.
func TestMarshalRoundTripContinuesSequence(t *testing.T) {
	r := New(42)
	// Advance past the seed state through a mix of draw kinds.
	for i := 0; i < 100; i++ {
		r.Float64()
		r.IntN(17)
		r.Norm(0, 1)
	}
	state, err := r.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	restored := New(1) // deliberately different seed; Unmarshal must overwrite it
	if err := restored.UnmarshalBinary(state); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if got, want := restored.Uint64(), r.Uint64(); got != want {
			t.Fatalf("draw %d diverged after restore: got %d want %d", i, got, want)
		}
	}
}

// Split depends on the retained seed material, so substreams derived after a
// restore must match substreams derived from the original.
func TestMarshalPreservesSplitMaterial(t *testing.T) {
	r := New(7)
	r.Float64() // advance so PCG state != seed material
	state, err := r.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	restored := new(Rand)
	if err := restored.UnmarshalBinary(state); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	a, b := r.Split("shuffler"), restored.Split("shuffler")
	for i := 0; i < 100; i++ {
		if got, want := b.Uint64(), a.Uint64(); got != want {
			t.Fatalf("split draw %d diverged: got %d want %d", i, got, want)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	r := New(1)
	if err := r.UnmarshalBinary([]byte("short")); err == nil {
		t.Fatal("want error for truncated state")
	}
	if err := r.UnmarshalBinary(make([]byte, 40)); err == nil {
		t.Fatal("want error for bogus PCG state")
	}
}

// Shuffle draws after a restore must reproduce the original permutation
// stream — this is the property the crash-recovery path leans on.
func TestRestoredShuffleMatches(t *testing.T) {
	r := New(99)
	r.Perm(33)
	state, _ := r.MarshalBinary()
	restored := new(Rand)
	if err := restored.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		a := make([]int, 64)
		b := make([]int, 64)
		for i := range a {
			a[i], b[i] = i, i
		}
		r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		restored.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: permutations diverge at %d", round, i)
			}
		}
	}
}
