// Package rng provides deterministic, seedable random number generation for
// the P2B simulator.
//
// Every stochastic component of the system (environments, agents, the
// participation sampler, the shuffler) draws from an rng.Rand so that whole
// experiments are reproducible from a single root seed. Substreams derived
// with Split are statistically independent and stable across runs, which
// keeps concurrent simulations deterministic regardless of goroutine
// scheduling.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	randv2 "math/rand/v2"
)

// Rand is a deterministic random stream. It wraps a PCG generator from
// math/rand/v2 and adds the distributions the simulator needs.
type Rand struct {
	src *randv2.Rand
	pcg *randv2.PCG
	// seed material retained so substreams can be derived deterministically.
	hi, lo uint64
}

// New returns a stream seeded with seed. Two streams built from the same
// seed produce identical sequences.
func New(seed uint64) *Rand {
	return newFrom(seed, seed^0x9e3779b97f4a7c15)
}

func newFrom(hi, lo uint64) *Rand {
	pcg := randv2.NewPCG(hi, lo)
	return &Rand{src: randv2.New(pcg), pcg: pcg, hi: hi, lo: lo}
}

// MarshalBinary captures the stream's complete state: the seed material
// (which Split derivations depend on) and the current PCG position. A
// stream restored with UnmarshalBinary continues the exact sequence the
// captured stream would have produced, which is what lets a checkpointed
// shuffler resume its permutation stream after a crash.
func (r *Rand) MarshalBinary() ([]byte, error) {
	pcgState, err := r.pcg.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 16, 16+len(pcgState))
	putUint64(out[0:8], r.hi)
	putUint64(out[8:16], r.lo)
	return append(out, pcgState...), nil
}

// UnmarshalBinary restores state captured by MarshalBinary.
func (r *Rand) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("rng: state too short (%d bytes)", len(data))
	}
	hi := getUint64(data[0:8])
	lo := getUint64(data[8:16])
	pcg := randv2.NewPCG(hi, lo)
	if err := pcg.UnmarshalBinary(data[16:]); err != nil {
		return fmt.Errorf("rng: restoring PCG state: %w", err)
	}
	r.hi, r.lo = hi, lo
	r.pcg = pcg
	r.src = randv2.New(pcg)
	return nil
}

// Split derives an independent substream identified by label. Splitting is a
// pure function of the parent's seed material and the label: it does not
// consume randomness from the parent, so the order in which substreams are
// created never perturbs results.
func (r *Rand) Split(label string) *Rand {
	h := fnv.New64a()
	var b [16]byte
	putUint64(b[0:8], r.hi)
	putUint64(b[8:16], r.lo)
	h.Write(b[:])
	h.Write([]byte(label))
	d := h.Sum64()
	return newFrom(r.hi^d, r.lo^(d*0xff51afd7ed558ccd+1))
}

// SplitIndex derives an independent substream identified by an integer,
// convenient for per-agent streams.
func (r *Rand) SplitIndex(label string, i int) *Rand {
	h := fnv.New64a()
	var b [24]byte
	putUint64(b[0:8], r.hi)
	putUint64(b[8:16], r.lo)
	putUint64(b[16:24], uint64(i))
	h.Write(b[:])
	h.Write([]byte(label))
	d := h.Sum64()
	return newFrom(r.hi^d, r.lo^(d*0xc4ceb9fe1a85ec53+1))
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Float64 returns a uniform sample from [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform sample from {0, ..., n-1}. It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Perm returns a uniform random permutation of {0, ..., n-1}.
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle performs an in-place Fisher-Yates shuffle of n elements using the
// provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Norm returns a Gaussian sample with the given mean and standard deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// Gamma returns a sample from the Gamma distribution with the given shape
// and scale 1, using the Marsaglia-Tsang squeeze method. shape must be > 0.
func (r *Rand) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma shape must be positive")
	}
	if shape < 1 {
		// Boost to shape+1 and correct with a uniform power.
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet returns a sample from the Dirichlet distribution with the given
// concentration parameters. The result has the same length as alpha and sums
// to 1.
func (r *Rand) Dirichlet(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	sum := 0.0
	for i, a := range alpha {
		g := r.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw (possible for tiny alphas); fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Simplex returns a uniform sample from the (d-1)-dimensional probability
// simplex, i.e. a Dirichlet(1, ..., 1) draw. This is the paper's model for
// normalized context vectors.
func (r *Rand) Simplex(d int) []float64 {
	alpha := make([]float64, d)
	for i := range alpha {
		alpha[i] = 1
	}
	return r.Dirichlet(alpha)
}

// Categorical returns an index sampled proportionally to the non-negative
// weights. It panics if the weights sum to zero or are empty.
func (r *Rand) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical weight must be non-negative")
		}
		total += w
	}
	if total <= 0 || len(weights) == 0 {
		panic("rng: Categorical weights must sum to a positive value")
	}
	u := r.src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf is a sampler over {0, ..., n-1} with probability proportional to
// 1/(i+1)^s. The logged ad substrate uses it to model popularity-skewed
// product categories.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler with exponent s over n categories, drawing
// randomness from r. It panics if n <= 0 or s < 0.
func NewZipf(r *Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: Zipf needs n > 0")
	}
	if s < 0 {
		panic("rng: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{cdf: cdf, r: r}
}

// Draw samples one category index.
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of category i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// NormVec fills a slice with d independent N(0, stddev) samples.
func (r *Rand) NormVec(d int, stddev float64) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = stddev * r.src.NormFloat64()
	}
	return v
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// {0, ..., n-1} via a partial Fisher-Yates shuffle. It panics if k > n.
func (r *Rand) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: SampleWithoutReplacement requires k <= n")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
