package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestSplitIndependentOfParentState(t *testing.T) {
	a := New(7)
	sub1 := a.Split("agents")
	// Consume randomness from the parent; the substream must not change.
	for i := 0; i < 50; i++ {
		a.Float64()
	}
	sub2 := New(7).Split("agents")
	for i := 0; i < 100; i++ {
		if sub1.Float64() != sub2.Float64() {
			t.Fatalf("Split consumed parent state; diverged at %d", i)
		}
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	r := New(7)
	a := r.Split("a")
	b := r.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams for distinct labels matched %d/100 draws", same)
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	r := New(9)
	a := r.SplitIndex("agent", 0)
	b := r.SplitIndex("agent", 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams for distinct indices matched %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(5)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v, want about 0.3", got)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(2, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("Norm mean %v, want about 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("Norm variance %v, want about 9", variance)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(8)
	for _, shape := range []float64{0.5, 1, 2.5, 7} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.08*math.Max(1, shape) {
			t.Fatalf("Gamma(%v) mean %v, want about %v", shape, mean, shape)
		}
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(10)
	if err := quick.Check(func(seed uint16) bool {
		rr := New(uint64(seed))
		alpha := []float64{0.5, 1, 2, 3.5}
		v := rr.Dirichlet(alpha)
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSimplexUniformMarginals(t *testing.T) {
	r := New(11)
	const n = 50000
	d := 4
	sums := make([]float64, d)
	for i := 0; i < n; i++ {
		v := r.Simplex(d)
		for j, x := range v {
			sums[j] += x
		}
	}
	for j, s := range sums {
		mean := s / n
		if math.Abs(mean-1.0/float64(d)) > 0.01 {
			t.Fatalf("Simplex marginal %d mean %v, want about %v", j, mean, 1.0/float64(d))
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := New(12)
	w := []float64{1, 2, 3, 4}
	counts := make([]int, len(w))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	for i, c := range counts {
		want := w[i] / 10
		got := float64(c) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Categorical freq[%d] = %v, want about %v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	z := NewZipf(New(13), 1.2, 40)
	sum := 0.0
	for i := 0; i < 40; i++ {
		p := z.Prob(i)
		if p <= 0 {
			t.Fatalf("Zipf prob %d not positive: %v", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(40) != 0 {
		t.Fatal("Zipf out-of-range prob should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(New(14), 1.0, 10)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[9]=%d", counts[0], counts[9])
	}
	got := float64(counts[0]) / n
	if math.Abs(got-z.Prob(0)) > 0.01 {
		t.Fatalf("Zipf empirical p0 %v, want about %v", got, z.Prob(0))
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	z := NewZipf(New(15), 0, 5)
	for i := 0; i < 5; i++ {
		if math.Abs(z.Prob(i)-0.2) > 1e-12 {
			t.Fatalf("Zipf(s=0) prob %d = %v, want 0.2", i, z.Prob(i))
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(16)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(17)
	got := r.SampleWithoutReplacement(50, 20)
	if len(got) != 20 {
		t.Fatalf("sample size %d, want 20", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 50 {
			t.Fatalf("sample out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample: %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	r := New(18)
	got := r.SampleWithoutReplacement(5, 5)
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample not a permutation: %v", got)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestNormVec(t *testing.T) {
	r := New(19)
	v := r.NormVec(1000, 2)
	if len(v) != 1000 {
		t.Fatalf("NormVec length %d", len(v))
	}
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	variance := sum / 1000
	if math.Abs(variance-4) > 0.8 {
		t.Fatalf("NormVec variance %v, want about 4", variance)
	}
}
