package server

import (
	"testing"

	"p2b/internal/transport"
)

// intDecoder maps codes to small-integer vectors. Integer features keep
// every accumulator sum exact (outer products of integers stay integral),
// so cross-node equality checks are bit-for-bit regardless of fold order —
// the same property the topology-equivalence CI run relies on.
type intDecoder struct{ d int }

func (g intDecoder) Decode(code int) []float64 {
	v := make([]float64, g.d)
	for i := range v {
		v[i] = float64((code+i)%5 + 1)
	}
	return v
}

func peerTestConfig() Config {
	return Config{K: 8, Arms: 3, D: 2, Alpha: 1, Decoder: intDecoder{d: 2}, Shards: 1}
}

// integralBatches ships {0,1} rewards: float64 addition over them is exact,
// so model equality checks below are bit-for-bit, not approximate.
func integralBatches(n, batch int, cfg Config, seed uint64) [][]transport.Tuple {
	out := randomBatches(n, batch, cfg.K, cfg.Arms, seed)
	for _, b := range out {
		for i := range b {
			if b[i].Reward >= 0.5 {
				b[i].Reward = 1
			} else {
				b[i].Reward = 0
			}
		}
	}
	return out
}

func TestDeliverPeerBatchDuplicateGuard(t *testing.T) {
	srv := New(peerTestConfig())
	batch := integralBatches(1, 5, peerTestConfig(), 1)[0]

	if !srv.DeliverPeerBatch("relay-1", 7, 1, batch) {
		t.Fatal("first delivery rejected")
	}
	if srv.DeliverPeerBatch("relay-1", 7, 1, batch) {
		t.Fatal("exact duplicate applied")
	}
	if srv.DeliverPeerBatch("relay-1", 7, 0, batch) {
		t.Fatal("older seq applied")
	}
	if !srv.DeliverPeerBatch("relay-1", 7, 2, batch) {
		t.Fatal("next seq rejected")
	}
	// A new epoch means the relay rebooted and restarted its sequence:
	// always accepted.
	if !srv.DeliverPeerBatch("relay-1", 8, 1, batch) {
		t.Fatal("new epoch rejected")
	}
	// Origins are independent streams.
	if !srv.DeliverPeerBatch("relay-2", 7, 1, batch) {
		t.Fatal("second origin rejected")
	}

	if st := srv.Stats(); st.TuplesIngested != 4*int64(len(batch)) {
		t.Fatalf("ingested %d tuples, want %d (duplicates must not fold in)", st.TuplesIngested, 4*len(batch))
	}
	ma, mr, rb, rd := srv.PeerCounters()
	if ma != 0 || mr != 0 || rb != 4 || rd != 2 {
		t.Fatalf("counters = applied %d rejected %d batches %d duplicates %d", ma, mr, rb, rd)
	}
	if srv.PeerBatchSeen("relay-1", 8, 1) != true || srv.PeerBatchSeen("relay-1", 9, 1) != false {
		t.Fatal("PeerBatchSeen disagrees with the guard")
	}
}

func TestMergePeerStateDoubleApplyRejected(t *testing.T) {
	cfg := peerTestConfig()
	a, b := New(cfg), New(cfg)
	for _, batch := range integralBatches(5, 24, cfg, 3) {
		a.Deliver(batch)
	}

	applied, err := b.MergePeerState("analyzer-a", 1, 1, a.ExportState())
	if err != nil || !applied {
		t.Fatalf("first merge: applied=%v err=%v", applied, err)
	}
	// The receiver now computes a's model exactly: its only content is the
	// stored contribution.
	assertSnapshotsBitIdentical(t, a, b)

	// Double apply: same (epoch, seq) again. Rejected, state unchanged.
	applied, err = b.MergePeerState("analyzer-a", 1, 1, a.ExportState())
	if err != nil || applied {
		t.Fatalf("double apply: applied=%v err=%v, want rejection", applied, err)
	}
	assertSnapshotsBitIdentical(t, a, b)

	// A newer push REPLACES the stored contribution — the old one must not
	// linger and double-count.
	for _, batch := range integralBatches(3, 24, cfg, 4) {
		a.Deliver(batch)
	}
	applied, err = b.MergePeerState("analyzer-a", 1, 2, a.ExportState())
	if err != nil || !applied {
		t.Fatalf("newer merge: applied=%v err=%v", applied, err)
	}
	assertSnapshotsBitIdentical(t, a, b)

	// Out-of-order old push after the new one: stale, ignored.
	applied, err = b.MergePeerState("analyzer-a", 1, 1, New(cfg).ExportState())
	if err != nil || applied {
		t.Fatalf("stale merge: applied=%v err=%v, want rejection", applied, err)
	}
	assertSnapshotsBitIdentical(t, a, b)

	ma, mr, _, _ := b.PeerCounters()
	if ma != 2 || mr != 2 {
		t.Fatalf("merge counters = applied %d rejected %d, want 2/2", ma, mr)
	}
}

func TestMergePeerStateAdditiveWithLocal(t *testing.T) {
	cfg := peerTestConfig()
	local := integralBatches(4, 24, cfg, 10)
	remote := integralBatches(4, 24, cfg, 11)

	// Reference: one combined node that saw everything, locals first.
	ref := New(cfg)
	for _, batch := range local {
		ref.Deliver(batch)
	}
	for _, batch := range remote {
		ref.Deliver(batch)
	}

	// Fleet: b holds the local batches plus a's contribution.
	a, b := New(cfg), New(cfg)
	for _, batch := range remote {
		a.Deliver(batch)
	}
	for _, batch := range local {
		b.Deliver(batch)
	}
	if _, err := b.MergePeerState("analyzer-a", 1, 1, a.ExportState()); err != nil {
		t.Fatal(err)
	}
	assertSnapshotsBitIdentical(t, ref, b)
}

func TestMergePeerStateShapeValidation(t *testing.T) {
	cfg := peerTestConfig()
	b := New(cfg)

	other := cfg
	other.K = cfg.K * 2
	if _, err := b.MergePeerState("a", 1, 1, New(other).ExportState()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := b.MergePeerState("", 1, 1, New(cfg).ExportState()); err == nil {
		t.Fatal("empty origin accepted")
	}
	if _, err := b.MergePeerState("a", 1, 1, nil); err == nil {
		t.Fatal("nil state accepted")
	}
	truncated := New(cfg).ExportState()
	truncated.CellCount = truncated.CellCount[:3]
	if _, err := b.MergePeerState("a", 1, 1, truncated); err == nil {
		t.Fatal("truncated cells accepted")
	}
	if ma, mr, _, _ := b.PeerCounters(); ma != 0 || mr != 0 {
		t.Fatalf("malformed updates moved counters: applied %d rejected %d", ma, mr)
	}
}

func TestLocalVersionExcludesPeerMerges(t *testing.T) {
	cfg := peerTestConfig()
	a, b := New(cfg), New(cfg)
	for _, batch := range integralBatches(2, 24, cfg, 5) {
		a.Deliver(batch)
	}

	before := b.LocalVersion()
	modelBefore, vBefore := b.TabularModel()
	if _, err := b.MergePeerState("analyzer-a", 1, 1, a.ExportState()); err != nil {
		t.Fatal(err)
	}
	if got := b.LocalVersion(); got != before {
		t.Fatalf("LocalVersion moved on a merge (%d -> %d): the peering loop would echo peer data back", before, got)
	}
	// The served model and its version DO move: peers' data must reach
	// agents, and the ETag must invalidate cached snapshots.
	modelAfter, vAfter := b.TabularModel()
	if vAfter == vBefore {
		t.Fatal("model version unchanged by a merge; stale ETags would serve a pre-merge model")
	}
	if modelAfter == modelBefore {
		t.Fatal("snapshot cache served the pre-merge model after a merge")
	}

	// Export/import: relay guard positions survive a checkpoint round-trip,
	// stored contributions deliberately do not (anti-entropy re-fills them).
	b.DeliverPeerBatch("relay-1", 3, 9, integralBatches(1, 4, cfg, 6)[0])
	c := New(cfg)
	if err := c.ImportState(b.ExportState()); err != nil {
		t.Fatal(err)
	}
	if !c.PeerBatchSeen("relay-1", 3, 9) {
		t.Fatal("relay guard lost across export/import; a WAL-tail re-forward would double-count")
	}
	if st := c.PeerStatus(); len(st.Contributions) != 0 {
		t.Fatalf("contributions leaked through export: %+v", st.Contributions)
	}
}
