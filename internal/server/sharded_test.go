package server

import (
	"math"
	"sync"
	"testing"

	"p2b/internal/bandit"
	"p2b/internal/rng"
	"p2b/internal/transport"
)

// TestShardConfigRespected pins the Shards knob and its default.
func TestShardConfigRespected(t *testing.T) {
	s := New(Config{K: 4, Arms: 3, D: 2, Alpha: 1, Shards: 5})
	if got := len(s.shards); got != 5 {
		t.Fatalf("shards = %d, want 5", got)
	}
	if got := s.Config().Shards; got != 5 {
		t.Fatalf("Config().Shards = %d, want 5", got)
	}
	if s := New(Config{K: 4, Arms: 3, D: 2}); len(s.shards) < 1 {
		t.Fatal("default shard count must be at least 1")
	}
}

// TestConcurrentDeliverMergesExactly hammers a many-shard server from many
// goroutines and checks the merged model equals the arithmetic total: the
// per-shard accumulators must not lose or double-count anything.
func TestConcurrentDeliverMergesExactly(t *testing.T) {
	const (
		workers = 8
		batches = 200
		k       = 16
		arms    = 4
	)
	s := New(Config{K: k, Arms: arms, D: 2, Alpha: 1, Shards: workers})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]transport.Tuple, k)
			for b := 0; b < batches; b++ {
				for i := range batch {
					batch[i] = transport.Tuple{Code: i, Action: (i + w) % arms, Reward: 0.25}
				}
				s.Deliver(batch)
			}
		}(w)
	}
	wg.Wait()
	snap := s.TabularSnapshot()
	var totalCount, totalSum float64
	for i := range snap.Count {
		totalCount += snap.Count[i]
		totalSum += snap.Sum[i]
	}
	wantTuples := float64(workers * batches * k)
	if totalCount != wantTuples {
		t.Fatalf("merged count %v, want %v", totalCount, wantTuples)
	}
	if math.Abs(totalSum-0.25*wantTuples) > 1e-9 {
		t.Fatalf("merged sum %v, want %v", totalSum, 0.25*wantTuples)
	}
	if st := s.Stats(); st.TuplesIngested != int64(wantTuples) {
		t.Fatalf("stats ingested %d, want %v", st.TuplesIngested, wantTuples)
	}
}

// TestConcurrentIngestRawMergesExactly is the raw-path analogue: the merged
// LinUCB design matrix must reflect every observation.
func TestConcurrentIngestRawMergesExactly(t *testing.T) {
	const workers = 4
	const perWorker = 300
	s := New(Config{K: 4, Arms: 2, D: 2, Alpha: 1, Shards: workers})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := s.IngestRaw(transport.RawTuple{Context: []float64{1, 0}, Action: 0, Reward: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := s.LinUCBSnapshot()
	if snap.N[0] != workers*perWorker {
		t.Fatalf("N[0] = %d, want %d", snap.N[0], workers*perWorker)
	}
	// A_0 = I + n * e_0 e_0^T, so (A^{-1})_{00} = 1/(1+n) and b = n e_0.
	n := float64(workers * perWorker)
	if got, want := snap.AInv[0][0], 1/(1+n); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AInv[0][0] = %v, want %v", got, want)
	}
	if got := snap.B[0][0]; got != n {
		t.Fatalf("B[0][0] = %v, want %v", got, n)
	}
}

// decodeToCounter counts DecodeTo calls to prove the allocation-free
// decoder path is used when available.
type decodeToCounter struct {
	calls int
	d     int
}

func (d *decodeToCounter) Decode(code int) []float64 { return make([]float64, d.d) }
func (d *decodeToCounter) DecodeTo(dst []float64, code int) []float64 {
	d.calls++
	if cap(dst) < d.d {
		dst = make([]float64, d.d)
	}
	dst = dst[:d.d]
	for i := range dst {
		dst[i] = 0
	}
	dst[code%d.d] = 1
	return dst
}

func TestDeliverUsesDecodeTo(t *testing.T) {
	dec := &decodeToCounter{d: 2}
	s := New(Config{K: 4, Arms: 2, D: 2, Alpha: 1, Decoder: dec, Shards: 1})
	s.Deliver([]transport.Tuple{
		{Code: 0, Action: 0, Reward: 1},
		{Code: 1, Action: 1, Reward: 0.5},
	})
	if dec.calls != 2 {
		t.Fatalf("DecodeTo called %d times, want 2", dec.calls)
	}
	cent := s.CentroidSnapshot()
	if cent == nil {
		t.Fatal("centroid snapshot missing despite decoder")
	}
	model, err := bandit.NewLinUCBFromState(cent, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if model.Pulls(0) != 1 || model.Pulls(1) != 1 {
		t.Fatalf("centroid model pulls = %d, %d; want 1, 1", model.Pulls(0), model.Pulls(1))
	}
}

// TestSnapshotCacheInvalidation verifies that snapshots are cached between
// mutations and refreshed after each one.
func TestSnapshotCacheInvalidation(t *testing.T) {
	s := New(Config{K: 4, Arms: 2, D: 2, Alpha: 1, Shards: 2})
	tuple := []transport.Tuple{{Code: 1, Action: 1, Reward: 1}}
	s.Deliver(tuple)
	a := s.TabularSnapshot()
	b := s.TabularSnapshot()
	if &a.Count[0] == &b.Count[0] {
		t.Fatal("snapshots must not share backing arrays")
	}
	if a.Count[1*2+1] != 1 || b.Count[1*2+1] != 1 {
		t.Fatal("cached snapshot lost the delivery")
	}
	s.Deliver(tuple)
	c := s.TabularSnapshot()
	if c.Count[1*2+1] != 2 {
		t.Fatalf("snapshot after second delivery = %v, want 2", c.Count[1*2+1])
	}
}

// TestCentroidSnapshotNilWithoutDecoder preserves the documented contract.
func TestCentroidSnapshotNilWithoutDecoder(t *testing.T) {
	s := New(Config{K: 4, Arms: 2, D: 2, Alpha: 1})
	if s.CentroidSnapshot() != nil {
		t.Fatal("CentroidSnapshot without decoder must be nil")
	}
}

// TestIngestRawRejectsNonFinite: one poisoned context would corrupt the
// additive design matrix permanently and only surface later as an
// inversion panic — it must be rejected up front.
func TestIngestRawRejectsNonFinite(t *testing.T) {
	s := New(Config{K: 4, Arms: 2, D: 2, Alpha: 1})
	bad := []transport.RawTuple{
		{Context: []float64{math.NaN(), 0}, Action: 0, Reward: 1},
		{Context: []float64{0, math.Inf(1)}, Action: 0, Reward: 1},
		{Context: []float64{math.Inf(-1), 0}, Action: 0, Reward: 1},
	}
	for i, tup := range bad {
		if err := s.IngestRaw(tup); err == nil {
			t.Fatalf("case %d: non-finite context accepted", i)
		}
	}
	if st := s.Stats(); st.RawIngested != 0 {
		t.Fatalf("raw ingested %d, want 0", st.RawIngested)
	}
	// The model must still be servable.
	if err := s.IngestRaw(transport.RawTuple{Context: []float64{1, 0}, Action: 0, Reward: 1}); err != nil {
		t.Fatal(err)
	}
	snap := s.LinUCBSnapshot()
	if snap.N[0] != 1 {
		t.Fatalf("N[0] = %d, want 1", snap.N[0])
	}
}
