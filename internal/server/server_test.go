package server

import (
	"math"
	"sync"
	"testing"

	"p2b/internal/bandit"
	"p2b/internal/mat"
	"p2b/internal/rng"
	"p2b/internal/transport"
)

func newTestServer() *Server {
	return New(Config{K: 4, Arms: 3, D: 2, Alpha: 1, Seed: 1})
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{K: 0, Arms: 1, D: 1},
		{K: 1, Arms: 0, D: 1},
		{K: 1, Arms: 1, D: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDeliverUpdatesTabularModel(t *testing.T) {
	s := newTestServer()
	s.Deliver([]transport.Tuple{
		{Code: 1, Action: 2, Reward: 1},
		{Code: 1, Action: 2, Reward: 1},
		{Code: 3, Action: 0, Reward: 0},
	})
	snap := s.TabularSnapshot()
	model, err := bandit.NewTabularUCBFromState(snap, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Cell (1, 2): two rewards of 1 -> mean 2/3, width 1/sqrt(3).
	want := 2.0/3.0 + 1/math.Sqrt(3)
	if got := model.ScoreCode(1, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("score = %v, want %v", got, want)
	}
	if st := s.Stats(); st.TuplesIngested != 3 {
		t.Fatalf("ingested %d, want 3", st.TuplesIngested)
	}
}

func TestDeliverDropsMalformedTuples(t *testing.T) {
	s := newTestServer()
	s.Deliver([]transport.Tuple{
		{Code: -1, Action: 0, Reward: 1},
		{Code: 99, Action: 0, Reward: 1},
		{Code: 0, Action: -1, Reward: 1},
		{Code: 0, Action: 50, Reward: 1},
	})
	if st := s.Stats(); st.TuplesIngested != 0 {
		t.Fatalf("malformed tuples ingested: %d", st.TuplesIngested)
	}
}

func TestDeliverClampsRewards(t *testing.T) {
	s := newTestServer()
	s.Deliver([]transport.Tuple{{Code: 0, Action: 0, Reward: 99}})
	s.Deliver([]transport.Tuple{{Code: 1, Action: 0, Reward: -99}})
	model, err := bandit.NewTabularUCBFromState(s.TabularSnapshot(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to +1: mean = 1/2.
	want := 0.5 + 1/math.Sqrt(2)
	if got := model.ScoreCode(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("score = %v, want %v (reward not clamped?)", got, want)
	}
	// Clamped to -1: mean = -1/2.
	want = -0.5 + 1/math.Sqrt(2)
	if got := model.ScoreCode(1, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("score = %v, want %v (negative reward not clamped?)", got, want)
	}
	// A legitimate small negative (synthetic noise) passes through.
	s.Deliver([]transport.Tuple{{Code: 2, Action: 0, Reward: -0.05}})
	want = -0.05/2 + 1/math.Sqrt(2)
	if got := model2(t, s).ScoreCode(2, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("score = %v, want %v", got, want)
	}
}

func model2(t *testing.T, s *Server) *bandit.TabularUCB {
	t.Helper()
	m, err := bandit.NewTabularUCBFromState(s.TabularSnapshot(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIngestRawValidation(t *testing.T) {
	s := newTestServer()
	if err := s.IngestRaw(transport.RawTuple{Context: []float64{1}, Action: 0, Reward: 1}); err == nil {
		t.Fatal("wrong-dimension context accepted")
	}
	if err := s.IngestRaw(transport.RawTuple{Context: []float64{1, 0}, Action: 7, Reward: 1}); err == nil {
		t.Fatal("out-of-range action accepted")
	}
	if err := s.IngestRaw(transport.RawTuple{Context: []float64{1, 0}, Action: 1, Reward: 1}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.RawIngested != 1 {
		t.Fatalf("raw ingested %d, want 1", st.RawIngested)
	}
}

func TestLinUCBSnapshotReflectsRawData(t *testing.T) {
	s := newTestServer()
	x := []float64{1, 0}
	for i := 0; i < 30; i++ {
		if err := s.IngestRaw(transport.RawTuple{Context: x, Action: 0, Reward: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.IngestRaw(transport.RawTuple{Context: x, Action: 1, Reward: 0}); err != nil {
			t.Fatal(err)
		}
	}
	model, err := bandit.NewLinUCBFromState(s.LinUCBSnapshot(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if model.Score(x, 0) <= model.Score(x, 1) {
		t.Fatal("global LinUCB did not learn from raw stream")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := newTestServer()
	snap1 := s.TabularSnapshot()
	s.Deliver([]transport.Tuple{{Code: 0, Action: 0, Reward: 1}})
	snap2 := s.TabularSnapshot()
	if snap1.Count[0] == snap2.Count[0] {
		t.Fatal("second snapshot should reflect the delivery")
	}
	// Mutating a snapshot must not corrupt the server.
	snap2.Count[0] = 1e9
	snap3 := s.TabularSnapshot()
	if snap3.Count[0] == 1e9 {
		t.Fatal("snapshot aliases server state")
	}
}

func TestStatsCountsSnapshots(t *testing.T) {
	s := newTestServer()
	s.TabularSnapshot()
	s.LinUCBSnapshot()
	if st := s.Stats(); st.Snapshots != 2 {
		t.Fatalf("snapshots %d, want 2", st.Snapshots)
	}
}

func TestConcurrentDeliverAndSnapshot(t *testing.T) {
	s := newTestServer()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Deliver([]transport.Tuple{{Code: i % 4, Action: i % 3, Reward: 0.5}})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.TabularSnapshot()
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.TuplesIngested != 2000 {
		t.Fatalf("ingested %d, want 2000", st.TuplesIngested)
	}
}

func TestConfigAccessor(t *testing.T) {
	s := newTestServer()
	cfg := s.Config()
	if cfg.K != 4 || cfg.Arms != 3 || cfg.D != 2 {
		t.Fatalf("config %+v", cfg)
	}
}

func TestVersionedModelGetters(t *testing.T) {
	s := newTestServer()
	if v := s.ModelVersion(); v != 0 {
		t.Fatalf("fresh server at version %d", v)
	}
	st, v := s.TabularModel()
	if v != 0 || st == nil {
		t.Fatalf("empty snapshot versioned %d", v)
	}
	s.Deliver([]transport.Tuple{{Code: 1, Action: 1, Reward: 1}})
	st2, v2 := s.TabularModel()
	if v2 <= v {
		t.Fatalf("version did not advance on Deliver: %d -> %d", v, v2)
	}
	if st2.Count[1*3+1] != 1 {
		t.Fatalf("snapshot at version %d misses the delivered tuple", v2)
	}
	// The raw model advances the same counter.
	if err := s.IngestRaw(transport.RawTuple{Context: []float64{1, 0}, Action: 0, Reward: 1}); err != nil {
		t.Fatal(err)
	}
	lin, v3 := s.LinUCBModel()
	if v3 <= v2 || lin.N[0] != 1 {
		t.Fatalf("raw ingest not reflected: version %d -> %d, N=%v", v2, v3, lin.N)
	}
	// Versions are monotonic under concurrent ingestion.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := s.ModelVersion()
			if v < last {
				t.Error("model version regressed")
				return
			}
			last = v
		}
	}()
	for i := 0; i < 50; i++ {
		s.Deliver([]transport.Tuple{{Code: i % 4, Action: i % 3, Reward: 0.5}})
	}
	close(stop)
	wg.Wait()
}

func TestSharedSnapshotIdentity(t *testing.T) {
	s := newTestServer()
	s.Deliver([]transport.Tuple{{Code: 0, Action: 0, Reward: 1}})
	// Reads at an unchanged version share one immutable master: the very
	// point of the read path is that a fleet-wide warm start costs one
	// build, not one copy per caller.
	st1, v1 := s.TabularModel()
	st2, v2 := s.TabularModel()
	if v1 != v2 || st1 != st2 {
		t.Fatalf("unchanged version did not share the snapshot: %p/%d vs %p/%d", st1, v1, st2, v2)
	}
	// The explicit-copy API hands out private state.
	snap := s.TabularSnapshot()
	if snap == st1 {
		t.Fatal("TabularSnapshot returned the shared master, not a copy")
	}
	snap.Count[0] = 1e9
	if st3, _ := s.TabularModel(); st3.Count[0] == 1e9 {
		t.Fatal("mutating a TabularSnapshot clone reached the shared master")
	}
	// A version bump publishes a fresh master.
	s.Deliver([]transport.Tuple{{Code: 1, Action: 1, Reward: 1}})
	st4, v4 := s.TabularModel()
	if v4 <= v1 || st4 == st1 {
		t.Fatalf("version bump did not rebuild: %p/%d vs %p/%d", st1, v1, st4, v4)
	}
	// Same contract on the linear models.
	if err := s.IngestRaw(transport.RawTuple{Context: []float64{1, 0}, Action: 0, Reward: 1}); err != nil {
		t.Fatal(err)
	}
	l1, _ := s.LinUCBModel()
	l2, _ := s.LinUCBModel()
	if l1 != l2 {
		t.Fatal("unchanged version did not share the LinUCB snapshot")
	}
	if c := s.LinUCBSnapshot(); c == l1 {
		t.Fatal("LinUCBSnapshot returned the shared master, not a copy")
	}
}

func TestStatsCountSnapshotCache(t *testing.T) {
	s := newTestServer()
	s.Deliver([]transport.Tuple{{Code: 0, Action: 0, Reward: 1}})
	s.TabularModel() // build
	s.TabularModel() // hit
	s.TabularModel() // hit
	st := s.Stats()
	if st.SnapshotBuilds != 1 {
		t.Fatalf("builds = %d, want 1", st.SnapshotBuilds)
	}
	if st.SnapshotHits != 2 {
		t.Fatalf("hits = %d, want 2", st.SnapshotHits)
	}
	s.Deliver([]transport.Tuple{{Code: 0, Action: 0, Reward: 1}})
	s.TabularModel() // rebuild
	if st := s.Stats(); st.SnapshotBuilds != 2 || st.SnapshotHits != 2 {
		t.Fatalf("after bump: builds=%d hits=%d, want 2/2", st.SnapshotBuilds, st.SnapshotHits)
	}
}

// TestInvertArmsParallelBitExact pins the exactness contract of the
// parallelized snapshot build: per-arm inversions are independent, so any
// worker count must produce bit-identical state.
func TestInvertArmsParallelBitExact(t *testing.T) {
	const d, arms = 24, 8
	build := func() []*mat.Dense {
		rr := rng.New(11) // same accumulators for every schedule
		sums := make([]*mat.Dense, arms)
		for a := range sums {
			sums[a] = mat.NewDense(d)
			for i := 0; i < 50; i++ {
				x := rr.Simplex(d)
				sums[a].AddOuter(x, 1)
			}
		}
		return sums
	}
	run := func(workers int) *bandit.LinUCBState {
		st := &bandit.LinUCBState{
			D: d, Arms: arms,
			AInv: make([][]float64, arms),
			B:    make([][]float64, arms),
			N:    make([]int64, arms),
		}
		invertArms(st, build(), d, workers)
		return st
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for a := 0; a < arms; a++ {
			for i, v := range got.AInv[a] {
				if v != serial.AInv[a][i] {
					t.Fatalf("workers=%d arm %d element %d: %v != %v", workers, a, i, v, serial.AInv[a][i])
				}
			}
		}
	}
}
