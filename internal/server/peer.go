// Multi-analyzer state: relay batch ingestion with duplicate suppression,
// and peer contributions merged in from sibling analyzers.
//
// Two inbound streams exist beyond direct agent traffic:
//
//   - Relay batches (DeliverPeerBatch): crowd-blended tuple batches a
//     relay forwards after its shuffler finished with them. They fold into
//     the local shards exactly like locally shuffled batches — the relay
//     already anonymized, shuffled and thresholded them — guarded by a
//     per-origin (epoch, seq) high-water mark so a retried or re-forwarded
//     batch is applied at most once.
//
//   - Peer contributions (MergePeerState): full local-state exports from
//     sibling analyzers, stored per origin and REPLACED when a newer
//     (epoch, seq) arrives. Replacement, not addition, is the idempotency
//     guard: applying one update twice, or applying a newer one after an
//     older one, leaves exactly one copy of the origin's data. Snapshot
//     builders fold the stored contributions in after the local shards, in
//     sorted origin order, so any one analyzer's build is deterministic;
//     and because the folded values are additive sufficient statistics,
//     every analyzer holding the same contribution set computes the same
//     model (bit-identical whenever the underlying sums are exact, e.g.
//     integral rewards — see DESIGN.md "Multi-node topology").
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"p2b/internal/transport"
)

// PeerSeq is a per-origin replication position: the boot epoch of the
// origin process and the last sequence number applied within it. Epochs
// exist because sequence numbers restart when the origin restarts; an
// update under a different epoch is always accepted.
type PeerSeq struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// Covers reports whether an incoming (epoch, seq) is already covered by
// p: same epoch and not newer. A different epoch is never covered — the
// origin rebooted and restarted its sequence. Both the inbound merge
// guard and the pull side of the digest round use this one predicate, so
// "would fetch" and "would reject" can never disagree.
func (p PeerSeq) Covers(epoch, seq uint64) bool {
	return p.Epoch == epoch && seq <= p.Seq
}

// peerContribution is one sibling analyzer's stored local-state export.
// The state is immutable once stored (replaced wholesale, never mutated),
// so snapshot builders may read it outside the peer lock.
type peerContribution struct {
	pos   PeerSeq
	state *PersistedState
}

// peerState is the Server's multi-analyzer bookkeeping, all guarded by mu
// except the atomic counters that telemetry samples.
type peerState struct {
	mu       sync.Mutex
	contribs map[string]*peerContribution // per sibling-analyzer origin
	relays   map[string]PeerSeq           // per relay-origin duplicate guard

	// version bumps on every applied merge, folding into Server.version()
	// so ETags and snapshot caches invalidate when peer state changes.
	version atomic.Uint64

	mergesApplied   atomic.Int64
	mergesRejected  atomic.Int64
	relayBatches    atomic.Int64
	relayDuplicates atomic.Int64
}

// PeerStatus is the replication view of one analyzer: the aggregate
// counters (what /metrics exports) plus per-origin positions (what the
// JSON surfaces add on top).
type PeerStatus struct {
	MergesApplied   int64 `json:"merges_applied"`   // peer updates stored or replaced
	MergesRejected  int64 `json:"merges_rejected"`  // stale/duplicate peer updates ignored
	RelayBatches    int64 `json:"relay_batches"`    // relay batches folded into local shards
	RelayDuplicates int64 `json:"relay_duplicates"` // relay batches suppressed by the (epoch, seq) guard

	Contributions []PeerOriginStatus `json:"contributions,omitempty"` // stored sibling-analyzer state
	RelayStreams  []PeerOriginStatus `json:"relay_streams,omitempty"` // relay duplicate-guard positions
}

// PeerOriginStatus is one origin's replication position.
type PeerOriginStatus struct {
	Origin string `json:"origin"`
	Epoch  uint64 `json:"epoch"`
	Seq    uint64 `json:"seq"`
	// Tuples is the tuple count inside a stored contribution (0 for relay
	// streams, whose tuples are already counted in the local shards).
	Tuples int64 `json:"tuples,omitempty"`
}

// DeliverPeerBatch folds one relay-forwarded batch into the local shards,
// unless the per-origin guard has already seen (epoch, seq) — a retry or a
// relay re-forwarding its WAL tail — in which case nothing is applied and
// false is returned. Batches from one origin must arrive in seq order
// (the relay's forwarder serializes sends); the guard is a high-water
// mark, not a set.
func (s *Server) DeliverPeerBatch(origin string, epoch, seq uint64, batch []transport.Tuple) bool {
	s.peers.mu.Lock()
	if last, ok := s.peers.relays[origin]; ok && last.Covers(epoch, seq) {
		s.peers.mu.Unlock()
		s.peers.relayDuplicates.Add(1)
		return false
	}
	s.peers.relays[origin] = PeerSeq{Epoch: epoch, Seq: seq}
	s.peers.mu.Unlock()
	s.Deliver(batch)
	s.peers.relayBatches.Add(1)
	return true
}

// PeerBatchSeen reports whether (origin, epoch, seq) is already covered by
// the relay duplicate guard, without applying anything. The durable path
// checks this before logging a peer batch so duplicates never reach the
// WAL.
func (s *Server) PeerBatchSeen(origin string, epoch, seq uint64) bool {
	s.peers.mu.Lock()
	defer s.peers.mu.Unlock()
	last, ok := s.peers.relays[origin]
	return ok && last.Covers(epoch, seq)
}

// NoteRelayDuplicate counts one relay batch suppressed outside
// DeliverPeerBatch. The durable path dedups with PeerBatchSeen before
// logging (so duplicates never reach the WAL) and must report the
// suppression here, or /peer/status would undercount duplicates on
// durable analyzers relative to in-memory ones.
func (s *Server) NoteRelayDuplicate() {
	s.peers.relayDuplicates.Add(1)
}

// MergePeerState stores one sibling analyzer's local-state export,
// replacing any older contribution from the same origin. It returns
// (false, nil) when the update is stale — same epoch, sequence not newer
// than what is stored — which is how a double-applied peer push is
// rejected. The state's shape must match this server's configuration.
func (s *Server) MergePeerState(origin string, epoch, seq uint64, ps *PersistedState) (bool, error) {
	if origin == "" {
		return false, fmt.Errorf("server: peer update has no origin")
	}
	if ps == nil {
		return false, fmt.Errorf("server: peer update from %q has no state", origin)
	}
	if ps.K != s.cfg.K || ps.Arms != s.cfg.Arms || ps.D != s.cfg.D {
		return false, fmt.Errorf("server: peer %q shape k=%d arms=%d d=%d, server configured k=%d arms=%d d=%d",
			origin, ps.K, ps.Arms, ps.D, s.cfg.K, s.cfg.Arms, s.cfg.D)
	}
	n := s.cfg.K * s.cfg.Arms
	if len(ps.CellCount) != n || len(ps.CellSum) != n {
		return false, fmt.Errorf("server: peer %q tabular cells %d/%d, want %d", origin, len(ps.CellCount), len(ps.CellSum), n)
	}
	if err := ps.Lin.validate("peer lin", s.cfg.Arms, s.cfg.D); err != nil {
		return false, err
	}
	if ps.Cent != nil {
		if err := ps.Cent.validate("peer cent", s.cfg.Arms, s.cfg.D); err != nil {
			return false, err
		}
	}
	s.peers.mu.Lock()
	if cur, ok := s.peers.contribs[origin]; ok && cur.pos.Covers(epoch, seq) {
		s.peers.mu.Unlock()
		s.peers.mergesRejected.Add(1)
		return false, nil
	}
	s.peers.contribs[origin] = &peerContribution{pos: PeerSeq{Epoch: epoch, Seq: seq}, state: ps}
	s.peers.mu.Unlock()
	s.peers.version.Add(1)
	s.peers.mergesApplied.Add(1)
	return true, nil
}

// PeerStatus returns the replication counters and per-origin positions.
// The aggregate counters are the same atomics the /metrics collectors
// sample, so the JSON and Prometheus views cannot drift.
func (s *Server) PeerStatus() PeerStatus {
	st := PeerStatus{
		MergesApplied:   s.peers.mergesApplied.Load(),
		MergesRejected:  s.peers.mergesRejected.Load(),
		RelayBatches:    s.peers.relayBatches.Load(),
		RelayDuplicates: s.peers.relayDuplicates.Load(),
	}
	s.peers.mu.Lock()
	for origin, c := range s.peers.contribs {
		st.Contributions = append(st.Contributions, PeerOriginStatus{
			Origin: origin, Epoch: c.pos.Epoch, Seq: c.pos.Seq, Tuples: c.state.Tuples,
		})
	}
	for origin, pos := range s.peers.relays {
		st.RelayStreams = append(st.RelayStreams, PeerOriginStatus{
			Origin: origin, Epoch: pos.Epoch, Seq: pos.Seq,
		})
	}
	s.peers.mu.Unlock()
	sort.Slice(st.Contributions, func(i, j int) bool { return st.Contributions[i].Origin < st.Contributions[j].Origin })
	sort.Slice(st.RelayStreams, func(i, j int) bool { return st.RelayStreams[i].Origin < st.RelayStreams[j].Origin })
	return st
}

// PeerContribution returns one stored sibling-analyzer contribution: its
// replication position and the state itself. The state is immutable once
// stored (replacement semantics), so callers — the /peer/contrib route
// serializing it to a digest-round puller — may read it without holding
// any lock. ok is false when no contribution from origin is stored.
func (s *Server) PeerContribution(origin string) (pos PeerSeq, state *PersistedState, ok bool) {
	s.peers.mu.Lock()
	defer s.peers.mu.Unlock()
	c, ok := s.peers.contribs[origin]
	if !ok {
		return PeerSeq{}, nil, false
	}
	return c.pos, c.state, true
}

// PeerCounters returns the lock-free aggregate replication counters, the
// atomic mirrors the /metrics collectors read.
func (s *Server) PeerCounters() (mergesApplied, mergesRejected, relayBatches, relayDuplicates int64) {
	return s.peers.mergesApplied.Load(), s.peers.mergesRejected.Load(),
		s.peers.relayBatches.Load(), s.peers.relayDuplicates.Load()
}

// peerContributions returns the stored contributions sorted by origin.
// The returned states are immutable; only the slice is copied under the
// lock, so snapshot builders fold without holding it.
func (s *Server) peerContributions() []*peerContribution {
	s.peers.mu.Lock()
	defer s.peers.mu.Unlock()
	if len(s.peers.contribs) == 0 {
		return nil
	}
	origins := make([]string, 0, len(s.peers.contribs))
	for o := range s.peers.contribs {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	out := make([]*peerContribution, len(origins))
	for i, o := range origins {
		out[i] = s.peers.contribs[o]
	}
	return out
}

// LocalVersion returns the mutation counter of the LOCAL state only —
// shard ingestion, excluding peer merges. The peering loop keys its
// push-skipping on it: a node whose only change is inbound peer state has
// nothing new to offer its peers.
func (s *Server) LocalVersion() uint64 {
	var v uint64
	for i := range s.shards {
		v += s.shards[i].version.Load()
	}
	return v
}
