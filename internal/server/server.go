// Package server implements P2B's analyzer: the central component that
// folds privacy-scrubbed batches into a global model and hands snapshots to
// agents that want a warm start.
//
// Two global models are maintained:
//
//   - a tabular model over (code, action) cells, fed by the shuffler — this
//     is the production P2B path;
//   - a LinUCB model over raw contexts, fed directly by agents — this is
//     the non-private baseline the paper compares against.
//
// A single experiment only exercises one of the two, but keeping both in
// one server keeps the evaluation harness symmetrical.
//
// # Sharded ingestion
//
// Ingestion does not funnel through one global lock: the server keeps a
// configurable number of shards, each holding its own additive accumulators
// (tabular (count, sum) cells, and per-arm (sum x x^T, sum r x, n) for the
// linear models). A Deliver or IngestRaw call locks exactly one shard —
// chosen round-robin — so concurrent calls from worker goroutines proceed
// in parallel. Snapshots merge the shards on read; because all accumulators
// are additive, the merge is exact. Merged snapshots are cached against a
// mutation version counter, so the common many-snapshots-between-batches
// pattern costs one merge plus cheap copies.
package server

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"p2b/internal/bandit"
	"p2b/internal/mat"
	"p2b/internal/transport"
)

// Decoder maps an encoded context back to a representative vector in the
// context space (a cluster centroid or grid point). When a decoder is
// configured, the server additionally maintains a LinUCB model over decoded
// contexts — the centroid-learner variant of the private pipeline.
type Decoder interface {
	Decode(code int) []float64
}

// DecoderTo is the allocation-free variant of Decoder. Decoders that
// implement it (like the k-means encoder) let the ingestion path reuse a
// per-shard buffer instead of allocating one vector per tuple.
type DecoderTo interface {
	DecodeTo(dst []float64, code int) []float64
}

// Config describes the model shapes the server maintains.
type Config struct {
	K     int     // code space size of the tabular model
	Arms  int     // number of actions
	D     int     // raw context dimension of the LinUCB baseline model
	Alpha float64 // exploration parameter baked into distributed snapshots
	Seed  uint64  // retained for compatibility; ingestion itself is seedless
	// Decoder, when non-nil, enables the centroid global model: delivered
	// tuples also update a LinUCB over Decode(code) contexts.
	Decoder Decoder
	// Shards is the number of ingestion shards (default: GOMAXPROCS,
	// capped at 16). More shards admit more concurrent Deliver/IngestRaw
	// calls at the cost of proportionally more accumulator memory.
	Shards int
}

// Stats counts what the server has ingested and how the snapshot read
// path is behaving: a healthy steady-state fleet shows SnapshotHits
// growing much faster than SnapshotBuilds (reads share one build per
// model version).
type Stats struct {
	TuplesIngested int64 // encoded tuples from the shuffler
	RawIngested    int64 // raw tuples from the non-private baseline
	Snapshots      int64 // snapshots served
	SnapshotHits   int64 // snapshot fetches answered from the shared cache
	SnapshotBuilds int64 // snapshot rebuilds (model version advanced)
}

// linAccum is an additive sufficient-statistics accumulator for one LinUCB
// model: per arm, the outer-product sum (without the identity ridge), the
// reward-weighted context sum and the observation count. Accumulators from
// different shards merge by plain addition; the ridge identity and the
// matrix inverse are applied once at snapshot time.
type linAccum struct {
	a []*mat.Dense
	b []mat.Vec
	n []int64
}

func newLinAccum(arms, d int) *linAccum {
	acc := &linAccum{
		a: make([]*mat.Dense, arms),
		b: make([]mat.Vec, arms),
		n: make([]int64, arms),
	}
	for i := range acc.a {
		acc.a[i] = mat.NewDense(d)
		acc.b[i] = mat.NewVec(d)
	}
	return acc
}

func (acc *linAccum) add(x mat.Vec, action int, reward float64) {
	acc.a[action].AddOuter(x, 1)
	acc.b[action].AddScaled(reward, x)
	acc.n[action]++
}

// tabCell packs one (code, action) cell's pull count and reward sum into
// 16 adjacent bytes, so ingesting a tuple touches a single cache line and
// costs a single bounds check.
type tabCell struct {
	count float64
	sum   float64
}

// shard is one stripe of the global model. All fields but version are
// guarded by mu.
type shard struct {
	mu      sync.Mutex
	cells   []tabCell // (code, action) cells, indexed code*Arms+action
	lin     *linAccum // raw-context baseline model
	cent    *linAccum // decoded-context model; nil without a Decoder
	decBuf  []float64 // DecodeTo scratch
	tuples  int64     // encoded tuples folded into this shard
	raw     int64     // raw tuples folded into this shard
	version atomic.Uint64
	_       [8]uint64 // padding to keep shard locks off shared cache lines
}

// Server aggregates interaction reports into global models. All methods
// are safe for concurrent use.
type Server struct {
	cfg   Config
	epoch uint64 // boot nonce qualifying ModelVersion across restarts

	shards []shard
	// hint is the shard an uncontended caller keeps reusing. Affinity
	// matters: consecutive batches from one goroutine then land in cells
	// that are already cache-hot, and a lone caller stays deterministic.
	// Contention moves callers to other shards via TryLock.
	hint      atomic.Uint32
	snapshots atomic.Int64
	// Atomic mirrors of the ingestion counters, maintained alongside the
	// mu-guarded per-shard fields: telemetry scrapes (and anything else
	// that wants a cheap read) get lock-free totals without sweeping the
	// shard locks like full Stats does. One atomic add per Deliver batch,
	// not per tuple.
	delivered  atomic.Int64 // tuples folded by Deliver
	rawTuples  atomic.Int64 // raw baseline tuples folded by IngestRaw
	contention atomic.Int64 // acquireShard calls that left their hint shard

	tabCache  snapshotCache[*bandit.TabularState]
	linCache  snapshotCache[*bandit.LinUCBState]
	centCache snapshotCache[*bandit.LinUCBState]

	// peers holds the multi-analyzer state: relay duplicate guards and
	// stored sibling-analyzer contributions (see peer.go).
	peers peerState

	decodeTo func(dst []float64, code int) []float64 // nil without Decoder
}

// snapshotCache memoizes the merged snapshot of one model kind against the
// server's mutation version. The cached master is immutable once published:
// a read at an unchanged version is one atomic load returning the shared
// value (no copy, no lock), and concurrent reads crossing a version bump
// collapse into a single build (singleflight) whose result they all share.
type snapshotCache[T any] struct {
	cur    atomic.Pointer[snapshotEntry[T]]
	mu     sync.Mutex // serializes rebuilds
	hits   atomic.Int64
	builds atomic.Int64
}

type snapshotEntry[T any] struct {
	version uint64
	state   T
}

// get returns the shared snapshot for version, building it at most once
// per version bump. Every caller at one version receives the same value;
// it must be treated as immutable (bandit state Clone is the explicit
// mutable-copy API).
func (c *snapshotCache[T]) get(version uint64, build func() T) T {
	if e := c.cur.Load(); e != nil && e.version == version {
		c.hits.Add(1)
		return e.state
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.cur.Load(); e != nil && e.version == version {
		c.hits.Add(1)
		return e.state
	}
	st := build()
	c.builds.Add(1)
	c.cur.Store(&snapshotEntry[T]{version: version, state: st})
	return st
}

// epochClock seeds the boot nonce in New. It is the package's only
// wall-clock seam: the epoch qualifies model versions across restarts
// but never reaches model state, and tests can pin it for reproducible
// version strings.
var epochClock = time.Now

// New returns a server with empty global models.
func New(cfg Config) *Server {
	if cfg.K <= 0 || cfg.Arms <= 0 || cfg.D <= 0 {
		panic(fmt.Sprintf("server: invalid config K=%d Arms=%d D=%d", cfg.K, cfg.Arms, cfg.D))
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 16 {
			cfg.Shards = 16
		}
	}
	s := &Server{cfg: cfg, epoch: uint64(epochClock().UnixNano()), shards: make([]shard, cfg.Shards)}
	s.peers.contribs = make(map[string]*peerContribution)
	s.peers.relays = make(map[string]PeerSeq)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.cells = make([]tabCell, cfg.K*cfg.Arms)
		sh.lin = newLinAccum(cfg.Arms, cfg.D)
		if cfg.Decoder != nil {
			sh.cent = newLinAccum(cfg.Arms, cfg.D)
			sh.decBuf = make([]float64, cfg.D)
		}
	}
	if cfg.Decoder != nil {
		if dt, ok := cfg.Decoder.(DecoderTo); ok {
			s.decodeTo = dt.DecodeTo
		} else {
			s.decodeTo = func(dst []float64, code int) []float64 {
				return cfg.Decoder.Decode(code)
			}
		}
	}
	return s
}

// acquireShard returns a locked shard. It first tries the hint shard and,
// when that is contended, the remaining shards in order, settling the hint
// on whichever lock it wins; if every shard is busy it blocks on the hint.
// A single caller therefore always lands on the same warm shard, while
// concurrent callers spread across shards automatically.
func (s *Server) acquireShard() *shard {
	n := uint32(len(s.shards))
	hint := s.hint.Load() % n
	for i := uint32(0); i < n; i++ {
		idx := (hint + i) % n
		sh := &s.shards[idx]
		if sh.mu.TryLock() {
			if i != 0 {
				// The hint shard was contended: count the displacement. The
				// counter growing in step with Deliver calls means the shard
				// count, not the models, is the ingestion bottleneck.
				s.contention.Add(1)
				s.hint.Store(idx)
			}
			return sh
		}
	}
	s.contention.Add(1)
	sh := &s.shards[hint]
	sh.mu.Lock()
	return sh
}

// version returns a counter that changes on every mutation — local shard
// ingestion or an applied peer merge — keying the snapshot caches and the
// model ETag.
func (s *Server) version() uint64 {
	var v uint64
	for i := range s.shards {
		v += s.shards[i].version.Load()
	}
	return v + s.peers.version.Load()
}

// ModelVersion returns the monotonic version of the global models: it
// increases on every ingestion (Deliver or IngestRaw) and never decreases
// within one server process. The HTTP model route uses it as the ETag
// value, so a fleet polling an unchanged model is answered with 304s
// instead of payloads.
func (s *Server) ModelVersion() uint64 { return s.version() }

// ModelEpoch returns the server's boot nonce. The version counter is
// in-memory and restarts from near zero after a crash recovery, so an ETag
// built from the version alone could collide across restarts and validate
// a stale client model with a false 304; qualifying the tag with the epoch
// makes every restart invalidate fleet caches instead (one cheap re-fetch
// per client, always correct).
func (s *Server) ModelEpoch() uint64 { return s.epoch }

// Deliver folds one shuffled batch into the tabular global model (and the
// centroid model when a decoder is configured). It implements
// shuffler.Sink: the batch is only read during the call, so the shuffler is
// free to reuse its buffer afterwards. The whole batch lands in a single
// shard; concurrent Deliver calls proceed on distinct shards in parallel.
func (s *Server) Deliver(batch []transport.Tuple) {
	sh := s.acquireShard()
	k, arms := uint(s.cfg.K), uint(s.cfg.Arms)
	narms := s.cfg.Arms
	cells := sh.cells
	ingested := int64(0)
	if sh.cent == nil {
		// Tabular-only fast path: one bounds check, one cache line and a
		// branchless clamp per tuple. Malformed tuples (buggy or malicious
		// clients) are dropped rather than corrupting the model.
		for bi := range batch {
			t := &batch[bi]
			if uint(t.Code) >= k || uint(t.Action) >= arms {
				continue
			}
			cell := &cells[t.Code*narms+t.Action]
			cell.count++
			cell.sum += clampReward(t.Reward)
			ingested++
		}
	} else {
		for bi := range batch {
			t := &batch[bi]
			if uint(t.Code) >= k || uint(t.Action) >= arms {
				continue
			}
			reward := clampReward(t.Reward)
			cell := &cells[t.Code*narms+t.Action]
			cell.count++
			cell.sum += reward
			sh.decBuf = s.decodeTo(sh.decBuf, t.Code)
			sh.cent.add(sh.decBuf, t.Action, reward)
			ingested++
		}
	}
	sh.tuples += ingested
	sh.version.Add(1)
	sh.mu.Unlock()
	s.delivered.Add(ingested)
}

// IngestRaw folds one unencoded observation into the LinUCB baseline model
// (the "warm and non-private" arm of the evaluation).
func (s *Server) IngestRaw(t transport.RawTuple) error {
	if len(t.Context) != s.cfg.D {
		return fmt.Errorf("server: raw context dimension %d, want %d", len(t.Context), s.cfg.D)
	}
	if t.Action < 0 || t.Action >= s.cfg.Arms {
		return fmt.Errorf("server: raw action %d out of range [0, %d)", t.Action, s.cfg.Arms)
	}
	for i, v := range t.Context {
		// A single non-finite component would poison the additive design
		// matrix forever and surface only later, as a panic when a
		// snapshot tries to invert it — reject it at the door instead.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("server: raw context component %d is not finite", i)
		}
	}
	sh := s.acquireShard()
	sh.lin.add(t.Context, t.Action, clampReward(t.Reward))
	sh.raw++
	sh.version.Add(1)
	sh.mu.Unlock()
	s.rawTuples.Add(1)
	return nil
}

// TabularSnapshot returns a private deep copy of the global tabular model:
// the explicit-copy API for callers that want to mutate. Distribution paths
// (warm starts, the HTTP model route) use TabularModel and share one build.
func (s *Server) TabularSnapshot() *bandit.TabularState {
	st, _ := s.TabularModel()
	return st.Clone()
}

// TabularModel returns the shared immutable tabular snapshot together with
// the model version it is keyed under. Every caller at one version receives
// the same value and must treat it as read-only (Clone for a mutable copy;
// warm-starting a learner already copies). An ingestion racing the call may
// already be included in the snapshot while the version predates it; the
// version then changes again once the race settles, so a poller never gets
// stuck on a stale tag.
func (s *Server) TabularModel() (*bandit.TabularState, uint64) {
	s.snapshots.Add(1)
	v := s.version()
	return s.tabCache.get(v, s.buildTabular), v
}

func (s *Server) buildTabular() *bandit.TabularState {
	st := &bandit.TabularState{
		Alpha: s.cfg.Alpha,
		K:     s.cfg.K,
		Arms:  s.cfg.Arms,
		Count: make([]float64, s.cfg.K*s.cfg.Arms),
		Sum:   make([]float64, s.cfg.K*s.cfg.Arms),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j, c := range sh.cells {
			st.Count[j] += c.count
			st.Sum[j] += c.sum
		}
		sh.mu.Unlock()
	}
	// Peer contributions fold after the local shards, in sorted origin
	// order, so a given contribution set always merges the same way.
	for _, pc := range s.peerContributions() {
		for j := range st.Count {
			st.Count[j] += pc.state.CellCount[j]
			st.Sum[j] += pc.state.CellSum[j]
		}
	}
	return st
}

// LinUCBSnapshot returns a private deep copy of the global LinUCB model
// (see TabularSnapshot for the copy semantics).
func (s *Server) LinUCBSnapshot() *bandit.LinUCBState {
	st, _ := s.LinUCBModel()
	return st.Clone()
}

// LinUCBModel returns the shared immutable LinUCB baseline snapshot
// together with the model version it is keyed under (see TabularModel for
// the sharing and race semantics).
func (s *Server) LinUCBModel() (*bandit.LinUCBState, uint64) {
	s.snapshots.Add(1)
	v := s.version()
	return s.linCache.get(v, func() *bandit.LinUCBState {
		return s.buildLin(
			func(sh *shard) *linAccum { return sh.lin },
			func(ps *PersistedState) *LinAccumState { return &ps.Lin },
		)
	}), v
}

// CentroidSnapshot returns a private deep copy of the centroid global model,
// or nil when the server was built without a Decoder.
func (s *Server) CentroidSnapshot() *bandit.LinUCBState {
	st, _ := s.CentroidModel()
	if st == nil {
		return nil
	}
	return st.Clone()
}

// CentroidModel returns the shared immutable centroid snapshot together
// with the model version it is keyed under (see TabularModel for the
// sharing and race semantics). The snapshot is nil when the server was
// built without a Decoder.
func (s *Server) CentroidModel() (*bandit.LinUCBState, uint64) {
	if s.cfg.Decoder == nil {
		return nil, s.version()
	}
	s.snapshots.Add(1)
	v := s.version()
	return s.centCache.get(v, func() *bandit.LinUCBState {
		return s.buildLin(
			func(sh *shard) *linAccum { return sh.cent },
			func(ps *PersistedState) *LinAccumState { return ps.Cent },
		)
	}), v
}

// buildLin merges the selected accumulator across shards — then folds the
// matching accumulator of every stored peer contribution, in sorted origin
// order — and converts the sufficient statistics into snapshot form:
// A_a = I + sum x x^T, inverted once per arm (direct inversion here is
// both cheaper and more accurate than replaying thousands of rank-1
// updates). pickPeer may return nil for a contribution that lacks the
// accumulator (a peer without a decoder), which skips it.
func (s *Server) buildLin(pick func(*shard) *linAccum, pickPeer func(*PersistedState) *LinAccumState) *bandit.LinUCBState {
	arms, d := s.cfg.Arms, s.cfg.D
	aSum := make([]*mat.Dense, arms)
	st := &bandit.LinUCBState{
		Alpha: s.cfg.Alpha,
		D:     d,
		Arms:  arms,
		AInv:  make([][]float64, arms),
		B:     make([][]float64, arms),
		N:     make([]int64, arms),
	}
	for a := 0; a < arms; a++ {
		aSum[a] = mat.NewDense(d)
		st.B[a] = make([]float64, d)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		acc := pick(sh)
		for a := 0; a < arms; a++ {
			aSum[a].Add(acc.a[a])
			mat.Vec(st.B[a]).AddScaled(1, acc.b[a])
			st.N[a] += acc.n[a]
		}
		sh.mu.Unlock()
	}
	for _, pc := range s.peerContributions() {
		acc := pickPeer(pc.state)
		if acc == nil {
			continue
		}
		for a := 0; a < arms; a++ {
			for i, v := range acc.A[a] {
				aSum[a].Data[i] += v
			}
			for i, v := range acc.B[a] {
				st.B[a][i] += v
			}
			st.N[a] += acc.N[a]
		}
	}
	invertArms(st, aSum, d, 0)
	return st
}

// invertArms applies the ridge identity to every merged design matrix and
// inverts it into st.AInv, spreading arms across workers when the total
// work is large enough to pay for goroutines. Arms are independent, so any
// schedule produces bit-identical results. workers <= 0 selects
// GOMAXPROCS.
//
// The ridge is applied after the merge, not before: the outer-product sums
// then accumulate in pure shard order, so a merged-on-write export (which
// sums shards the same way) is bit-identical to what this builder sees.
// Seeding with the identity would entangle the ridge with the merge's
// rounding.
func invertArms(st *bandit.LinUCBState, aSum []*mat.Dense, d, workers int) {
	arms := len(aSum)
	errs := make([]error, arms)
	invert := func(a int) {
		for i := 0; i < d; i++ {
			aSum[a].Data[i*d+i]++
		}
		inv, err := aSum[a].Inverse()
		if err != nil {
			errs[a] = err
			return
		}
		st.AInv[a] = inv.Data
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > arms {
		workers = arms
	}
	// Each inversion is O(d^3); below ~64k total flops the goroutine
	// handoff costs more than it saves.
	if workers < 2 || arms*d*d*d < 1<<16 {
		for a := 0; a < arms; a++ {
			invert(a)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					a := int(next.Add(1)) - 1
					if a >= arms {
						return
					}
					invert(a)
				}
			}()
		}
		wg.Wait()
	}
	for a, err := range errs {
		if err != nil {
			// I + PSD is positive definite; failure means the accumulators
			// were poisoned with non-finite contexts. Panic from the calling
			// goroutine so the failure stays catchable.
			panic(fmt.Sprintf("server: global design matrix of arm %d not invertible: %v", a, err))
		}
	}
}

// IngestCounters returns lock-free ingestion totals: tuples delivered
// through the privacy pipeline, raw baseline tuples, and how many shard
// acquisitions were displaced by contention. These are the atomic mirrors
// telemetry scrapes read, so a /metrics pull never serializes against
// Deliver the way a full Stats sweep would.
func (s *Server) IngestCounters() (delivered, raw, contention int64) {
	return s.delivered.Load(), s.rawTuples.Load(), s.contention.Load()
}

// SnapshotCacheStats returns just the snapshot-cache counters. Unlike
// Stats it touches no ingestion shard — the counters are atomics — so
// high-frequency probes (every device's /healthz preflight) never
// serialize against Deliver/IngestRaw on the hot path.
func (s *Server) SnapshotCacheStats() (hits, builds int64) {
	hits = s.tabCache.hits.Load() + s.linCache.hits.Load() + s.centCache.hits.Load()
	builds = s.tabCache.builds.Load() + s.linCache.builds.Load() + s.centCache.builds.Load()
	return hits, builds
}

// Stats returns a snapshot of the ingestion counters.
func (s *Server) Stats() Stats {
	st := Stats{Snapshots: s.snapshots.Load()}
	st.SnapshotHits, st.SnapshotBuilds = s.SnapshotCacheStats()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.TuplesIngested += sh.tuples
		st.RawIngested += sh.raw
		sh.mu.Unlock()
	}
	return st
}

// Config returns the server's model shapes (with the shard default
// filled in).
func (s *Server) Config() Config { return s.cfg }

// clampReward bounds client-reported rewards. The nominal bandit reward is
// in [0, 1], but the synthetic benchmark's Gaussian noise legitimately dips
// below zero, so the server accepts [-1, 1] and only rejects absurd values
// a malicious client could use to poison the global model.
func clampReward(v float64) float64 {
	// Plain comparisons beat the min/max builtins here: rewards are almost
	// always in range, so both branches predict perfectly, while the
	// builtins' NaN and signed-zero semantics cost extra instructions per
	// tuple. NaN fails both comparisons and is mapped to 0 so it cannot
	// spread through the additive cells.
	if v != v {
		return 0
	}
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}
