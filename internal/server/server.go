// Package server implements P2B's analyzer: the central component that
// folds privacy-scrubbed batches into a global model and hands snapshots to
// agents that want a warm start.
//
// Two global models are maintained:
//
//   - a tabular model over (code, action) cells, fed by the shuffler — this
//     is the production P2B path;
//   - a LinUCB model over raw contexts, fed directly by agents — this is
//     the non-private baseline the paper compares against.
//
// A single experiment only exercises one of the two, but keeping both in
// one server keeps the evaluation harness symmetrical.
package server

import (
	"fmt"
	"sync"

	"p2b/internal/bandit"
	"p2b/internal/rng"
	"p2b/internal/transport"
)

// Decoder maps an encoded context back to a representative vector in the
// context space (a cluster centroid or grid point). When a decoder is
// configured, the server additionally maintains a LinUCB model over decoded
// contexts — the centroid-learner variant of the private pipeline.
type Decoder interface {
	Decode(code int) []float64
}

// Config describes the model shapes the server maintains.
type Config struct {
	K     int     // code space size of the tabular model
	Arms  int     // number of actions
	D     int     // raw context dimension of the LinUCB baseline model
	Alpha float64 // exploration parameter baked into distributed snapshots
	Seed  uint64  // seed for the server-side models' tie-break streams
	// Decoder, when non-nil, enables the centroid global model: delivered
	// tuples also update a LinUCB over Decode(code) contexts.
	Decoder Decoder
}

// Stats counts what the server has ingested.
type Stats struct {
	TuplesIngested int64 // encoded tuples from the shuffler
	RawIngested    int64 // raw tuples from the non-private baseline
	Snapshots      int64 // snapshots served
}

// Server aggregates interaction reports into global models. All methods
// are safe for concurrent use.
type Server struct {
	cfg Config

	mu    sync.Mutex
	tab   *bandit.TabularUCB
	lin   *bandit.LinUCB
	cent  *bandit.LinUCB // over decoded contexts; nil without a Decoder
	stats Stats
}

// New returns a server with empty global models.
func New(cfg Config) *Server {
	if cfg.K <= 0 || cfg.Arms <= 0 || cfg.D <= 0 {
		panic(fmt.Sprintf("server: invalid config K=%d Arms=%d D=%d", cfg.K, cfg.Arms, cfg.D))
	}
	r := rng.New(cfg.Seed).Split("server")
	s := &Server{
		cfg: cfg,
		tab: bandit.NewTabularUCB(cfg.K, cfg.Arms, cfg.Alpha, r.Split("tabular")),
		lin: bandit.NewLinUCB(cfg.Arms, cfg.D, cfg.Alpha, r.Split("linear")),
	}
	if cfg.Decoder != nil {
		s.cent = bandit.NewLinUCB(cfg.Arms, cfg.D, cfg.Alpha, r.Split("centroid"))
	}
	return s
}

// Deliver folds one shuffled batch into the tabular global model (and the
// centroid model when a decoder is configured). It implements
// shuffler.Sink.
func (s *Server) Deliver(batch []transport.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range batch {
		if t.Code < 0 || t.Code >= s.cfg.K || t.Action < 0 || t.Action >= s.cfg.Arms {
			// A malformed tuple can only come from a buggy or malicious
			// client; drop it rather than corrupt the model.
			continue
		}
		reward := clampReward(t.Reward)
		s.tab.UpdateCode(t.Code, t.Action, reward)
		if s.cent != nil {
			s.cent.Update(s.cfg.Decoder.Decode(t.Code), t.Action, reward)
		}
		s.stats.TuplesIngested++
	}
}

// IngestRaw folds one unencoded observation into the LinUCB baseline model
// (the "warm and non-private" arm of the evaluation).
func (s *Server) IngestRaw(t transport.RawTuple) error {
	if len(t.Context) != s.cfg.D {
		return fmt.Errorf("server: raw context dimension %d, want %d", len(t.Context), s.cfg.D)
	}
	if t.Action < 0 || t.Action >= s.cfg.Arms {
		return fmt.Errorf("server: raw action %d out of range [0, %d)", t.Action, s.cfg.Arms)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lin.Update(t.Context, t.Action, clampReward(t.Reward))
	s.stats.RawIngested++
	return nil
}

// TabularSnapshot returns a deep copy of the global tabular model for
// distribution to private agents.
func (s *Server) TabularSnapshot() *bandit.TabularState {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Snapshots++
	return s.tab.State()
}

// LinUCBSnapshot returns a deep copy of the global LinUCB model for
// distribution to non-private agents.
func (s *Server) LinUCBSnapshot() *bandit.LinUCBState {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Snapshots++
	return s.lin.State()
}

// CentroidSnapshot returns a deep copy of the centroid global model for
// distribution to centroid-learner private agents. It returns nil when the
// server was built without a Decoder.
func (s *Server) CentroidSnapshot() *bandit.LinUCBState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cent == nil {
		return nil
	}
	s.stats.Snapshots++
	return s.cent.State()
}

// Stats returns a snapshot of the ingestion counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Config returns the server's model shapes.
func (s *Server) Config() Config { return s.cfg }

// clampReward bounds client-reported rewards. The nominal bandit reward is
// in [0, 1], but the synthetic benchmark's Gaussian noise legitimately dips
// below zero, so the server accepts [-1, 1] and only rejects absurd values
// a malicious client could use to poison the global model.
func clampReward(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}
