// Exact export/import of the server's accumulators for durable
// checkpoints.
//
// The export is merged-on-write: the per-shard additive accumulators are
// summed in shard order into one flat state, exactly the way the snapshot
// builders merge them. Importing loads the merged state into shard 0 and
// leaves the other shards zero, so a snapshot taken after reload adds the
// imported values to exact zeros — bit-identical to a snapshot of the
// server that was exported. (Bit-identity across a crash additionally
// requires the ingestion order to be reproduced, which the WAL guarantees
// for sequential ingestion; under concurrent ingestion shard assignment is
// scheduling-dependent and the recovered state equals some valid execution
// of the same tuple multiset.)
package server

import "fmt"

// LinAccumState is the serializable form of one LinUCB sufficient-statistics
// accumulator: per arm, the outer-product sum (row-major, without the
// identity ridge), the reward-weighted context sum, and the observation
// count.
type LinAccumState struct {
	A [][]float64 `json:"a"`
	B [][]float64 `json:"b"`
	N []int64     `json:"n"`
}

// PersistedState is the exact serializable form of the server's model
// state, merged across shards. It contains only additive sufficient
// statistics over anonymized tuples — no per-device information exists
// anywhere in the server to leak.
type PersistedState struct {
	K     int     `json:"k"`
	Arms  int     `json:"arms"`
	D     int     `json:"d"`
	Alpha float64 `json:"alpha"`

	CellCount []float64      `json:"cell_count"` // (code, action) pull counts, indexed code*Arms+action
	CellSum   []float64      `json:"cell_sum"`   // (code, action) reward sums
	Lin       LinAccumState  `json:"lin"`        // raw-context baseline accumulator
	Cent      *LinAccumState `json:"cent"`       // decoded-context accumulator; nil without a Decoder

	Tuples    int64 `json:"tuples"`
	Raw       int64 `json:"raw"`
	Snapshots int64 `json:"snapshots"`

	// Relays carries the per-relay-origin duplicate-guard positions across
	// checkpoints, so a restarted analyzer still rejects relay batches it
	// already folded in. Peer MERGE contributions are deliberately NOT part
	// of the export: they are soft state the anti-entropy loop repopulates
	// within one sync interval, and persisting them would let a stale copy
	// of a peer's data outlive the peer's own newer exports. The peering
	// push path strips this field before sending — a receiver stores the
	// update as the sender's contribution and must not inherit the sender's
	// dedup bookkeeping.
	Relays map[string]PeerSeq `json:"relays,omitempty"`
}

func exportLinAccum(dst *LinAccumState, acc *linAccum, arms, d int) {
	if dst.A == nil {
		dst.A = make([][]float64, arms)
		dst.B = make([][]float64, arms)
		dst.N = make([]int64, arms)
		for a := 0; a < arms; a++ {
			dst.A[a] = make([]float64, d*d)
			dst.B[a] = make([]float64, d)
		}
	}
	for a := 0; a < arms; a++ {
		for i, v := range acc.a[a].Data {
			dst.A[a][i] += v
		}
		for i, v := range acc.b[a] {
			dst.B[a][i] += v
		}
		dst.N[a] += acc.n[a]
	}
}

// ExportState returns the merged accumulator state. Shards are locked and
// summed in index order — the same order the snapshot builders use — so the
// exported values are bitwise the values a snapshot would have merged.
func (s *Server) ExportState() *PersistedState {
	ps := &PersistedState{
		K:         s.cfg.K,
		Arms:      s.cfg.Arms,
		D:         s.cfg.D,
		Alpha:     s.cfg.Alpha,
		CellCount: make([]float64, s.cfg.K*s.cfg.Arms),
		CellSum:   make([]float64, s.cfg.K*s.cfg.Arms),
		Snapshots: s.snapshots.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j, c := range sh.cells {
			ps.CellCount[j] += c.count
			ps.CellSum[j] += c.sum
		}
		exportLinAccum(&ps.Lin, sh.lin, s.cfg.Arms, s.cfg.D)
		if sh.cent != nil {
			if ps.Cent == nil {
				ps.Cent = &LinAccumState{}
			}
			exportLinAccum(ps.Cent, sh.cent, s.cfg.Arms, s.cfg.D)
		}
		ps.Tuples += sh.tuples
		ps.Raw += sh.raw
		sh.mu.Unlock()
	}
	s.peers.mu.Lock()
	if len(s.peers.relays) > 0 {
		ps.Relays = make(map[string]PeerSeq, len(s.peers.relays))
		for origin, pos := range s.peers.relays {
			ps.Relays[origin] = pos
		}
	}
	s.peers.mu.Unlock()
	return ps
}

func (st *LinAccumState) validate(name string, arms, d int) error {
	if len(st.A) != arms || len(st.B) != arms || len(st.N) != arms {
		return fmt.Errorf("server: %s accumulator has %d/%d/%d arms, want %d", name, len(st.A), len(st.B), len(st.N), arms)
	}
	for a := 0; a < arms; a++ {
		if len(st.A[a]) != d*d || len(st.B[a]) != d {
			return fmt.Errorf("server: %s accumulator arm %d has wrong shape", name, a)
		}
	}
	return nil
}

func importLinAccum(acc *linAccum, st *LinAccumState, arms int) {
	for a := 0; a < arms; a++ {
		copy(acc.a[a].Data, st.A[a])
		copy(acc.b[a], st.B[a])
		acc.n[a] = st.N[a]
	}
}

// ImportState loads an exported state into an empty server. The merged
// values land in shard 0; the remaining shards stay zero, so snapshots after
// the import reproduce the exported model bit-for-bit. Importing over a
// server that has already ingested anything is refused — recovery happens
// on boot, before the listener opens.
func (s *Server) ImportState(ps *PersistedState) error {
	if ps.K != s.cfg.K || ps.Arms != s.cfg.Arms || ps.D != s.cfg.D {
		return fmt.Errorf("server: persisted shape k=%d arms=%d d=%d, server configured k=%d arms=%d d=%d",
			ps.K, ps.Arms, ps.D, s.cfg.K, s.cfg.Arms, s.cfg.D)
	}
	n := s.cfg.K * s.cfg.Arms
	if len(ps.CellCount) != n || len(ps.CellSum) != n {
		return fmt.Errorf("server: persisted tabular cells %d/%d, want %d", len(ps.CellCount), len(ps.CellSum), n)
	}
	if err := ps.Lin.validate("lin", s.cfg.Arms, s.cfg.D); err != nil {
		return err
	}
	hasCent := s.cfg.Decoder != nil
	if hasCent != (ps.Cent != nil) {
		return fmt.Errorf("server: persisted centroid accumulator present=%v, server decoder present=%v", ps.Cent != nil, hasCent)
	}
	if ps.Cent != nil {
		if err := ps.Cent.validate("cent", s.cfg.Arms, s.cfg.D); err != nil {
			return err
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		empty := sh.tuples == 0 && sh.raw == 0
		sh.mu.Unlock()
		if !empty {
			return fmt.Errorf("server: refusing to import state into a server that already ingested data")
		}
	}

	sh := &s.shards[0]
	sh.mu.Lock()
	for j := range sh.cells {
		sh.cells[j] = tabCell{count: ps.CellCount[j], sum: ps.CellSum[j]}
	}
	importLinAccum(sh.lin, &ps.Lin, s.cfg.Arms)
	if ps.Cent != nil {
		importLinAccum(sh.cent, ps.Cent, s.cfg.Arms)
	}
	sh.tuples = ps.Tuples
	sh.raw = ps.Raw
	sh.version.Add(1) // invalidate any cached empty snapshot
	sh.mu.Unlock()
	s.peers.mu.Lock()
	for origin, pos := range ps.Relays {
		s.peers.relays[origin] = pos
	}
	s.peers.mu.Unlock()
	s.snapshots.Store(ps.Snapshots)
	return nil
}
