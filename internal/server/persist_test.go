package server

import (
	"sync"
	"testing"

	"p2b/internal/rng"
	"p2b/internal/transport"
)

// gridDecoder is a deterministic test decoder: code i maps to a fixed
// vector depending on i.
type gridDecoder struct{ d int }

func (g gridDecoder) Decode(code int) []float64 {
	v := make([]float64, g.d)
	for i := range v {
		v[i] = float64(code%7)/7 + float64(i)*0.01
	}
	return v
}

func randomBatches(n, batch, k, arms int, seed uint64) [][]transport.Tuple {
	r := rng.New(seed)
	out := make([][]transport.Tuple, n)
	for i := range out {
		b := make([]transport.Tuple, batch)
		for j := range b {
			b[j] = transport.Tuple{Code: r.IntN(k), Action: r.IntN(arms), Reward: r.Float64()}
		}
		out[i] = b
	}
	return out
}

func TestExportImportRoundTripBitIdentical(t *testing.T) {
	cfg := Config{K: 16, Arms: 4, D: 3, Alpha: 1.2, Decoder: gridDecoder{d: 3}, Shards: 1}
	a := New(cfg)
	for _, batch := range randomBatches(7, 33, cfg.K, cfg.Arms, 5) {
		a.Deliver(batch)
	}
	r := rng.New(6)
	for i := 0; i < 50; i++ {
		ctx := make([]float64, cfg.D)
		for j := range ctx {
			ctx[j] = r.Float64()
		}
		if err := a.IngestRaw(transport.RawTuple{Context: ctx, Action: r.IntN(cfg.Arms), Reward: r.Float64()}); err != nil {
			t.Fatal(err)
		}
	}

	b := New(cfg)
	if err := b.ImportState(a.ExportState()); err != nil {
		t.Fatalf("ImportState: %v", err)
	}

	assertSnapshotsBitIdentical(t, a, b)
	if as, bs := a.Stats(), b.Stats(); as.TuplesIngested != bs.TuplesIngested || as.RawIngested != bs.RawIngested {
		t.Fatalf("stats diverged: %+v vs %+v", as, bs)
	}
}

// Importing a prefix's state and then ingesting the suffix must reproduce an
// uninterrupted run bit-for-bit (sequential ingestion, so every write lands
// on the same shard in the same order).
func TestImportThenContinueMatchesCleanRun(t *testing.T) {
	cfg := Config{K: 8, Arms: 3, D: 2, Alpha: 1, Decoder: gridDecoder{d: 2}, Shards: 4}
	batches := randomBatches(10, 21, cfg.K, cfg.Arms, 11)

	clean := New(cfg)
	for _, batch := range batches {
		clean.Deliver(batch)
	}

	prefix := New(cfg)
	for _, batch := range batches[:6] {
		prefix.Deliver(batch)
	}
	resumed := New(cfg)
	if err := resumed.ImportState(prefix.ExportState()); err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches[6:] {
		resumed.Deliver(batch)
	}

	assertSnapshotsBitIdentical(t, clean, resumed)
}

// Export merges shards in the same order as the snapshot builders, so even
// after genuinely concurrent multi-shard ingestion, export → import →
// snapshot reproduces the source server's own snapshot bit-for-bit.
func TestExportMergesConcurrentShardsExactly(t *testing.T) {
	cfg := Config{K: 8, Arms: 3, D: 2, Alpha: 1, Shards: 4}
	a := New(cfg)
	batches := randomBatches(32, 17, cfg.K, cfg.Arms, 13)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, batch := range batches[w*8 : (w+1)*8] {
				a.Deliver(batch)
			}
		}(w)
	}
	wg.Wait()

	b := New(cfg)
	if err := b.ImportState(a.ExportState()); err != nil {
		t.Fatal(err)
	}
	assertSnapshotsBitIdentical(t, a, b)
}

func TestImportValidation(t *testing.T) {
	cfg := Config{K: 4, Arms: 2, D: 2, Alpha: 1, Shards: 1}
	src := New(cfg)
	src.Deliver([]transport.Tuple{{Code: 1, Action: 1, Reward: 0.5}})
	good := src.ExportState()

	// Shape mismatch.
	if err := New(Config{K: 5, Arms: 2, D: 2, Alpha: 1}).ImportState(good); err == nil {
		t.Fatal("want error for K mismatch")
	}
	// Truncated cells.
	bad := *good
	bad.CellCount = bad.CellCount[:3]
	if err := New(cfg).ImportState(&bad); err == nil {
		t.Fatal("want error for truncated cells")
	}
	// Centroid accumulator presence must match the decoder configuration.
	if err := New(Config{K: 4, Arms: 2, D: 2, Alpha: 1, Decoder: gridDecoder{d: 2}}).ImportState(good); err == nil {
		t.Fatal("want error importing decoder-less state into decoder server")
	}
	// Non-empty destination is refused.
	dst := New(cfg)
	dst.Deliver([]transport.Tuple{{Code: 0, Action: 0, Reward: 1}})
	if err := dst.ImportState(good); err == nil {
		t.Fatal("want error importing into a non-empty server")
	}
	// A clean destination still accepts it.
	if err := New(cfg).ImportState(good); err != nil {
		t.Fatalf("clean import failed: %v", err)
	}
}

func assertSnapshotsBitIdentical(t *testing.T, a, b *Server) {
	t.Helper()
	at, bt := a.TabularSnapshot(), b.TabularSnapshot()
	if at.K != bt.K || at.Arms != bt.Arms || at.Alpha != bt.Alpha {
		t.Fatalf("tabular shape diverged: %+v vs %+v", at, bt)
	}
	for i := range at.Count {
		if at.Count[i] != bt.Count[i] || at.Sum[i] != bt.Sum[i] {
			t.Fatalf("tabular cell %d diverged: (%v,%v) vs (%v,%v)", i, at.Count[i], at.Sum[i], bt.Count[i], bt.Sum[i])
		}
	}
	al, bl := a.LinUCBSnapshot(), b.LinUCBSnapshot()
	compareLin(t, "linucb", al.AInv, bl.AInv, al.B, bl.B, al.N, bl.N)
	ac, bc := a.CentroidSnapshot(), b.CentroidSnapshot()
	if (ac == nil) != (bc == nil) {
		t.Fatalf("centroid snapshot presence diverged")
	}
	if ac != nil {
		compareLin(t, "centroid", ac.AInv, bc.AInv, ac.B, bc.B, ac.N, bc.N)
	}
}

func compareLin(t *testing.T, name string, aInv, bInv, aB, bB [][]float64, aN, bN []int64) {
	t.Helper()
	for arm := range aInv {
		for i := range aInv[arm] {
			if aInv[arm][i] != bInv[arm][i] {
				t.Fatalf("%s AInv arm %d entry %d diverged: %v vs %v", name, arm, i, aInv[arm][i], bInv[arm][i])
			}
		}
		for i := range aB[arm] {
			if aB[arm][i] != bB[arm][i] {
				t.Fatalf("%s B arm %d entry %d diverged: %v vs %v", name, arm, i, aB[arm][i], bB[arm][i])
			}
		}
		if aN[arm] != bN[arm] {
			t.Fatalf("%s N arm %d diverged: %d vs %d", name, arm, aN[arm], bN[arm])
		}
	}
}
