package statdrift_test

import (
	"testing"

	"p2b/internal/analyzers/analysistest"
	"p2b/internal/analyzers/statdrift"
)

func TestStatdrift(t *testing.T) {
	analysistest.Run(t, "testdata", statdrift.Analyzer, "statdriftfix", "statdriftnosink")
}
