// Package statdriftfix seeds a drifted Func collector: the package
// serializes stats over JSON, one collector samples that same state,
// and one samples a type no stats route ever serializes.
package statdriftfix

import "encoding/json"

// stats is the state the JSON route serializes.
type stats struct {
	Hits uint64
}

// hidden is sampled by a collector but never serialized.
type hidden struct {
	misses uint64
}

// registry mimics the metrics registry's Func-collector API.
type registry struct{}

// CounterFunc registers a counter sampled by fn.
func (r *registry) CounterFunc(name string, fn func() uint64) {}

// GaugeFunc registers a gauge sampled by fn.
func (r *registry) GaugeFunc(name string, fn func() float64) {}

// payload is the JSON body of the stats route.
type payload struct {
	S stats `json:"s"`
}

// serve marshals the stats payload: the package's JSON surface.
func serve(p payload) ([]byte, error) {
	return json.Marshal(p)
}

// register wires collectors. The stats-backed one matches the JSON
// surface; the hidden-backed one has drifted.
func register(r *registry, s *stats, h *hidden) {
	r.CounterFunc("hits", func() uint64 { return s.Hits })
	r.CounterFunc("misses", func() uint64 { return h.misses }) // want `CounterFunc collector samples hidden, which no JSON stats route serializes`
}
