// Package statdriftnosink exposes collectors but serializes no JSON:
// with no stats route there is nothing to drift from, so statdrift must
// stay silent (the vacuous pass that keeps agent-side CLIs clean).
package statdriftnosink

// counters is agent-side state exposed only over /metrics.
type counters struct {
	sent uint64
}

// registry mimics the metrics registry's Func-collector API.
type registry struct{}

// CounterFunc registers a counter sampled by fn.
func (r *registry) CounterFunc(name string, fn func() uint64) {}

// Register wires a collector over state no JSON route serializes.
func Register(r *registry, c *counters) {
	r.CounterFunc("sent", func() uint64 { return c.sent })
}
