// Package statdrift implements the p2bvet analyzer backing the
// telemetry no-drift rule from PR 7: the Prometheus /metrics exposition
// must sample the same state the JSON stats routes serialize, so the
// two views of the node can never disagree.
//
// The rule is enforced at type granularity. For every
// CounterFunc/GaugeFunc registration (a func-literal collector), the
// analyzer collects the module-local named types the collector closure
// reads through selectors — those are the state sources feeding
// /metrics. Separately it builds the package's "JSON surface": starting
// from every function that reaches a JSON sink (writeJSON, json.Marshal,
// json.Encoder.Encode), it gathers the module-local named types those
// functions read, plus the transitive exported-field closure of the
// values actually serialized. Every collector source type must appear
// in the JSON surface; a collector sampling state no stats route
// serializes has drifted and is flagged.
//
// The runtime backstop is the metrics/JSON equivalence e2e test; this
// analyzer catches the drift at compile time, including for routes the
// e2e happens not to exercise.
package statdrift

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"p2b/internal/analyzers/analysis"
)

// Analyzer is the statdrift analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "statdrift",
	Doc: "every CounterFunc/GaugeFunc collector must sample state that a JSON stats " +
		"route also serializes (the telemetry no-drift rule)",
	Run: run,
}

// collectorMethods are the registration methods whose func-literal
// argument is a metrics collector.
var collectorMethods = map[string]bool{"CounterFunc": true, "GaugeFunc": true}

// jsonGraphDepth bounds the call-graph expansion from JSON sink
// functions through package-local callees.
const jsonGraphDepth = 4

func run(pass *analysis.Pass) (any, error) {
	jsonTypes, hasSink := jsonSurface(pass)
	if !hasSink {
		// The no-drift rule compares the /metrics view against the
		// package's JSON stats view. A package with no JSON sink
		// (e.g. an agent-side CLI exposing only /metrics) has nothing
		// to drift from.
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !collectorMethods[sel.Sel.Name] {
				return true
			}
			var closure *ast.FuncLit
			for _, arg := range call.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					closure = fl
				}
			}
			if closure == nil {
				return true
			}
			sources := localSelectorTypes(pass, closure)
			var missing []string
			for tn := range sources {
				if !jsonTypes[tn] {
					missing = append(missing, tn.Name())
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(closure.Pos(),
					"%s collector samples %s, which no JSON stats route serializes (no-drift rule)",
					sel.Sel.Name, strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil, nil
}

// jsonSurface computes the module-local named types reachable from the
// package's JSON-serializing functions, and whether the package has any
// JSON sink at all.
func jsonSurface(pass *analysis.Pass) (map[*types.TypeName]bool, bool) {
	// Index the package's function declarations by object so the
	// call graph can expand through package-local callees.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	// Seed: every top-level function whose body contains a JSON sink
	// call, plus the static types of the serialized values.
	surface := make(map[*types.TypeName]bool)
	graph := make(map[*ast.FuncDecl]bool)
	hasSink := false
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, ok := jsonSinkArg(pass, call)
			if !ok {
				return true
			}
			hasSink = true
			graph[fd] = true
			if arg != nil {
				if t := pass.TypesInfo.Types[arg].Type; t != nil {
					addSerializedClosure(pass, t, surface, 0)
				}
			}
			return true
		})
	}

	// Expand the graph through package-local callees a few hops, then
	// fold in every module-local type the graph bodies read.
	frontier := graph
	for depth := 0; depth < jsonGraphDepth && len(frontier) > 0; depth++ {
		next := make(map[*ast.FuncDecl]bool)
		for fd := range frontier {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				if callee, ok := decls[obj]; ok && !graph[callee] {
					graph[callee] = true
					next[callee] = true
				}
				return true
			})
		}
		frontier = next
	}
	for fd := range graph {
		for tn := range localSelectorTypes(pass, fd.Body) {
			surface[tn] = true
		}
	}
	return surface, hasSink
}

// jsonSinkArg reports whether call is a JSON sink and returns the
// serialized value expression when it is identifiable.
func jsonSinkArg(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "writeJSON" && len(call.Args) >= 1 {
			// The repo convention: writeJSON(w, v) or writeJSON(w, code, v);
			// the serialized value is the last argument.
			return call.Args[len(call.Args)-1], true
		}
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return nil, false
		}
		if fn.Pkg().Path() != "encoding/json" {
			return nil, false
		}
		switch fn.Name() {
		case "Marshal", "MarshalIndent", "Encode":
			if len(call.Args) >= 1 {
				return call.Args[0], true
			}
			return nil, true
		}
	}
	return nil, false
}

// addSerializedClosure adds t and the types reachable through its
// exported fields and element types — everything encoding/json would
// serialize from a value of type t.
func addSerializedClosure(pass *analysis.Pass, t types.Type, out map[*types.TypeName]bool, depth int) {
	if t == nil || depth > 6 {
		return
	}
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		tn := named.Obj()
		if isModuleLocal(pass, tn) {
			if out[tn] {
				return
			}
			out[tn] = true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		addSerializedClosure(pass, u.Elem(), out, depth+1)
	case *types.Slice:
		addSerializedClosure(pass, u.Elem(), out, depth+1)
	case *types.Array:
		addSerializedClosure(pass, u.Elem(), out, depth+1)
	case *types.Map:
		addSerializedClosure(pass, u.Elem(), out, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Exported() || f.Embedded() {
				addSerializedClosure(pass, f.Type(), out, depth+1)
			}
		}
	}
}

// localSelectorTypes returns the module-local named types that node
// reads through selector expressions (x.F, x.M()): the state types the
// code observes.
func localSelectorTypes(pass *analysis.Pass, node ast.Node) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[sel.X].Type
		if t == nil {
			return true
		}
		for {
			t = types.Unalias(t)
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			if tn := named.Obj(); isModuleLocal(pass, tn) {
				out[tn] = true
			}
		}
		return true
	})
	return out
}

// isModuleLocal reports whether tn is declared in this module (same
// package, or a package sharing the module's root path segment).
func isModuleLocal(pass *analysis.Pass, tn *types.TypeName) bool {
	pkg := tn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg == pass.Pkg {
		return true
	}
	return firstSegment(pkg.Path()) == firstSegment(pass.Pkg.Path())
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
