// Package analysis defines the minimal analyzer framework the p2bvet
// suite is built on.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function that inspects one type-checked package
// through a Pass and reports Diagnostics — so the five p2bvet analyzers
// read like standard vet analyzers and could be ported to the real
// framework mechanically. The module is dependency-free by policy
// (DESIGN.md), so the framework itself is rebuilt here on the standard
// library: packages are parsed with go/parser and type-checked with
// go/types (see p2b/internal/analyzers/load).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check. Run is invoked once per
// analyzed package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, in
	// //p2bvet:ignore suppressions, and in the -json budget report.
	// It must be a single lower-case word.
	Name string

	// Doc is the analyzer's one-paragraph contract: the invariant it
	// enforces and what a finding means. Shown by `p2bvet -help`.
	Doc string

	// Run inspects the package behind pass and calls pass.Report for
	// every violation. The returned value is ignored by the runner
	// (it exists so Run signatures match the x/tools shape); a
	// non-nil error aborts the whole vet run — reserve it for "the
	// analyzer itself is broken", never for findings.
	Run func(pass *Pass) (any, error)
}

// A Pass is the single-package view handed to Analyzer.Run: the parsed
// syntax, the type information, and the Report sink for diagnostics.
type Pass struct {
	// Analyzer is the check this pass is running.
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file positions. It is
	// shared across every package in the run.
	Fset *token.FileSet

	// Files holds the package's parsed non-test source files.
	// Test files (_test.go) are outside p2bvet's scope: the suite
	// guards shipped invariants, and tests legitimately use
	// wall-clocks and ad-hoc allocation.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo records types, definitions, uses and selections for
	// the expressions in Files.
	TypesInfo *types.Info

	// IsExhaustive reports whether the named type carries a
	// //p2bvet:exhaustive marker in its declaration doc comment
	// (possibly in another package of the run). Populated by the
	// loader; used by the walswitch analyzer.
	IsExhaustive func(tn *types.TypeName) bool

	// Report delivers one finding. The runner attaches suppression
	// handling and output formatting.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a fmt.Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position inside the analyzed package
// and a human-readable message stating the violated invariant.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
