// Package analysistest runs a p2bvet analyzer over committed fixture
// packages and checks its diagnostics against expectations written in
// the fixture source, mirroring golang.org/x/tools' analysistest:
//
//	rand.Intn(6) // want `global rand\.Intn call`
//
// A `// want` comment holds one or more backquoted or double-quoted
// regular expressions; the line must produce exactly that many
// diagnostics (ordered by column), each matching its pattern. A
// diagnostic on a line with no want comment is an unexpected finding;
// a want comment with no diagnostic is a missed one. Both fail the
// test, so fixtures document the analyzer's positive AND negative
// behavior.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"p2b/internal/analyzers/analysis"
	"p2b/internal/analyzers/load"
)

// Run loads each fixture package under dir (an analysistest-style
// tree: dir/src/<pkg>/...) with the fixture loader, applies the
// analyzer, and matches diagnostics against the // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := load.NewFixture(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		checkPackage(t, loader, a, pkg)
	}
}

type diag struct {
	pos token.Position
	msg string
}

func checkPackage(t *testing.T, loader *load.Loader, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	fset := loader.Fset()
	var got []diag
	pass := &analysis.Pass{
		Analyzer:     a,
		Fset:         fset,
		Files:        pkg.Files,
		Pkg:          pkg.Types,
		TypesInfo:    pkg.TypesInfo,
		IsExhaustive: loader.IsExhaustive,
		Report: func(d analysis.Diagnostic) {
			got = append(got, diag{pos: fset.Position(d.Pos), msg: d.Message})
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, pkg.Path, err)
	}

	want := collectWants(t, fset, pkg)

	// Group diagnostics by (file, line), ordered by column.
	byLine := make(map[lineKey][]diag)
	for _, d := range got {
		k := lineKey{d.pos.Filename, d.pos.Line}
		byLine[k] = append(byLine[k], d)
	}
	for k := range byLine {
		ds := byLine[k]
		sort.Slice(ds, func(i, j int) bool { return ds[i].pos.Column < ds[j].pos.Column })
	}

	for k, patterns := range want {
		ds := byLine[k]
		if len(ds) != len(patterns) {
			t.Errorf("%s:%d: want %d diagnostic(s), got %d: %s",
				k.file, k.line, len(patterns), len(ds), messages(ds))
			continue
		}
		for i, p := range patterns {
			if !p.MatchString(ds[i].msg) {
				t.Errorf("%s:%d: diagnostic %q does not match want pattern %q",
					k.file, k.line, ds[i].msg, p)
			}
		}
	}
	for k, ds := range byLine {
		if _, ok := want[k]; !ok {
			t.Errorf("%s:%d: unexpected diagnostic(s): %s", k.file, k.line, messages(ds))
		}
	}
}

type lineKey struct {
	file string
	line int
}

// wantRe matches one backquoted or double-quoted pattern in a want
// comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants scans fixture comments for `// want` expectations.
func collectWants(t *testing.T, fset *token.FileSet, pkg *load.Package) map[lineKey][]*regexp.Regexp {
	t.Helper()
	want := make(map[lineKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = unescape(m[2])
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					want[k] = append(want[k], re)
				}
				if len(want[k]) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern", pos)
				}
			}
		}
	}
	return want
}

// unescape undoes the backslash escapes of a double-quoted want
// pattern.
func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func messages(ds []diag) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = fmt.Sprintf("%q", d.msg)
	}
	return strings.Join(parts, ", ")
}
