package load

import (
	"go/types"
	"strings"
	"testing"
)

func TestFixtureCrossPackageLoad(t *testing.T) {
	l := NewFixture("testdata/src")
	app, err := l.Load("app")
	if err != nil {
		t.Fatal(err)
	}
	if app.Types.Name() != "app" {
		t.Fatalf("package name = %q, want app", app.Types.Name())
	}
	// The import resolved through the loader, not the stdlib importer.
	liba, err := l.Load("liba")
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Types.Imports()) != 1 || app.Types.Imports()[0] != liba.Types {
		t.Fatalf("app imports = %v, want the loader's liba package", app.Types.Imports())
	}
	// Loading is memoized: same package object both times.
	again, err := l.Load("app")
	if err != nil {
		t.Fatal(err)
	}
	if again != app {
		t.Fatal("Load did not memoize")
	}
}

func TestExhaustiveMarkerScan(t *testing.T) {
	l := NewFixture("testdata/src")
	liba, err := l.Load("liba")
	if err != nil {
		t.Fatal(err)
	}
	rec := liba.Types.Scope().Lookup("Rec").(*types.TypeName)
	plain := liba.Types.Scope().Lookup("Plain").(*types.TypeName)
	if !l.IsExhaustive(rec) {
		t.Error("Rec carries the marker but IsExhaustive = false")
	}
	if l.IsExhaustive(plain) {
		t.Error("Plain carries no marker but IsExhaustive = true")
	}
}

func TestLoadRejectsOutsideTree(t *testing.T) {
	l := NewFixture("testdata/src")
	if _, err := l.Load("no/such/pkg"); err == nil {
		t.Fatal("loading a missing path should error")
	}
}

func TestModuleLoad(t *testing.T) {
	l, err := New("../../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("p2b/internal/mat")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Path() != "p2b/internal/mat" {
		t.Fatalf("path = %q", pkg.Types.Path())
	}
	// _test.go files are out of scope by design.
	for _, f := range pkg.Files {
		name := l.Fset().Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Fatalf("loaded test file %s", name)
		}
	}
}
