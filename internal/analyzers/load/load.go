// Package load parses and type-checks the packages p2bvet analyzes.
//
// The module is dependency-free, so there is no golang.org/x/tools/go/packages
// to lean on. Instead the loader type-checks analyzed packages from
// source with go/types: imports inside the analyzed tree are resolved
// recursively through the same loader (so cross-package facts like
// //p2bvet:exhaustive markers are visible), and standard-library imports
// are satisfied by the compiler's source importer
// (go/importer.ForCompiler "source"), which type-checks stdlib packages
// from GOROOT source. Both directions share one token.FileSet so every
// diagnostic position is coherent.
//
// Scope: only non-test files are loaded. p2bvet guards shipped
// invariants; _test.go files legitimately use wall-clocks, global rand
// and ad-hoc allocation, and external test packages (foo_test) would
// force a dual-package model for no analyzer benefit.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package of the analyzed tree.
type Package struct {
	// Path is the package's import path ("p2b/internal/persist"), or
	// for fixture loaders the path relative to the fixture root.
	Path string
	// Dir is the directory the package was read from.
	Dir string
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records type facts for every expression in Files.
	TypesInfo *types.Info
}

// A Loader loads packages under one root directory, memoizing results
// so shared dependencies type-check once.
type Loader struct {
	fset       *token.FileSet
	rootDir    string
	modulePath string // "" for fixture loaders: import paths are root-relative
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
	exhaustive map[*types.TypeName]bool
}

// ExhaustiveMarker is the doc-comment annotation that opts a named type
// into walswitch's exhaustive-switch enforcement.
const ExhaustiveMarker = "//p2bvet:exhaustive"

// New returns a loader for the Go module rooted at rootDir. The module
// path is read from go.mod; import paths under it resolve to module
// directories and everything else falls through to the GOROOT source
// importer.
func New(rootDir string) (*Loader, error) {
	mod, err := modulePath(filepath.Join(rootDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(rootDir)
	l.modulePath = mod
	return l, nil
}

// NewFixture returns a loader for an analysistest-style fixture tree:
// import paths are directories relative to rootDir (typically
// testdata/src), with no module prefix.
func NewFixture(rootDir string) *Loader {
	return newLoader(rootDir)
}

func newLoader(rootDir string) *Loader {
	// The source importer type-checks GOROOT packages with the
	// go/build context; with cgo enabled it would try to invoke the
	// cgo preprocessor on packages like net. Analysis needs the
	// pure-Go view, which is also what the repo ships.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		rootDir:    rootDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		exhaustive: make(map[*types.TypeName]bool),
	}
}

// Fset returns the file set shared by every package this loader loads.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// IsExhaustive reports whether tn's declaration carries the
// //p2bvet:exhaustive marker in any package loaded so far. Analyzed
// packages load after their dependencies, so by the time an analyzer
// sees a switch, the tag type's defining package has been scanned.
func (l *Loader) IsExhaustive(tn *types.TypeName) bool { return l.exhaustive[tn] }

// Load type-checks the package at the given import path (module-rooted,
// or fixture-root-relative for fixture loaders) and memoizes the result.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("load: %q is outside the analyzed tree", path)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) { return l.importPkg(imp) }),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("load %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, TypesInfo: info}
	l.pkgs[path] = pkg
	l.scanExhaustive(pkg)
	return pkg, nil
}

// LoadAll loads every package of the tree: all directories under the
// root containing non-test Go files, skipping testdata, vendor and
// hidden directories. Results are sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.rootDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.rootDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(l.rootDir, p)
			if err != nil {
				return err
			}
			paths = append(paths, l.pathFor(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// dirFor maps an import path to a directory under the root, reporting
// false for paths outside the analyzed tree (those go to the stdlib
// importer instead).
func (l *Loader) dirFor(path string) (string, bool) {
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.rootDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.rootDir, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	dir := filepath.Join(l.rootDir, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, true
	}
	return "", false
}

// pathFor is the inverse of dirFor for root-relative directories.
func (l *Loader) pathFor(rel string) string {
	rel = filepath.ToSlash(rel)
	if l.modulePath == "" {
		return rel
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + rel
}

// importPkg resolves one import during type-checking: tree-local paths
// recurse through the loader, everything else is stdlib.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses the non-test Go files of dir with comments attached
// (suppressions, hotpath annotations and exhaustive markers all live in
// comments), in sorted file order for deterministic diagnostics.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// scanExhaustive records every type declaration in pkg whose doc
// comment carries the //p2bvet:exhaustive marker.
func (l *Loader) scanExhaustive(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker(ts.Doc) && !(len(gd.Specs) == 1 && hasMarker(gd.Doc)) {
					continue
				}
				if tn, ok := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					l.exhaustive[tn] = true
				}
			}
		}
	}
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == ExhaustiveMarker {
			return true
		}
	}
	return false
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("load: no module line in %s", gomod)
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
