// Package app imports liba so the loader tests exercise cross-package
// resolution through the fixture tree.
package app

import "liba"

// Describe names a record kind.
func Describe(r liba.Rec) string {
	if r == liba.RecOne {
		return "one"
	}
	return "other"
}
