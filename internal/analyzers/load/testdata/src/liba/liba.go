// Package liba declares a marked enum type for the loader tests.
package liba

// Rec is an enum whose switches must be exhaustive.
//
//p2bvet:exhaustive
type Rec byte

// Rec's constants.
const (
	RecOne Rec = 1
	RecTwo Rec = 2
)

// Plain carries no marker.
type Plain int
