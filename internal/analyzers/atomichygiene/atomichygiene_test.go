package atomichygiene_test

import (
	"testing"

	"p2b/internal/analyzers/analysistest"
	"p2b/internal/analyzers/atomichygiene"
)

func TestAtomichygiene(t *testing.T) {
	analysistest.Run(t, "testdata", atomichygiene.Analyzer, "atomicfix")
}
