// Package atomichygiene implements the p2bvet analyzer that guards the
// two classic misuses of sync primitives in the serving packages:
//
//   - Mixed access: a field that is ever passed as &x.f to a
//     sync/atomic function must be accessed atomically everywhere —
//     one plain read racing one atomic write is a data race the race
//     detector only catches if a test happens to interleave it.
//   - Lock copying: passing, assigning, ranging over or returning a
//     value whose type (transitively) contains a sync.Mutex, WaitGroup,
//     Once, or an atomic.* value type copies the primitive's state and
//     silently forks the synchronization domain. Fresh composite
//     literals are fine (a zero mutex is valid); copying an existing
//     value is not.
//
// This is a deliberately narrower, dependency-free cousin of vet's
// copylocks + a mixed-atomic check vet does not have.
package atomichygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"p2b/internal/analyzers/analysis"
)

// Analyzer is the atomichygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomichygiene",
	Doc: "atomic fields must be accessed atomically everywhere; values containing " +
		"mutexes/atomics must not be copied (params, assignments, ranges, returns)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, lockMemo: make(map[types.Type]bool)}
	c.collectAtomicFields()
	for _, f := range pass.Files {
		ast.Inspect(f, c.check)
	}
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	lockMemo map[types.Type]bool
	// atomicFields maps field objects ever passed to sync/atomic
	// functions; atomicUses records the positions of those sanctioned
	// selector expressions.
	atomicFields map[*types.Var]bool
	atomicUses   map[token.Pos]bool
}

// collectAtomicFields finds every &x.f argument to a sync/atomic
// function call across the package.
func (c *checker) collectAtomicFields() {
	c.atomicFields = make(map[*types.Var]bool)
	c.atomicUses = make(map[token.Pos]bool)
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				fsel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				selection, ok := c.pass.TypesInfo.Selections[fsel]
				if !ok {
					continue
				}
				if fv, ok := selection.Obj().(*types.Var); ok && fv.IsField() {
					c.atomicFields[fv] = true
					c.atomicUses[fsel.Pos()] = true
				}
			}
			return true
		})
	}
}

func (c *checker) check(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		c.checkMixedAccess(n)
	case *ast.FuncDecl:
		c.checkFuncSig(n.Recv, n.Type)
	case *ast.FuncLit:
		c.checkFuncSig(nil, n.Type)
	case *ast.AssignStmt:
		c.checkAssign(n)
	case *ast.RangeStmt:
		c.checkRange(n)
	case *ast.ReturnStmt:
		c.checkReturn(n)
	}
	return true
}

// checkMixedAccess flags plain (non-atomic) uses of fields that are
// elsewhere passed to sync/atomic functions.
func (c *checker) checkMixedAccess(sel *ast.SelectorExpr) {
	if c.atomicUses[sel.Pos()] {
		return
	}
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok {
		return
	}
	fv, ok := selection.Obj().(*types.Var)
	if !ok || !c.atomicFields[fv] {
		return
	}
	c.pass.Reportf(sel.Pos(),
		"field %s is accessed with sync/atomic elsewhere; this plain access races with it",
		fv.Name())
}

// checkFuncSig flags by-value receivers and parameters whose types
// contain a lock or atomic.
func (c *checker) checkFuncSig(recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := c.pass.TypesInfo.Types[field.Type].Type
			if t == nil {
				continue
			}
			if name, bad := c.containsLock(t); bad {
				c.pass.Reportf(field.Pos(), "%s passes %s by value; it contains %s",
					kind, c.typeStr(t), name)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
}

// checkAssign flags copying an existing lock-containing value. Fresh
// composite literals and function-call results are allowed: a returned
// value is the callee's to hand over, and a zero literal has no state.
func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for _, rhs := range as.Rhs {
		e := ast.Unparen(rhs)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue // literals, calls, conversions: not a copy of live state
		}
		t := c.pass.TypesInfo.Types[rhs].Type
		if t == nil {
			continue
		}
		if name, bad := c.containsLock(t); bad {
			c.pass.Reportf(rhs.Pos(), "assignment copies %s which contains %s",
				c.typeStr(t), name)
		}
	}
}

func (c *checker) checkRange(rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	// In the `for _, v := range xs` form the value var is a defining
	// identifier, recorded in Defs rather than in the expression Types.
	t := c.pass.TypesInfo.Types[rs.Value].Type
	if t == nil {
		if id, ok := rs.Value.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				t = obj.Type()
			}
		}
	}
	if t == nil {
		return
	}
	if name, bad := c.containsLock(t); bad {
		c.pass.Reportf(rs.Value.Pos(), "range copies %s values which contain %s",
			c.typeStr(t), name)
	}
}

func (c *checker) checkReturn(rt *ast.ReturnStmt) {
	for _, res := range rt.Results {
		e := ast.Unparen(res)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		t := c.pass.TypesInfo.Types[res].Type
		if t == nil {
			continue
		}
		if name, bad := c.containsLock(t); bad {
			c.pass.Reportf(res.Pos(), "return copies %s which contains %s",
				c.typeStr(t), name)
		}
	}
}

// lockTypes are the sync primitives whose by-value copy forks state.
// sync.Map and sync.Pool embed noCopy already but are included for the
// mixed tree walk; RWMutex/Cond contain Mutex transitively anyway.
var lockTypes = map[string]map[string]bool{
	"sync":        {"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true, "Map": true, "Pool": true},
	"sync/atomic": {"Bool": true, "Int32": true, "Int64": true, "Uint32": true, "Uint64": true, "Uintptr": true, "Pointer": true, "Value": true},
}

// containsLock reports whether t transitively contains a sync
// primitive, naming the first one found. Pointers, slices, maps and
// channels break the chain: sharing a pointer to a mutex is correct.
func (c *checker) containsLock(t types.Type) (string, bool) {
	if done, ok := c.lockMemo[t]; ok {
		if !done {
			return "", false
		}
		// Re-derive the name on the (rare) memo-hit-positive path.
	}
	name, bad := c.containsLock1(t, make(map[types.Type]bool))
	c.lockMemo[t] = bad
	return name, bad
}

func (c *checker) containsLock1(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := types.Unalias(t).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if names, ok := lockTypes[obj.Pkg().Path()]; ok && names[obj.Name()] {
				return obj.Pkg().Name() + "." + obj.Name(), true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, bad := c.containsLock1(u.Field(i).Type(), seen); bad {
				return name, true
			}
		}
	case *types.Array:
		return c.containsLock1(u.Elem(), seen)
	}
	return "", false
}

func (c *checker) typeStr(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(c.pass.Pkg))
}
