// Package atomicfix seeds the two misuse classes atomichygiene flags —
// plain access to an atomically-updated field, and by-value copies of
// lock-containing values — next to the sanctioned shapes: atomic reads,
// pointer sharing, and fresh composite literals.
package atomicfix

import (
	"sync"
	"sync/atomic"
)

// Counter guards its map with a mutex.
type Counter struct {
	mu sync.Mutex
	m  map[string]int
}

// Stats counts hits with sync/atomic.
type Stats struct {
	hits uint64
}

// Inc bumps hits atomically.
func (s *Stats) Inc() { atomic.AddUint64(&s.hits, 1) }

// Hits reads the same field without atomics: a data race.
func (s *Stats) Hits() uint64 {
	return s.hits // want `field hits is accessed with sync/atomic elsewhere`
}

// HitsAtomic is the correct read.
func (s *Stats) HitsAtomic() uint64 { return atomic.LoadUint64(&s.hits) }

// ByValue copies the mutex in its parameter.
func ByValue(c Counter) int { // want `parameter passes Counter by value; it contains sync\.Mutex`
	return len(c.m)
}

// ByPointer shares the counter correctly.
func ByPointer(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Snapshot copies live counter state through a dereference.
func Snapshot(c *Counter) int {
	d := *c // want `assignment copies Counter which contains sync\.Mutex`
	return len(d.m)
}

// Fresh builds a zero-state value: composite literals are not copies.
func Fresh() *Counter {
	c := Counter{m: map[string]int{}}
	return &c
}

// Drain iterates by value, copying each element's mutex.
func Drain(list []Counter) int {
	total := 0
	for _, c := range list { // want `range copies Counter values which contain sync\.Mutex`
		total += len(c.m)
	}
	return total
}

// DrainByIndex iterates by index and shares instead of copying.
func DrainByIndex(list []Counter) int {
	total := 0
	for i := range list {
		total += ByPointer(&list[i])
	}
	return total
}

// Export hands the struct out by value.
func Export(c *Counter) Counter {
	return *c // want `return copies Counter which contains sync\.Mutex`
}
