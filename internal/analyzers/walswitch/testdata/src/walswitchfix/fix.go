// Package walswitchfix seeds an incomplete switch over a marked
// constant type, alongside the passing shapes: full coverage (including
// grouped cases) and switches over unmarked types.
package walswitchfix

// RecType enumerates the fixture's record kinds; every switch over it
// must handle all of them.
//
//p2bvet:exhaustive
type RecType byte

// The declared record kinds.
const (
	RecA RecType = 1
	RecB RecType = 2
	RecC RecType = 3
)

// Plain is unmarked: switches over it may be as sparse as they like.
type Plain int

// Plain's constants.
const (
	P1 Plain = 1
	P2 Plain = 2
)

// Describe misses RecC; the default clause does not excuse it.
func Describe(t RecType) string {
	switch t { // want `switch on RecType is not exhaustive: missing cases RecC`
	case RecA:
		return "a"
	case RecB:
		return "b"
	default:
		return "?"
	}
}

// Full lists every constant, grouping two in one clause.
func Full(t RecType) string {
	switch t {
	case RecA, RecB:
		return "ab"
	case RecC:
		return "c"
	}
	return ""
}

// Loose switches sparsely over the unmarked type without complaint.
func Loose(p Plain) bool {
	switch p {
	case P1:
		return true
	}
	return false
}
