// Package walswitch implements the p2bvet analyzer that makes switches
// over marked enum-like types exhaustive.
//
// A named constant type whose declaration doc comment carries the
// //p2bvet:exhaustive marker (persist.RecordType is the motivating
// case) promises that every switch over a value of that type lists
// every declared constant of the type explicitly. A default clause does
// NOT satisfy the check: the whole point is that adding a new WAL
// record type (the roadmap's durable relay identity will add one) must
// fail CI at every replay, dump and checkpoint switch until each site
// states how the new record is handled.
//
// Constants are collected from the marked type's defining package
// scope, so a switch in cmd/p2bwal over persist.RecordType is held to
// the same set the persist package declares.
package walswitch

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"p2b/internal/analyzers/analysis"
)

// Analyzer is the walswitch analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "walswitch",
	Doc: "switches over //p2bvet:exhaustive-marked constant types must list every " +
		"declared constant; a default clause does not excuse a missing case",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil, nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.Types[sw.Tag].Type
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok {
		return
	}
	tn := named.Obj()
	if pass.IsExhaustive == nil || !pass.IsExhaustive(tn) {
		return
	}

	required := declaredConstants(tn, named)
	if len(required) == 0 {
		return
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil {
				continue
			}
			for name, val := range required {
				if constant.Compare(val, token.EQL, tv.Value) {
					delete(required, name)
				}
			}
		}
	}
	if len(required) == 0 {
		return
	}
	missing := make([]string, 0, len(required))
	for name := range required {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch on %s is not exhaustive: missing cases %s (type is marked %s)",
		types.TypeString(named, types.RelativeTo(pass.Pkg)),
		strings.Join(missing, ", "), "//p2bvet:exhaustive")
}

// declaredConstants returns name -> value for every package-level
// constant of the marked type, taken from its defining package.
func declaredConstants(tn *types.TypeName, named *types.Named) map[string]constant.Value {
	pkg := tn.Pkg()
	if pkg == nil {
		return nil
	}
	out := make(map[string]constant.Value)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(types.Unalias(c.Type()), named) {
			out[name] = c.Val()
		}
	}
	return out
}
