package walswitch_test

import (
	"testing"

	"p2b/internal/analyzers/analysistest"
	"p2b/internal/analyzers/walswitch"
)

func TestWalswitch(t *testing.T) {
	analysistest.Run(t, "testdata", walswitch.Analyzer, "walswitchfix")
}
