package analyzers

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"p2b/internal/analyzers/detrand"
	"p2b/internal/analyzers/load"
)

func runSuppFix(t *testing.T, suite []Config) *Report {
	t.Helper()
	loader := load.NewFixture("testdata/src")
	pkg, err := loader.Load("suppfix")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(loader, []*load.Package{pkg}, suite)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunSuppressions(t *testing.T) {
	rep := runSuppFix(t, []Config{{Analyzer: detrand.Analyzer}})

	// Four detrand violations plus one malformed-suppression meta
	// finding; the reasoned suppressions cover two of them.
	if got := len(rep.Findings); got != 5 {
		t.Fatalf("findings = %d, want 5: %+v", got, rep.Findings)
	}
	if rep.Active != 3 {
		t.Errorf("active = %d, want 3 (Active, Missing, malformed meta)", rep.Active)
	}
	if rep.Budget["detrand"] != 2 {
		t.Errorf("budget[detrand] = %d, want 2", rep.Budget["detrand"])
	}

	var reasons []string
	var meta int
	for _, f := range rep.Findings {
		if f.Suppressed {
			reasons = append(reasons, f.Reason)
		}
		if f.Analyzer == "p2bvet" {
			meta++
			if f.Suppressed {
				t.Error("malformed-suppression meta finding must not be suppressible")
			}
			if !strings.Contains(f.Message, "reason is mandatory") {
				t.Errorf("meta message = %q", f.Message)
			}
		}
	}
	if meta != 1 {
		t.Errorf("meta findings = %d, want 1", meta)
	}
	want := []string{"fixture: same-line suppression", "fixture: line-above suppression"}
	for _, w := range want {
		found := false
		for _, r := range reasons {
			found = found || r == w
		}
		if !found {
			t.Errorf("suppression reason %q not recorded; got %v", w, reasons)
		}
	}
}

func TestConfigScoping(t *testing.T) {
	// detrand scoped to a different package: no detrand findings, but
	// suppression hygiene is still checked everywhere.
	rep := runSuppFix(t, []Config{{Analyzer: detrand.Analyzer, Packages: []string{"elsewhere"}}})
	for _, f := range rep.Findings {
		if f.Analyzer == "detrand" {
			t.Fatalf("scoped-out analyzer still ran: %+v", f)
		}
	}
	if rep.Active != 1 {
		t.Fatalf("active = %d, want 1 (the malformed suppression)", rep.Active)
	}

	cfg := Config{Analyzer: detrand.Analyzer, Packages: []string{"a", "b"}}
	if cfg.appliesTo("c") || !cfg.appliesTo("b") {
		t.Error("appliesTo package list broken")
	}
	if !(Config{Analyzer: detrand.Analyzer}).appliesTo("anything") {
		t.Error("nil Packages must mean every package")
	}
}

func TestReportJSONShape(t *testing.T) {
	rep := runSuppFix(t, []Config{{Analyzer: detrand.Analyzer}})
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Findings []struct {
			Analyzer   string `json:"analyzer"`
			Package    string `json:"package"`
			Position   string `json:"position"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		} `json:"findings"`
		Budget map[string]int `json:"suppression_budget"`
		Active int            `json:"active"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Findings) != 5 || decoded.Active != 3 || decoded.Budget["detrand"] != 2 {
		t.Fatalf("decoded report = %+v", decoded)
	}
	for _, f := range decoded.Findings {
		if f.Analyzer == "" || f.Package != "suppfix" || f.Position == "" || f.Message == "" {
			t.Fatalf("incomplete finding in JSON: %+v", f)
		}
	}
}

func TestRender(t *testing.T) {
	rep := runSuppFix(t, []Config{{Analyzer: detrand.Analyzer}})
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "p2bvet: suppression budget: detrand=2") {
		t.Errorf("budget line missing:\n%s", out)
	}
	if !strings.Contains(out, "p2bvet: 3 active finding(s), 2 suppressed") {
		t.Errorf("totals line missing:\n%s", out)
	}
	// Suppressed findings stay out of the active listing.
	if got := strings.Count(out, "(detrand)"); got != 2 {
		t.Errorf("active detrand lines = %d, want 2:\n%s", got, out)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(suite))
	}
	seen := map[string]bool{}
	for _, cfg := range suite {
		if cfg.Analyzer == nil || cfg.Analyzer.Name == "" || cfg.Analyzer.Run == nil {
			t.Fatalf("malformed suite entry: %+v", cfg)
		}
		if seen[cfg.Analyzer.Name] {
			t.Fatalf("duplicate analyzer %s", cfg.Analyzer.Name)
		}
		seen[cfg.Analyzer.Name] = true
	}
	for _, name := range []string{"detrand", "hotalloc", "walswitch", "atomichygiene", "statdrift"} {
		if !seen[name] {
			t.Errorf("suite missing %s", name)
		}
	}
}
