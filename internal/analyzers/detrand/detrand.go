// Package detrand implements the p2bvet analyzer that keeps
// determinism-critical packages free of hidden nondeterminism.
//
// The repo's headline guarantees — bit-identical crash recovery and
// byte-for-byte fleet/single-node equivalence — hold only while the
// pipeline packages stay deterministic functions of their inputs. Three
// classic leaks are caught statically:
//
//   - wall-clock calls (time.Now / time.Since / time.Until). Using
//     time.Now as a *value* is allowed: that is exactly the injectable
//     clock seam idiom (var clock = time.Now; cfg.now = time.Now) the
//     repo uses so tests and replay can substitute a fake clock.
//   - the global math/rand (and math/rand/v2) generators. Constructor
//     and type references are allowed — building a locally seeded
//     generator (rand.New(rand.NewPCG(...))) is precisely what
//     p2b/internal/rng does.
//   - map iteration feeding an exported slice: a range over a map that
//     appends to a slice which is never sorted in the same function.
//     Go's map order is randomized per run, so such a slice leaks
//     nondeterministic order into stats, exports or wire payloads.
//     Append-then-sort (the repo's standard snapshot idiom) passes.
package detrand

import (
	"go/ast"
	"go/types"

	"p2b/internal/analyzers/analysis"
)

// Analyzer is the detrand analyzer. Which packages it runs over is
// decided by the p2bvet suite configuration, not here.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads, global math/rand and unsorted map-order leaks " +
		"in determinism-critical packages; inject clocks and seeded generators instead",
	Run: run,
}

// randConstructors are the math/rand[/v2] functions that build a
// locally seeded generator rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
				return true
			}
			return true
		})
	}
	return nil, nil
}

// checkCall flags direct calls to wall-clock and global-rand functions.
// Only call positions are flagged: mentioning time.Now as a value is
// the approved clock-seam idiom.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"call to time.%s in a determinism-critical package; route it through an injectable clock seam (var clock = time.Now)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() != nil {
			return // method on an explicitly built generator
		}
		if randConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s call; use a seeded generator (p2b/internal/rng) so runs are reproducible",
			fn.Pkg().Name(), fn.Name())
	}
}

// calleeFunc resolves the called function, or nil for builtins,
// conversions and calls through function-typed values (which includes
// calls through clock seams — intentionally not flagged).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkMapRanges scans one function body for map-range loops that
// append to a slice and verifies the slice is sorted somewhere in the
// same body. Sorting after the loop is the repo's snapshot idiom
// (collect map entries, sort.Slice by a stable key); a map-range append
// with no sort leaks randomized map order into the built slice.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	type pendingAppend struct {
		loop   *ast.RangeStmt
		target string // types.ExprString of the appended-to expression
	}
	var pending []pendingAppend
	sorted := make(map[string]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested closures get their own scan; sort.Slice's
			// less-func must not count as the loop body's work.
			checkMapRanges(pass, n.Body)
			return false
		case *ast.RangeStmt:
			t := pass.TypesInfo.Types[n.X].Type
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			for _, tgt := range appendTargets(pass, n.Body) {
				pending = append(pending, pendingAppend{loop: n, target: tgt})
			}
			return true
		case *ast.CallExpr:
			if tgt, ok := sortTarget(pass, n); ok {
				sorted[tgt] = true
			}
			return true
		}
		return true
	})

	reported := make(map[*ast.RangeStmt]bool)
	for _, p := range pending {
		if sorted[p.target] || reported[p.loop] {
			continue
		}
		reported[p.loop] = true
		pass.Reportf(p.loop.Pos(),
			"map iteration appends to %s without sorting it in this function; map order is randomized per run",
			p.target)
	}
}

// appendTargets returns the rendered destination expressions of append
// calls assigned inside a map-range body (x = append(x, ...)).
func appendTargets(pass *analysis.Pass, body ast.Node) []string {
	var targets []string
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" ||
				pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			if i < len(as.Lhs) {
				targets = append(targets, types.ExprString(as.Lhs[i]))
			}
		}
		return true
	})
	return targets
}

// sortTarget recognizes sort.* and slices.Sort* calls and returns the
// rendered expression they sort.
func sortTarget(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return "", false
	}
	arg := ast.Unparen(call.Args[0])
	// sort.Sort(byKey(xs)) wraps the slice in a conversion or
	// constructor; unwrap single-argument calls so xs still counts.
	if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
		arg = ast.Unparen(inner.Args[0])
	}
	return types.ExprString(arg), true
}
