package detrand_test

import (
	"testing"

	"p2b/internal/analyzers/analysistest"
	"p2b/internal/analyzers/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "detrandfix")
}
