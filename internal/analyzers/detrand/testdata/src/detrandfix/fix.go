// Package detrandfix seeds every violation class detrand catches, plus
// the approved idioms that must stay clean: clock seams as values,
// locally seeded generators, and append-then-sort map iteration.
package detrandfix

import (
	"math/rand"
	randv2 "math/rand/v2"
	"sort"
	"time"
)

// clock is the approved injectable seam: time.Now used as a value.
var clock = time.Now

// Epoch reads the wall clock directly.
func Epoch() uint64 {
	return uint64(time.Now().UnixNano()) // want `call to time\.Now`
}

// SeamEpoch reads through the seam and is clean.
func SeamEpoch() uint64 {
	return uint64(clock().UnixNano())
}

// Age uses the time.Since shorthand.
func Age(start time.Time) time.Duration {
	return time.Since(start) // want `call to time\.Since`
}

// Remaining uses time.Until.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `call to time\.Until`
}

// Pick draws from the global math/rand generator.
func Pick(n int) int {
	return rand.Intn(n) // want `global rand\.Intn call`
}

// PickV2 draws from the global math/rand/v2 generator.
func PickV2(n int) int {
	return randv2.IntN(n) // want `global rand\.IntN call`
}

// Seeded builds a local generator; constructors and methods are clean.
func Seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// SeededV2 builds a local v2 generator; also clean.
func SeededV2() uint64 {
	r := randv2.New(randv2.NewPCG(1, 2))
	return r.Uint64()
}

// Keys leaks map order into the returned slice.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends to keys without sorting`
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys collects then sorts: the repo's snapshot idiom, clean.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Copy iterates a map into a map; order cannot leak, clean.
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Sum folds a map into an order-independent scalar, clean.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
