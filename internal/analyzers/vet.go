// Package analyzers is the p2bvet runner: it applies the suite's
// analyzers to loaded packages, resolves //p2bvet:ignore suppressions,
// and renders text and JSON reports with a per-analyzer suppression
// budget so budget growth is visible per PR.
//
// Suppression syntax, enforced here:
//
//	//p2bvet:ignore <analyzer> <reason>
//
// The comment suppresses findings of the named analyzer on its own
// line and on the immediately following line (so it can trail the
// flagged statement or sit on its own line above it). The reason is
// mandatory: a suppression without one is itself reported as a finding
// that cannot be suppressed.
package analyzers

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"p2b/internal/analyzers/analysis"
	"p2b/internal/analyzers/load"
)

// IgnorePrefix starts a p2bvet suppression comment.
const IgnorePrefix = "//p2bvet:ignore"

// A Finding is one diagnostic after suppression resolution.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("p2bvet" for
	// malformed-suppression meta findings).
	Analyzer string `json:"analyzer"`
	// Package is the import path of the package the finding is in.
	Package string `json:"package"`
	// Position is the file:line:column location.
	Position string `json:"position"`
	// Message states the violated invariant.
	Message string `json:"message"`
	// Suppressed reports whether a //p2bvet:ignore covers the finding.
	Suppressed bool `json:"suppressed"`
	// Reason is the suppression's written justification, when suppressed.
	Reason string `json:"reason,omitempty"`
}

// A Report is the result of one vet run.
type Report struct {
	// Findings holds every diagnostic, suppressed or not, sorted by
	// position.
	Findings []Finding `json:"findings"`
	// Budget counts suppressed findings per analyzer — the number a
	// PR review watches.
	Budget map[string]int `json:"suppression_budget"`
	// Active is the number of unsuppressed findings; non-zero fails
	// the run.
	Active int `json:"active"`
}

// A Config scopes one analyzer to a set of package paths.
type Config struct {
	// Analyzer is the check to run.
	Analyzer *analysis.Analyzer
	// Packages lists the import paths the analyzer applies to; nil
	// means every loaded package.
	Packages []string
}

// appliesTo reports whether the analyzer runs over pkgPath.
func (c Config) appliesTo(pkgPath string) bool {
	if c.Packages == nil {
		return true
	}
	for _, p := range c.Packages {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// Run applies each configured analyzer to the packages it is scoped to
// and resolves suppressions into a Report.
func Run(loader *load.Loader, pkgs []*load.Package, suite []Config) (*Report, error) {
	rep := &Report{Budget: make(map[string]int)}
	fset := loader.Fset()
	for _, pkg := range pkgs {
		supps, malformed := scanSuppressions(fset, pkg)
		for _, m := range malformed {
			rep.Findings = append(rep.Findings, m)
		}
		for _, cfg := range suite {
			if !cfg.appliesTo(pkg.Path) {
				continue
			}
			a := cfg.Analyzer
			pass := &analysis.Pass{
				Analyzer:     a,
				Fset:         fset,
				Files:        pkg.Files,
				Pkg:          pkg.Types,
				TypesInfo:    pkg.TypesInfo,
				IsExhaustive: loader.IsExhaustive,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				f := Finding{
					Analyzer: a.Name,
					Package:  pkg.Path,
					Position: pos.String(),
					Message:  d.Message,
				}
				if reason, ok := supps.match(pos, a.Name); ok {
					f.Suppressed = true
					f.Reason = reason
				}
				rep.Findings = append(rep.Findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Position != rep.Findings[j].Position {
			return rep.Findings[i].Position < rep.Findings[j].Position
		}
		return rep.Findings[i].Analyzer < rep.Findings[j].Analyzer
	})
	for _, f := range rep.Findings {
		if f.Suppressed {
			rep.Budget[f.Analyzer]++
		} else {
			rep.Active++
		}
	}
	return rep, nil
}

// suppressions maps (file, line, analyzer) to a reason.
type suppressions map[suppKey]string

type suppKey struct {
	file     string
	line     int
	analyzer string
}

// match looks up a suppression covering the diagnostic position: the
// comment's own line or the line above it.
func (s suppressions) match(pos token.Position, analyzer string) (string, bool) {
	for _, line := range [...]int{pos.Line, pos.Line - 1} {
		if reason, ok := s[suppKey{pos.Filename, line, analyzer}]; ok {
			return reason, true
		}
	}
	return "", false
}

// scanSuppressions collects the //p2bvet:ignore comments of a package,
// reporting malformed ones (unknown shape or missing reason) as
// unsuppressable meta findings.
func scanSuppressions(fset *token.FileSet, pkg *load.Package) (suppressions, []Finding) {
	supps := make(suppressions)
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, IgnorePrefix))
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Analyzer: "p2bvet",
						Package:  pkg.Path,
						Position: pos.String(),
						Message:  "malformed suppression: want //p2bvet:ignore <analyzer> <reason>; the reason is mandatory",
					})
					continue
				}
				supps[suppKey{pos.Filename, pos.Line, fields[0]}] = strings.Join(fields[1:], " ")
			}
		}
	}
	return supps, malformed
}

// Render writes the human-readable report: one line per active finding,
// then the suppression budget.
func (r *Report) Render(w interface{ Write([]byte) (int, error) }) {
	for _, f := range r.Findings {
		if f.Suppressed {
			continue
		}
		fmt.Fprintf(w, "%s: %s (%s)\n", f.Position, f.Message, f.Analyzer)
	}
	if len(r.Budget) > 0 {
		names := make([]string, 0, len(r.Budget))
		for name := range r.Budget {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", name, r.Budget[name]))
		}
		fmt.Fprintf(w, "p2bvet: suppression budget: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(w, "p2bvet: %d active finding(s), %d suppressed\n", r.Active, len(r.Findings)-r.Active)
}
