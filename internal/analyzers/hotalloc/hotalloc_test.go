package hotalloc_test

import (
	"testing"

	"p2b/internal/analyzers/analysistest"
	"p2b/internal/analyzers/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotallocfix")
}
