// Package hotallocfix seeds every allocation class hotalloc flags inside
// annotated hot-path functions, plus the exemptions: unannotated
// functions, panic guard subtrees, and pointer-shaped interface values.
package hotallocfix

import "fmt"

type point struct{ x, y float64 }

func sink(v any) { _ = v }

func worker(ch chan int) { ch <- 1 }

// Cold is unannotated: anything goes.
func Cold(n int) []int {
	out := make([]int, n)
	fmt.Println(out)
	return out
}

// HotMake builds a slice per call.
//
//p2b:hotpath
func HotMake(n int) []int {
	return make([]int, n) // want `make allocates in hot path`
}

// HotLiterals allocates composite literals.
//
//p2b:hotpath
func HotLiterals() {
	m := map[string]int{"a": 1} // want `map literal allocates in hot path`
	s := []int{1, 2, 3}         // want `slice literal allocates in hot path`
	p := &point{x: 1}           // want `&composite literal allocates in hot path HotLiterals`
	_, _, _ = m, s, p
}

// HotFmt formats on the hot path.
//
//p2b:hotpath
func HotFmt(n int) {
	fmt.Println(n) // want `fmt\.Println formats through reflection and allocates in hot path`
}

// HotConvert copies between string and byte-slice representations.
//
//p2b:hotpath
func HotConvert(s string) []byte {
	return []byte(s) // want `\[\]byte conversion copies in hot path`
}

// HotBox passes a scalar through an interface parameter.
//
//p2b:hotpath
func HotBox(n int) {
	sink(n) // want `storing int into interface boxes and allocates in hot path`
}

// HotClosure builds a func value per call.
//
//p2b:hotpath
func HotClosure(n int) func() int {
	return func() int { return n } // want `closure literal in hot path HotClosure captures and escapes`
}

// HotSpawn starts a goroutine per call.
//
//p2b:hotpath
func HotSpawn(ch chan int) {
	go worker(ch) // want `go statement in hot path HotSpawn spawns per call`
}

// HotGuard panics on bad input; the guard's formatting is off the
// measured path and must stay clean.
//
//p2b:hotpath
func HotGuard(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("length mismatch: %d != %d", len(a), len(b)))
	}
	var dot float64
	for i, v := range a {
		dot += v * b[i]
	}
	return dot
}

// HotPointerShaped passes pointer-shaped values through interfaces:
// they fit the interface word without allocating, so no finding.
//
//p2b:hotpath
func HotPointerShaped(p *point, m map[string]int) {
	sink(p)
	sink(m)
	sink(nil)
}
