// Package hotalloc implements the p2bvet analyzer that keeps
// //p2b:hotpath-annotated functions allocation-free.
//
// The repo's zero-alloc contracts (bandit kernels, mat kernels, metric
// updates, the shuffler submit path, the cached model-read path) are
// enforced at runtime by testing.AllocsPerRun tests, but those only
// catch a regression on the exact path the test drives. hotalloc flags
// the allocation *sources* statically in any function whose doc comment
// carries //p2b:hotpath:
//
//   - make/new builtins, map and slice literals, &T{} literals
//   - fmt calls (each formats through reflection and allocates)
//   - string<->[]byte conversions
//   - closures (func literals capture by reference and escape)
//   - go statements (a goroutine per hot-path call is an allocation
//     and a scheduling hazard)
//   - interface boxing: passing, assigning or returning a concrete
//     multi-word value where an interface is expected
//
// Escape hatches are deliberate: expressions inside panic(...) guard a
// cold crash path and are exempt (the kernels' dimension checks panic
// with fmt.Sprintf), plain append reuses capacity, pointer-shaped
// values (pointers, maps, channels, funcs) box without allocating, and
// plain struct literals stay on the stack.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"p2b/internal/analyzers/analysis"
)

// Annotation marks a function as a zero-alloc hot path in its doc
// comment.
const Annotation = "//p2b:hotpath"

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation sources (make/new, literals, fmt, conversions, closures, " +
		"interface boxing, go statements) inside functions marked " + Annotation,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil, nil
}

func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == Annotation {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	results := fd.Type.Results
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pass, n) {
				// Crash-path guard: the panic message may format
				// freely, the steady state never reaches it.
				return false
			}
			checkCall(pass, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			// &T{...} allocates the struct on the heap whenever it
			// escapes; in a hot path treat it as an allocation.
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				pass.Reportf(n.Pos(), "&composite literal allocates in hot path %s", fd.Name.Name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path %s captures and escapes", fd.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path %s spawns per call", fd.Name.Name)
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				lt := pass.TypesInfo.Types[n.Lhs[i]].Type
				checkBoxingExpr(pass, lt, n.Rhs[i])
			}
		case *ast.ReturnStmt:
			if results == nil {
				return true
			}
			if len(n.Results) == len(results.List) {
				for i, res := range n.Results {
					checkBoxingExpr(pass, pass.TypesInfo.Types[results.List[i].Type].Type, res)
				}
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt calls, allocating
// conversions, and interface boxing at argument positions.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins and conversions resolve through the identifier.
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	}
	if id != nil {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in hot path", obj.Name())
			}
			return
		}
	}

	// Conversions: string <-> []byte copy their contents.
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.TypesInfo.Types[call.Args[0]].Type
		if from != nil && isStringBytes(to, from) {
			pass.Reportf(call.Pos(), "%s conversion copies in hot path", types.TypeString(to, types.RelativeTo(pass.Pkg)))
		}
		return
	}

	if fn := callee(pass, id); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s formats through reflection and allocates in hot path", fn.Name())
		return
	}

	// Interface boxing at argument positions.
	sig := signatureOf(pass, fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok && call.Ellipsis == 0 {
				pt = sl.Elem()
			} else {
				pt = last
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxingExpr(pass, pt, arg)
	}
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates in hot path")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates in hot path")
	}
}

// checkBoxingExpr flags storing a concrete multi-word value into an
// interface-typed destination. Pointer-shaped values (pointers, maps,
// channels, funcs) fit an interface word without allocating and pass.
func checkBoxingExpr(pass *analysis.Pass, dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	st := tv.Type
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return
	case *types.Basic:
		if st.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return
		}
	}
	pass.Reportf(src.Pos(), "storing %s into interface boxes and allocates in hot path",
		types.TypeString(st, types.RelativeTo(pass.Pkg)))
}

func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && obj.Name() == "panic"
}

func isStringBytes(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func callee(pass *analysis.Pass, id *ast.Ident) *types.Func {
	if id == nil {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func signatureOf(pass *analysis.Pass, fun ast.Expr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
