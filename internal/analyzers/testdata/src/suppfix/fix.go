// Package suppfix exercises the p2bvet suppression machinery: an
// active violation, both suppression placements, and a malformed
// suppression with no reason.
package suppfix

import "time"

// Active is an unsuppressed violation.
func Active() int64 {
	return time.Now().UnixNano()
}

// Trailing suppresses on the flagged line itself.
func Trailing() int64 {
	return time.Now().UnixNano() //p2bvet:ignore detrand fixture: same-line suppression
}

// Above suppresses from the line above the flagged statement.
func Above() int64 {
	//p2bvet:ignore detrand fixture: line-above suppression
	return time.Now().UnixNano()
}

// Missing lacks a reason: the suppression itself becomes a finding and
// the violation it meant to cover stays active.
func Missing() int64 {
	return time.Now().UnixNano() //p2bvet:ignore detrand
}
