package analyzers

import (
	"p2b/internal/analyzers/analysis"
	"p2b/internal/analyzers/atomichygiene"
	"p2b/internal/analyzers/detrand"
	"p2b/internal/analyzers/hotalloc"
	"p2b/internal/analyzers/statdrift"
	"p2b/internal/analyzers/walswitch"
)

// DeterminismCritical lists the packages whose outputs must be pure
// functions of their inputs: the encode→shuffle→aggregate pipeline,
// its persistence, and the fleet layer whose byte-for-byte equivalence
// CI proves. detrand runs only here — packages like httpapi and loadgen
// legitimately read wall clocks for timeouts and telemetry timestamps.
var DeterminismCritical = []string{
	"p2b/internal/rng",
	"p2b/internal/shuffler",
	"p2b/internal/server",
	"p2b/internal/persist",
	"p2b/internal/encoding",
	"p2b/internal/bandit",
	"p2b/internal/mat",
	"p2b/internal/topology",
}

// ConcurrencyCritical lists the serving-path packages where atomics and
// mutexes guard hot shared state; atomichygiene runs over these.
var ConcurrencyCritical = []string{
	"p2b/internal/httpapi",
	"p2b/internal/server",
	"p2b/internal/topology",
	"p2b/internal/shuffler",
	"p2b/internal/persist",
	"p2b/internal/metrics",
}

// Suite returns the p2bvet analyzer suite with its package scoping.
// hotalloc, walswitch and statdrift are self-scoping (annotations,
// markers and registration calls respectively) and run everywhere.
func Suite() []Config {
	return []Config{
		{Analyzer: detrand.Analyzer, Packages: DeterminismCritical},
		{Analyzer: hotalloc.Analyzer},
		{Analyzer: walswitch.Analyzer},
		{Analyzer: atomichygiene.Analyzer, Packages: ConcurrencyCritical},
		{Analyzer: statdrift.Analyzer},
	}
}

// Analyzers returns the suite's analyzers in registration order, for
// help output.
func Analyzers() []*analysis.Analyzer {
	suite := Suite()
	out := make([]*analysis.Analyzer, len(suite))
	for i, c := range suite {
		out[i] = c.Analyzer
	}
	return out
}
