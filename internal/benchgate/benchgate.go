// Package benchgate implements the CI bench-regression gate: it compares
// freshly produced benchmark results against baselines committed under
// testdata/bench_baseline/ and fails when throughput regresses beyond a
// tolerance.
//
// Two result formats are understood:
//
//   - "bench_series": a BENCH_<id>.json file emitted by `p2bbench -json`
//     or `p2bload -json`. One named series is compared pointwise; values
//     default to throughput-like (higher is better, regression of a point
//     is 1 − current/base), while a check with direction "lower" treats
//     them as latency-like (lower is better, regression is current/base
//     − 1) and may also pin an absolute ceiling with max.
//   - "go_bench": the text output of `go test -bench`. Each benchmark's
//     ns/op is compared by name; ns/op is inverse throughput, so the
//     regression is 1 − base/current.
//
// Absolute numbers move with the host, which is why the default tolerance
// is a generous 30% and why the most load-bearing checks are
// machine-relative (the batched-vs-single speedup series, or a benchmark
// measured against its reference twin on the same box).
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// DefaultTolerance is the maximum accepted fractional throughput loss
// when neither the config nor the check specifies one.
const DefaultTolerance = 0.30

// GuardBenchRegex selects the hot-path guard benchmarks the gate compares.
// It is the single source of truth: `p2bgate -update` runs it, and the
// GUARD_BENCH_REGEX env var in .github/workflows/ci.yml must stay equal to
// it (the workflow cannot import Go constants).
const GuardBenchRegex = "^(BenchmarkKMeansEncode|BenchmarkLinUCBSelect|BenchmarkLinUCBUpdate|BenchmarkTabularSelect|BenchmarkServerDeliver|BenchmarkServerDeliverSerial|BenchmarkShufflerThroughput|BenchmarkIngestBinary|BenchmarkModelGet|BenchmarkFleetWarmStart|BenchmarkLinSnapshotBuild)$"

// GuardBenchPackages are the package paths `go test -bench` runs the guard
// regex against, in the exact order the CI workflow uses.
var GuardBenchPackages = []string{".", "./internal/httpapi/"}

// GateExperiments are the p2bbench experiments whose BENCH_<id>.json
// outputs the gate compares. Like GuardBenchRegex it is the single source
// of truth: `p2bgate -update` regenerates every listed experiment, and the
// CI workflow must run the same list (pinned by a test in sync_test.go).
var GateExperiments = []string{"http-pipeline", "model_path"}

// Config is the committed gate description (gate.json in the baseline
// directory).
type Config struct {
	// Tolerance is the maximum fractional throughput regression accepted
	// by every check that does not override it (default 0.30).
	Tolerance float64 `json:"tolerance"`
	Checks    []Check `json:"checks"`
}

// Check names one file to compare between the baseline and results
// directories.
type Check struct {
	// File must exist in both directories.
	File string `json:"file"`
	// Kind is "bench_series" or "go_bench".
	Kind string `json:"kind"`
	// Series names the series inside a bench_series file.
	Series string `json:"series,omitempty"`
	// Min, when non-zero, is an absolute floor every current value of a
	// bench_series check must clear regardless of the baseline (e.g. the
	// batched-vs-single speedup must stay >= 10).
	Min float64 `json:"min,omitempty"`
	// Direction is "higher" (default: values are throughput-like) or
	// "lower" (values are latency-like; growing is regressing).
	Direction string `json:"direction,omitempty"`
	// Max, when non-zero, is an absolute ceiling no current value of a
	// direction-"lower" bench_series check may exceed regardless of the
	// baseline (e.g. ingest p99 must stay under the SLO).
	Max float64 `json:"max,omitempty"`
	// Tolerance overrides Config.Tolerance for this check when non-zero.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Finding is the outcome of comparing one measured value.
type Finding struct {
	Check      string  // "<file>:<series>" or "<file>:go_bench"
	Name       string  // point label or benchmark name
	Base       float64 // baseline value
	Current    float64 // freshly measured value
	Regression float64 // fraction of throughput lost relative to baseline
	OK         bool
	Detail     string // set when a bound was violated
}

// LoadConfig reads a gate.json.
func LoadConfig(path string) (Config, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("benchgate: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(blob, &cfg); err != nil {
		return Config{}, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = DefaultTolerance
	}
	if cfg.Tolerance < 0 || cfg.Tolerance >= 1 {
		return Config{}, fmt.Errorf("benchgate: tolerance %v outside (0, 1)", cfg.Tolerance)
	}
	if len(cfg.Checks) == 0 {
		return Config{}, fmt.Errorf("benchgate: %s declares no checks", path)
	}
	return cfg, nil
}

// Run evaluates every check and returns one finding per compared value.
// A malformed or missing input is an error — a gate that cannot read its
// inputs must fail loudly, not pass silently.
func Run(baselineDir, resultsDir string, cfg Config) ([]Finding, error) {
	var out []Finding
	for _, c := range cfg.Checks {
		tol := cfg.Tolerance
		if c.Tolerance != 0 {
			tol = c.Tolerance
		}
		basePath := filepath.Join(baselineDir, c.File)
		curPath := filepath.Join(resultsDir, c.File)
		var (
			fs  []Finding
			err error
		)
		switch c.Kind {
		case "bench_series":
			fs, err = runSeriesCheck(c, tol, basePath, curPath)
		case "go_bench":
			fs, err = runGoBenchCheck(c, tol, basePath, curPath)
		default:
			err = fmt.Errorf("benchgate: unknown check kind %q", c.Kind)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	return out, nil
}

// benchFile mirrors just enough of p2bbench's BENCH_*.json schema.
type benchFile struct {
	Tables []struct {
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				X float64 `json:"x"`
				Y float64 `json:"y"`
			} `json:"points"`
		} `json:"series"`
	} `json:"tables"`
}

func loadSeries(path, name string) (map[float64]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var f benchFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	for _, tab := range f.Tables {
		for _, s := range tab.Series {
			if s.Name != name {
				continue
			}
			points := make(map[float64]float64, len(s.Points))
			for _, p := range s.Points {
				points[p.X] = p.Y
			}
			return points, nil
		}
	}
	return nil, fmt.Errorf("benchgate: %s has no series %q", path, name)
}

func runSeriesCheck(c Check, tol float64, basePath, curPath string) ([]Finding, error) {
	lower := false
	switch c.Direction {
	case "", "higher":
	case "lower":
		lower = true
	default:
		return nil, fmt.Errorf("benchgate: unknown direction %q (want higher or lower)", c.Direction)
	}
	base, err := loadSeries(basePath, c.Series)
	if err != nil {
		return nil, err
	}
	cur, err := loadSeries(curPath, c.Series)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, 0, len(base))
	for x := range base {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	var out []Finding
	for _, x := range xs {
		f := Finding{
			Check: c.File + ":" + c.Series,
			Name:  fmt.Sprintf("x=%g", x),
			Base:  base[x],
			OK:    true,
		}
		y, ok := cur[x]
		if !ok {
			f.OK = false
			f.Detail = "point missing from current results"
			out = append(out, f)
			continue
		}
		f.Current = y
		kind := "throughput"
		if f.Base > 0 {
			if lower {
				// Latency-like: growing relative to baseline is regressing.
				f.Regression = y/f.Base - 1
				kind = "latency"
			} else {
				f.Regression = 1 - y/f.Base
			}
		}
		if f.Regression > tol {
			f.OK = false
			f.Detail = fmt.Sprintf("%s regressed %.1f%% (tolerance %.0f%%)", kind, 100*f.Regression, 100*tol)
		}
		if c.Min != 0 && y < c.Min {
			f.OK = false
			f.Detail = strings.TrimPrefix(f.Detail+fmt.Sprintf("; below absolute floor %g", c.Min), "; ")
		}
		if c.Max != 0 && y > c.Max {
			f.OK = false
			f.Detail = strings.TrimPrefix(f.Detail+fmt.Sprintf("; above absolute ceiling %g", c.Max), "; ")
		}
		out = append(out, f)
	}
	return out, nil
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkKMeansEncode-8   	  400000	      2822 ns/op	 0 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// ParseGoBench extracts ns/op per benchmark name from `go test -bench`
// text output. A benchmark that appears multiple times (e.g. several
// packages or -count > 1) keeps its fastest run — the usual way to damp
// scheduler noise.
func ParseGoBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if old, ok := out[m[1]]; !ok || ns < old {
			out[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: reading %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: %s contains no benchmark lines", path)
	}
	return out, nil
}

func runGoBenchCheck(c Check, tol float64, basePath, curPath string) ([]Finding, error) {
	base, err := ParseGoBench(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := ParseGoBench(curPath)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Finding
	for _, name := range names {
		f := Finding{
			Check: c.File + ":go_bench",
			Name:  name,
			Base:  base[name],
			OK:    true,
		}
		ns, ok := cur[name]
		if !ok {
			f.OK = false
			f.Detail = "benchmark missing from current results"
			out = append(out, f)
			continue
		}
		f.Current = ns
		if ns > 0 {
			// ns/op is inverse throughput: throughput ratio = base/current.
			f.Regression = 1 - f.Base/ns
		}
		if f.Regression > tol {
			f.OK = false
			f.Detail = fmt.Sprintf("throughput regressed %.1f%% (tolerance %.0f%%)", 100*f.Regression, 100*tol)
		}
		out = append(out, f)
	}
	return out, nil
}

// Failures filters the findings that violated a bound.
func Failures(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if !f.OK {
			out = append(out, f)
		}
	}
	return out
}

// Render formats findings as an aligned report, failures marked.
func Render(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		status := "ok  "
		if !f.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%s  %-55s %-28s base %12.2f  current %12.2f  regression %+6.1f%%",
			status, f.Check, f.Name, f.Base, f.Current, 100*f.Regression)
		if f.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", f.Detail)
		}
		b.WriteString("\n")
	}
	return b.String()
}
