package benchgate

import (
	"os"
	"strings"
	"testing"
)

// The CI workflow cannot import Go constants, so it repeats the guard
// regex in an env var. This test pins the two together: edit one without
// the other and CI's own test job fails.
func TestGuardBenchRegexMatchesWorkflow(t *testing.T) {
	data, err := os.ReadFile("../../.github/workflows/ci.yml")
	if err != nil {
		t.Fatalf("reading workflow: %v", err)
	}
	want := `GUARD_BENCH_REGEX: "` + GuardBenchRegex + `"`
	if !strings.Contains(string(data), want) {
		t.Fatalf("ci.yml GUARD_BENCH_REGEX diverged from benchgate.GuardBenchRegex:\nwant line containing %s", want)
	}
}

// The bench-gate job must run every experiment the gate compares; a
// missing run would fail the gate with "file missing", but catching the
// drift here names the actual mistake.
func TestGateExperimentsMatchWorkflow(t *testing.T) {
	data, err := os.ReadFile("../../.github/workflows/ci.yml")
	if err != nil {
		t.Fatalf("reading workflow: %v", err)
	}
	for _, exp := range GateExperiments {
		want := "-experiment " + exp
		if !strings.Contains(string(data), want) {
			t.Fatalf("ci.yml does not run gate experiment %q (want a p2bbench invocation containing %q)", exp, want)
		}
	}
}
