package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

const benchJSONTmpl = `{
  "name": "http-pipeline",
  "tables": [
    {
      "x_label": "workers",
      "series": [
        {"name": "batched_rps", "points": [{"x": 8, "y": %s}]},
        {"name": "speedup_batched_vs_single", "points": [{"x": 8, "y": %s}]}
      ]
    }
  ]
}`

func tmpl(rps, speedup string) string {
	out := strings.Replace(benchJSONTmpl, "%s", rps, 1)
	return strings.Replace(out, "%s", speedup, 1)
}

func TestSeriesCheckPassesWithinTolerance(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "BENCH_http_pipeline.json", tmpl("1000000", "30"))
	writeFile(t, curDir, "BENCH_http_pipeline.json", tmpl("800000", "25")) // -20%, inside 30%
	cfg := Config{Tolerance: 0.30, Checks: []Check{
		{File: "BENCH_http_pipeline.json", Kind: "bench_series", Series: "batched_rps"},
		{File: "BENCH_http_pipeline.json", Kind: "bench_series", Series: "speedup_batched_vs_single", Min: 10},
	}}
	fs, err := Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("findings %d, want 2", len(fs))
	}
	if len(Failures(fs)) != 0 {
		t.Fatalf("unexpected failures:\n%s", Render(fs))
	}
}

func TestSeriesCheckFailsBeyondTolerance(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "BENCH_http_pipeline.json", tmpl("1000000", "30"))
	writeFile(t, curDir, "BENCH_http_pipeline.json", tmpl("500000", "30")) // -50%
	cfg := Config{Tolerance: 0.30, Checks: []Check{
		{File: "BENCH_http_pipeline.json", Kind: "bench_series", Series: "batched_rps"},
	}}
	fs, err := Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fails := Failures(fs)
	if len(fails) != 1 {
		t.Fatalf("want 1 failure, got:\n%s", Render(fs))
	}
	if fails[0].Regression < 0.49 || fails[0].Regression > 0.51 {
		t.Fatalf("regression %v, want ~0.5", fails[0].Regression)
	}
}

func TestSeriesCheckAbsoluteFloor(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	// A collapse from 200x to 12x passes the relative bar only because the
	// baseline was generous; it must still clear the absolute floor — and
	// an 8x must not.
	writeFile(t, baseDir, "BENCH_http_pipeline.json", tmpl("1000000", "12"))
	writeFile(t, curDir, "BENCH_http_pipeline.json", tmpl("1000000", "8"))
	cfg := Config{Tolerance: 0.50, Checks: []Check{
		{File: "BENCH_http_pipeline.json", Kind: "bench_series", Series: "speedup_batched_vs_single", Min: 10},
	}}
	fs, err := Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fails := Failures(fs)
	if len(fails) != 1 || !strings.Contains(fails[0].Detail, "absolute floor") {
		t.Fatalf("floor violation not caught:\n%s", Render(fs))
	}
}

func TestSeriesCheckImprovementIsNegativeRegression(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "BENCH_http_pipeline.json", tmpl("1000000", "30"))
	writeFile(t, curDir, "BENCH_http_pipeline.json", tmpl("2000000", "60"))
	cfg := Config{Tolerance: 0.30, Checks: []Check{
		{File: "BENCH_http_pipeline.json", Kind: "bench_series", Series: "batched_rps"},
	}}
	fs, err := Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(Failures(fs)) != 0 || fs[0].Regression >= 0 {
		t.Fatalf("improvement mishandled:\n%s", Render(fs))
	}
}

const loadJSONTmpl = `{
  "name": "load_slo",
  "tables": [
    {
      "x_label": "percentile",
      "series": [
        {"name": "ingest_latency_ms", "points": [{"x": 99, "y": %s}]}
      ]
    }
  ]
}`

func TestSeriesCheckDirectionLower(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "BENCH_load_slo.json", strings.Replace(loadJSONTmpl, "%s", "10", 1))
	writeFile(t, curDir, "BENCH_load_slo.json", strings.Replace(loadJSONTmpl, "%s", "12", 1)) // +20%: fine
	cfg := Config{Tolerance: 0.50, Checks: []Check{
		{File: "BENCH_load_slo.json", Kind: "bench_series", Series: "ingest_latency_ms", Direction: "lower"},
	}}
	fs, err := Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(Failures(fs)) != 0 {
		t.Fatalf("20%% latency growth inside 50%% tolerance failed:\n%s", Render(fs))
	}
	if fs[0].Regression < 0.19 || fs[0].Regression > 0.21 {
		t.Fatalf("regression %v, want ~0.2", fs[0].Regression)
	}

	// Tripled latency breaches the tolerance.
	writeFile(t, curDir, "BENCH_load_slo.json", strings.Replace(loadJSONTmpl, "%s", "30", 1))
	fs, err = Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fails := Failures(fs)
	if len(fails) != 1 || !strings.Contains(fails[0].Detail, "latency regressed") {
		t.Fatalf("tripled latency not caught:\n%s", Render(fs))
	}

	// And a latency improvement must read as negative regression.
	writeFile(t, curDir, "BENCH_load_slo.json", strings.Replace(loadJSONTmpl, "%s", "5", 1))
	fs, err = Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(Failures(fs)) != 0 || fs[0].Regression >= 0 {
		t.Fatalf("latency improvement mishandled:\n%s", Render(fs))
	}
}

func TestSeriesCheckAbsoluteCeiling(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	// A bloated baseline must not launder an SLO breach: +10% relative is
	// fine, but the ceiling still holds.
	writeFile(t, baseDir, "BENCH_load_slo.json", strings.Replace(loadJSONTmpl, "%s", "300", 1))
	writeFile(t, curDir, "BENCH_load_slo.json", strings.Replace(loadJSONTmpl, "%s", "330", 1))
	cfg := Config{Tolerance: 0.50, Checks: []Check{
		{File: "BENCH_load_slo.json", Kind: "bench_series", Series: "ingest_latency_ms",
			Direction: "lower", Max: 250},
	}}
	fs, err := Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fails := Failures(fs)
	if len(fails) != 1 || !strings.Contains(fails[0].Detail, "absolute ceiling") {
		t.Fatalf("ceiling violation not caught:\n%s", Render(fs))
	}
}

func TestSeriesCheckUnknownDirectionIsError(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "BENCH_load_slo.json", strings.Replace(loadJSONTmpl, "%s", "10", 1))
	writeFile(t, curDir, "BENCH_load_slo.json", strings.Replace(loadJSONTmpl, "%s", "10", 1))
	cfg := Config{Tolerance: 0.50, Checks: []Check{
		{File: "BENCH_load_slo.json", Kind: "bench_series", Series: "ingest_latency_ms", Direction: "sideways"},
	}}
	if _, err := Run(baseDir, curDir, cfg); err == nil {
		t.Fatal("unknown direction accepted")
	}
}

func TestMissingSeriesIsError(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "BENCH_http_pipeline.json", tmpl("1", "1"))
	writeFile(t, curDir, "BENCH_http_pipeline.json", tmpl("1", "1"))
	cfg := Config{Tolerance: 0.30, Checks: []Check{
		{File: "BENCH_http_pipeline.json", Kind: "bench_series", Series: "no_such_series"},
	}}
	if _, err := Run(baseDir, curDir, cfg); err == nil {
		t.Fatal("missing series must be an error, not a pass")
	}
}

func TestMissingResultFileIsError(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "BENCH_http_pipeline.json", tmpl("1", "1"))
	cfg := Config{Tolerance: 0.30, Checks: []Check{
		{File: "BENCH_http_pipeline.json", Kind: "bench_series", Series: "batched_rps"},
	}}
	if _, err := Run(baseDir, curDir, cfg); err == nil {
		t.Fatal("missing current file must be an error")
	}
}

const goBenchBase = `goos: linux
goarch: amd64
pkg: p2b
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKMeansEncode-8     	  400000	      2800 ns/op	       0 B/op	       0 allocs/op
BenchmarkLinUCBSelect-8     	  600000	      2000 ns/op	       0 B/op	       0 allocs/op
BenchmarkServerDeliver-8    	 1000000	       700 ns/op
PASS
`

func TestGoBenchCheck(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "guard_bench.txt", goBenchBase)
	cur := strings.Replace(goBenchBase, "2800 ns/op", "2900 ns/op", 1) // ~3% slower: fine
	cur = strings.Replace(cur, "2000 ns/op", "4000 ns/op", 1)          // 2x slower: fail
	writeFile(t, curDir, "guard_bench.txt", cur)
	cfg := Config{Tolerance: 0.30, Checks: []Check{
		{File: "guard_bench.txt", Kind: "go_bench"},
	}}
	fs, err := Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("findings %d, want 3:\n%s", len(fs), Render(fs))
	}
	fails := Failures(fs)
	if len(fails) != 1 || fails[0].Name != "BenchmarkLinUCBSelect" {
		t.Fatalf("want exactly BenchmarkLinUCBSelect to fail:\n%s", Render(fs))
	}
	// Throughput halved: regression 50%.
	if fails[0].Regression < 0.49 || fails[0].Regression > 0.51 {
		t.Fatalf("regression %v, want ~0.5", fails[0].Regression)
	}
}

func TestGoBenchParserKeepsFastestDuplicate(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "b.txt",
		"BenchmarkX-8 100 200 ns/op\nBenchmarkX-8 100 150 ns/op\nBenchmarkX-8 100 250 ns/op\n")
	m, err := ParseGoBench(filepath.Join(dir, "b.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if m["BenchmarkX"] != 150 {
		t.Fatalf("kept %v, want the fastest 150", m["BenchmarkX"])
	}
}

func TestGoBenchMissingBenchmarkFails(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeFile(t, baseDir, "guard_bench.txt", goBenchBase)
	writeFile(t, curDir, "guard_bench.txt",
		"BenchmarkKMeansEncode-8 400000 2800 ns/op\n")
	cfg := Config{Tolerance: 0.30, Checks: []Check{{File: "guard_bench.txt", Kind: "go_bench"}}}
	fs, err := Run(baseDir, curDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fails := Failures(fs)
	if len(fails) != 2 {
		t.Fatalf("want 2 missing-benchmark failures:\n%s", Render(fs))
	}
	for _, f := range fails {
		if !strings.Contains(f.Detail, "missing") {
			t.Fatalf("detail %q", f.Detail)
		}
	}
}

func TestLoadConfigValidation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "gate.json", `{"tolerance": 0.3, "checks": [{"file": "f", "kind": "go_bench"}]}`)
	cfg, err := LoadConfig(filepath.Join(dir, "gate.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tolerance != 0.3 || len(cfg.Checks) != 1 {
		t.Fatalf("cfg %+v", cfg)
	}
	writeFile(t, dir, "empty.json", `{"tolerance": 0.3, "checks": []}`)
	if _, err := LoadConfig(filepath.Join(dir, "empty.json")); err == nil {
		t.Fatal("empty checks accepted")
	}
	writeFile(t, dir, "tol.json", `{"tolerance": 1.5, "checks": [{"file": "f", "kind": "go_bench"}]}`)
	if _, err := LoadConfig(filepath.Join(dir, "tol.json")); err == nil {
		t.Fatal("tolerance 1.5 accepted")
	}
}

func TestUnknownKindIsError(t *testing.T) {
	cfg := Config{Tolerance: 0.3, Checks: []Check{{File: "f", Kind: "mystery"}}}
	if _, err := Run(t.TempDir(), t.TempDir(), cfg); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
