package encoding

import (
	"math"
	"testing"
	"testing/quick"

	"p2b/internal/rng"
)

func TestGridValidation(t *testing.T) {
	if _, err := NewGridQuantizer(0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewGridQuantizer(3, 0); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := NewGridQuantizer(3, 10); err == nil {
		t.Fatal("q=10 accepted")
	}
}

func TestCardinalityPaperExample(t *testing.T) {
	// Figure 2: d=3, q=1 gives n = C(12, 2) = 66.
	g, err := NewGridQuantizer(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cardinality() != 66 {
		t.Fatalf("Cardinality(d=3, q=1) = %d, want 66", g.Cardinality())
	}
	if g.K() != 66 {
		t.Fatalf("K = %d, want 66", g.K())
	}
}

func TestCardinalityEquationOne(t *testing.T) {
	// Independent check against Equation 1 for several shapes.
	cases := []struct {
		d, q int
		want int64
	}{
		{2, 1, 11},   // C(11, 1)
		{3, 1, 66},   // C(12, 2)
		{4, 1, 286},  // C(13, 3)
		{3, 2, 5151}, // C(102, 2)
		{5, 1, 1001}, // C(14, 4)
	}
	for _, c := range cases {
		g, err := NewGridQuantizer(c.d, c.q)
		if err != nil {
			t.Fatalf("d=%d q=%d: %v", c.d, c.q, err)
		}
		if g.Cardinality() != c.want {
			t.Fatalf("Cardinality(d=%d, q=%d) = %d, want %d", c.d, c.q, g.Cardinality(), c.want)
		}
		// The big.Int helper must agree.
		if Cardinality(c.d, c.q).Int64() != c.want {
			t.Fatalf("big Cardinality(d=%d, q=%d) mismatch", c.d, c.q)
		}
	}
}

func TestGridCardinalityOverflowRejected(t *testing.T) {
	// d=40, q=3 has astronomically many grid points.
	if _, err := NewGridQuantizer(40, 3); err == nil {
		t.Fatal("huge grid accepted")
	}
}

func TestQuantizeSumsToScale(t *testing.T) {
	g, err := NewGridQuantizer(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		x := r.Simplex(4)
		comp := g.Quantize(x)
		sum := 0
		for _, c := range comp {
			if c < 0 {
				t.Fatalf("negative part: %v", comp)
			}
			sum += c
		}
		if sum != 10 {
			t.Fatalf("composition sums to %d, want 10: %v from %v", sum, comp, x)
		}
	}
}

func TestQuantizeExactGridPointsFixed(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	comp := g.Quantize([]float64{0.2, 0.3, 0.5})
	if comp[0] != 2 || comp[1] != 3 || comp[2] != 5 {
		t.Fatalf("exact grid point misquantized: %v", comp)
	}
}

func TestQuantizeDegenerateInput(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	for _, x := range [][]float64{
		{0, 0, 0},
		{math.NaN(), math.NaN(), math.NaN()},
		{math.Inf(1), 1, 1},
		{-1, -1, -1},
	} {
		comp := g.Quantize(x)
		sum := 0
		for _, c := range comp {
			if c < 0 {
				t.Fatalf("negative part for %v: %v", x, comp)
			}
			sum += c
		}
		if sum != 10 {
			t.Fatalf("degenerate input %v quantized to sum %d", x, sum)
		}
	}
}

func TestQuantizeUnnormalizedInput(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	a := g.Quantize([]float64{2, 3, 5})
	b := g.Quantize([]float64{0.2, 0.3, 0.5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scaling changed quantization: %v vs %v", a, b)
		}
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	g, err := NewGridQuantizer(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Cardinality()
	seen := make(map[int64]bool, n)
	for rank := int64(0); rank < n; rank++ {
		comp := g.Unrank(rank)
		back := g.Rank(comp)
		if back != rank {
			t.Fatalf("Rank(Unrank(%d)) = %d", rank, back)
		}
		if seen[back] {
			t.Fatalf("duplicate rank %d", back)
		}
		seen[back] = true
		sum := 0
		for _, c := range comp {
			sum += c
		}
		if sum != 10 {
			t.Fatalf("Unrank(%d) sums to %d", rank, sum)
		}
	}
}

func TestRankLexicographicOrder(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	prev := g.Unrank(0)
	for rank := int64(1); rank < g.Cardinality(); rank++ {
		cur := g.Unrank(rank)
		if !lexLess(prev, cur) {
			t.Fatalf("rank %d (%v) not lexicographically after %v", rank, cur, prev)
		}
		prev = cur
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestRankPanics(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	cases := [][]int{
		{1, 2},     // wrong length
		{-1, 5, 6}, // negative entry
		{5, 5, 5},  // wrong sum
	}
	for i, comp := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			g.Rank(comp)
		}()
	}
}

func TestUnrankPanicsOutOfRange(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	for _, rank := range []int64{-1, 66} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Unrank(%d) did not panic", rank)
				}
			}()
			g.Unrank(rank)
		}()
	}
}

func TestEncodeDecodeConsistency(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	r := rng.New(2)
	for i := 0; i < 500; i++ {
		x := r.Simplex(3)
		code := g.Encode(x)
		if code < 0 || code >= g.K() {
			t.Fatalf("code %d out of range", code)
		}
		// Decoding the code and re-encoding must be a fixed point.
		y := g.Decode(code)
		if g.Encode(y) != code {
			t.Fatalf("Encode(Decode(%d)) = %d", code, g.Encode(y))
		}
	}
}

func TestEncodeIdempotentProperty(t *testing.T) {
	g, _ := NewGridQuantizer(5, 1)
	if err := quick.Check(func(seed uint16) bool {
		x := rng.New(uint64(seed)).Simplex(5)
		code := g.Encode(x)
		return g.Encode(g.Decode(code)) == code
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateAllPaperFigure(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	pts := g.EnumerateAll(100)
	if len(pts) != 66 {
		t.Fatalf("enumerated %d points, want 66", len(pts))
	}
	for i, p := range pts {
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("point %d not normalized: %v", i, p)
		}
	}
}

func TestEnumerateAllLimit(t *testing.T) {
	g, _ := NewGridQuantizer(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("EnumerateAll over limit did not panic")
		}
	}()
	g.EnumerateAll(10)
}

func TestNeighborsShareCodesMoreThanFarPoints(t *testing.T) {
	// The spatial property motivating the encoding: nearby contexts should
	// collide far more often than distant ones.
	g, _ := NewGridQuantizer(3, 1)
	r := rng.New(3)
	nearSame, farSame := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		x := r.Simplex(3)
		// A small perturbation projected back to the simplex.
		y := perturbSimplex(x, 0.01, r)
		z := r.Simplex(3)
		if g.Encode(x) == g.Encode(y) {
			nearSame++
		}
		if g.Encode(x) == g.Encode(z) {
			farSame++
		}
	}
	if nearSame <= farSame*2 {
		t.Fatalf("locality broken: near collisions %d, far collisions %d", nearSame, farSame)
	}
}

func perturbSimplex(x []float64, scale float64, r *rng.Rand) []float64 {
	y := make([]float64, len(x))
	sum := 0.0
	for i, v := range x {
		y[i] = math.Max(0, v+r.Norm(0, scale))
		sum += y[i]
	}
	if sum == 0 {
		copy(y, x)
		return y
	}
	for i := range y {
		y[i] /= sum
	}
	return y
}
