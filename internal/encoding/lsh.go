package encoding

import (
	"encoding/json"
	"fmt"

	"p2b/internal/rng"
)

// LSH is a random-hyperplane locality-sensitive hashing encoder: the code
// of x is the bit pattern of sign(w_i . x - t_i) over `bits` random
// hyperplanes, giving a code space of size 2^bits. Nearby contexts share
// codes with high probability, which is the property the P2B encoding step
// needs; the paper cites LSH (Aghasaryan et al. 2013) as an alternative to
// clustering, and this implementation backs the encoder ablation bench.
type LSH struct {
	planes  [][]float64
	offsets []float64
	d       int
}

// NewLSH builds an encoder over d-dimensional contexts with the given
// number of hyperplane bits (1 <= bits <= 30). Hyperplane normals are
// standard Gaussian; offsets are chosen so that hyperplanes cut through the
// simplex interior (each threshold is the plane's value at the simplex
// centroid).
func NewLSH(d, bits int, r *rng.Rand) (*LSH, error) {
	if d < 1 {
		return nil, fmt.Errorf("encoding: NewLSH needs d >= 1, got %d", d)
	}
	if bits < 1 || bits > 30 {
		return nil, fmt.Errorf("encoding: NewLSH needs 1 <= bits <= 30, got %d", bits)
	}
	l := &LSH{d: d, planes: make([][]float64, bits), offsets: make([]float64, bits)}
	for i := 0; i < bits; i++ {
		w := r.NormVec(d, 1)
		l.planes[i] = w
		// Value of the plane at the simplex centroid (1/d, ..., 1/d).
		mean := 0.0
		for _, v := range w {
			mean += v
		}
		l.offsets[i] = mean / float64(d)
	}
	return l, nil
}

// K returns the code space size, 2^bits.
func (l *LSH) K() int { return 1 << len(l.planes) }

// D returns the context dimension.
func (l *LSH) D() int { return l.d }

// Encode returns the hyperplane sign pattern of x as an integer code.
func (l *LSH) Encode(x []float64) int {
	if len(x) != l.d {
		panic(fmt.Sprintf("encoding: LSH Encode dimension %d, want %d", len(x), l.d))
	}
	code := 0
	for i, w := range l.planes {
		dot := 0.0
		for j, v := range w {
			dot += v * x[j]
		}
		if dot > l.offsets[i] {
			code |= 1 << i
		}
	}
	return code
}

// lshJSON is the serialized form of an LSH encoder.
type lshJSON struct {
	D       int         `json:"d"`
	Planes  [][]float64 `json:"planes"`
	Offsets []float64   `json:"offsets"`
}

// MarshalJSON serializes the encoder so it can ship with the app like the
// k-means encoder does.
func (l *LSH) MarshalJSON() ([]byte, error) {
	return json.Marshal(lshJSON{D: l.d, Planes: l.planes, Offsets: l.offsets})
}

// UnmarshalJSON restores a serialized encoder.
func (l *LSH) UnmarshalJSON(b []byte) error {
	var j lshJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if j.D < 1 || len(j.Planes) == 0 || len(j.Planes) != len(j.Offsets) {
		return fmt.Errorf("encoding: LSH JSON has invalid shape")
	}
	for i, w := range j.Planes {
		if len(w) != j.D {
			return fmt.Errorf("encoding: LSH JSON plane %d has dimension %d, want %d", i, len(w), j.D)
		}
	}
	l.d = j.D
	l.planes = j.Planes
	l.offsets = j.Offsets
	return nil
}
