package encoding

import (
	"math"
	"testing"

	"p2b/internal/rng"
)

// TestPropertyEncodeMatchesNaive is the exactness guarantee of the pruned
// nearest-centroid search: over many random encoders and random simplex
// contexts, Encode must return the bit-identical code of the naive full
// scan, including tie resolution to the lowest index.
func TestPropertyEncodeMatchesNaive(t *testing.T) {
	r := rng.New(20200302)
	for trial := 0; trial < 30; trial++ {
		tr := r.SplitIndex("trial", trial)
		d := 2 + tr.IntN(12)
		k := 1 + tr.IntN(257)
		sample := make([][]float64, 4*k)
		for i := range sample {
			sample[i] = tr.Simplex(d)
		}
		m, err := FitKMeans(sample, k, 5, 1e-9, tr.Split("fit"))
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 200; q++ {
			x := tr.Simplex(d)
			if got, want := m.Encode(x), m.EncodeNaive(x); got != want {
				t.Fatalf("trial %d (k=%d d=%d): pruned Encode = %d, naive = %d", trial, k, d, got, want)
			}
		}
	}
}

// TestPropertyEncodeMatchesNaiveWithTies stresses the degenerate case the
// random fit never produces: duplicated centroids, where ties must resolve
// to the lowest index under both scans.
func TestPropertyEncodeMatchesNaiveWithTies(t *testing.T) {
	r := rng.New(7)
	d, k := 4, 64
	flat := make([]float64, k*d)
	for i := 0; i < k; i++ {
		// Only 8 distinct centroids, each repeated 8 times.
		src := r.SplitIndex("cent", i%8).Simplex(d)
		copy(flat[i*d:(i+1)*d], src)
	}
	m := newKMeans(flat, k, d)
	for q := 0; q < 500; q++ {
		x := r.SplitIndex("query", q).Simplex(d)
		if got, want := m.Encode(x), m.EncodeNaive(x); got != want {
			t.Fatalf("query %d: pruned Encode = %d, naive = %d", q, got, want)
		}
	}
	// Querying a centroid exactly must return its first occurrence.
	for i := 0; i < 8; i++ {
		x := m.Centroid(i + 8) // a duplicate of centroid i
		if got := m.Encode(x); got != i {
			t.Fatalf("exact duplicate query: Encode = %d, want %d", got, i)
		}
	}
}

func TestDecodeTo(t *testing.T) {
	m := newKMeans([]float64{0.25, 0.75, 0.5, 0.5}, 2, 2)
	buf := make([]float64, 2)
	got := m.DecodeTo(buf, 1)
	if &got[0] != &buf[0] {
		t.Fatal("DecodeTo did not reuse the provided buffer")
	}
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Fatalf("DecodeTo = %v", got)
	}
	// Undersized (and nil) destinations are grown.
	if got := m.DecodeTo(nil, 0); got[0] != 0.25 || got[1] != 0.75 {
		t.Fatalf("DecodeTo(nil) = %v", got)
	}
	// The buffer must not alias internal storage.
	got[0] = 99
	if m.flat[0] != 0.25 {
		t.Fatal("DecodeTo aliases the centroid buffer")
	}
}

func TestFitKMeansWorkersDeterministic(t *testing.T) {
	r := rng.New(11)
	data := make([][]float64, 600)
	for i := range data {
		data[i] = r.SplitIndex("pt", i).Simplex(6)
	}
	m1, err := FitKMeansOptions(data, 32, FitOptions{MaxIter: 20, Tol: 1e-9, Workers: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	m8, err := FitKMeansOptions(data, 32, FitOptions{MaxIter: 20, Tol: 1e-9, Workers: 8}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.flat {
		if m1.flat[i] != m8.flat[i] {
			t.Fatalf("flat[%d]: workers=1 %v vs workers=8 %v", i, m1.flat[i], m8.flat[i])
		}
	}
}

// TestEncodeZeroAlloc pins the zero-allocation contract of the on-device
// hot path.
func TestEncodeZeroAlloc(t *testing.T) {
	r := rng.New(3)
	sample := make([][]float64, 512)
	for i := range sample {
		sample[i] = r.Simplex(10)
	}
	m, err := FitKMeans(sample, 128, 5, 1e-6, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	x := r.Simplex(10)
	buf := make([]float64, 10)
	if n := testing.AllocsPerRun(100, func() { m.Encode(x) }); n != 0 {
		t.Fatalf("Encode allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.DecodeTo(buf, 3) }); n != 0 {
		t.Fatalf("DecodeTo allocates %v times per run", n)
	}
}

// TestEncodeNonFiniteContext pins the degenerate-input contract: a context
// containing NaN or Inf makes every distance comparison false, so all
// search paths — naive, flat and indexed — must agree on code 0 rather
// than emitting an out-of-range code.
func TestEncodeNonFiniteContext(t *testing.T) {
	r := rng.New(9)
	sample := make([][]float64, 1024)
	for i := range sample {
		sample[i] = r.Simplex(10)
	}
	// k >= indexMinK so the grouped index path is exercised.
	m, err := FitKMeans(sample, 256, 3, 1e-6, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{
		{math.NaN(), 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{math.Inf(1), 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, math.Inf(-1), 0, 0, 0, 0, math.NaN(), 0},
	}
	for i, x := range bad {
		naive := m.EncodeNaive(x)
		got := m.Encode(x)
		flat := m.encodeFlat(x)
		if got != naive || flat != naive {
			t.Fatalf("case %d: indexed=%d flat=%d naive=%d", i, got, flat, naive)
		}
		if got < 0 || got >= m.K() {
			t.Fatalf("case %d: code %d out of range", i, got)
		}
	}
}
