// Package encoding implements P2B's context encoders: functions that map a
// normalized d-dimensional context vector to a discrete code in {0..k-1}
// before transmission (paper §3.2).
//
// Three families are provided:
//
//   - GridQuantizer: the paper's fixed-precision representation. Contexts
//     are rounded to q decimal digits on the probability simplex; the set of
//     representable points is finite with cardinality n = C(10^q + d - 1,
//     d - 1) (Equation 1, the stars-and-bars count), and every grid point is
//     assigned its combinatorial rank as its code.
//   - KMeans: the clustering encoder used in the paper's experiments, with
//     both Lloyd and mini-batch (Sculley 2010) fitting.
//   - LSH: random-hyperplane locality-sensitive hashing (Aghasaryan et al.
//     2013), included for the encoder ablation.
package encoding

import (
	"errors"
	"fmt"
	"math"
	"math/big"
)

// Encoder maps a context vector to a code in {0, ..., K()-1}.
type Encoder interface {
	// Encode returns the code of x.
	Encode(x []float64) int
	// K returns the size of the code space.
	K() int
}

// Decoder maps a code back to a representative context vector (the cluster
// centroid or grid point). Encoders that support it enable the
// centroid-LinUCB private learner; LSH does not (hyperplane cells have no
// stored representative).
type Decoder interface {
	// Decode returns the representative context of the code.
	Decode(code int) []float64
}

// DecoderTo is the allocation-free variant of Decoder: the representative
// context is written into dst (grown only if too short) and returned. Hot
// paths — the centroid learner's per-interaction loop and the server's
// ingestion — use it with a reused buffer.
type DecoderTo interface {
	Decoder
	// DecodeTo copies the representative context of code into dst.
	DecodeTo(dst []float64, code int) []float64
}

// ErrTooLarge is returned when a grid's cardinality does not fit the int
// code space.
var ErrTooLarge = errors.New("encoding: grid cardinality exceeds the supported code space")

// GridQuantizer rounds normalized contexts to a fixed precision of q
// decimal digits and codes each grid point by its lexicographic rank among
// the weak compositions of 10^q into d parts.
type GridQuantizer struct {
	d     int
	q     int
	scale int       // 10^q
	binom [][]int64 // Pascal's triangle, binom[n][k]
	n     int64     // cardinality
}

// NewGridQuantizer returns a quantizer for d-dimensional simplex vectors at
// precision q decimal digits. It returns ErrTooLarge if the cardinality
// C(10^q + d - 1, d - 1) exceeds int64 (the full grid code space is only
// practical for small d and q; larger spaces use the clustering encoders).
func NewGridQuantizer(d, q int) (*GridQuantizer, error) {
	if d < 1 {
		return nil, fmt.Errorf("encoding: NewGridQuantizer needs d >= 1, got %d", d)
	}
	if q < 1 || q > 9 {
		return nil, fmt.Errorf("encoding: NewGridQuantizer needs 1 <= q <= 9, got %d", q)
	}
	scale := 1
	for i := 0; i < q; i++ {
		scale *= 10
	}
	g := &GridQuantizer{d: d, q: q, scale: scale}
	if err := g.buildBinom(scale + d); err != nil {
		return nil, err
	}
	g.n = g.compositions(scale, d)
	if g.n < 0 {
		return nil, ErrTooLarge
	}
	return g, nil
}

// buildBinom fills Pascal's triangle up to row max, storing -1 for entries
// that overflow int64.
func (g *GridQuantizer) buildBinom(max int) error {
	limit := new(big.Int).SetInt64(math.MaxInt64)
	g.binom = make([][]int64, max+1)
	row := make([]*big.Int, max+1)
	for n := 0; n <= max; n++ {
		g.binom[n] = make([]int64, n+1)
		newRow := make([]*big.Int, max+1)
		for k := 0; k <= n; k++ {
			var v *big.Int
			if k == 0 || k == n {
				v = big.NewInt(1)
			} else {
				v = new(big.Int).Add(row[k-1], row[k])
			}
			newRow[k] = v
			if v.Cmp(limit) > 0 {
				g.binom[n][k] = -1
			} else {
				g.binom[n][k] = v.Int64()
			}
		}
		row = newRow
	}
	// Cardinality overflow is reported by the caller via compositions().
	return nil
}

// compositions returns the number of weak compositions of s into m parts,
// C(s + m - 1, m - 1), or -1 on overflow.
func (g *GridQuantizer) compositions(s, m int) int64 {
	if m == 0 {
		if s == 0 {
			return 1
		}
		return 0
	}
	n := s + m - 1
	k := m - 1
	if n < 0 || n >= len(g.binom) || k > n {
		return 0
	}
	return g.binom[n][k]
}

// D returns the context dimension.
func (g *GridQuantizer) D() int { return g.d }

// Q returns the precision in decimal digits.
func (g *GridQuantizer) Q() int { return g.q }

// Cardinality returns n = C(10^q + d - 1, d - 1), the number of grid points
// (Equation 1 of the paper).
func (g *GridQuantizer) Cardinality() int64 { return g.n }

// K returns the code space size (the cardinality).
func (g *GridQuantizer) K() int { return int(g.n) }

// Quantize rounds x onto the grid: a non-negative integer composition of
// 10^q with one part per dimension. Rounding uses the largest-remainder
// method so the parts always sum exactly to 10^q. The input is normalized
// defensively; a zero or degenerate vector maps to the uniform composition.
func (g *GridQuantizer) Quantize(x []float64) []int {
	if len(x) != g.d {
		panic(fmt.Sprintf("encoding: Quantize dimension %d, want %d", len(x), g.d))
	}
	sum := 0.0
	for _, v := range x {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			sum += v
		}
	}
	comp := make([]int, g.d)
	if sum <= 0 {
		// Degenerate input: spread uniformly, remainder to leading parts.
		base := g.scale / g.d
		rem := g.scale - base*g.d
		for i := range comp {
			comp[i] = base
			if i < rem {
				comp[i]++
			}
		}
		return comp
	}
	type fracIdx struct {
		frac float64
		idx  int
	}
	fracs := make([]fracIdx, g.d)
	total := 0
	for i, v := range x {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		scaled := v / sum * float64(g.scale)
		fl := math.Floor(scaled)
		comp[i] = int(fl)
		total += comp[i]
		fracs[i] = fracIdx{frac: scaled - fl, idx: i}
	}
	// Distribute the remaining mass to the largest fractional parts;
	// ties broken by index for determinism.
	rem := g.scale - total
	for r := 0; r < rem; r++ {
		best := -1
		for i := range fracs {
			if best == -1 || fracs[i].frac > fracs[best].frac ||
				(fracs[i].frac == fracs[best].frac && fracs[i].idx < fracs[best].idx) {
				best = i
			}
		}
		comp[fracs[best].idx]++
		fracs[best].frac = -1
	}
	return comp
}

// Rank returns the lexicographic rank of the composition among all weak
// compositions of 10^q into d parts. It panics if comp has the wrong shape
// or sum.
func (g *GridQuantizer) Rank(comp []int) int64 {
	if len(comp) != g.d {
		panic(fmt.Sprintf("encoding: Rank dimension %d, want %d", len(comp), g.d))
	}
	remaining := g.scale
	var rank int64
	for i := 0; i < g.d-1; i++ {
		c := comp[i]
		if c < 0 || c > remaining {
			panic(fmt.Sprintf("encoding: Rank composition entry %d out of range", i))
		}
		m := g.d - i
		// Compositions whose part i is smaller than c:
		// W(remaining, m) - W(remaining - c, m).
		rank += g.compositions(remaining, m) - g.compositions(remaining-c, m)
		remaining -= c
	}
	if comp[g.d-1] != remaining {
		panic("encoding: Rank composition does not sum to 10^q")
	}
	return rank
}

// Unrank returns the composition with the given lexicographic rank. It
// panics if rank is out of [0, Cardinality()).
func (g *GridQuantizer) Unrank(rank int64) []int {
	if rank < 0 || rank >= g.n {
		panic(fmt.Sprintf("encoding: Unrank rank %d out of range [0, %d)", rank, g.n))
	}
	comp := make([]int, g.d)
	remaining := g.scale
	for i := 0; i < g.d-1; i++ {
		m := g.d - i
		for v := 0; ; v++ {
			cnt := g.compositions(remaining-v, m-1)
			if rank < cnt {
				comp[i] = v
				remaining -= v
				break
			}
			rank -= cnt
		}
	}
	comp[g.d-1] = remaining
	return comp
}

// Encode quantizes x and returns the grid point's rank as its code.
func (g *GridQuantizer) Encode(x []float64) int {
	return int(g.Rank(g.Quantize(x)))
}

// Decode returns the grid point (a normalized vector) for a code, the
// center of the code's cell.
func (g *GridQuantizer) Decode(code int) []float64 {
	comp := g.Unrank(int64(code))
	out := make([]float64, g.d)
	for i, c := range comp {
		out[i] = float64(c) / float64(g.scale)
	}
	return out
}

// EnumerateAll returns every grid point as a normalized vector, in rank
// order. Useful for small spaces only (e.g. the paper's Figure 2 example
// with d=3, q=1 and 66 points); it panics if the cardinality exceeds limit.
func (g *GridQuantizer) EnumerateAll(limit int) [][]float64 {
	if g.n > int64(limit) {
		panic(fmt.Sprintf("encoding: EnumerateAll over %d points exceeds limit %d", g.n, limit))
	}
	out := make([][]float64, g.n)
	for i := int64(0); i < g.n; i++ {
		out[i] = g.Decode(int(i))
	}
	return out
}

// Cardinality returns C(10^q + d - 1, d - 1) as a big integer, valid for
// any d and q. This is Equation 1 without the int64 restriction.
func Cardinality(d, q int) *big.Int {
	scale := big.NewInt(1)
	ten := big.NewInt(10)
	for i := 0; i < q; i++ {
		scale.Mul(scale, ten)
	}
	n := new(big.Int).Add(scale, big.NewInt(int64(d-1)))
	return new(big.Int).Binomial(n.Int64(), int64(d-1))
}
