package encoding

import (
	"encoding/json"
	"math"
	"testing"

	"p2b/internal/rng"
)

// clusteredData generates points around nc well-separated simplex corners.
func clusteredData(nc, perCluster, d int, r *rng.Rand) ([][]float64, []int) {
	data := make([][]float64, 0, nc*perCluster)
	labels := make([]int, 0, nc*perCluster)
	for c := 0; c < nc; c++ {
		center := make([]float64, d)
		center[c%d] = 1
		for i := 0; i < perCluster; i++ {
			p := make([]float64, d)
			sum := 0.0
			for j := range p {
				p[j] = math.Max(0, center[j]+r.Norm(0, 0.05))
				sum += p[j]
			}
			for j := range p {
				p[j] /= sum
			}
			data = append(data, p)
			labels = append(labels, c)
		}
	}
	return data, labels
}

func TestFitKMeansValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := FitKMeans(nil, 2, 10, 1e-6, r); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := FitKMeans([][]float64{{1, 0}}, 0, 10, 1e-6, r); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := FitKMeans([][]float64{{1, 0}, {1}}, 1, 10, 1e-6, r); err == nil {
		t.Fatal("ragged data accepted")
	}
}

func TestFitKMeansRecoversClusters(t *testing.T) {
	r := rng.New(2)
	data, labels := clusteredData(3, 100, 3, r.Split("data"))
	m, err := FitKMeans(data, 3, 50, 1e-9, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 || m.D() != 3 {
		t.Fatalf("shape K=%d D=%d", m.K(), m.D())
	}
	// All points with the same true label must share a code, and distinct
	// labels must get distinct codes (clusters are well separated).
	codeOf := map[int]int{}
	for i, x := range data {
		code := m.Encode(x)
		if prev, ok := codeOf[labels[i]]; ok {
			if prev != code {
				t.Fatalf("label %d split across codes %d and %d", labels[i], prev, code)
			}
		} else {
			codeOf[labels[i]] = code
		}
	}
	if len(codeOf) != 3 {
		t.Fatalf("expected 3 distinct codes, got %v", codeOf)
	}
}

func TestKMeansEncodeNearestCentroid(t *testing.T) {
	m := newKMeans([]float64{0, 0, 1, 1}, 2, 2)
	if m.Encode([]float64{0.1, 0.1}) != 0 {
		t.Fatal("nearest centroid wrong")
	}
	if m.Encode([]float64{0.9, 0.8}) != 1 {
		t.Fatal("nearest centroid wrong")
	}
	// Exact tie resolves to the lowest index.
	if m.Encode([]float64{0.5, 0.5}) != 0 {
		t.Fatal("tie should resolve to lowest index")
	}
}

func TestKMeansEncodeDimPanics(t *testing.T) {
	m := newKMeans([]float64{0, 0}, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	m.Encode([]float64{1})
}

func TestInertiaDecreasesWithMoreCentroids(t *testing.T) {
	r := rng.New(3)
	data, _ := clusteredData(4, 50, 4, r.Split("data"))
	m1, err := FitKMeans(data, 1, 50, 1e-9, r.Split("fit1"))
	if err != nil {
		t.Fatal(err)
	}
	m4, err := FitKMeans(data, 4, 50, 1e-9, r.Split("fit4"))
	if err != nil {
		t.Fatal(err)
	}
	if m4.Inertia(data) >= m1.Inertia(data) {
		t.Fatalf("inertia should drop with k: k=1 %v vs k=4 %v", m1.Inertia(data), m4.Inertia(data))
	}
}

func TestClusterSizesAndMin(t *testing.T) {
	m := newKMeans([]float64{0, 1, 10}, 3, 1)
	data := [][]float64{{0.1}, {0.2}, {0.9}, {1.1}, {0.95}}
	sizes := m.ClusterSizes(data)
	if sizes[0] != 2 || sizes[1] != 3 || sizes[2] != 0 {
		t.Fatalf("sizes = %v", sizes)
	}
	// Min over non-empty clusters.
	if m.MinClusterSize(data) != 2 {
		t.Fatalf("MinClusterSize = %d, want 2", m.MinClusterSize(data))
	}
	if m.MinClusterSize(nil) != 0 {
		t.Fatal("MinClusterSize of empty data should be 0")
	}
}

func TestFitKMeansMoreCentroidsThanPoints(t *testing.T) {
	r := rng.New(4)
	data := [][]float64{{0, 1}, {1, 0}}
	m, err := FitKMeans(data, 5, 10, 1e-9, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 5 {
		t.Fatalf("K = %d", m.K())
	}
	// Every point must still encode somewhere valid.
	for _, x := range data {
		c := m.Encode(x)
		if c < 0 || c >= 5 {
			t.Fatalf("code %d out of range", c)
		}
	}
}

func TestMiniBatchKMeansClusters(t *testing.T) {
	r := rng.New(5)
	data, labels := clusteredData(3, 200, 3, r.Split("data"))
	m, err := FitMiniBatchKMeans(data, 3, 32, 200, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	// Mini-batch is approximate: check that the dominant code per label is
	// overwhelmingly consistent and codes differ across labels.
	dominant := map[int]int{}
	agree := 0
	counts := map[[2]int]int{}
	for i, x := range data {
		counts[[2]int{labels[i], m.Encode(x)}]++
	}
	for label := 0; label < 3; label++ {
		best, bestN := -1, 0
		for code := 0; code < 3; code++ {
			if n := counts[[2]int{label, code}]; n > bestN {
				best, bestN = code, n
			}
		}
		dominant[label] = best
		agree += bestN
	}
	if float64(agree)/float64(len(data)) < 0.9 {
		t.Fatalf("mini-batch purity %v too low", float64(agree)/float64(len(data)))
	}
	if dominant[0] == dominant[1] || dominant[1] == dominant[2] || dominant[0] == dominant[2] {
		t.Fatalf("labels collapsed onto codes: %v", dominant)
	}
}

func TestMiniBatchValidation(t *testing.T) {
	r := rng.New(6)
	if _, err := FitMiniBatchKMeans(nil, 2, 8, 10, r); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := FitMiniBatchKMeans([][]float64{{1}}, 0, 8, 10, r); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := FitMiniBatchKMeans([][]float64{{1}}, 1, 0, 10, r); err == nil {
		t.Fatal("batchSize=0 accepted")
	}
}

func TestKMeansJSONRoundTrip(t *testing.T) {
	r := rng.New(7)
	data, _ := clusteredData(2, 50, 3, r.Split("data"))
	m, err := FitKMeans(data, 2, 50, 1e-9, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored KMeans
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.K() != m.K() || restored.D() != m.D() {
		t.Fatal("restored shape differs")
	}
	for _, x := range data {
		if restored.Encode(x) != m.Encode(x) {
			t.Fatal("restored encoder disagrees")
		}
	}
}

func TestKMeansJSONValidation(t *testing.T) {
	var m KMeans
	if err := json.Unmarshal([]byte(`{"d":2,"centroids":[]}`), &m); err == nil {
		t.Fatal("no centroids accepted")
	}
	if err := json.Unmarshal([]byte(`{"d":2,"centroids":[[1]]}`), &m); err == nil {
		t.Fatal("ragged centroid accepted")
	}
	if err := json.Unmarshal([]byte(`{bad`), &m); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestCentroidReturnsCopy(t *testing.T) {
	m := newKMeans([]float64{5}, 1, 1)
	c := m.Centroid(0)
	c[0] = 99
	if m.flat[0] != 5 {
		t.Fatal("Centroid leaked internal state")
	}
}

func TestLSHBasics(t *testing.T) {
	r := rng.New(8)
	l, err := NewLSH(3, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if l.K() != 16 || l.D() != 3 {
		t.Fatalf("K=%d D=%d", l.K(), l.D())
	}
	x := r.Simplex(3)
	c := l.Encode(x)
	if c < 0 || c >= 16 {
		t.Fatalf("code %d out of range", c)
	}
	if l.Encode(x) != c {
		t.Fatal("LSH not deterministic")
	}
}

func TestLSHValidation(t *testing.T) {
	r := rng.New(9)
	if _, err := NewLSH(0, 2, r); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewLSH(3, 0, r); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := NewLSH(3, 31, r); err == nil {
		t.Fatal("bits=31 accepted")
	}
}

func TestLSHLocality(t *testing.T) {
	r := rng.New(10)
	l, err := NewLSH(5, 6, r.Split("lsh"))
	if err != nil {
		t.Fatal(err)
	}
	near, far := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		x := r.Simplex(5)
		y := perturbSimplex(x, 0.005, r)
		z := r.Simplex(5)
		if l.Encode(x) == l.Encode(y) {
			near++
		}
		if l.Encode(x) == l.Encode(z) {
			far++
		}
	}
	if near <= far {
		t.Fatalf("LSH locality broken: near %d, far %d", near, far)
	}
}

func TestLSHSplitsSpace(t *testing.T) {
	r := rng.New(11)
	l, err := NewLSH(4, 4, r.Split("lsh"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[l.Encode(r.Simplex(4))] = true
	}
	// Offset-at-centroid hyperplanes must actually partition the simplex.
	if len(seen) < 4 {
		t.Fatalf("LSH used only %d codes", len(seen))
	}
}

func TestLSHJSONRoundTrip(t *testing.T) {
	r := rng.New(12)
	l, err := NewLSH(4, 5, r.Split("lsh"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var restored LSH
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.K() != l.K() || restored.D() != l.D() {
		t.Fatal("restored LSH shape differs")
	}
	for i := 0; i < 200; i++ {
		x := r.Simplex(4)
		if restored.Encode(x) != l.Encode(x) {
			t.Fatal("restored LSH disagrees")
		}
	}
}

func TestLSHJSONValidation(t *testing.T) {
	var l LSH
	bad := []string{
		`{"d":0,"planes":[],"offsets":[]}`,
		`{"d":2,"planes":[[1,2]],"offsets":[]}`,
		`{"d":2,"planes":[[1]],"offsets":[0]}`,
		`{broken`,
	}
	for i, blob := range bad {
		if err := json.Unmarshal([]byte(blob), &l); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestKMeansDecodeIsCentroid(t *testing.T) {
	m := newKMeans([]float64{0.25, 0.75, 0.5, 0.5}, 2, 2)
	got := m.Decode(1)
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Fatalf("Decode = %v", got)
	}
	// Decode returns a copy.
	got[0] = 99
	if m.flat[2] != 0.5 {
		t.Fatal("Decode aliases the centroid")
	}
}

var (
	_ Encoder = (*GridQuantizer)(nil)
	_ Encoder = (*KMeans)(nil)
	_ Encoder = (*LSH)(nil)
	_ Decoder = (*GridQuantizer)(nil)
	_ Decoder = (*KMeans)(nil)
)
