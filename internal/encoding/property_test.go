package encoding

import (
	"testing"
	"testing/quick"

	"p2b/internal/rng"
)

// TestPropertyRankBijection: across grid shapes, Unrank is a bijection onto
// compositions and Rank inverts it on a sampled subset.
func TestPropertyRankBijection(t *testing.T) {
	if err := quick.Check(func(dRaw, seed uint8) bool {
		d := 2 + int(dRaw%4) // d in 2..5 keeps the space small
		g, err := NewGridQuantizer(d, 1)
		if err != nil {
			return false
		}
		r := rng.New(uint64(seed))
		for probe := 0; probe < 20; probe++ {
			rank := int64(r.IntN(int(g.Cardinality())))
			if g.Rank(g.Unrank(rank)) != rank {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQuantizeStableUnderScaling: the quantizer normalizes, so
// positive rescaling never changes the code.
func TestPropertyQuantizeStableUnderScaling(t *testing.T) {
	g, err := NewGridQuantizer(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(seed uint16, scaleRaw uint8) bool {
		r := rng.New(uint64(seed))
		x := r.Simplex(4)
		scale := 0.1 + float64(scaleRaw)/16
		y := make([]float64, len(x))
		for i, v := range x {
			y[i] = v * scale
		}
		return g.Encode(x) == g.Encode(y)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyKMeansEncodeInRange: any fitted encoder maps any simplex
// point into [0, K).
func TestPropertyKMeansEncodeInRange(t *testing.T) {
	r := rng.New(99)
	data := make([][]float64, 256)
	for i := range data {
		data[i] = r.Simplex(5)
	}
	km, err := FitKMeans(data, 9, 20, 1e-6, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(seed uint16) bool {
		x := rng.New(uint64(seed)).Simplex(5)
		c := km.Encode(x)
		return c >= 0 && c < km.K()
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecodeEncodeFixedPoint: for decodable encoders, decoding a
// code and re-encoding returns the same code (centroids are their own
// nearest centroid; grid points are their own cell).
func TestPropertyDecodeEncodeFixedPoint(t *testing.T) {
	r := rng.New(100)
	data := make([][]float64, 300)
	for i := range data {
		data[i] = r.Simplex(4)
	}
	km, err := FitKMeans(data, 8, 30, 1e-9, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	for code := 0; code < km.K(); code++ {
		if got := km.Encode(km.Decode(code)); got != code {
			t.Fatalf("kmeans Encode(Decode(%d)) = %d", code, got)
		}
	}
	g, err := NewGridQuantizer(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 50; probe++ {
		code := r.IntN(g.K())
		if got := g.Encode(g.Decode(code)); got != code {
			t.Fatalf("grid Encode(Decode(%d)) = %d", code, got)
		}
	}
}
