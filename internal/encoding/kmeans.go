package encoding

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"p2b/internal/rng"
)

// KMeans is the clustering encoder the paper evaluates: contexts are
// assigned the index of their nearest centroid. The centroids are fitted on
// a public sample of the context distribution and shipped to agents, so
// encoding at inference time is O(k d) — the complexity the paper quotes
// for the on-device overhead.
//
// Centroids are stored in one contiguous row-major buffer (centroid i is
// flat[i*d : (i+1)*d]) with precomputed Euclidean norms, so the nearest-
// centroid scan is cache-friendly and can prune candidates:
//
//   - norm pruning: (|c| - |x|)^2 lower-bounds |x - c|^2, so a centroid
//     whose norm gap already exceeds the best distance found so far is
//     skipped without touching its coordinates;
//   - partial-distance early exit: the running sum of squared coordinate
//     differences is monotone, so the scan of a centroid aborts as soon as
//     the partial sum exceeds the best distance;
//   - triangle-inequality group pruning (for k >= indexMinK): the fitted
//     centroids are clustered into ~1.5*sqrt(k) groups; dist(x, c) >=
//     |dist(x, g) - dist(c, g)| for a group center g, so whole groups and,
//     within a visited group, whole runs of members sorted by their
//     center distance are skipped with O(1) work each (see searchIndex).
//
// All prunings are exact: Encode returns bit-identical codes to the naive
// full scan (EncodeNaive), including ties resolving to the lowest index,
// which the property tests verify. A fitted (or deserialized) KMeans is
// immutable, so Encode/Decode/DecodeTo are safe for concurrent use.
type KMeans struct {
	flat  []float64 // k*d row-major centroid buffer
	norms []float64 // Euclidean norm |c_i| per centroid
	k     int
	d     int
	idx   *searchIndex // nil below indexMinK
}

// newKMeans wraps a flat centroid buffer, computing the norm cache and the
// pruned search index.
func newKMeans(flat []float64, k, d int) *KMeans {
	m := newKMeansNoIndex(flat, k, d)
	m.buildIndex()
	return m
}

// newKMeansNoIndex is the constructor the fitting loops use: while the
// centroids are still moving, only the norm cache is maintained and all
// encoding goes through the flat scan. buildIndex is called once fitting
// finishes.
func newKMeansNoIndex(flat []float64, k, d int) *KMeans {
	m := &KMeans{flat: flat, norms: make([]float64, k), k: k, d: d}
	m.refreshNorms()
	return m
}

func (m *KMeans) refreshNorms() {
	for i := 0; i < m.k; i++ {
		m.norms[i] = math.Sqrt(dot(m.centroid(i), m.centroid(i)))
	}
}

// centroid returns centroid i as a slice aliasing the flat buffer.
func (m *KMeans) centroid(i int) []float64 { return m.flat[i*m.d : (i+1)*m.d : (i+1)*m.d] }

// K returns the number of centroids (the code space size).
func (m *KMeans) K() int { return m.k }

// D returns the context dimension.
func (m *KMeans) D() int { return m.d }

// Centroid returns a copy of centroid i.
func (m *KMeans) Centroid(i int) []float64 {
	return append([]float64(nil), m.centroid(i)...)
}

// Decode returns the representative context of a code — its centroid. It
// makes KMeans a Decoder so centroid-learner agents and the server can map
// transmitted codes back into the context space. The returned slice is a
// fresh copy; hot paths should use DecodeTo with a reused buffer instead.
func (m *KMeans) Decode(code int) []float64 { return m.Centroid(code) }

// DecodeTo copies centroid code into dst and returns it, allocating only
// when dst is too short. It is the allocation-free decode used by the
// centroid learner and the server's ingestion path.
func (m *KMeans) DecodeTo(dst []float64, code int) []float64 {
	if cap(dst) < m.d {
		dst = make([]float64, m.d)
	}
	dst = dst[:m.d]
	copy(dst, m.centroid(code))
	return dst
}

// normSlack is the relative safety margin of the triangle-inequality
// pruning tests. The bounds hold exactly in real arithmetic; the margin
// absorbs the rounding of the precomputed norms and pivot distances so
// that a centroid is only skipped when its true distance provably exceeds
// the incumbent's. sqrtSlack is the same margin in sqrt space.
const normSlack = 1e-6

// dist4 is the canonical squared Euclidean distance of the encoder: four
// independent accumulators (breaking the floating-point dependency chain)
// reduced as (s0+s2)+(s1+s3). Every code path — naive scan, flat pruned
// scan and indexed search — compares exactly these values, which is what
// makes the prunings bit-exact.
func dist4(x, c []float64) float64 {
	n := len(x)
	c = c[:n]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := x[j] - c[j]
		d1 := x[j+1] - c[j+1]
		d2 := x[j+2] - c[j+2]
		d3 := x[j+3] - c[j+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; j < n; j++ {
		dd := x[j] - c[j]
		s0 += dd * dd
	}
	return (s0 + s2) + (s1 + s3)
}

// dist10 is dist4 fully unrolled for the paper's synthetic dimension; its
// accumulation order is bit-identical to dist4 at n=10.
func dist10(x, c []float64) float64 {
	_ = x[9]
	c = c[:10]
	e0 := x[0] - c[0]
	e1 := x[1] - c[1]
	e2 := x[2] - c[2]
	e3 := x[3] - c[3]
	e4 := x[4] - c[4]
	e5 := x[5] - c[5]
	e6 := x[6] - c[6]
	e7 := x[7] - c[7]
	e8 := x[8] - c[8]
	e9 := x[9] - c[9]
	s0 := e0*e0 + e4*e4
	s1 := e1*e1 + e5*e5
	s2 := e2*e2 + e6*e6
	s3 := e3*e3 + e7*e7
	s0 += e8 * e8
	s0 += e9 * e9
	return (s0 + s2) + (s1 + s3)
}

// distFull dispatches to the unrolled kernel when the dimension allows.
func distFull(x, c []float64) float64 {
	if len(x) == 10 {
		return dist10(x, c)
	}
	return dist4(x, c)
}

// dist4Bound is dist4 with a partial-distance early exit every eight
// coordinates. Partial sums are monotone non-decreasing (floating-point
// addition of non-negative terms rounds monotonically) and the checkpoint
// reduction matches the final one, so a returned value >= bound implies the
// full dist4 would also be >= bound.
func dist4Bound(x, c []float64, bound float64) float64 {
	n := len(x)
	c = c[:n]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+8 <= n; j += 8 {
		d0 := x[j] - c[j]
		d1 := x[j+1] - c[j+1]
		d2 := x[j+2] - c[j+2]
		d3 := x[j+3] - c[j+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		d0 = x[j+4] - c[j+4]
		d1 = x[j+5] - c[j+5]
		d2 = x[j+6] - c[j+6]
		d3 = x[j+7] - c[j+7]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if (s0+s2)+(s1+s3) >= bound {
			return (s0 + s2) + (s1 + s3)
		}
	}
	for ; j+4 <= n; j += 4 {
		d0 := x[j] - c[j]
		d1 := x[j+1] - c[j+1]
		d2 := x[j+2] - c[j+2]
		d3 := x[j+3] - c[j+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; j < n; j++ {
		dd := x[j] - c[j]
		s0 += dd * dd
	}
	return (s0 + s2) + (s1 + s3)
}

// Encode returns the index of the nearest centroid by Euclidean distance,
// with ties resolved to the lowest index. Large encoders search through
// the triangle-inequality index; smaller ones (and encoders still being
// fitted) use the norm-pruned flat scan. Both return exactly the naive
// scan's answer.
func (m *KMeans) Encode(x []float64) int {
	if len(x) != m.d {
		panic(fmt.Sprintf("encoding: KMeans Encode dimension %d, want %d", len(x), m.d))
	}
	if m.idx != nil {
		return m.idx.encode(x)
	}
	return m.encodeFlat(x)
}

// encodeFlat is the index-free pruned scan: norm pruning plus
// partial-distance early exit over the flat buffer, in index order.
func (m *KMeans) encodeFlat(x []float64) int {
	d := m.d
	xn := math.Sqrt(dot(x, x))
	best, bestDist := 0, distFull(x, m.flat[:d])
	for i := 1; i < m.k; i++ {
		// Norm pruning: |x - c| >= | |x| - |c| |.
		gap := m.norms[i] - xn
		if lb := gap * gap; lb > bestDist*(1+normSlack) {
			continue
		}
		// The scan goes in index order, so an early exit (partial sum
		// already >= bestDist) can never hide a lower-index tie.
		s := dist4Bound(x, m.flat[i*d:(i+1)*d], bestDist)
		if s < bestDist {
			best, bestDist = i, s
		}
	}
	return best
}

// EncodeNaive is the reference brute-force nearest-centroid scan the pruned
// Encode is property-tested (and benchmarked) against.
func (m *KMeans) EncodeNaive(x []float64) int {
	if len(x) != m.d {
		panic(fmt.Sprintf("encoding: KMeans Encode dimension %d, want %d", len(x), m.d))
	}
	d := m.d
	best, bestDist := 0, math.Inf(1)
	for i := 0; i < m.k; i++ {
		if s := distFull(x, m.flat[i*d:(i+1)*d]); s < bestDist {
			best, bestDist = i, s
		}
	}
	return best
}

// indexMinK is the code-space size from which the grouped search index
// pays for its constant overhead.
const indexMinK = 128

// maxGroups bounds the group count so per-query group state fits on the
// stack and Encode stays allocation-free and concurrency-safe.
const maxGroups = 64

// searchIndex accelerates nearest-centroid search over a frozen centroid
// set. The centroids are clustered into groups; members are stored
// contiguously per group (cache locality), sorted by their distance to the
// group center. A query computes its distance gd to every group center,
// visits the nearest group first to establish a tight incumbent, and then
// prunes with dist(x, c_i) >= |gd - mdist_i|: the qualifying members of a
// group form a contiguous window around gd located by binary search. A
// secondary norm pivot (|x| vs |c_i|) filters the window further.
type searchIndex struct {
	g      int
	d      int
	center []float64 // g*d group centers
	start  []int     // group gi occupies rows start[gi]..start[gi+1]
	mp     []float64 // interleaved [dist-to-center, norm] per row
	codes  []int32   // row -> original centroid index
	pflat  []float64 // permuted centroid rows, group-contiguous
	maxRad float64   // largest member-to-center distance overall
}

// buildIndex (re)derives the search index from the flat buffer. Encoders
// below indexMinK skip it: the flat pruned scan wins there.
func (m *KMeans) buildIndex() {
	m.idx = nil
	if m.k < indexMinK {
		return
	}
	k, d := m.k, m.d
	g := int(1.5 * math.Sqrt(float64(k)))
	if g > maxGroups {
		g = maxGroups
	}
	if g < 8 {
		g = 8
	}
	// Group the centroids by fitting a small k-means over them, reusing
	// the package's own fitting machinery (the grouping is itself a
	// clustering problem; g < indexMinK so the inner fit never recurses
	// into index building). The index only affects speed, never results,
	// so a fixed seed keeps the whole encoder deterministic.
	views := make([][]float64, k)
	for i := range views {
		views[i] = m.centroid(i)
	}
	gm, err := FitKMeansOptions(views, g, FitOptions{MaxIter: 25}, rng.New(0x9E3779B97F4A7C15))
	if err != nil {
		// Only empty data or g < 1 can fail, and neither occurs here.
		panic("encoding: grouping fit failed: " + err.Error())
	}
	center := gm.flat
	ix := &searchIndex{
		g:      g,
		d:      d,
		center: center,
		start:  make([]int, g+1),
		mp:     make([]float64, 2*k),
		codes:  make([]int32, k),
		pflat:  make([]float64, k*d),
	}
	// Lay out members group-contiguously, sorted by center distance.
	type member struct {
		code int
		dist float64
	}
	groups := make([][]member, g)
	for i := 0; i < k; i++ {
		a := gm.encodeFlat(views[i])
		dd := math.Sqrt(dist4(views[i], center[a*d:(a+1)*d]))
		groups[a] = append(groups[a], member{code: i, dist: dd})
		if dd > ix.maxRad {
			ix.maxRad = dd
		}
	}
	row := 0
	for gi := 0; gi < g; gi++ {
		ix.start[gi] = row
		ms := groups[gi]
		sort.Slice(ms, func(a, b int) bool {
			if ms[a].dist != ms[b].dist {
				return ms[a].dist < ms[b].dist
			}
			return ms[a].code < ms[b].code
		})
		for _, mb := range ms {
			copy(ix.pflat[row*d:(row+1)*d], m.centroid(mb.code))
			ix.codes[row] = int32(mb.code)
			ix.mp[2*row] = mb.dist
			ix.mp[2*row+1] = m.norms[mb.code]
			row++
		}
	}
	ix.start[g] = row
	m.idx = ix
}

// encode is the indexed nearest-centroid search. Exact full distances are
// always compared (no early exit inside the kernel), so the out-of-order
// group visiting still reproduces the naive scan's result: strictly-worse
// candidates are pruned, ties resolve through the explicit lowest-index
// rule.
func (ix *searchIndex) encode(x []float64) int {
	g, d := ix.g, ix.d
	var gdArr [maxGroups]float64
	gd := gdArr[:g]
	xn := math.Sqrt(dot(x, x))
	minG, minGD := 0, math.Inf(1)
	for gi := 0; gi < g; gi++ {
		v := math.Sqrt(distFull(x, ix.center[gi*d:(gi+1)*d]))
		gd[gi] = v
		if v < minGD {
			minG, minGD = gi, v
		}
	}
	// best starts at 0, not a sentinel: a non-finite context makes every
	// distance comparison false, and the naive scan returns 0 there too —
	// the index must match it (and must never emit an out-of-range code).
	best := 0
	bestDist := math.Inf(1)
	sb := math.Inf(1) // sqrt(bestDist * (1+normSlack)), the pruning radius
	pf := ix.pflat
	mp := ix.mp
	scan := func(gi int) {
		gdi := gd[gi]
		if gdi-ix.maxRad > sb {
			return
		}
		lo, hi := ix.start[gi], ix.start[gi+1]
		// Members qualify when |gdi - mdist| <= sb; mdist is sorted, so
		// they form a window starting at the first mdist >= gdi - sb.
		lof := gdi - sb
		a, b := lo, hi
		for a < b {
			mid := (a + b) / 2
			if mp[2*mid] < lof {
				a = mid + 1
			} else {
				b = mid
			}
		}
		for row := a; row < hi && mp[2*row]-gdi <= sb; row++ {
			if gap := mp[2*row+1] - xn; gap > sb || -gap > sb {
				continue
			}
			s := distFull(x, pf[row*d:(row+1)*d])
			if s < bestDist {
				best, bestDist = int(ix.codes[row]), s
				sb = math.Sqrt(s * (1 + normSlack))
			} else if s == bestDist && int(ix.codes[row]) < best {
				best = int(ix.codes[row])
			}
		}
	}
	scan(minG)
	for gi := 0; gi < g; gi++ {
		if gi != minG {
			scan(gi)
		}
	}
	return best
}

// Inertia returns the total squared distance of each point to its assigned
// centroid, the quantity Lloyd iterations monotonically decrease.
func (m *KMeans) Inertia(data [][]float64) float64 {
	total := 0.0
	for _, x := range data {
		total += dist2(x, m.centroid(m.Encode(x)))
	}
	return total
}

// ClusterSizes returns how many points of data land in each code. The
// minimum entry over non-empty clusters is the crowd-blending parameter l
// for a sub-optimal encoder (paper §4).
func (m *KMeans) ClusterSizes(data [][]float64) []int {
	sizes := make([]int, m.K())
	for _, x := range data {
		sizes[m.Encode(x)]++
	}
	return sizes
}

// MinClusterSize returns the size of the smallest non-empty cluster of
// data, i.e. the effective crowd-blending l. It returns 0 for empty data.
func (m *KMeans) MinClusterSize(data [][]float64) int {
	min := 0
	for _, s := range m.ClusterSizes(data) {
		if s == 0 {
			continue
		}
		if min == 0 || s < min {
			min = s
		}
	}
	return min
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// kmeansPlusPlusInit chooses k initial centroids with the k-means++
// D^2-weighting scheme, writing them into a flat row-major buffer.
func kmeansPlusPlusInit(data [][]float64, k, d int, r *rng.Rand) []float64 {
	flat := make([]float64, k*d)
	copy(flat[:d], data[r.IntN(len(data))])
	dists := make([]float64, len(data))
	for i, x := range data {
		dists[i] = dist2(x, flat[:d])
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, dd := range dists {
			total += dd
		}
		var next []float64
		if total <= 0 {
			// All points coincide with existing centroids; pick uniformly.
			next = data[r.IntN(len(data))]
		} else {
			u := r.Float64() * total
			acc := 0.0
			idx := len(data) - 1
			for i, dd := range dists {
				acc += dd
				if u < acc {
					idx = i
					break
				}
			}
			next = data[idx]
		}
		row := flat[c*d : (c+1)*d]
		copy(row, next)
		for i, x := range data {
			if dd := dist2(x, row); dd < dists[i] {
				dists[i] = dd
			}
		}
	}
	return flat
}

// FitOptions tunes FitKMeansOptions beyond the paper's defaults.
type FitOptions struct {
	// MaxIter bounds the Lloyd iterations. A non-positive value runs
	// zero iterations, returning the k-means++ initialization unchanged
	// (matching the historical FitKMeans contract).
	MaxIter int
	// Tol stops iterating once total centroid movement drops below it.
	// A non-positive value never stops early.
	Tol float64
	// Workers parallelizes the assignment step across goroutines. The
	// result is identical for any worker count: assignments are pure
	// per-point computations and the accumulation that follows runs
	// serially in point order. Default 1.
	Workers int
}

func (o *FitOptions) fill() {
	if o.Workers <= 0 {
		o.Workers = 1
	}
}

// FitKMeans runs Lloyd's algorithm with k-means++ initialization until the
// centroid movement drops below tol or maxIter iterations pass. It returns
// an error on empty data or k < 1; if k exceeds the number of points the
// extra centroids duplicate existing points (their clusters stay empty).
func FitKMeans(data [][]float64, k, maxIter int, tol float64, r *rng.Rand) (*KMeans, error) {
	return FitKMeansOptions(data, k, FitOptions{MaxIter: maxIter, Tol: tol}, r)
}

// FitKMeansOptions is FitKMeans with an explicit option set, notably a
// worker count for parallel assignment. Results are independent of Workers.
func FitKMeansOptions(data [][]float64, k int, opts FitOptions, r *rng.Rand) (*KMeans, error) {
	opts.fill()
	if len(data) == 0 {
		return nil, fmt.Errorf("encoding: FitKMeans on empty data")
	}
	if k < 1 {
		return nil, fmt.Errorf("encoding: FitKMeans needs k >= 1, got %d", k)
	}
	d := len(data[0])
	for i, x := range data {
		if len(x) != d {
			return nil, fmt.Errorf("encoding: FitKMeans point %d has dimension %d, want %d", i, len(x), d)
		}
	}
	m := newKMeansNoIndex(kmeansPlusPlusInit(data, k, d, r), k, d)
	assign := make([]int, len(data))
	sums := make([]float64, k*d)
	counts := make([]int, k)
	next := make([]float64, d)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Assignment step: pruned nearest-centroid search, parallel across
		// workers. Each point's assignment is independent, so sharding by
		// index keeps the result deterministic.
		assignAll(m, data, assign, opts.Workers)
		// Update step, serial in point order for determinism.
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i, x := range data {
			a := assign[i]
			counts[a]++
			row := sums[a*d : (a+1)*d]
			for j, v := range x {
				row[j] += v
			}
		}
		moved := 0.0
		for c := 0; c < k; c++ {
			row := m.flat[c*d : (c+1)*d]
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// centroid to split the largest-error region.
				far, farDist := 0, -1.0
				for i, x := range data {
					if dd := dist2(x, m.centroid(assign[i])); dd > farDist {
						far, farDist = i, dd
					}
				}
				moved += math.Sqrt(dist2(row, data[far]))
				copy(row, data[far])
				continue
			}
			inv := 1 / float64(counts[c])
			sum := sums[c*d : (c+1)*d]
			for j := range next {
				next[j] = sum[j] * inv
			}
			moved += math.Sqrt(dist2(row, next))
			copy(row, next)
		}
		m.refreshNorms()
		if moved < opts.Tol {
			break
		}
	}
	m.buildIndex()
	return m, nil
}

// assignAll fills assign[i] with m.Encode(data[i]) using the given number
// of worker goroutines.
func assignAll(m *KMeans, data [][]float64, assign []int, workers int) {
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		for i, x := range data {
			assign[i] = m.encodeFlat(x)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(data) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				assign[i] = m.encodeFlat(data[i])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// FitMiniBatchKMeans implements web-scale mini-batch k-means (Sculley,
// WWW 2010): each iteration samples a batch, assigns it, and moves each
// centroid toward its batch members with a per-centroid learning rate
// 1/count. Initialization is k-means++ on a bounded sample.
func FitMiniBatchKMeans(data [][]float64, k, batchSize, iterations int, r *rng.Rand) (*KMeans, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("encoding: FitMiniBatchKMeans on empty data")
	}
	if k < 1 {
		return nil, fmt.Errorf("encoding: FitMiniBatchKMeans needs k >= 1, got %d", k)
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("encoding: FitMiniBatchKMeans needs batchSize >= 1, got %d", batchSize)
	}
	d := len(data[0])
	initSample := data
	if len(initSample) > 10*k {
		idx := r.SampleWithoutReplacement(len(data), 10*k)
		initSample = make([][]float64, len(idx))
		for i, j := range idx {
			initSample[i] = data[j]
		}
	}
	m := newKMeansNoIndex(kmeansPlusPlusInit(initSample, k, d, r), k, d)
	counts := make([]float64, k)
	for iter := 0; iter < iterations; iter++ {
		for b := 0; b < batchSize; b++ {
			x := data[r.IntN(len(data))]
			c := m.encodeFlat(x)
			counts[c]++
			eta := 1 / counts[c]
			cent := m.centroid(c)
			for j, v := range x {
				cent[j] = (1-eta)*cent[j] + eta*v
			}
			// The moved centroid's cached norm must track the new position
			// or later pruned Encodes would use a stale bound.
			m.norms[c] = math.Sqrt(dot(cent, cent))
		}
	}
	m.buildIndex()
	return m, nil
}

// kmeansJSON is the serialized form of a KMeans encoder.
type kmeansJSON struct {
	D         int         `json:"d"`
	Centroids [][]float64 `json:"centroids"`
}

// MarshalJSON serializes the fitted encoder so it can be shipped to agents.
func (m *KMeans) MarshalJSON() ([]byte, error) {
	cents := make([][]float64, m.k)
	for i := range cents {
		cents[i] = m.centroid(i)
	}
	return json.Marshal(kmeansJSON{D: m.d, Centroids: cents})
}

// UnmarshalJSON restores a fitted encoder.
func (m *KMeans) UnmarshalJSON(b []byte) error {
	var j kmeansJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if len(j.Centroids) == 0 {
		return fmt.Errorf("encoding: KMeans JSON has no centroids")
	}
	for i, c := range j.Centroids {
		if len(c) != j.D {
			return fmt.Errorf("encoding: KMeans JSON centroid %d has dimension %d, want %d", i, len(c), j.D)
		}
	}
	flat := make([]float64, len(j.Centroids)*j.D)
	for i, c := range j.Centroids {
		copy(flat[i*j.D:(i+1)*j.D], c)
	}
	*m = *newKMeans(flat, len(j.Centroids), j.D)
	return nil
}
