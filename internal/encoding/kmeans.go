package encoding

import (
	"encoding/json"
	"fmt"
	"math"

	"p2b/internal/rng"
)

// KMeans is the clustering encoder the paper evaluates: contexts are
// assigned the index of their nearest centroid. The centroids are fitted on
// a public sample of the context distribution and shipped to agents, so
// encoding at inference time is O(k d) — the complexity the paper quotes
// for the on-device overhead.
type KMeans struct {
	centroids [][]float64
	d         int
}

// K returns the number of centroids (the code space size).
func (m *KMeans) K() int { return len(m.centroids) }

// D returns the context dimension.
func (m *KMeans) D() int { return m.d }

// Centroid returns a copy of centroid i.
func (m *KMeans) Centroid(i int) []float64 {
	return append([]float64(nil), m.centroids[i]...)
}

// Decode returns the representative context of a code — its centroid. It
// makes KMeans a Decoder so centroid-learner agents and the server can map
// transmitted codes back into the context space.
func (m *KMeans) Decode(code int) []float64 { return m.Centroid(code) }

// Encode returns the index of the nearest centroid by Euclidean distance,
// with ties resolved to the lowest index.
func (m *KMeans) Encode(x []float64) int {
	if len(x) != m.d {
		panic(fmt.Sprintf("encoding: KMeans Encode dimension %d, want %d", len(x), m.d))
	}
	best, bestDist := 0, math.Inf(1)
	for i, c := range m.centroids {
		d := dist2(x, c)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Inertia returns the total squared distance of each point to its assigned
// centroid, the quantity Lloyd iterations monotonically decrease.
func (m *KMeans) Inertia(data [][]float64) float64 {
	total := 0.0
	for _, x := range data {
		total += dist2(x, m.centroids[m.Encode(x)])
	}
	return total
}

// ClusterSizes returns how many points of data land in each code. The
// minimum entry over non-empty clusters is the crowd-blending parameter l
// for a sub-optimal encoder (paper §4).
func (m *KMeans) ClusterSizes(data [][]float64) []int {
	sizes := make([]int, m.K())
	for _, x := range data {
		sizes[m.Encode(x)]++
	}
	return sizes
}

// MinClusterSize returns the size of the smallest non-empty cluster of
// data, i.e. the effective crowd-blending l. It returns 0 for empty data.
func (m *KMeans) MinClusterSize(data [][]float64) int {
	min := 0
	for _, s := range m.ClusterSizes(data) {
		if s == 0 {
			continue
		}
		if min == 0 || s < min {
			min = s
		}
	}
	return min
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// kmeansPlusPlusInit chooses k initial centroids with the k-means++
// D^2-weighting scheme.
func kmeansPlusPlusInit(data [][]float64, k int, r *rng.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := data[r.IntN(len(data))]
	centroids = append(centroids, append([]float64(nil), first...))
	dists := make([]float64, len(data))
	for i, x := range data {
		dists[i] = dist2(x, centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, d := range dists {
			total += d
		}
		var next []float64
		if total <= 0 {
			// All points coincide with existing centroids; pick uniformly.
			next = data[r.IntN(len(data))]
		} else {
			u := r.Float64() * total
			acc := 0.0
			idx := len(data) - 1
			for i, d := range dists {
				acc += d
				if u < acc {
					idx = i
					break
				}
			}
			next = data[idx]
		}
		c := append([]float64(nil), next...)
		centroids = append(centroids, c)
		for i, x := range data {
			if d := dist2(x, c); d < dists[i] {
				dists[i] = d
			}
		}
	}
	return centroids
}

// FitKMeans runs Lloyd's algorithm with k-means++ initialization until the
// centroid movement drops below tol or maxIter iterations pass. It returns
// an error on empty data or k < 1; if k exceeds the number of points the
// extra centroids duplicate existing points (their clusters stay empty).
func FitKMeans(data [][]float64, k, maxIter int, tol float64, r *rng.Rand) (*KMeans, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("encoding: FitKMeans on empty data")
	}
	if k < 1 {
		return nil, fmt.Errorf("encoding: FitKMeans needs k >= 1, got %d", k)
	}
	d := len(data[0])
	for i, x := range data {
		if len(x) != d {
			return nil, fmt.Errorf("encoding: FitKMeans point %d has dimension %d, want %d", i, len(x), d)
		}
	}
	m := &KMeans{centroids: kmeansPlusPlusInit(data, k, r), d: d}
	assign := make([]int, len(data))
	for iter := 0; iter < maxIter; iter++ {
		// Assignment step.
		for i, x := range data {
			assign[i] = m.Encode(x)
		}
		// Update step.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, d)
		}
		for i, x := range data {
			a := assign[i]
			counts[a]++
			for j, v := range x {
				sums[a][j] += v
			}
		}
		moved := 0.0
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// centroid to split the largest-error region.
				far, farDist := 0, -1.0
				for i, x := range data {
					if dd := dist2(x, m.centroids[assign[i]]); dd > farDist {
						far, farDist = i, dd
					}
				}
				moved += math.Sqrt(dist2(m.centroids[c], data[far]))
				m.centroids[c] = append([]float64(nil), data[far]...)
				continue
			}
			next := make([]float64, d)
			for j := range next {
				next[j] = sums[c][j] / float64(counts[c])
			}
			moved += math.Sqrt(dist2(m.centroids[c], next))
			m.centroids[c] = next
		}
		if moved < tol {
			break
		}
	}
	return m, nil
}

// FitMiniBatchKMeans implements web-scale mini-batch k-means (Sculley,
// WWW 2010): each iteration samples a batch, assigns it, and moves each
// centroid toward its batch members with a per-centroid learning rate
// 1/count. Initialization is k-means++ on a bounded sample.
func FitMiniBatchKMeans(data [][]float64, k, batchSize, iterations int, r *rng.Rand) (*KMeans, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("encoding: FitMiniBatchKMeans on empty data")
	}
	if k < 1 {
		return nil, fmt.Errorf("encoding: FitMiniBatchKMeans needs k >= 1, got %d", k)
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("encoding: FitMiniBatchKMeans needs batchSize >= 1, got %d", batchSize)
	}
	d := len(data[0])
	initSample := data
	if len(initSample) > 10*k {
		idx := r.SampleWithoutReplacement(len(data), 10*k)
		initSample = make([][]float64, len(idx))
		for i, j := range idx {
			initSample[i] = data[j]
		}
	}
	m := &KMeans{centroids: kmeansPlusPlusInit(initSample, k, r), d: d}
	counts := make([]float64, k)
	for iter := 0; iter < iterations; iter++ {
		for b := 0; b < batchSize; b++ {
			x := data[r.IntN(len(data))]
			c := m.Encode(x)
			counts[c]++
			eta := 1 / counts[c]
			cent := m.centroids[c]
			for j, v := range x {
				cent[j] = (1-eta)*cent[j] + eta*v
			}
		}
	}
	return m, nil
}

// kmeansJSON is the serialized form of a KMeans encoder.
type kmeansJSON struct {
	D         int         `json:"d"`
	Centroids [][]float64 `json:"centroids"`
}

// MarshalJSON serializes the fitted encoder so it can be shipped to agents.
func (m *KMeans) MarshalJSON() ([]byte, error) {
	return json.Marshal(kmeansJSON{D: m.d, Centroids: m.centroids})
}

// UnmarshalJSON restores a fitted encoder.
func (m *KMeans) UnmarshalJSON(b []byte) error {
	var j kmeansJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if len(j.Centroids) == 0 {
		return fmt.Errorf("encoding: KMeans JSON has no centroids")
	}
	for i, c := range j.Centroids {
		if len(c) != j.D {
			return fmt.Errorf("encoding: KMeans JSON centroid %d has dimension %d, want %d", i, len(c), j.D)
		}
	}
	m.d = j.D
	m.centroids = j.Centroids
	return nil
}
