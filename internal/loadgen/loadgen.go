// Package loadgen is the fleet-scale load harness behind cmd/p2bload: an
// open-loop generator that drives a running p2bnode over real HTTP with
// Poisson arrivals and measures the service-level objectives that matter
// to a deployment — ingest latency quantiles, conditional model-fetch
// latency, achieved throughput, and shed/error rates.
//
// Open loop means arrivals are scheduled by the clock, not by completions:
// every event has an intended start time drawn from the arrival process,
// and its latency is measured from that intended start, so time an
// overloaded node makes requests wait in the generator's queue is charged
// to the node. A closed loop (issue, wait, issue) would silently slow the
// offered load to whatever the node can absorb and hide exactly the
// tail-latency collapse this harness exists to catch (coordinated
// omission).
//
// Latencies accumulate in log-bucketed histograms (internal/metrics) whose
// relative bucket width is ~9%, fine enough for honest p50/p99/p999
// estimates across five orders of magnitude without per-sample storage.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"p2b/internal/metrics"
	"p2b/internal/rng"
	"p2b/internal/transport"
)

// Config describes one load run. Rate and Duration are required.
type Config struct {
	// NodeURL is the base URL of the p2bnode under test.
	NodeURL string
	// Rate is the offered ingest load in reports per second.
	Rate float64
	// FetchRate is the offered conditional model-fetch load in requests
	// per second (0 = no fetch traffic).
	FetchRate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Devices is the size of the simulated device-identity pool; report
	// metadata cycles through it (default 10000). The node scrubs these,
	// but a realistic identity spread keeps request bodies honest.
	Devices int
	// Workers bounds concurrent in-flight requests per traffic class
	// (default 64). In an open loop workers are capacity, not load: too
	// few workers only shows up as queue wait inside the measured latency.
	Workers int
	// Seed seeds the arrival processes (default 1).
	Seed uint64
	// Client overrides the HTTP client (default: pooled transport with
	// Workers*2 idle connections and a 10s timeout).
	Client *http.Client
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Devices <= 0 {
		out.Devices = 10000
	}
	if out.Workers <= 0 {
		out.Workers = 64
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        out.Workers * 2,
			MaxIdleConnsPerHost: out.Workers * 2,
		}
		out.Client = &http.Client{Transport: tr, Timeout: 10 * time.Second}
	}
	return out
}

// latencyBuckets spans 50µs to ~12s at ~9% relative width — the HDR-style
// resolution the quantile estimates interpolate within.
func latencyBuckets() []float64 { return metrics.ExpBuckets(50e-6, 1.09, 145) }

// Result is the outcome of one load run.
type Result struct {
	Config  Config
	Elapsed time.Duration

	// Ingest-path outcome counts.
	IngestSent   int64 // requests issued
	IngestOK     int64 // 202 Accepted
	IngestShed   int64 // 429 (admission gate)
	IngestUnaval int64 // 503 (fail-closed WAL)
	IngestErrs   int64 // transport errors and unexpected statuses
	IngestMissed int64 // arrivals dropped because the generator queue overflowed

	// Fetch-path outcome counts.
	FetchSent   int64
	FetchOK     int64 // 200 with a model payload
	FetchNotMod int64 // 304 (the steady-state fleet answer)
	FetchErrs   int64
	FetchMissed int64
	ModelBytes  int64 // payload bytes transferred on 200s

	// Latency distributions, measured from intended arrival time.
	IngestLatency *metrics.Histogram
	FetchLatency  *metrics.Histogram
}

// IngestThroughput is the achieved accepted-report rate in reports/sec.
func (r *Result) IngestThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.IngestOK) / r.Elapsed.Seconds()
}

// event is one scheduled arrival: its offset from the run start.
type event struct {
	due time.Duration
	seq int64
}

// Run executes one load run against cfg.NodeURL and blocks until every
// issued request has completed. The node must already be serving; callers
// typically preflight with httpapi's FetchHealth first.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.NodeURL == "" {
		return nil, fmt.Errorf("loadgen: NodeURL is required")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Rate and Duration must be positive")
	}
	res := &Result{
		Config:        cfg,
		IngestLatency: metrics.NewHistogram(latencyBuckets()),
		FetchLatency:  metrics.NewHistogram(latencyBuckets()),
	}
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runClass(cfg, start, cfg.Rate, "ingest", res)
	}()
	if cfg.FetchRate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runClass(cfg, start, cfg.FetchRate, "fetch", res)
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// runClass generates one Poisson arrival stream and drives it through a
// bounded worker pool. The queue is sized for several seconds of backlog:
// latency measured from the intended arrival already charges queue wait to
// the node, so the buffer exists only to keep the open loop honest through
// transient stalls; overflowing it (a node seconds behind the offered
// load) is counted as missed arrivals rather than blocking the schedule.
func runClass(cfg Config, start time.Time, rate float64, class string, res *Result) {
	queueCap := int(rate * 4)
	if queueCap < 1024 {
		queueCap = 1024
	}
	queue := make(chan event, queueCap)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if class == "ingest" {
				ingestWorker(cfg, start, queue, res)
			} else {
				fetchWorker(cfg, start, queue, res)
			}
		}(w)
	}

	r := rng.New(cfg.Seed).Split("loadgen-" + class)
	missed := &res.IngestMissed
	if class == "fetch" {
		missed = &res.FetchMissed
	}
	var due time.Duration
	var seq int64
	for {
		// Exponential inter-arrival: a Poisson process in the small.
		due += time.Duration(-math.Log(1-r.Float64()) / rate * float64(time.Second))
		if due >= cfg.Duration {
			break
		}
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		// The sleep may overshoot by scheduler granularity; the event still
		// carries its intended due time, so measured latency stays honest.
		select {
		case queue <- event{due: due, seq: seq}:
		default:
			atomic.AddInt64(missed, 1)
		}
		seq++
	}
	close(queue)
	wg.Wait()
}

// ingestWorker posts one report per event to /shuffler/report and buckets
// the outcome by status.
func ingestWorker(cfg Config, start time.Time, queue <-chan event, res *Result) {
	url := cfg.NodeURL + "/shuffler/report"
	for ev := range queue {
		e := transport.Envelope{
			Meta: transport.Metadata{
				DeviceID: fmt.Sprintf("load-%05d", ev.seq%int64(cfg.Devices)),
				SentAt:   start.Add(ev.due).UnixNano(),
			},
			Tuple: transport.Tuple{
				Code:   int(ev.seq % 64),
				Action: int(ev.seq % 8),
				Reward: float64(ev.seq%2) * 0.5,
			},
		}
		blob, err := json.Marshal(e)
		if err != nil {
			atomic.AddInt64(&res.IngestErrs, 1)
			continue
		}
		atomic.AddInt64(&res.IngestSent, 1)
		resp, err := cfg.Client.Post(url, "application/json", bytes.NewReader(blob))
		if err != nil {
			atomic.AddInt64(&res.IngestErrs, 1)
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			atomic.AddInt64(&res.IngestOK, 1)
			// Only accepted reports enter the latency distribution: a shed
			// 429 returns in microseconds and would drag the quantiles down
			// exactly when the node is refusing work.
			res.IngestLatency.Observe(time.Since(start.Add(ev.due)).Seconds())
		case http.StatusTooManyRequests:
			atomic.AddInt64(&res.IngestShed, 1)
		case http.StatusServiceUnavailable:
			atomic.AddInt64(&res.IngestUnaval, 1)
		default:
			atomic.AddInt64(&res.IngestErrs, 1)
		}
	}
}

// fetchWorker performs one conditional model GET per event, caching its
// ETag like a polling device: the first fetch downloads a payload, the
// steady state is 304s.
func fetchWorker(cfg Config, start time.Time, queue <-chan event, res *Result) {
	url := cfg.NodeURL + "/server/model?kind=tabular"
	etag := ""
	for ev := range queue {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			atomic.AddInt64(&res.FetchErrs, 1)
			continue
		}
		req.Header.Set("Accept", transport.ContentTypeModel)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		atomic.AddInt64(&res.FetchSent, 1)
		resp, err := cfg.Client.Do(req)
		if err != nil {
			atomic.AddInt64(&res.FetchErrs, 1)
			continue
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			atomic.AddInt64(&res.FetchOK, 1)
			atomic.AddInt64(&res.ModelBytes, n)
			etag = resp.Header.Get("ETag")
			res.FetchLatency.Observe(time.Since(start.Add(ev.due)).Seconds())
		case http.StatusNotModified:
			atomic.AddInt64(&res.FetchNotMod, 1)
			res.FetchLatency.Observe(time.Since(start.Add(ev.due)).Seconds())
		default:
			atomic.AddInt64(&res.FetchErrs, 1)
		}
	}
}

// VerifyMetrics scrapes nodeURL's /metrics route, validates it as
// Prometheus text exposition, and checks that every family in want is
// present. It is p2bload's -check-metrics mode and the CI exposition
// check.
func VerifyMetrics(client *http.Client, nodeURL string, want []string) error {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Get(nodeURL + "/metrics")
	if err != nil {
		return fmt.Errorf("loadgen: scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		return fmt.Errorf("loadgen: /metrics Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	fams, err := metrics.CheckExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("loadgen: invalid exposition: %w", err)
	}
	var missing []string
	for _, f := range want {
		if !fams[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("loadgen: exposition is missing families %v", missing)
	}
	return nil
}

// NodeMetricFamilies is the family set a fully instrumented durable
// p2bnode must expose — the list -check-metrics and the CI load-slo job
// verify.
var NodeMetricFamilies = []string{
	"p2b_http_requests_total",
	"p2b_http_request_duration_seconds",
	"p2b_http_request_body_bytes",
	"p2b_shuffler_received_total",
	"p2b_shuffler_forwarded_total",
	"p2b_shuffler_batch_size",
	"p2b_server_tuples_delivered_total",
	"p2b_model_version",
	"p2b_snapshot_cache_hits_total",
	"p2b_model_payload_hits_total",
	"p2b_model_not_modified_total",
}
