package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"p2b/internal/metrics"
)

// The BENCH_load_slo.json schema mirrors p2bbench's benchJSON exactly so
// internal/benchgate's bench_series checks read load results unchanged.
type benchJSON struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Seed        uint64      `json:"seed"`
	Scale       float64     `json:"scale"`
	Workers     int         `json:"workers"`
	ElapsedMS   float64     `json:"elapsed_ms"`
	Tables      []tableJSON `json:"tables"`
	Notes       []string    `json:"notes,omitempty"`
}

type tableJSON struct {
	XLabel string       `json:"x_label,omitempty"`
	Series []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Name   string      `json:"name"`
	Points []pointJSON `json:"points"`
}

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// BenchName is the experiment id in the emitted JSON (the file is
// BENCH_<BenchName>.json, compared against testdata/bench_baseline/load_slo).
const BenchName = "load_slo"

// quantiles are the latency percentiles the report carries; the x of each
// point is the percentile, so gate checks can pin any subset.
var quantiles = []float64{50, 90, 99, 99.9}

func latencySeries(name string, h *metrics.Histogram) seriesJSON {
	s := seriesJSON{Name: name}
	for _, p := range quantiles {
		ms := 0.0
		if h.Count() > 0 {
			ms = h.Quantile(p/100) * 1000
		}
		s.Points = append(s.Points, pointJSON{X: p, Y: ms})
	}
	return s
}

// BenchJSON renders the run as the machine-readable bench schema.
// Throughput series are higher-is-better, latency series lower-is-better
// (gated with direction "lower" in gate.json).
func BenchJSON(res *Result) ([]byte, error) {
	out := benchJSON{
		Name: BenchName,
		Description: "Open-loop load SLO: ingest and conditional model-fetch latency quantiles " +
			"and achieved throughput against a live p2bnode.",
		Seed:      res.Config.Seed,
		Scale:     res.Config.Rate,
		Workers:   res.Config.Workers,
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
	}
	rates := tableJSON{XLabel: "metric", Series: []seriesJSON{
		{Name: "ingest_throughput_rps", Points: []pointJSON{{X: 1, Y: res.IngestThroughput()}}},
		{Name: "ingest_ok_fraction", Points: []pointJSON{{X: 1, Y: fraction(res.IngestOK, res.IngestSent)}}},
	}}
	// The gated latency number is a dedicated single-point series: gate
	// checks apply their ceiling to every point of a series, and the full
	// quantile fan (p50..p99.9) is informational — p99.9 of a smoke run has
	// a handful of samples and would make the gate flaky.
	p99 := 0.0
	if res.IngestLatency.Count() > 0 {
		p99 = res.IngestLatency.Quantile(0.99) * 1000
	}
	lat := tableJSON{XLabel: "percentile", Series: []seriesJSON{
		latencySeries("ingest_latency_ms", res.IngestLatency),
		{Name: "ingest_p99_ms", Points: []pointJSON{{X: 1, Y: p99}}},
	}}
	if res.FetchSent > 0 {
		fp99 := 0.0
		if res.FetchLatency.Count() > 0 {
			fp99 = res.FetchLatency.Quantile(0.99) * 1000
		}
		lat.Series = append(lat.Series,
			latencySeries("fetch_latency_ms", res.FetchLatency),
			seriesJSON{Name: "fetch_p99_ms", Points: []pointJSON{{X: 1, Y: fp99}}})
		rates.Series = append(rates.Series, seriesJSON{
			Name:   "fetch_not_modified_fraction",
			Points: []pointJSON{{X: 1, Y: fraction(res.FetchNotMod, res.FetchSent)}},
		})
	}
	out.Tables = []tableJSON{rates, lat}
	out.Notes = []string{
		fmt.Sprintf("offered %g rps ingest, %g rps fetch for %s over %d device identities",
			res.Config.Rate, res.Config.FetchRate, res.Config.Duration, res.Config.Devices),
		fmt.Sprintf("ingest: sent=%d ok=%d shed_429=%d unavailable_503=%d errors=%d missed=%d",
			res.IngestSent, res.IngestOK, res.IngestShed, res.IngestUnaval, res.IngestErrs, res.IngestMissed),
		fmt.Sprintf("fetch: sent=%d ok=%d not_modified=%d errors=%d missed=%d model_bytes=%d",
			res.FetchSent, res.FetchOK, res.FetchNotMod, res.FetchErrs, res.FetchMissed, res.ModelBytes),
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: marshaling report: %w", err)
	}
	return append(blob, '\n'), nil
}

func fraction(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Summary renders a human-readable run report for the terminal.
func Summary(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "load_slo: %s elapsed (offered %g rps ingest, %g rps fetch, %d workers)\n",
		res.Elapsed.Round(time.Millisecond), res.Config.Rate, res.Config.FetchRate, res.Config.Workers)
	fmt.Fprintf(&b, "  ingest: %d sent, %d ok (%.1f rps), %d shed, %d unavailable, %d errors, %d missed\n",
		res.IngestSent, res.IngestOK, res.IngestThroughput(),
		res.IngestShed, res.IngestUnaval, res.IngestErrs, res.IngestMissed)
	if res.IngestLatency.Count() > 0 {
		fmt.Fprintf(&b, "  ingest latency: p50=%.2fms p90=%.2fms p99=%.2fms p99.9=%.2fms\n",
			res.IngestLatency.Quantile(0.50)*1000, res.IngestLatency.Quantile(0.90)*1000,
			res.IngestLatency.Quantile(0.99)*1000, res.IngestLatency.Quantile(0.999)*1000)
	}
	if res.FetchSent > 0 {
		fmt.Fprintf(&b, "  fetch: %d sent, %d ok, %d not-modified, %d errors, %d missed, %d payload bytes\n",
			res.FetchSent, res.FetchOK, res.FetchNotMod, res.FetchErrs, res.FetchMissed, res.ModelBytes)
		if res.FetchLatency.Count() > 0 {
			fmt.Fprintf(&b, "  fetch latency: p50=%.2fms p99=%.2fms p99.9=%.2fms\n",
				res.FetchLatency.Quantile(0.50)*1000, res.FetchLatency.Quantile(0.99)*1000,
				res.FetchLatency.Quantile(0.999)*1000)
		}
	}
	return b.String()
}
