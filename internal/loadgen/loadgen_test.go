package loadgen

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p2b/internal/httpapi"
	"p2b/internal/metrics"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
)

func newTestNode(t *testing.T) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	srv := server.New(server.Config{K: 16, Arms: 8, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 32, Threshold: 0}, srv, rng.New(2))
	reg := metrics.NewRegistry()
	h := httpapi.NewNodeHandlerOpts(shuf, srv, httpapi.NodeOptions{
		Admission: httpapi.NewAdmission(httpapi.AdmissionConfig{MaxInFlight: 256}),
		Metrics:   reg,
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, reg
}

func TestRunAgainstLiveNode(t *testing.T) {
	ts, _ := newTestNode(t)
	res, err := Run(Config{
		NodeURL:   ts.URL,
		Rate:      400,
		FetchRate: 100,
		Duration:  500 * time.Millisecond,
		Devices:   50,
		Workers:   16,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestSent == 0 || res.FetchSent == 0 {
		t.Fatalf("no traffic generated: %+v", res)
	}
	if res.IngestErrs != 0 || res.FetchErrs != 0 {
		t.Fatalf("errors against healthy node: ingest=%d fetch=%d", res.IngestErrs, res.FetchErrs)
	}
	if res.IngestOK != res.IngestSent {
		t.Fatalf("ingest ok=%d != sent=%d (shed=%d unavailable=%d)",
			res.IngestOK, res.IngestSent, res.IngestShed, res.IngestUnaval)
	}
	if got := res.IngestLatency.Count(); got != res.IngestOK {
		t.Fatalf("latency samples %d != accepted %d", got, res.IngestOK)
	}
	// The steady state of the fetch stream is 304s: only version bumps
	// (from the concurrent ingest) cost payloads.
	if res.FetchOK+res.FetchNotMod != res.FetchSent {
		t.Fatalf("fetch accounting: ok=%d + 304=%d != sent=%d", res.FetchOK, res.FetchNotMod, res.FetchSent)
	}
	if res.IngestThroughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
	if p50, p99 := res.IngestLatency.Quantile(0.50), res.IngestLatency.Quantile(0.99); p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Rate: 100, Duration: time.Second}); err == nil {
		t.Fatal("missing NodeURL must error")
	}
	if _, err := Run(Config{NodeURL: "http://x", Duration: time.Second}); err == nil {
		t.Fatal("zero rate must error")
	}
	if _, err := Run(Config{NodeURL: "http://x", Rate: 1}); err == nil {
		t.Fatal("zero duration must error")
	}
}

func TestBenchJSONSchema(t *testing.T) {
	ts, _ := newTestNode(t)
	res, err := Run(Config{
		NodeURL:   ts.URL,
		Rate:      300,
		FetchRate: 50,
		Duration:  300 * time.Millisecond,
		Workers:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := BenchJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	// The emitted JSON must round-trip through the exact subset benchgate
	// reads (tables → series → points), with the gated series present.
	var decoded struct {
		Name   string `json:"name"`
		Tables []struct {
			Series []struct {
				Name   string `json:"name"`
				Points []struct {
					X float64 `json:"x"`
					Y float64 `json:"y"`
				} `json:"points"`
			} `json:"series"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Name != BenchName {
		t.Fatalf("name = %q, want %q", decoded.Name, BenchName)
	}
	found := map[string]bool{}
	for _, tab := range decoded.Tables {
		for _, s := range tab.Series {
			found[s.Name] = len(s.Points) > 0
		}
	}
	for _, want := range []string{"ingest_throughput_rps", "ingest_latency_ms", "ingest_p99_ms", "fetch_latency_ms", "fetch_p99_ms"} {
		if !found[want] {
			t.Errorf("series %q missing or empty in report", want)
		}
	}
	if s := Summary(res); !strings.Contains(s, "ingest latency") {
		t.Errorf("summary lacks latency line:\n%s", s)
	}
}

func TestVerifyMetrics(t *testing.T) {
	ts, _ := newTestNode(t)
	if err := VerifyMetrics(nil, ts.URL, NodeMetricFamilies); err != nil {
		t.Fatalf("instrumented node failed verification: %v", err)
	}
	if err := VerifyMetrics(nil, ts.URL, []string{"p2b_no_such_family"}); err == nil {
		t.Fatal("missing family must fail verification")
	} else if !strings.Contains(err.Error(), "p2b_no_such_family") {
		t.Fatalf("error must name the missing family: %v", err)
	}
}
