// Package apisurface renders the exported API surface of a Go package as a
// stable text document: every exported constant, variable, type, function
// and method, with bodies stripped, unexported struct fields and interface
// methods elided, and declarations sorted. The golden-file test at the
// repository root diffs this rendering against testdata/public_api.txt, so
// an accidental change to the public API fails CI instead of slipping into
// a release.
//
// The rendering is declaration-level (what the source spells), not
// type-level: a re-exported alias shows as the alias, and a change behind
// it in an internal package will not show here. That is the right
// granularity for a surface gate — it catches renames, removals and
// signature changes, the mistakes a refactor actually makes.
package apisurface

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package renders the exported surface of the package in dir, labelled with
// the given import path. Test files are ignored.
func Package(importPath, dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("apisurface: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return "", fmt.Errorf("apisurface: %w", err)
		}
		files = append(files, f)
		pkgName = f.Name.Name
	}
	if len(files) == 0 {
		return "", fmt.Errorf("apisurface: no Go files in %s", dir)
	}
	var decls []string
	for _, f := range files {
		for _, d := range f.Decls {
			if s := renderDecl(fset, d); s != "" {
				decls = append(decls, s)
			}
		}
	}
	sort.Strings(decls)
	var b strings.Builder
	fmt.Fprintf(&b, "package %s // import %q\n", pkgName, importPath)
	for _, d := range decls {
		b.WriteString("\n")
		b.WriteString(d)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Packages concatenates the surface of several packages; pairs are
// (importPath, dir) tuples.
func Packages(pairs [][2]string) (string, error) {
	var b strings.Builder
	for i, p := range pairs {
		s, err := Package(p[0], p[1])
		if err != nil {
			return "", err
		}
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

// renderDecl returns the canonical rendering of one top-level declaration,
// or "" when nothing in it is exported.
func renderDecl(fset *token.FileSet, d ast.Decl) string {
	switch decl := d.(type) {
	case *ast.FuncDecl:
		if !decl.Name.IsExported() || !receiverExported(decl) {
			return ""
		}
		clone := *decl
		clone.Body = nil
		clone.Doc = nil
		return render(fset, &clone)
	case *ast.GenDecl:
		if decl.Tok == token.IMPORT {
			return ""
		}
		kept := filterSpecs(decl)
		if len(kept) == 0 {
			return ""
		}
		clone := *decl
		clone.Doc = nil
		clone.Specs = kept
		// A block that kept a single spec still renders as a block when the
		// source had parens; normalize to the single-spec form for
		// stability under regrouping.
		if len(kept) == 1 {
			clone.Lparen = token.NoPos
			clone.Rparen = token.NoPos
		}
		return render(fset, &clone)
	default:
		return ""
	}
}

// receiverExported reports whether a method's receiver base type is
// exported (methods on unexported types are not part of the surface).
func receiverExported(decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return true
	}
	t := decl.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// filterSpecs keeps the specs of a const/var/type declaration that declare
// at least one exported name, eliding unexported struct fields and
// interface methods inside kept type specs.
func filterSpecs(decl *ast.GenDecl) []ast.Spec {
	var kept []ast.Spec
	for _, spec := range decl.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			exported := false
			for _, n := range s.Names {
				if n.IsExported() {
					exported = true
				}
			}
			if exported {
				clone := *s
				clone.Doc = nil
				clone.Comment = nil
				kept = append(kept, &clone)
			}
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			clone := *s
			clone.Doc = nil
			clone.Comment = nil
			clone.Type = filterType(s.Type)
			kept = append(kept, &clone)
		}
	}
	return kept
}

// filterType elides unexported members of struct and interface types.
func filterType(t ast.Expr) ast.Expr {
	switch tt := t.(type) {
	case *ast.StructType:
		clone := *tt
		fl := *tt.Fields
		fl.List = filterFields(tt.Fields.List)
		clone.Fields = &fl
		return &clone
	case *ast.InterfaceType:
		clone := *tt
		fl := *tt.Methods
		fl.List = filterFields(tt.Methods.List)
		clone.Methods = &fl
		return &clone
	default:
		return t
	}
}

// filterFields keeps exported named fields/methods and exported embedded
// types, stripping docs and comments.
func filterFields(fields []*ast.Field) []*ast.Field {
	var kept []*ast.Field
	for _, f := range fields {
		clone := *f
		clone.Doc = nil
		clone.Comment = nil
		if len(f.Names) == 0 {
			// Embedded field or interface embedding: keep if its terminal
			// identifier is exported (selector embeds like io.Reader are).
			if embeddedExported(f.Type) {
				kept = append(kept, &clone)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			clone.Names = names
			kept = append(kept, &clone)
		}
	}
	return kept
}

func embeddedExported(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.StarExpr:
		return embeddedExported(tt.X)
	case *ast.SelectorExpr:
		return tt.Sel.IsExported()
	case *ast.Ident:
		return tt.IsExported()
	default:
		return false
	}
}

func render(fset *token.FileSet, node any) string {
	var b strings.Builder
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&b, fset, node); err != nil {
		return fmt.Sprintf("/* apisurface: render error: %v */", err)
	}
	return b.String()
}
