package apisurface

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestSurfaceFiltersUnexported(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a.go": `package demo

// Exported is part of the surface.
type Exported struct {
	Public  int
	private string
}

type hidden struct{ X int }

// Do does.
func Do(x int) (int, error) { return x, nil }

func internal() {}

func (e *Exported) Method() int { return e.Public }

func (h hidden) Method() int { return 0 }

const (
	Visible  = 1
	invisible = 2
)

type Iface interface {
	Call() error
	secret()
}
`,
		"a_test.go": `package demo

func TestOnly() {}
`,
	})
	got, err := Package("example.com/demo", dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package demo",
		"type Exported struct",
		"Public",
		"func Do(x int) (int, error)",
		"func (e *Exported) Method() int",
		"Visible",
		"Call() error",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("surface misses %q:\n%s", want, got)
		}
	}
	for _, reject := range []string{"private", "hidden", "internal", "invisible", "secret", "TestOnly", "return"} {
		if strings.Contains(got, reject) {
			t.Fatalf("surface leaks %q:\n%s", reject, got)
		}
	}
}

func TestSurfaceIsDeterministic(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"z.go": "package demo\n\nfunc Zed() {}\n",
		"a.go": "package demo\n\nfunc Abc() {}\n",
	})
	first, err := Package("example.com/demo", dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Package("example.com/demo", dir)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatal("surface rendering is not deterministic")
		}
	}
	// Sorted output: Abc before Zed regardless of file order.
	if strings.Index(first, "Abc") > strings.Index(first, "Zed") {
		t.Fatalf("declarations not sorted:\n%s", first)
	}
}

func TestSurfaceDetectsSignatureChange(t *testing.T) {
	before, err := Package("d", writeFiles(t, map[string]string{"a.go": "package demo\n\nfunc Do(x int) {}\n"}))
	if err != nil {
		t.Fatal(err)
	}
	after, err := Package("d", writeFiles(t, map[string]string{"a.go": "package demo\n\nfunc Do(x int, y int) {}\n"}))
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("signature change invisible to the surface")
	}
}
