package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHitUnregisteredNeverFires(t *testing.T) {
	g := NewRegistry(1)
	for i := 0; i < 100; i++ {
		if err := g.Hit("nothing/here"); err != nil {
			t.Fatalf("unregistered failpoint fired: %v", err)
		}
	}
}

func TestAfterAndCount(t *testing.T) {
	g := NewRegistry(1)
	g.Enable("p", Spec{After: 3, Count: 2})
	var fired []int
	for i := 1; i <= 10; i++ {
		if err := g.Hit("p"); err != nil {
			fired = append(fired, i)
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not wrap ErrInjected", i, err)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 4 || fired[1] != 5 {
		t.Fatalf("fired on hits %v, want [4 5]", fired)
	}
	if got := g.Fired("p"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestProbDeterministic(t *testing.T) {
	run := func() []int {
		g := NewRegistry(42)
		g.Enable("p", Spec{Prob: 0.3})
		var fired []int
		for i := 0; i < 200; i++ {
			if g.Hit("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob 0.3 fired %d/200 times — not probabilistic", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at index %d: %v vs %v", i, a, b)
		}
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	g := NewRegistry(1)
	g.Enable("p", Spec{Err: sentinel})
	if err := g.Hit("p"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the configured sentinel", err)
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("wal/sync:after=100,count=1;wal/torn:count=1;net/slow:prob=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if got := specs["wal/sync"]; got.After != 100 || got.Count != 1 {
		t.Fatalf("wal/sync = %+v", got)
	}
	if got := specs["wal/torn"]; got.Count != 1 {
		t.Fatalf("wal/torn = %+v", got)
	}
	if got := specs["net/slow"]; got.Prob != 0.25 {
		t.Fatalf("net/slow = %+v", got)
	}
	if m, err := ParseSpecs(""); err != nil || len(m) != 0 {
		t.Fatalf("empty input: %v, %v", m, err)
	}
	for _, bad := range []string{":after=1", "p:after", "p:prob=2", "p:bogus=1"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Fatalf("ParseSpecs(%q) accepted garbage", bad)
		}
	}
}

func TestFSAdapters(t *testing.T) {
	g := NewRegistry(1)
	b := []byte("0123456789")

	// Clean pass-through with nothing enabled.
	if n, err := g.FSWrite("x", b); n != len(b) || err != nil {
		t.Fatalf("clean FSWrite = (%d, %v)", n, err)
	}
	if err := g.FSSync("x"); err != nil {
		t.Fatalf("clean FSSync = %v", err)
	}

	g.Enable(FPWALWrite, Spec{Count: 1})
	if n, err := g.FSWrite("x", b); n != 0 || err == nil {
		t.Fatalf("refused write = (%d, %v), want (0, err)", n, err)
	}

	g.Enable(FPWALTorn, Spec{Count: 1})
	if n, err := g.FSWrite("x", b); n != len(b)/2 || err == nil {
		t.Fatalf("torn write = (%d, %v), want (%d, err)", n, err, len(b)/2)
	}

	g.Enable(FPWALSync, Spec{Count: 1})
	if err := g.FSSync("x"); err == nil {
		t.Fatal("sync fault did not fire")
	}
	g.Enable(FPWALTruncate, Spec{Count: 1})
	if err := g.FSTruncate("x"); err == nil {
		t.Fatal("truncate fault did not fire")
	}
}

// chaosUpstream is a tiny origin: POST /echo accepts, GET /blob serves a
// sized body.
func chaosUpstream(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /echo", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /blob", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 4096)))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestProxyTransparentByDefault(t *testing.T) {
	up := chaosUpstream(t)
	p, err := NewProxy(ProxyConfig{Upstream: up.URL})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Post(front.URL+"/echo", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d through transparent proxy", resp.StatusCode)
	}
	resp, err = http.Get(front.URL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != 4096 {
		t.Fatalf("blob through transparent proxy: %d bytes, %v", len(body), err)
	}
	st := p.Stats()
	if st.Requests != 2 || st.Forwarded != 2 || st.Errors+st.Resets+st.Truncated != 0 {
		t.Fatalf("transparent proxy stats %+v", st)
	}
}

func TestProxy503BurstWithRetryAfter(t *testing.T) {
	up := chaosUpstream(t)
	p, err := NewProxy(ProxyConfig{
		Upstream:   up.URL,
		ErrorProb:  1,
		ErrorBurst: 3,
		RetryAfter: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(front.URL+"/echo", "text/plain", strings.NewReader("hi"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("burst request %d: status %d, want 503", i, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("burst request %d: Retry-After %q, want \"2\"", i, ra)
		}
	}
	if st := p.Stats(); st.Errors != 3 {
		t.Fatalf("stats %+v, want 3 errors", st)
	}
}

func TestProxyReset(t *testing.T) {
	up := chaosUpstream(t)
	p, err := NewProxy(ProxyConfig{Upstream: up.URL, ResetProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Post(front.URL+"/echo", "text/plain", strings.NewReader("hi"))
	if err == nil {
		resp.Body.Close()
		t.Fatalf("reset request succeeded with status %d", resp.StatusCode)
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats %+v, want 1 reset", st)
	}
}

func TestProxyTruncatesOnlyGETResponses(t *testing.T) {
	up := chaosUpstream(t)
	p, err := NewProxy(ProxyConfig{Upstream: up.URL, TruncateProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	// POSTs are never truncated: the batch path must stay exactly-once.
	resp, err := http.Post(front.URL+"/echo", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST through truncating proxy: status %d", resp.StatusCode)
	}

	// GETs come back cut short: reading the advertised length fails.
	resp, err = http.Get(front.URL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil && len(body) == 4096 {
		t.Fatal("GET response arrived intact through a truncating proxy")
	}
	if st := p.Stats(); st.Truncated != 1 {
		t.Fatalf("stats %+v, want 1 truncation", st)
	}
}

func TestProxyLatencyDeterministic(t *testing.T) {
	up := chaosUpstream(t)
	mk := func() *Proxy {
		p, err := NewProxy(ProxyConfig{
			Upstream:    up.URL,
			Seed:        7,
			LatencyProb: 0.5,
			Latency:     2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	run := func(p *Proxy) int64 {
		front := httptest.NewServer(p)
		defer front.Close()
		for i := 0; i < 50; i++ {
			resp, err := http.Post(front.URL+"/echo", "text/plain", strings.NewReader("hi"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		return p.Stats().Delayed
	}
	a, b := run(mk()), run(mk())
	if a != b {
		t.Fatalf("same seed injected %d vs %d delays", a, b)
	}
	if a == 0 || a == 50 {
		t.Fatalf("latency prob 0.5 delayed %d/50 requests", a)
	}
}

func TestNewProxyRejectsBadUpstream(t *testing.T) {
	if _, err := NewProxy(ProxyConfig{Upstream: "::not a url"}); err == nil {
		t.Fatal("garbage upstream accepted")
	}
	if _, err := NewProxy(ProxyConfig{Upstream: "no-scheme"}); err == nil {
		t.Fatal("schemeless upstream accepted")
	}
}
