// The chaos HTTP proxy: a reverse proxy that sits between an agent fleet
// and a p2bnode and injects the network failure modes a real deployment
// meets — added latency, dropped connections, 5xx bursts and truncated
// response bodies — deterministically from a seed.
//
// Fault placement is deliberate about idempotency: connection resets and
// synthesized 503s happen strictly BEFORE the request is forwarded, so a
// faulted POST /reports was never seen by the node and the client's retry
// cannot double-ingest a batch. Body truncation applies only to responses
// of safe (GET) requests — the model-sync path, where a half-downloaded
// payload must make the SDK keep serving its cached model, not corrupt it.
// That discipline is what lets the chaos CI job demand bit-exact
// convergence with a fault-free run.
package faultinject

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"time"

	"p2b/internal/rng"
)

// ProxyConfig tunes a chaos Proxy. Zero probabilities inject nothing; the
// zero value is a transparent proxy.
type ProxyConfig struct {
	// Upstream is the base URL faults are injected in front of.
	Upstream string
	// Seed drives every fault decision (default 1).
	Seed uint64
	// LatencyProb is the per-request chance of added latency, uniform in
	// [Latency/2, Latency).
	LatencyProb float64
	// Latency is the maximum injected delay.
	Latency time.Duration
	// ResetProb is the per-request chance of aborting the connection before
	// forwarding (the client sees a reset/EOF mid-request).
	ResetProb float64
	// ErrorProb is the per-request chance of starting a synthesized 503
	// burst instead of forwarding.
	ErrorProb float64
	// ErrorBurst is how many consecutive requests each burst spans
	// (default 1).
	ErrorBurst int
	// RetryAfter is the Retry-After hint stamped on synthesized 503s
	// (default 1s, rendered in whole seconds with a 1s floor).
	RetryAfter time.Duration
	// TruncateProb is the per-request chance of cutting a GET response body
	// in half mid-stream (the client sees an unexpected EOF).
	TruncateProb float64
}

// ProxyStats counts injected faults.
type ProxyStats struct {
	Requests  int64 `json:"requests"`
	Forwarded int64 `json:"forwarded"`
	Delayed   int64 `json:"delayed"`
	Resets    int64 `json:"resets"`
	Errors    int64 `json:"errors"` // synthesized 503s
	Truncated int64 `json:"truncated"`
}

// Proxy is the chaos reverse proxy. It implements http.Handler.
type Proxy struct {
	cfg ProxyConfig
	rp  *httputil.ReverseProxy

	mu        sync.Mutex
	r         *rng.Rand
	burstLeft int
	stats     ProxyStats
}

// truncateKey marks a request whose response body should be cut short.
type truncateKey struct{}

// NewProxy returns a chaos proxy in front of cfg.Upstream.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	target, err := url.Parse(cfg.Upstream)
	if err != nil {
		return nil, fmt.Errorf("faultinject: parsing upstream %q: %w", cfg.Upstream, err)
	}
	if target.Scheme == "" || target.Host == "" {
		return nil, fmt.Errorf("faultinject: upstream %q needs a scheme and host", cfg.Upstream)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ErrorBurst <= 0 {
		cfg.ErrorBurst = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	p := &Proxy{
		cfg: cfg,
		r:   rng.New(cfg.Seed).Split("chaos-proxy"),
	}
	p.rp = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.Out.Host = target.Host
		},
		ModifyResponse: func(resp *http.Response) error {
			if resp.Request == nil || resp.Request.Context().Value(truncateKey{}) == nil {
				return nil
			}
			// Cut the body in half when the length is known; a chunked
			// response is cut after a fixed prefix.
			n := resp.ContentLength / 2
			if resp.ContentLength < 0 {
				n = 1024
			}
			if n <= 0 {
				n = 1
			}
			p.mu.Lock()
			p.stats.Truncated++
			p.mu.Unlock()
			// Serve half the body, then fail the copy: ReverseProxy aborts
			// the response mid-stream and the client sees a short body
			// against the advertised Content-Length.
			resp.Body = &truncatedBody{rc: resp.Body, remaining: n}
			return nil
		},
		// Upstream connection errors become 502s; the default also logs,
		// which would spam a chaos run's output.
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			w.WriteHeader(http.StatusBadGateway)
		},
	}
	return p, nil
}

// proxyAction is one request's fault decision.
type proxyAction struct {
	delay    time.Duration
	reset    bool
	error503 bool
	truncate bool
}

// decide draws this request's faults from the seeded stream. Decisions are
// serialized, so a fixed arrival order yields a fixed fault sequence.
func (p *Proxy) decide(r *http.Request) proxyAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Requests++
	var a proxyAction
	if p.cfg.LatencyProb > 0 && p.cfg.Latency > 0 && p.r.Bernoulli(p.cfg.LatencyProb) {
		a.delay = p.cfg.Latency/2 + time.Duration(p.r.Float64()*float64(p.cfg.Latency/2))
		p.stats.Delayed++
	}
	if p.burstLeft > 0 {
		p.burstLeft--
		a.error503 = true
		p.stats.Errors++
		return a
	}
	if p.cfg.ErrorProb > 0 && p.r.Bernoulli(p.cfg.ErrorProb) {
		p.burstLeft = p.cfg.ErrorBurst - 1
		a.error503 = true
		p.stats.Errors++
		return a
	}
	if p.cfg.ResetProb > 0 && p.r.Bernoulli(p.cfg.ResetProb) {
		a.reset = true
		p.stats.Resets++
		return a
	}
	if r.Method == http.MethodGet && p.cfg.TruncateProb > 0 && p.r.Bernoulli(p.cfg.TruncateProb) {
		a.truncate = true
	}
	p.stats.Forwarded++
	return a
}

// ServeHTTP injects this request's faults, then (if it survives) forwards
// it upstream.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a := p.decide(r)
	if a.delay > 0 {
		select {
		case <-time.After(a.delay):
		case <-r.Context().Done():
			return
		}
	}
	switch {
	case a.reset:
		// Abort without writing a response: net/http closes the connection
		// and the client sees EOF/reset mid-exchange.
		panic(http.ErrAbortHandler)
	case a.error503:
		secs := int(p.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		http.Error(w, "faultinject: synthesized overload", http.StatusServiceUnavailable)
	case a.truncate:
		p.rp.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), truncateKey{}, true)))
	default:
		p.rp.ServeHTTP(w, r)
	}
}

// Stats snapshots the fault counters.
func (p *Proxy) Stats() ProxyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// truncatedBody serves remaining bytes of rc, then fails the read. The
// error is deliberately not io.EOF: ReverseProxy must treat the copy as
// broken (aborting the response) rather than as a clean end of body.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (t *truncatedBody) Read(b []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, fmt.Errorf("faultinject: %w: response body truncated", ErrInjected)
	}
	if int64(len(b)) > t.remaining {
		b = b[:t.remaining]
	}
	n, err := t.rc.Read(b)
	t.remaining -= int64(n)
	if err == io.EOF {
		return n, err
	}
	if err == nil && t.remaining <= 0 {
		err = fmt.Errorf("faultinject: %w: response body truncated", ErrInjected)
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }
