// Package faultinject is P2B's deliberate-failure subsystem: a
// deterministic failpoint registry plus a chaos HTTP proxy, so every
// failure mode a multi-node deployment will hit — slow peers, dropped
// connections, 5xx bursts, truncated bodies, filesystem errors under the
// WAL — can be injected on purpose, reproducibly, before production hits
// it by accident.
//
// Everything is seeded through rng.Rand: two chaos runs with the same seed
// inject the same faults at the same points, which is what lets the chaos
// CI job assert bit-exact convergence between a faulted run and a clean
// one instead of eyeballing "it mostly worked".
//
// The registry side is a map of named failpoints. Production code never
// imports this package; instead, seams (persist.SetFSHooks, the httpapi
// admission hooks) accept plain functions, and the registry's methods have
// matching signatures so wiring a failpoint in is one assignment:
//
//	reg := faultinject.NewRegistry(seed)
//	reg.Enable("wal/sync", faultinject.Spec{After: 100, Count: 1})
//	persist.SetFSHooks(&persist.FSHooks{BeforeSync: reg.FSSync})
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"p2b/internal/rng"
)

// ErrInjected is the default error a fired failpoint returns. Seams
// translate it into whatever failure they model (a failed fsync, a refused
// write); tests can match it with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Spec configures one failpoint.
type Spec struct {
	// Prob is the per-hit fire probability. 0 means "always fire" once the
	// After/Count window admits the hit — the common case for targeted
	// faults — so enabling a point with an empty Spec makes it fire on
	// every hit.
	Prob float64
	// After skips the first After hits before the point may fire: "fail the
	// 101st fsync" is After: 100.
	After int
	// Count caps how many times the point fires (0 = unlimited).
	Count int
	// Err overrides the returned error (default ErrInjected).
	Err error
}

type point struct {
	spec  Spec
	hits  int
	fired int
}

// PointStats reports one failpoint's traffic.
type PointStats struct {
	Hits  int `json:"hits"`
	Fired int `json:"fired"`
}

// Registry is a set of named failpoints sharing one deterministic random
// stream. All methods are safe for concurrent use; probabilistic points
// draw from a mutex-guarded stream, so a fixed seed plus a fixed hit
// sequence yields a fixed fire sequence.
type Registry struct {
	mu     sync.Mutex
	r      *rng.Rand
	points map[string]*point
}

// NewRegistry returns an empty registry drawing from seed.
func NewRegistry(seed uint64) *Registry {
	return &Registry{
		r:      rng.New(seed).Split("faultinject"),
		points: map[string]*point{},
	}
}

// Enable registers (or reconfigures) the named failpoint. Hit and fire
// counters reset.
func (g *Registry) Enable(name string, s Spec) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.points[name] = &point{spec: s}
}

// Disable removes the named failpoint; subsequent Hits return nil.
func (g *Registry) Disable(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.points, name)
}

// Hit records one pass through the named failpoint and returns the
// injected error if the point fires, nil otherwise. Unregistered names
// never fire, so instrumented code paths cost one map lookup when chaos is
// off.
func (g *Registry) Hit(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.points[name]
	if !ok {
		return nil
	}
	p.hits++
	if p.hits <= p.spec.After {
		return nil
	}
	if p.spec.Count > 0 && p.fired >= p.spec.Count {
		return nil
	}
	if p.spec.Prob > 0 && p.spec.Prob < 1 && !g.r.Bernoulli(p.spec.Prob) {
		return nil
	}
	p.fired++
	if p.spec.Err != nil {
		return p.spec.Err
	}
	return fmt.Errorf("%w: %s (hit %d)", ErrInjected, name, p.hits)
}

// Stats snapshots every registered failpoint's counters, keyed by name.
func (g *Registry) Stats() map[string]PointStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]PointStats, len(g.points))
	for name, p := range g.points {
		out[name] = PointStats{Hits: p.hits, Fired: p.fired}
	}
	return out
}

// Fired returns how many times the named failpoint has fired.
func (g *Registry) Fired(name string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.points[name]; ok {
		return p.fired
	}
	return 0
}

// String renders the registry's failpoints and counters, sorted by name —
// the shutdown log line of a chaos run.
func (g *Registry) String() string {
	st := g.Stats()
	names := make([]string, 0, len(st))
	for n := range st {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d/%d", n, st[n].Fired, st[n].Hits)
	}
	return b.String()
}

// ParseSpecs parses a command-line failpoint description:
//
//	name[:key=value[,key=value...]][;name...]
//
// Keys are prob (float), after (int), count (int). Example:
//
//	wal/sync:after=100,count=1;wal/torn:count=1
//
// An empty string yields an empty map.
func ParseSpecs(s string) (map[string]Spec, error) {
	out := map[string]Spec{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, args, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("faultinject: empty failpoint name in %q", part)
		}
		var spec Spec
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faultinject: %s: expected key=value, got %q", name, kv)
				}
				var err error
				switch key {
				case "prob":
					spec.Prob, err = strconv.ParseFloat(val, 64)
					if err == nil && (spec.Prob < 0 || spec.Prob > 1) {
						err = fmt.Errorf("probability %v outside [0, 1]", spec.Prob)
					}
				case "after":
					spec.After, err = strconv.Atoi(val)
				case "count":
					spec.Count, err = strconv.Atoi(val)
				default:
					err = fmt.Errorf("unknown key %q (want prob, after or count)", key)
				}
				if err != nil {
					return nil, fmt.Errorf("faultinject: %s: %v", name, err)
				}
			}
		}
		out[name] = spec
	}
	return out, nil
}

// EnableAll registers every spec in the map (the ParseSpecs output).
func (g *Registry) EnableAll(specs map[string]Spec) {
	for name, s := range specs {
		g.Enable(name, s)
	}
}

// Well-known failpoint names for the persist filesystem seam. The FS*
// adapter methods below fire them; cmd/p2bnode -faults enables them.
const (
	// FPWALWrite refuses a WAL record write outright (ENOSPC-style: no
	// bytes reach the file).
	FPWALWrite = "wal/write"
	// FPWALTorn writes only the first half of a WAL record before failing —
	// the torn-final-frame crash shape.
	FPWALTorn = "wal/torn"
	// FPWALSync fails a WAL fsync.
	FPWALSync = "wal/sync"
	// FPWALTruncate fails the rollback truncate after a failed append,
	// sealing the log.
	FPWALTruncate = "wal/truncate"
)

// FSWrite adapts FPWALWrite and FPWALTorn to the persist BeforeWrite hook
// shape: it returns how many of b's bytes should actually be written and
// the error to report. A clean pass writes everything with no error.
func (g *Registry) FSWrite(path string, b []byte) (int, error) {
	if err := g.Hit(FPWALWrite); err != nil {
		return 0, err
	}
	if err := g.Hit(FPWALTorn); err != nil {
		return len(b) / 2, err
	}
	return len(b), nil
}

// FSSync adapts FPWALSync to the persist BeforeSync hook shape.
func (g *Registry) FSSync(path string) error {
	return g.Hit(FPWALSync)
}

// FSTruncate adapts FPWALTruncate to the persist BeforeTruncate hook shape.
func (g *Registry) FSTruncate(path string) error {
	return g.Hit(FPWALTruncate)
}
