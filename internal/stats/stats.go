// Package stats provides the running statistics, confidence intervals and
// series/table rendering used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates a streaming mean and variance using Welford's
// algorithm. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN incorporates x as if observed n times.
func (r *Running) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		r.Add(x)
	}
}

// Merge folds other into r, as if r had seen all of other's observations.
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	n1, n2 := float64(r.n), float64(other.n)
	delta := other.mean - r.mean
	total := n1 + n2
	r.mean += delta * n2 / total
	r.m2 += other.m2 + delta*delta*n1*n2/total
	r.n += other.n
}

// Count returns the number of observations.
func (r *Running) Count() int64 { return r.n }

// Mean returns the sample mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// SE returns the standard error of the mean.
func (r *Running) SE() float64 {
	if r.n == 0 {
		return 0
	}
	return r.Std() / math.Sqrt(float64(r.n))
}

// CI95 returns a normal-approximation 95% confidence half-width for the
// mean.
func (r *Running) CI95() float64 { return 1.96 * r.SE() }

// Wilson returns the Wilson score interval for a binomial proportion with
// the given number of successes out of n trials at confidence z (1.96 for
// 95%). For n == 0 it returns (0, 1).
func Wilson(successes, n int64, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// EWMA is an exponentially-weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha weighs recent observations more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics unless
// 0 < alpha <= 1.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates one observation.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value, e.init = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Point is one measurement of a series: a parameter value X, a measured
// value Y and an uncertainty half-width Err.
type Point struct {
	X   float64
	Y   float64
	Err float64
}

// Series is a named sequence of measurements, e.g. one curve of a paper
// figure.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point to the series.
func (s *Series) Append(x, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}

// YAt returns the Y value for the first point with the given X, and whether
// one was found.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Last returns the final point of the series. It panics if empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		panic("stats: Last of empty series")
	}
	return s.Points[len(s.Points)-1]
}

// Table renders a set of series sharing the same X grid as an aligned text
// table, one row per X value and one column per series — the shape of the
// paper's figures in text form.
type Table struct {
	XLabel string
	Series []*Series
}

// Render writes the table as aligned columns. Series need not have
// identical X grids; missing cells render as "-".
func (t *Table) Render() string {
	// Collect the union of X values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(t.Series)+1)
	label := t.XLabel
	if label == "" {
		label = "x"
	}
	header = append(header, label)
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{formatFloat(x)}
		for _, s := range t.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, formatFloat(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return renderAligned(rows)
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	var b strings.Builder
	label := t.XLabel
	if label == "" {
		label = "x"
	}
	b.WriteString(label)
	for _, s := range t.Series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteString("\n")
	for _, x := range xs {
		b.WriteString(formatFloat(x))
		for _, s := range t.Series {
			b.WriteString(",")
			if y, ok := s.YAt(x); ok {
				b.WriteString(formatFloat(y))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

func renderAligned(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
