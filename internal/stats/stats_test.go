package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningMeanVar(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Fatalf("Count = %d", r.Count())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Unbiased sample variance of the classic dataset is 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", r.Var(), 32.0/7.0)
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.SE() != 0 || r.CI95() != 0 {
		t.Fatal("zero-value Running should report zeros")
	}
}

func TestRunningSingleSampleVarZero(t *testing.T) {
	var r Running
	r.Add(3)
	if r.Var() != 0 {
		t.Fatalf("Var with one sample = %v", r.Var())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	if err := quick.Check(func(a, b []float64) bool {
		var all, left, right Running
		for _, x := range a {
			clean := sanitize(x)
			all.Add(clean)
			left.Add(clean)
		}
		for _, x := range b {
			clean := sanitize(x)
			all.Add(clean)
			right.Add(clean)
		}
		left.Merge(right)
		if left.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return math.Abs(left.Mean()-all.Mean()) < 1e-9*(1+math.Abs(all.Mean())) &&
			math.Abs(left.Var()-all.Var()) < 1e-6*(1+all.Var())
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	// Keep magnitudes moderate so float error bounds stay meaningful.
	return math.Mod(x, 1e6)
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	a.AddN(2.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(2.5)
	}
	if a.Mean() != b.Mean() || a.Count() != b.Count() {
		t.Fatal("AddN diverges from repeated Add")
	}
}

func TestWilsonBasics(t *testing.T) {
	lo, hi := Wilson(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson with n=0 = (%v, %v)", lo, hi)
	}
	lo, hi = Wilson(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson(50/100) = (%v, %v) should bracket 0.5", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Fatalf("Wilson(50/100) = (%v, %v) unexpectedly wide", lo, hi)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	lo1, hi1 := Wilson(5, 10, 1.96)
	lo2, hi2 := Wilson(500, 1000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("Wilson interval did not shrink with more samples")
	}
}

func TestWilsonBounded(t *testing.T) {
	if err := quick.Check(func(s, n uint16) bool {
		nn := int64(n%1000) + 1
		ss := int64(s) % (nn + 1)
		lo, hi := Wilson(ss, nn, 1.96)
		return lo >= 0 && hi <= 1 && lo <= hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("fresh EWMA should be 0")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first Add should initialize; got %v", e.Value())
	}
	e.Add(0)
	if e.Value() != 5 {
		t.Fatalf("EWMA = %v, want 5", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEWMA(%v) did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Fatal("Quantile extremes wrong")
	}
	if got := Quantile(xs, 0.5); got != 2 {
		t.Fatalf("median = %v, want 2", got)
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func TestSeriesAppendAndLookup(t *testing.T) {
	s := &Series{Name: "cold"}
	s.Append(10, 0.5, 0.01)
	s.Append(20, 0.7, 0.01)
	if y, ok := s.YAt(20); !ok || y != 0.7 {
		t.Fatalf("YAt(20) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(30); ok {
		t.Fatal("YAt(30) should miss")
	}
	if s.Last().X != 20 {
		t.Fatalf("Last = %+v", s.Last())
	}
}

func TestTableRender(t *testing.T) {
	a := &Series{Name: "cold"}
	a.Append(100, 0.01, 0)
	a.Append(1000, 0.011, 0)
	b := &Series{Name: "warm"}
	b.Append(100, 0.02, 0)
	tab := &Table{XLabel: "users", Series: []*Series{a, b}}
	out := tab.Render()
	if !strings.Contains(out, "users") || !strings.Contains(out, "cold") || !strings.Contains(out, "warm") {
		t.Fatalf("missing headers in:\n%s", out)
	}
	// Missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell placeholder absent:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	a := &Series{Name: "s1"}
	a.Append(1, 0.5, 0)
	tab := &Table{Series: []*Series{a}}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "x,s1\n") {
		t.Fatalf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "1,0.5") {
		t.Fatalf("CSV row wrong: %q", csv)
	}
}

func TestTableRowsSortedByX(t *testing.T) {
	a := &Series{Name: "s"}
	a.Append(100, 1, 0)
	a.Append(10, 2, 0)
	tab := &Table{Series: []*Series{a}}
	out := tab.Render()
	i10 := strings.Index(out, "\n10 ")
	i100 := strings.Index(out, "\n100")
	if i10 == -1 || i100 == -1 || i10 > i100 {
		t.Fatalf("rows not sorted by x:\n%s", out)
	}
}
