package shuffler

import (
	"context"
	"sort"
	"sync"
	"testing"

	"p2b/internal/privacy"
	"p2b/internal/rng"
	"p2b/internal/transport"
)

// collector is a test sink that records every delivered batch.
type collector struct {
	mu      sync.Mutex
	batches [][]transport.Tuple
}

func (c *collector) Deliver(batch []transport.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := append([]transport.Tuple(nil), batch...)
	c.batches = append(c.batches, cp)
}

func (c *collector) all() []transport.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []transport.Tuple
	for _, b := range c.batches {
		out = append(out, b...)
	}
	return out
}

func envelope(device string, code int) transport.Envelope {
	return transport.Envelope{
		Meta:  transport.Metadata{DeviceID: device, Addr: "192.168.0.1:1", SentAt: 42},
		Tuple: transport.Tuple{Code: code, Action: 1, Reward: 0.5},
	}
}

func TestNewValidation(t *testing.T) {
	sink := &collector{}
	r := rng.New(1)
	cases := []func(){
		func() { New(Config{BatchSize: 0, Threshold: 1}, sink, r) },
		func() { New(Config{BatchSize: 10, Threshold: -1}, sink, r) },
		func() { New(Config{BatchSize: 10, Threshold: 1}, nil, r) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBatchFlushesAtBatchSize(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 3, Threshold: 0}, sink, rng.New(2))
	s.Submit(envelope("a", 1))
	s.Submit(envelope("b", 1))
	if len(sink.batches) != 0 {
		t.Fatal("batch released early")
	}
	s.Submit(envelope("c", 1))
	if len(sink.batches) != 1 {
		t.Fatalf("batch not released at size: %d", len(sink.batches))
	}
	if s.Pending() != 0 {
		t.Fatalf("pending after flush: %d", s.Pending())
	}
}

func TestThresholdingEnforcesCrowdBlending(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 10, Threshold: 3}, sink, rng.New(3))
	// Code 1 appears 4 times (survives l=3), code 2 appears 2 times
	// (dropped), code 3 appears 4 times (survives).
	codes := []int{1, 1, 1, 1, 2, 2, 3, 3, 3, 3}
	for i, c := range codes {
		s.Submit(envelope(deviceName(i), c))
	}
	got := sink.all()
	var outCodes []int
	for _, tup := range got {
		outCodes = append(outCodes, tup.Code)
	}
	if !privacy.VerifyCrowdBlending(outCodes, 3) {
		t.Fatalf("output violates crowd-blending: %v", outCodes)
	}
	if len(got) != 8 {
		t.Fatalf("forwarded %d tuples, want 8", len(got))
	}
	for _, tup := range got {
		if tup.Code == 2 {
			t.Fatal("sub-threshold code leaked")
		}
	}
	st := s.Stats()
	if st.Received != 10 || st.Forwarded != 8 || st.Dropped != 2 || st.Batches != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func deviceName(i int) string { return string(rune('a' + i)) }

func TestOutputIsPermutationOfKeptTuples(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 100, Threshold: 0}, sink, rng.New(4))
	var want []int
	for i := 0; i < 100; i++ {
		code := i % 7
		want = append(want, code)
		s.Submit(transport.Envelope{Tuple: transport.Tuple{Code: code, Action: i % 3, Reward: 0.1}})
	}
	got := sink.all()
	if len(got) != 100 {
		t.Fatalf("forwarded %d", len(got))
	}
	var gotCodes []int
	for _, tup := range got {
		gotCodes = append(gotCodes, tup.Code)
	}
	sort.Ints(want)
	sort.Ints(gotCodes)
	for i := range want {
		if want[i] != gotCodes[i] {
			t.Fatal("output is not a permutation of input")
		}
	}
}

func TestShufflingActuallyPermutes(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 256, Threshold: 0}, sink, rng.New(5))
	for i := 0; i < 256; i++ {
		// Reward encodes the arrival index so we can detect reordering
		// without metadata.
		s.Submit(transport.Envelope{Tuple: transport.Tuple{Code: 0, Action: 0, Reward: float64(i)}})
	}
	got := sink.all()
	inOrder := 0
	for i, tup := range got {
		if int(tup.Reward) == i {
			inOrder++
		}
	}
	// A uniform permutation of 256 elements has ~1 fixed point on average.
	if inOrder > 20 {
		t.Fatalf("suspiciously many fixed points: %d", inOrder)
	}
}

func TestFlushProcessesPartialBatch(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 100, Threshold: 2}, sink, rng.New(6))
	s.Submit(envelope("a", 7))
	s.Submit(envelope("b", 7))
	s.Submit(envelope("c", 9)) // lone code: must be dropped by threshold
	s.Flush()
	got := sink.all()
	if len(got) != 2 {
		t.Fatalf("flushed %d tuples, want 2", len(got))
	}
	if s.Pending() != 0 {
		t.Fatal("pending not cleared by flush")
	}
	// Second flush with empty buffer is a no-op.
	s.Flush()
	if st := s.Stats(); st.Batches != 1 {
		t.Fatalf("empty flush created a batch: %+v", st)
	}
}

func TestThresholdZeroKeepsEverything(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 4, Threshold: 0}, sink, rng.New(7))
	for i := 0; i < 4; i++ {
		s.Submit(envelope(deviceName(i), i)) // all codes unique
	}
	if got := sink.all(); len(got) != 4 {
		t.Fatalf("forwarded %d, want 4", len(got))
	}
}

func TestWholeBatchBelowThresholdDropsAll(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 3, Threshold: 5}, sink, rng.New(8))
	for i := 0; i < 3; i++ {
		s.Submit(envelope(deviceName(i), i))
	}
	if got := sink.all(); len(got) != 0 {
		t.Fatalf("forwarded %d, want 0", len(got))
	}
	if st := s.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped %d, want 3", st.Dropped)
	}
}

func TestConcurrentSubmit(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 64, Threshold: 0}, sink, rng.New(9))
	var wg sync.WaitGroup
	const workers, each = 8, 250
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Submit(envelope(deviceName(w), i%5))
			}
		}(w)
	}
	wg.Wait()
	s.Flush()
	st := s.Stats()
	if st.Received != workers*each {
		t.Fatalf("received %d, want %d", st.Received, workers*each)
	}
	if st.Forwarded+st.Dropped != st.Received {
		t.Fatalf("conservation violated: %+v", st)
	}
	if got := int64(len(sink.all())); got != st.Forwarded {
		t.Fatalf("sink saw %d tuples, stats say %d", got, st.Forwarded)
	}
}

func TestRunConsumesBusUntilClose(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 10, Threshold: 0}, sink, rng.New(10))
	bus := transport.NewBus(16)
	done := make(chan struct{})
	go func() {
		s.Run(context.Background(), bus.Receive())
		close(done)
	}()
	for i := 0; i < 25; i++ {
		if err := bus.Send(envelope("d", i%3)); err != nil {
			t.Fatal(err)
		}
	}
	bus.Close()
	<-done
	// 25 submitted: two full batches of 10 plus a final flush of 5.
	if got := len(sink.all()); got != 25 {
		t.Fatalf("run forwarded %d, want 25", got)
	}
}

func TestRunStopsOnContextCancel(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 100, Threshold: 0}, sink, rng.New(11))
	bus := transport.NewBus(16)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		s.Run(ctx, bus.Receive())
		close(done)
	}()
	if err := bus.Send(envelope("d", 1)); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done
	// The buffered envelope may or may not have been submitted before
	// cancellation; if it was, the final flush forwarded it.
	st := s.Stats()
	if st.Received > 1 {
		t.Fatalf("received %d", st.Received)
	}
	bus.Close()
}

// TestAnonymization proves the privacy-critical property: nothing derived
// from envelope metadata can reach the sink, because the sink only ever
// sees bare tuples. This is enforced by the type system (Sink receives
// []transport.Tuple), so the test asserts the shape contract holds even
// after refactors via reflection-free compile-time usage plus a runtime
// check of tuple contents.
func TestAnonymization(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 2, Threshold: 0}, sink, rng.New(12))
	s.Submit(envelope("top-secret-device", 1))
	s.Submit(envelope("another-device", 1))
	for _, tup := range sink.all() {
		if tup != (transport.Tuple{Code: 1, Action: 1, Reward: 0.5}) {
			t.Fatalf("tuple mutated in flight: %+v", tup)
		}
	}
}

func TestSubmitTuplesMatchesSequentialSubmit(t *testing.T) {
	// The same tuple stream, fed in one SubmitTuples call versus one
	// Submit per envelope, must produce identical batches, identical
	// shuffles (same RNG stream) and identical stats — this is what lets
	// the HTTP batch route claim bit-identical server state.
	const n, batchSize, threshold = 137, 16, 3
	tuples := make([]transport.Tuple, n)
	r := rng.New(9)
	for i := range tuples {
		tuples[i] = transport.Tuple{Code: r.IntN(5), Action: r.IntN(3), Reward: r.Float64()}
	}

	single := &collector{}
	s1 := New(Config{BatchSize: batchSize, Threshold: threshold}, single, rng.New(77))
	for _, tup := range tuples {
		s1.Submit(transport.Envelope{Meta: transport.Metadata{DeviceID: "d"}, Tuple: tup})
	}
	s1.Flush()

	batched := &collector{}
	s2 := New(Config{BatchSize: batchSize, Threshold: threshold}, batched, rng.New(77))
	s2.SubmitTuples(tuples)
	s2.Flush()

	if s1.Stats() != s2.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", s1.Stats(), s2.Stats())
	}
	if len(single.batches) != len(batched.batches) {
		t.Fatalf("batch counts diverged: %d vs %d", len(single.batches), len(batched.batches))
	}
	for i := range single.batches {
		a, b := single.batches[i], batched.batches[i]
		if len(a) != len(b) {
			t.Fatalf("batch %d length: %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("batch %d tuple %d: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
}

func TestSubmitTuplesCrossesMultipleBatchBoundaries(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 4, Threshold: 0}, sink, rng.New(5))
	tuples := make([]transport.Tuple, 11) // 2 full batches + 3 pending
	for i := range tuples {
		tuples[i] = transport.Tuple{Code: i, Action: 0, Reward: 1}
	}
	s.SubmitTuples(tuples)
	if len(sink.batches) != 2 {
		t.Fatalf("released %d batches, want 2", len(sink.batches))
	}
	if s.Pending() != 3 {
		t.Fatalf("pending %d, want 3", s.Pending())
	}
	st := s.Stats()
	if st.Received != 11 || st.Forwarded != 8 || st.Batches != 2 {
		t.Fatalf("stats %+v", st)
	}
	// Empty submission is a no-op.
	s.SubmitTuples(nil)
	if s.Stats() != st {
		t.Fatal("empty SubmitTuples changed stats")
	}
}

func TestSubmitTuplesConcurrent(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 32, Threshold: 0}, sink, rng.New(6))
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := make([]transport.Tuple, per)
			for i := range chunk {
				chunk[i] = transport.Tuple{Code: w, Action: 0, Reward: 1}
			}
			s.SubmitTuples(chunk[:per/2])
			s.SubmitTuples(chunk[per/2:])
		}(w)
	}
	wg.Wait()
	s.Flush()
	if got := len(sink.all()); got != workers*per {
		t.Fatalf("delivered %d tuples, want %d", got, workers*per)
	}
	if st := s.Stats(); st.Received != workers*per || st.Forwarded != workers*per {
		t.Fatalf("stats %+v", st)
	}
}
