package shuffler

import (
	"sync"
	"testing"

	"p2b/internal/rng"
	"p2b/internal/transport"
)

func tupleStream(n, codes int, seed uint64) []transport.Tuple {
	r := rng.New(seed)
	out := make([]transport.Tuple, n)
	for i := range out {
		out[i] = transport.Tuple{Code: r.IntN(codes), Action: r.IntN(3), Reward: r.Float64()}
	}
	return out
}

// A stream interrupted by Drain, carried across to a brand-new shuffler via
// Restore, and then continued must produce exactly the batches, shuffles and
// stats of an uninterrupted run. This is the property crash recovery leans
// on: checkpointed pending tuples plus the checkpointed RNG position
// reproduce the batch boundaries and permutations of the run that crashed.
func TestDrainRestoreAcrossRestartIsExact(t *testing.T) {
	const batchSize, threshold, n = 16, 2, 203
	stream := tupleStream(n, 6, 31)
	for _, cut := range []int{0, 1, batchSize - 1, batchSize, 57, n - 1, n} {
		clean := &collector{}
		s1 := New(Config{BatchSize: batchSize, Threshold: threshold}, clean, rng.New(5))
		s1.SubmitTuples(stream)
		s1.Flush()

		interrupted := &collector{}
		a := New(Config{BatchSize: batchSize, Threshold: threshold}, interrupted, rng.New(5))
		a.SubmitTuples(stream[:cut])
		st, err := a.Drain()
		if err != nil {
			t.Fatalf("cut %d: Drain: %v", cut, err)
		}
		// "Restart": a fresh shuffler with a fresh (differently seeded) RNG;
		// Restore must overwrite the RNG position from the drained state.
		b := New(Config{BatchSize: batchSize, Threshold: threshold}, interrupted, rng.New(999))
		if err := b.Restore(st); err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		b.SubmitTuples(stream[cut:])
		b.Flush()

		if got, want := b.Stats(), s1.Stats(); got != want {
			t.Fatalf("cut %d: stats diverged: %+v vs %+v", cut, got, want)
		}
		cb, ib := clean.batches, interrupted.batches
		if len(cb) != len(ib) {
			t.Fatalf("cut %d: batch counts diverged: %d vs %d", cut, len(cb), len(ib))
		}
		for i := range cb {
			if len(cb[i]) != len(ib[i]) {
				t.Fatalf("cut %d: batch %d length %d vs %d", cut, i, len(cb[i]), len(ib[i]))
			}
			for j := range cb[i] {
				if cb[i][j] != ib[i][j] {
					t.Fatalf("cut %d: batch %d tuple %d: %+v vs %+v", cut, i, j, cb[i][j], ib[i][j])
				}
			}
		}
	}
}

// Drain immediately followed by Restore of the same state is a no-op — the
// live-checkpoint pattern.
func TestDrainThenRestoreIsNoOp(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 8, Threshold: 0}, sink, rng.New(3))
	s.SubmitTuples(tupleStream(13, 4, 7)) // one full batch + 5 pending
	before := s.Stats()
	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Pending) != 5 {
		t.Fatalf("drained %d pending, want 5", len(st.Pending))
	}
	if s.Pending() != 0 || s.Stats() != (Stats{}) {
		t.Fatalf("shuffler not factory-fresh after drain: pending=%d stats=%+v", s.Pending(), s.Stats())
	}
	if err := s.Restore(st); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 5 || s.Stats() != before {
		t.Fatalf("restore did not reproduce state: pending=%d stats=%+v", s.Pending(), s.Stats())
	}
}

// Flush right after Drain must not double-process the drained tuples: the
// buffer is empty, so the flush is a no-op and no batch is created.
func TestFlushAfterDrainIsNoOp(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 10, Threshold: 0}, sink, rng.New(4))
	s.SubmitTuples(tupleStream(6, 3, 8))
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if len(sink.batches) != 0 {
		t.Fatal("flush after drain created a batch from drained tuples")
	}
	if st := s.Stats(); st.Batches != 0 {
		t.Fatalf("stats after drain+flush: %+v", st)
	}
}

func TestRestoreRefusesBadStates(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 4, Threshold: 0}, sink, rng.New(5))
	// A full batch can never be pending: SubmitTuples processes them eagerly.
	if err := s.Restore(&State{Pending: make([]transport.Tuple, 4)}); err == nil {
		t.Fatal("want error restoring a full batch of pending tuples")
	}
	// Restoring over a shuffler that already accepted traffic is refused.
	s.Submit(transport.Envelope{Tuple: transport.Tuple{Code: 1}})
	if err := s.Restore(&State{}); err == nil {
		t.Fatal("want error restoring over a non-empty shuffler")
	}
	// Corrupt RNG state is refused.
	s2 := New(Config{BatchSize: 4, Threshold: 0}, sink, rng.New(6))
	if err := s2.Restore(&State{RNG: []byte("garbage")}); err == nil {
		t.Fatal("want error restoring corrupt rng state")
	}
}

// SubmitTuples with an empty chunk must not touch stats, the buffer, or the
// RNG stream (an RNG perturbation would silently break replay exactness).
func TestSubmitTuplesEmptyChunkIsInert(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 4, Threshold: 0}, sink, rng.New(7))
	s.SubmitTuples(tupleStream(3, 2, 9))
	before, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(before); err != nil {
		t.Fatal(err)
	}
	s.SubmitTuples(nil)
	s.SubmitTuples([]transport.Tuple{})
	after, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats != before.Stats || len(after.Pending) != len(before.Pending) {
		t.Fatalf("empty chunk changed state: %+v vs %+v", after.Stats, before.Stats)
	}
	if string(after.RNG) != string(before.RNG) {
		t.Fatal("empty chunk advanced the RNG stream")
	}
}

// A code appearing exactly Threshold times in its batch sits right on the
// crowd-blending boundary and must be kept, while Threshold-1 occurrences
// must be dropped — off-by-one here is a privacy bug in one direction and a
// data-loss bug in the other.
func TestSubmitTuplesExactlyAtThreshold(t *testing.T) {
	const threshold = 5
	sink := &collector{}
	s := New(Config{BatchSize: 9, Threshold: threshold}, sink, rng.New(8))
	chunk := make([]transport.Tuple, 0, 9)
	for i := 0; i < threshold; i++ { // code 1: exactly at threshold
		chunk = append(chunk, transport.Tuple{Code: 1, Action: 0, Reward: 1})
	}
	for i := 0; i < threshold-1; i++ { // code 2: one short
		chunk = append(chunk, transport.Tuple{Code: 2, Action: 0, Reward: 1})
	}
	s.SubmitTuples(chunk)
	got := sink.all()
	if len(got) != threshold {
		t.Fatalf("forwarded %d tuples, want %d", len(got), threshold)
	}
	for _, tup := range got {
		if tup.Code != 1 {
			t.Fatalf("code %d leaked below threshold", tup.Code)
		}
	}
	if st := s.Stats(); st.Dropped != threshold-1 {
		t.Fatalf("dropped %d, want %d", st.Dropped, threshold-1)
	}
}

// Concurrent Flush and Drain must never lose or duplicate a tuple: every
// submitted tuple is either forwarded to the sink or captured by exactly one
// drain, never both and never neither. Run with -race this also proves the
// lock discipline of the drain path. (A live Drain+Restore cycle, by
// contrast, requires ingestion to be quiesced — that is the persist
// manager's job and is tested there.)
func TestFlushDuringDrainConservesTuples(t *testing.T) {
	sink := &collector{}
	s := New(Config{BatchSize: 32, Threshold: 0}, sink, rng.New(9))
	const submitters, per = 4, 300
	stop := make(chan struct{})
	var bgWg, subWg sync.WaitGroup

	bgWg.Add(1)
	go func() { // flusher: races partial-batch flushes against everything
		defer bgWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Flush()
			}
		}
	}()

	var drained []transport.Tuple
	bgWg.Add(1)
	go func() { // drainer: shutdown-style drains that keep the tuples
		defer bgWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := s.Drain()
			if err != nil {
				t.Error(err)
				return
			}
			drained = append(drained, st.Pending...)
		}
	}()

	for w := 0; w < submitters; w++ {
		subWg.Add(1)
		go func(w int) {
			defer subWg.Done()
			for i := 0; i < per; i++ {
				s.Submit(transport.Envelope{Tuple: transport.Tuple{Code: w, Action: 0, Reward: 1}})
			}
		}(w)
	}
	subWg.Wait()
	close(stop)
	bgWg.Wait()
	s.Flush()

	forwarded := len(sink.all())
	total := forwarded + len(drained) + s.Pending()
	if total != submitters*per {
		t.Fatalf("conservation violated: forwarded %d + drained %d + pending %d != %d",
			forwarded, len(drained), s.Pending(), submitters*per)
	}
}
