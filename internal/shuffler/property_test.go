package shuffler

import (
	"testing"
	"testing/quick"

	"p2b/internal/privacy"
	"p2b/internal/rng"
	"p2b/internal/transport"
)

// TestPropertyOutputAlwaysCrowdBlended: for any batch contents and any
// threshold, everything the sink receives satisfies the crowd-blending
// invariant and conservation holds. This is the system's privacy contract
// as a property.
func TestPropertyOutputAlwaysCrowdBlended(t *testing.T) {
	if err := quick.Check(func(seed uint16, rawCodes []uint8, threshold uint8) bool {
		if len(rawCodes) == 0 {
			return true
		}
		l := int(threshold % 8)
		sink := &collector{}
		s := New(Config{BatchSize: 16, Threshold: l}, sink, rng.New(uint64(seed)))
		for i, c := range rawCodes {
			s.Submit(transport.Envelope{
				Meta:  transport.Metadata{DeviceID: deviceName(i % 26)},
				Tuple: transport.Tuple{Code: int(c % 10), Action: 0, Reward: 0.5},
			})
		}
		s.Flush()
		// Every delivered batch individually satisfies the threshold.
		sink.mu.Lock()
		defer sink.mu.Unlock()
		delivered := 0
		for _, batch := range sink.batches {
			codes := make([]int, len(batch))
			for i, tup := range batch {
				codes[i] = tup.Code
			}
			if !privacy.VerifyCrowdBlending(codes, l) {
				return false
			}
			delivered += len(batch)
		}
		st := s.Stats()
		return st.Received == int64(len(rawCodes)) &&
			st.Forwarded == int64(delivered) &&
			st.Forwarded+st.Dropped == st.Received
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRewardsSurviveUnchanged: shuffling and thresholding must not
// alter tuple payloads, only drop or reorder them.
func TestPropertyRewardsSurviveUnchanged(t *testing.T) {
	if err := quick.Check(func(seed uint16, n uint8) bool {
		count := int(n%50) + 1
		sink := &collector{}
		s := New(Config{BatchSize: 8, Threshold: 0}, sink, rng.New(uint64(seed)))
		want := map[float64]bool{}
		for i := 0; i < count; i++ {
			r := float64(i) / 100
			want[r] = true
			s.Submit(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 2, Reward: r}})
		}
		s.Flush()
		for _, tup := range sink.all() {
			if tup.Code != 1 || tup.Action != 2 || !want[tup.Reward] {
				return false
			}
		}
		return len(sink.all()) == count
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
