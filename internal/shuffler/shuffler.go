// Package shuffler implements the trusted shuffler of the ESA architecture
// as P2B uses it (paper §3.3). For every batch it performs, in order:
//
//  1. Anonymization — all transport metadata is discarded; only the bare
//     (code, action, reward) tuples survive.
//  2. Shuffling — the batch order is randomly permuted, unlinking arrival
//     order from any sender.
//  3. Thresholding — tuples whose encoded context appears fewer than
//     Threshold times in the batch are removed, establishing the
//     crowd-blending parameter l = Threshold for everything forwarded.
//
// The production system runs this inside a trusted enclave; here the same
// observable behaviour is provided in software, and the privacy analysis
// depends only on that behaviour.
package shuffler

import (
	"context"
	"fmt"
	"sync"

	"p2b/internal/metrics"
	"p2b/internal/rng"
	"p2b/internal/transport"
)

// Sink receives finished batches from the shuffler. The server implements
// this.
type Sink interface {
	// Deliver hands over one anonymized, shuffled, thresholded batch. The
	// slice is only valid for the duration of the call: the shuffler pools
	// and reuses batch buffers, so a sink that wants to keep tuples must
	// copy them.
	Deliver(batch []transport.Tuple)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(batch []transport.Tuple)

// Deliver calls f.
func (f SinkFunc) Deliver(batch []transport.Tuple) { f(batch) }

// Config holds the shuffler parameters.
type Config struct {
	// BatchSize is how many envelopes are buffered before a batch is
	// processed. Larger batches make the threshold easier to clear but
	// delay model updates.
	BatchSize int
	// Threshold is the crowd-blending parameter l: a tuple is forwarded
	// only if its code occurs at least Threshold times in the batch. The
	// paper's real-data experiments use 10.
	Threshold int
}

// Stats counts the shuffler's traffic.
type Stats struct {
	Received  int64 // envelopes submitted
	Forwarded int64 // tuples delivered to the sink
	Dropped   int64 // tuples removed by thresholding
	Batches   int64 // batches processed
}

// Metrics are the shuffler's push-style telemetry instruments, distinct
// from Stats (which every surface still reads at snapshot time): batch
// sizes and cut reasons are per-event distributions that only exist at the
// moment a batch is processed. All instruments are nil-safe, so an
// unconfigured shuffler pays two nil checks per batch — per batch, not per
// tuple.
type Metrics struct {
	// BatchSizes observes the tuple count of every processed batch.
	BatchSizes *metrics.Histogram
	// SizeBatches counts batches cut by reaching Config.BatchSize.
	SizeBatches *metrics.Counter
	// FlushBatches counts batches pushed out by an explicit Flush.
	FlushBatches *metrics.Counter
}

// SetMetrics installs telemetry instruments. Call before the shuffler
// starts accepting traffic.
func (s *Shuffler) SetMetrics(m Metrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// Shuffler buffers envelopes and releases privacy-scrubbed batches to a
// sink. It is safe for concurrent use.
type Shuffler struct {
	cfg  Config
	sink Sink

	mu      sync.Mutex
	buf     []transport.Tuple // metadata already stripped at submission
	r       *rng.Rand
	stats   Stats
	metrics Metrics
	// pool recycles batch buffers (each sized to BatchSize) between the
	// accumulate -> process -> deliver cycle, so steady-state submission
	// allocates nothing.
	pool sync.Pool
}

// New returns a shuffler delivering to sink, shuffling with randomness from
// r. It panics on a non-positive batch size or negative threshold.
func New(cfg Config, sink Sink, r *rng.Rand) *Shuffler {
	if cfg.BatchSize <= 0 {
		panic(fmt.Sprintf("shuffler: batch size must be positive, got %d", cfg.BatchSize))
	}
	if cfg.Threshold < 0 {
		panic(fmt.Sprintf("shuffler: threshold must be non-negative, got %d", cfg.Threshold))
	}
	if sink == nil {
		panic("shuffler: nil sink")
	}
	s := &Shuffler{cfg: cfg, sink: sink, r: r}
	s.pool.New = func() any {
		return make([]transport.Tuple, 0, cfg.BatchSize)
	}
	return s
}

// Submit accepts one envelope. Metadata is stripped immediately — identity
// never rests in the buffer — and a batch is processed once BatchSize
// tuples have accumulated.
//
//p2b:hotpath
func (s *Shuffler) Submit(e transport.Envelope) {
	s.mu.Lock()
	s.stats.Received++
	if s.buf == nil {
		s.buf = s.pool.Get().([]transport.Tuple)
	}
	s.buf = append(s.buf, e.Tuple) // anonymization: Meta is dropped here
	var batch []transport.Tuple
	if len(s.buf) >= s.cfg.BatchSize {
		batch = s.buf
		s.buf = nil
	}
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, false)
	}
}

// SubmitTuples folds a slice of already-anonymized tuples into the buffer
// under a single lock acquisition, processing every full batch that forms
// along the way. It is the batched ingestion path: the HTTP batch route
// decodes frames into a reused chunk and hands the whole chunk over here,
// so the per-envelope cost is one append, not one lock round-trip.
//
// Batch boundaries depend only on the arrival sequence, so a tuple stream
// submitted through SubmitTuples produces bit-identical batches (and, with
// the same shuffle RNG, bit-identical server state) to the same stream
// submitted one Submit call at a time.
//
// The tuples slice is only read during the call; callers may reuse it.
//
//p2b:hotpath
func (s *Shuffler) SubmitTuples(tuples []transport.Tuple) {
	if len(tuples) == 0 {
		return
	}
	var full [][]transport.Tuple
	s.mu.Lock()
	s.stats.Received += int64(len(tuples))
	for len(tuples) > 0 {
		if s.buf == nil {
			s.buf = s.pool.Get().([]transport.Tuple)
		}
		n := s.cfg.BatchSize - len(s.buf)
		if n > len(tuples) {
			n = len(tuples)
		}
		s.buf = append(s.buf, tuples[:n]...)
		tuples = tuples[n:]
		if len(s.buf) >= s.cfg.BatchSize {
			full = append(full, s.buf)
			s.buf = nil
		}
	}
	s.mu.Unlock()
	for _, batch := range full {
		s.process(batch, false)
	}
}

// Flush processes whatever is buffered, regardless of batch size. Call it
// at the end of a collection round so stragglers are not lost; note that
// small flushed batches are exactly the ones most likely to be consumed by
// thresholding, which is the correct privacy behaviour.
func (s *Shuffler) Flush() {
	s.mu.Lock()
	batch := s.buf
	s.buf = nil
	s.mu.Unlock()
	if len(batch) > 0 {
		s.process(batch, true)
	}
}

// process shuffles, thresholds and forwards one batch. explicit records
// why the batch was cut: an explicit Flush versus the size trigger.
func (s *Shuffler) process(batch []transport.Tuple, explicit bool) {
	s.mu.Lock()
	s.metrics.BatchSizes.Observe(float64(len(batch)))
	if explicit {
		s.metrics.FlushBatches.Inc()
	} else {
		s.metrics.SizeBatches.Inc()
	}
	// Shuffling: sever any link between arrival order and position.
	s.r.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })

	// Thresholding: count code frequencies, keep only crowd members.
	freq := make(map[int]int, len(batch))
	for _, t := range batch {
		freq[t.Code]++
	}
	kept := batch[:0]
	for _, t := range batch {
		if freq[t.Code] >= s.cfg.Threshold {
			kept = append(kept, t)
		} else {
			s.stats.Dropped++
		}
	}
	s.stats.Forwarded += int64(len(kept))
	s.stats.Batches++
	s.mu.Unlock()

	if len(kept) > 0 {
		s.sink.Deliver(kept)
	}
	// The sink contract forbids retaining the slice, so the buffer can be
	// recycled for a future batch once Deliver returns.
	s.pool.Put(batch[:0])
}

// Stats returns a snapshot of the traffic counters.
func (s *Shuffler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Config returns the shuffler's parameters.
func (s *Shuffler) Config() Config { return s.cfg }

// State is the shuffler's complete durable state: the tuples buffered but
// not yet released through the privacy pipeline, the traffic counters, and
// the position of the permutation stream. Everything in it is already
// anonymized — transport metadata is stripped at submission, before a tuple
// can ever reach the buffer — so persisting a State discloses nothing the
// server would not eventually see anyway.
type State struct {
	Pending []transport.Tuple `json:"pending"`
	Stats   Stats             `json:"stats"`
	RNG     []byte            `json:"rng"`
}

// Drain atomically removes and returns the shuffler's durable state,
// leaving the shuffler factory-fresh (empty buffer, zero counters). The
// pending tuples keep their arrival order, so a later Restore (or a WAL
// replay that re-submits them first) reproduces the exact batch boundaries
// an uninterrupted run would have formed — which is what keeps the
// k-anonymity threshold's batch semantics intact across a restart.
// Drain followed immediately by Restore of the same state is a no-op, which
// is how a live checkpoint captures the state without perturbing it.
func (s *Shuffler) Drain() (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rngState, err := s.r.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("shuffler: capturing rng state: %w", err)
	}
	st := &State{
		Pending: append([]transport.Tuple(nil), s.buf...),
		Stats:   s.stats,
		RNG:     rngState,
	}
	if s.buf != nil {
		s.pool.Put(s.buf[:0])
		s.buf = nil
	}
	s.stats = Stats{}
	return st, nil
}

// Restore refills the shuffler from a drained state. It refuses to clobber
// a shuffler that has already accepted traffic: the buffer must be empty
// and the counters zero, i.e. recovery happens before the listener opens.
// Restored tuples are not re-counted in Stats.Received — they were counted
// when first submitted and the restored counters already include them.
func (s *Shuffler) Restore(st *State) error {
	if len(st.Pending) >= s.cfg.BatchSize {
		return fmt.Errorf("shuffler: restore state holds %d pending tuples, batch size is %d (a full batch can never be pending)",
			len(st.Pending), s.cfg.BatchSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) > 0 || s.stats != (Stats{}) {
		return fmt.Errorf("shuffler: refusing to restore over a non-empty shuffler (%d buffered, %+v)", len(s.buf), s.stats)
	}
	if len(st.RNG) > 0 {
		if err := s.r.UnmarshalBinary(st.RNG); err != nil {
			return fmt.Errorf("shuffler: restoring rng state: %w", err)
		}
	}
	if len(st.Pending) > 0 {
		s.buf = append(s.pool.Get().([]transport.Tuple), st.Pending...)
	}
	s.stats = st.Stats
	return nil
}

// Pending returns how many tuples are currently buffered.
func (s *Shuffler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Run consumes envelopes from in until the channel closes or ctx is
// cancelled, then flushes. It is the streaming deployment mode: one
// goroutine owns the shuffler while any number of agent goroutines feed the
// bus.
func (s *Shuffler) Run(ctx context.Context, in <-chan transport.Envelope) {
	for {
		select {
		case <-ctx.Done():
			s.Flush()
			return
		case e, ok := <-in:
			if !ok {
				s.Flush()
				return
			}
			s.Submit(e)
		}
	}
}
