package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"p2b/internal/metrics"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/transport"
)

// scrape fetches /metrics and returns the body after validating it as
// Prometheus text exposition.
func scrape(t *testing.T, ts *httptest.Server) (string, map[string]bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, metrics.ContentType)
	}
	var buf bytes.Buffer
	fams, err := metrics.CheckExposition(io.TeeReader(resp.Body, &buf))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}
	return buf.String(), fams
}

func TestNodeMetricsEndToEnd(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 2, Threshold: 0}, srv, rng.New(2))
	reg := metrics.NewRegistry()
	h := NewNodeHandlerOpts(shuf, srv, NodeOptions{
		Admission: NewAdmission(AdmissionConfig{MaxInFlight: 8}),
		Metrics:   reg,
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := NewNodeClient(ts.URL)
	for i := 0; i < 4; i++ {
		if err := client.Report(transport.Envelope{
			Meta:  transport.Metadata{DeviceID: "dev"},
			Tuple: transport.Tuple{Code: 2, Action: 1, Reward: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.FetchTabular(); err != nil {
		t.Fatal(err)
	}
	fm, err := client.FetchModel(ModelKindTabular, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if fm2, err := client.FetchModel(ModelKindTabular, fm.ETag, false); err != nil {
		t.Fatal(err)
	} else if !fm2.NotModified {
		t.Fatal("second conditional fetch should be 304")
	}
	if _, err := client.FetchHealth(); err != nil {
		t.Fatal(err)
	}
	// A request the node rejects must land in a non-2xx class counter.
	resp, err := http.Post(ts.URL+"/shuffler/report", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed report: status %d, want 400", resp.StatusCode)
	}

	body, fams := scrape(t, ts)
	for _, want := range []string{
		"p2b_http_requests_total",
		"p2b_http_request_duration_seconds",
		"p2b_http_request_body_bytes",
		"p2b_shuffler_received_total",
		"p2b_shuffler_forwarded_total",
		"p2b_shuffler_batch_size",
		"p2b_shuffler_cuts_total",
		"p2b_server_tuples_delivered_total",
		"p2b_model_version",
		"p2b_snapshot_cache_hits_total",
		"p2b_model_payload_hits_total",
		"p2b_model_not_modified_total",
		"p2b_ingest_admitted_total",
		"p2b_ingest_shed_total",
	} {
		if !fams[want] {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	for _, want := range []string{
		`p2b_http_requests_total{route="report",class="2xx"} 4`,
		`p2b_http_requests_total{route="report",class="4xx"} 1`,
		`p2b_http_requests_total{route="healthz",class="2xx"} 1`,
		`p2b_shuffler_received_total 4`,
		`p2b_shuffler_forwarded_total 4`,
		`p2b_shuffler_cuts_total{reason="size"} 2`,
		`p2b_model_not_modified_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing sample %q", want)
		}
	}

	// No-drift check: the overload counters /metrics reports must be the
	// same numbers /healthz serializes, because they read the same source.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health Health
	err = json.NewDecoder(hres.Body).Decode(&health)
	hres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Overload == nil {
		t.Fatal("bounded node must report overload on /healthz")
	}
	body2, _ := scrape(t, ts)
	if want := `p2b_ingest_admitted_total ` + strconv.FormatInt(health.Overload.Admitted, 10); !strings.Contains(body2, want) {
		t.Errorf("admitted drift: /metrics lacks %q (healthz says %d)", want, health.Overload.Admitted)
	}
	if want := `p2b_ingest_shed_total ` + strconv.FormatInt(health.Overload.Shed, 10); !strings.Contains(body2, want) {
		t.Errorf("shed drift: /metrics lacks %q (healthz says %d)", want, health.Overload.Shed)
	}
}

// TestNodeWithoutRegistryHasNoMetricsRoute pins the opt-in: a node built
// without NodeOptions.Metrics serves 404 on /metrics and every handler runs
// unwrapped (the nil-receiver identity path).
func TestNodeWithoutRegistryHasNoMetricsRoute(t *testing.T) {
	srv := server.New(server.Config{K: 4, Arms: 3, D: 2, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(2))
	ts := httptest.NewServer(NewNodeHandler(shuf, srv))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uninstrumented node: GET /metrics status %d, want 404", resp.StatusCode)
	}
	if err := NewNodeClient(ts.URL).Report(transport.Envelope{
		Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStatusRecorderUnwrap pins the contract the admission gate's
// read-deadline path depends on: the recorder must expose the underlying
// writer to http.NewResponseController.
func TestStatusRecorderUnwrap(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: rec}
	if sr.Unwrap() != http.ResponseWriter(rec) {
		t.Fatal("Unwrap must return the wrapped writer")
	}
	sr.WriteHeader(http.StatusTeapot)
	sr.WriteHeader(http.StatusOK) // second write must not overwrite
	if sr.status != http.StatusTeapot {
		t.Fatalf("status = %d, want first WriteHeader to stick", sr.status)
	}
}

func TestClassIndex(t *testing.T) {
	cases := map[int]string{
		200: "2xx", 202: "2xx", 304: "3xx", 400: "4xx", 404: "4xx",
		429: "429", 500: "5xx", 503: "503",
	}
	for status, want := range cases {
		if got := statusClasses[classIndex(status)]; got != want {
			t.Errorf("classIndex(%d) = %s, want %s", status, got, want)
		}
	}
}
