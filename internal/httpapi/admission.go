// Admission control: the node's overload boundary. Every ingest request
// (single reports, batch streams, flushes, raw baseline tuples) passes
// through an Admission gate that bounds how much work is in flight at
// once — by request count and by declared body bytes — and sheds the
// excess with 429 Too Many Requests plus a Retry-After hint instead of
// queuing it. Shedding at the door is what keeps the shuffler's latency
// and the WAL's fsync cadence stable under a misbehaving fleet: a client
// that honors Retry-After (the SDK does) converges to the node's actual
// capacity, and one that doesn't only ever costs the node a header parse
// and a counter bump.
//
// The gate also owns the per-request read deadline: an admitted request
// holds capacity, so a sender that stalls mid-body would otherwise pin a
// slot forever. The deadline turns that into a request error the client
// retries.
package httpapi

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"p2b/internal/transport"
)

// AdmissionConfig bounds the ingest work a node accepts concurrently.
// Zero values mean "no limit" for the caps and "default" for the hints,
// so the zero config admits everything (the pre-admission behavior).
type AdmissionConfig struct {
	// MaxInFlight caps concurrently admitted ingest requests (0 = no cap).
	MaxInFlight int
	// MaxInFlightBytes caps the summed Content-Length of admitted ingest
	// bodies (0 = no cap). Chunked requests with no declared length count
	// zero bytes here; they are still bounded by MaxInFlight and by the
	// per-route MaxBytesReader.
	MaxInFlightBytes int64
	// RetryAfter is the Retry-After hint stamped on shed responses
	// (default 1s, rendered in whole seconds with a 1s floor).
	RetryAfter time.Duration
	// ReadTimeout, when set, is the deadline for reading an admitted
	// request's body, applied per request via the response controller.
	ReadTimeout time.Duration
}

// OverloadStats is the overload section of /healthz and the stats routes:
// the admission gate's live occupancy and lifetime counters, plus the
// WAL-degrade state when the node runs the degrade-to-memory policy.
type OverloadStats struct {
	InFlight      int64 `json:"in_flight"`       // admitted requests currently executing
	InFlightBytes int64 `json:"in_flight_bytes"` // their summed declared body bytes
	Admitted      int64 `json:"admitted"`        // lifetime admitted ingest requests
	Shed          int64 `json:"shed"`            // lifetime 429s issued at the gate
	// Degraded is the loud flag of the WAL degrade-to-memory policy: true
	// while report admission is bypassing a failing write-ahead log, i.e.
	// accepted reports are NOT currently durable.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedOps counts ingest operations that fell back to memory.
	DegradedOps int64 `json:"degraded_ops,omitempty"`
}

// Admission is the ingest gate. The zero value is not usable; construct
// with NewAdmission. A nil *Admission admits everything (no gate).
type Admission struct {
	cfg        AdmissionConfig
	retryAfter string // pre-rendered whole-seconds Retry-After value

	inFlight      atomic.Int64
	inFlightBytes atomic.Int64
	admitted      atomic.Int64
	shed          atomic.Int64
}

// NewAdmission returns an ingest gate enforcing cfg.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	secs := int64(cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return &Admission{cfg: cfg, retryAfter: strconv.FormatInt(secs, 10)}
}

// Stats snapshots the gate's counters (degrade fields are filled in by the
// node handler, which owns the degrade state).
func (a *Admission) Stats() OverloadStats {
	if a == nil {
		return OverloadStats{}
	}
	return OverloadStats{
		InFlight:      a.inFlight.Load(),
		InFlightBytes: a.inFlightBytes.Load(),
		Admitted:      a.admitted.Load(),
		Shed:          a.shed.Load(),
	}
}

// tryAcquire claims capacity for one request of cost declared body bytes.
// Optimistic: bump, check, roll back on refusal — concurrent racers can
// transiently overshoot the counter but never both hold the capacity.
func (a *Admission) tryAcquire(cost int64) bool {
	if n := a.inFlight.Add(1); a.cfg.MaxInFlight > 0 && n > int64(a.cfg.MaxInFlight) {
		a.inFlight.Add(-1)
		return false
	}
	if b := a.inFlightBytes.Add(cost); a.cfg.MaxInFlightBytes > 0 && b > a.cfg.MaxInFlightBytes {
		a.inFlightBytes.Add(-cost)
		a.inFlight.Add(-1)
		return false
	}
	a.admitted.Add(1)
	return true
}

func (a *Admission) release(cost int64) {
	a.inFlightBytes.Add(-cost)
	a.inFlight.Add(-1)
}

// guard wraps one ingest handler with the admission gate: shed when over
// capacity, otherwise arm the body read deadline and run the handler. A
// nil gate is the identity — standalone handlers built without
// NodeOptions keep their unbounded behavior.
func (a *Admission) guard(h http.HandlerFunc) http.HandlerFunc {
	if a == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		cost := r.ContentLength
		if cost < 0 {
			cost = 0
		}
		if !a.tryAcquire(cost) {
			a.shed.Add(1)
			w.Header().Set("Retry-After", a.retryAfter)
			http.Error(w, "httpapi: node over ingest capacity, retry later", http.StatusTooManyRequests)
			return
		}
		defer a.release(cost)
		if a.cfg.ReadTimeout > 0 {
			// Best effort: a hijacked or test ResponseWriter may not support
			// deadlines, and an unsupported controller must not turn into a
			// shed — the caps above are the load-bearing part of the gate.
			_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(a.cfg.ReadTimeout))
		}
		h(w, r)
	}
}

// WALPolicy selects what report admission does when the durable log
// refuses a write.
type WALPolicy int

const (
	// WALFailClosed (the default) refuses the report with 503 Service
	// Unavailable + Retry-After: an unlogged tuple is never acked, so a
	// crash cannot lose data the client believes delivered. The SDK treats
	// 503 as retryable, so a transient WAL stall costs latency, not data.
	WALFailClosed WALPolicy = iota
	// WALDegrade keeps accepting reports into the in-memory shuffler when
	// the log fails, raising the Degraded flag on /healthz and the stats
	// routes. Availability over durability: accepted-while-degraded
	// reports die with the process. The flag clears when the log recovers.
	WALDegrade
)

// ParseWALPolicy parses the -wal-policy flag value.
func ParseWALPolicy(s string) (WALPolicy, error) {
	switch s {
	case "fail-closed", "":
		return WALFailClosed, nil
	case "degrade":
		return WALDegrade, nil
	}
	return 0, fmt.Errorf("httpapi: unknown wal policy %q (want fail-closed or degrade)", s)
}

// degradingIngestor implements WALDegrade: every operation tries the
// durable primary first and, on failure, falls back to the in-memory
// path. The fallback cannot double-apply: the persist manager applies an
// operation to the shuffler only after the WAL accepted it, so a failed
// primary call left no trace.
type degradingIngestor struct {
	primary  Ingestor
	fallback Ingestor

	degraded    atomic.Bool
	degradedOps atomic.Int64
}

func (d *degradingIngestor) do(op func(Ingestor) error) error {
	if err := op(d.primary); err != nil {
		d.degradedOps.Add(1)
		d.degraded.Store(true)
		return op(d.fallback)
	}
	// One healthy durable write clears the flag: the log accepted again.
	d.degraded.Store(false)
	return nil
}

func (d *degradingIngestor) SubmitEnvelope(e transport.Envelope) error {
	return d.do(func(i Ingestor) error { return i.SubmitEnvelope(e) })
}

func (d *degradingIngestor) SubmitTuples(ts []transport.Tuple) error {
	return d.do(func(i Ingestor) error { return i.SubmitTuples(ts) })
}

func (d *degradingIngestor) Flush() error {
	return d.do(func(i Ingestor) error { return i.Flush() })
}
