// Package httpapi exposes the shuffler and server over HTTP so that P2B
// components can run as separate processes, and provides the agent-side
// client. The wire format is JSON over the following routes:
//
//	shuffler:  POST /report         one transport.Envelope
//	           POST /flush          force the pending batch through
//	           GET  /stats          shuffler.Stats
//	server:    GET  /model/tabular  bandit.TabularState
//	           GET  /model/linucb   bandit.LinUCBState
//	           POST /raw            one transport.RawTuple (baseline path)
//	           GET  /stats          server.Stats
//
// When an incoming report carries no source address the shuffler handler
// stamps the connection's RemoteAddr into the envelope metadata before
// submission: the shuffler must prove it can scrub real network metadata,
// not just whatever polite clients chose to send.
package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"p2b/internal/bandit"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/transport"
)

const maxBodyBytes = 1 << 20 // 1 MiB is generous for any single report

// NewNodeHandler mounts a shuffler and a server on one mux under the
// /shuffler/ and /server/ prefixes, plus a /healthz probe — the layout
// cmd/p2bnode serves and cmd/p2bagent speaks to.
func NewNodeHandler(shuf *shuffler.Shuffler, srv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/shuffler/", http.StripPrefix("/shuffler", NewShufflerHandler(shuf)))
	mux.Handle("/server/", http.StripPrefix("/server", NewServerHandler(srv)))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// NewNodeClient returns a client whose shuffler and server URLs point at a
// single node handler.
func NewNodeClient(nodeURL string) *Client {
	return NewClient(nodeURL+"/shuffler", nodeURL+"/server")
}

// NewShufflerHandler returns the HTTP surface of a shuffler.
func NewShufflerHandler(s *shuffler.Shuffler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var e transport.Envelope
		if err := decodeJSON(r, &e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if e.Meta.Addr == "" {
			e.Meta.Addr = r.RemoteAddr
		}
		if e.Meta.SentAt == 0 {
			e.Meta.SentAt = time.Now().UnixNano()
		}
		s.Submit(e)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.Flush()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

// NewServerHandler returns the HTTP surface of the analyzer server.
func NewServerHandler(s *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/model/tabular", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.TabularSnapshot())
	})
	mux.HandleFunc("/model/linucb", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.LinUCBSnapshot())
	})
	mux.HandleFunc("/raw", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var t transport.RawTuple
		if err := decodeJSON(r, &t); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.IngestRaw(t); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

func decodeJSON(r *http.Request, v any) error {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("httpapi: bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client is the agent-side HTTP client. ShufflerURL and ServerURL are the
// base URLs of the two services; either may be empty if unused.
type Client struct {
	ShufflerURL string
	ServerURL   string
	HTTP        *http.Client
}

// NewClient returns a client with a conservative default timeout.
func NewClient(shufflerURL, serverURL string) *Client {
	return &Client{
		ShufflerURL: shufflerURL,
		ServerURL:   serverURL,
		HTTP:        &http.Client{Timeout: 10 * time.Second},
	}
}

// Report submits one envelope to the shuffler.
func (c *Client) Report(e transport.Envelope) error {
	return c.post(c.ShufflerURL+"/report", e, http.StatusAccepted)
}

// Flush asks the shuffler to process its pending batch immediately.
func (c *Client) Flush() error {
	return c.post(c.ShufflerURL+"/flush", nil, http.StatusNoContent)
}

// SendRaw submits one raw observation to the server (baseline path).
func (c *Client) SendRaw(t transport.RawTuple) error {
	return c.post(c.ServerURL+"/raw", t, http.StatusAccepted)
}

// FetchTabular downloads the current global tabular model.
func (c *Client) FetchTabular() (*bandit.TabularState, error) {
	var s bandit.TabularState
	if err := c.get(c.ServerURL+"/model/tabular", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// FetchLinUCB downloads the current global LinUCB model.
func (c *Client) FetchLinUCB() (*bandit.LinUCBState, error) {
	var s bandit.LinUCBState
	if err := c.get(c.ServerURL+"/model/linucb", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

func (c *Client) post(url string, v any, wantStatus int) error {
	var body io.Reader
	if v != nil {
		blob, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("httpapi: marshal: %w", err)
		}
		body = bytes.NewReader(blob)
	}
	resp, err := c.httpClient().Post(url, "application/json", body)
	if err != nil {
		return fmt.Errorf("httpapi: post %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("httpapi: post %s: status %d: %s", url, resp.StatusCode, msg)
	}
	return nil
}

func (c *Client) get(url string, v any) error {
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return fmt.Errorf("httpapi: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("httpapi: get %s: status %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("httpapi: decode %s: %w", url, err)
	}
	return nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}
