// Package httpapi exposes the shuffler and server over HTTP so that P2B
// components can run as separate processes, and provides the agent-side
// client. The routes are:
//
//	shuffler:  POST /report         one transport.Envelope (JSON)
//	           POST /reports        a batch stream (binary frames or NDJSON)
//	           POST /flush          force the pending batch through
//	           GET  /stats          shuffler.Stats
//	server:    GET  /model          versioned model sync (ETag/304, binary
//	                                or JSON negotiated via Accept;
//	                                ?kind=tabular|linucb|centroid; served
//	                                from cached encoded payloads, one
//	                                build per model version)
//	           GET  /model/tabular  bandit.TabularState (same cached JSON)
//	           GET  /model/linucb   bandit.LinUCBState (same cached JSON)
//	           POST /raw            one transport.RawTuple (baseline path)
//	           GET  /stats          server.Stats + model_reads counters
//	node:      GET  /healthz            liveness + model shapes + read-path
//	                                    counters + persistence status
//	           POST /admin/checkpoint   force a durable checkpoint
//	                                    (durable nodes only)
//
// /reports is the scale path: the body is a stream of length-prefixed
// binary frames (Content-Type transport.ContentTypeBinary, see
// internal/transport/wire.go for the layout) or newline-delimited JSON
// envelopes (transport.ContentTypeNDJSON). Frames are decoded in a
// streaming fashion and fed to the shuffler in chunks, so a million-report
// body never lives in memory at once and no allocation happens per
// envelope. Envelopes whose reward is not finite or whose code/action is
// negative are dropped and counted in the BatchAck response rather than
// failing the whole batch.
//
// When an incoming single report carries no source address the shuffler
// handler stamps the connection's RemoteAddr into the envelope metadata
// before submission: the shuffler must prove it can scrub real network
// metadata, not just whatever polite clients chose to send. Batched
// envelopes carry sender metadata inside their frames; the batch decoder
// skips those bytes entirely, so identity is discarded even earlier.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2b/internal/bandit"
	"p2b/internal/metrics"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/topology"
	"p2b/internal/transport"
)

const (
	maxBodyBytes      = 1 << 20  // 1 MiB is generous for any single report
	maxBatchBodyBytes = 32 << 20 // one POST of ~100k binary frames
	// submitChunk is how many decoded tuples are handed to the shuffler
	// per SubmitTuples call on the batch route: large enough to amortize
	// the shuffler lock, small enough to keep the working set in L1.
	submitChunk = 512
)

// BatchAck is the response body of the batch report route: how many
// envelopes entered the shuffler and how many were dropped at the door for
// carrying non-finite rewards or negative coordinates.
type BatchAck struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
}

// tupleChunks recycles the per-request decode buffers of the batch route.
var tupleChunks = sync.Pool{
	New: func() any {
		s := make([]transport.Tuple, 0, submitChunk)
		return &s
	},
}

// Ingestor is the tuple-admission surface the shuffler routes write to.
// The plain deployment submits straight to the shuffler; a durable node
// interposes the persist manager, which logs every operation to the WAL
// before applying it. Errors are I/O failures (the log could not accept
// the write); under the default WALFailClosed policy they surface as
// 503 + Retry-After — an unlogged tuple must not be acked, but the
// condition is retryable, not a client bug.
type Ingestor interface {
	SubmitEnvelope(e transport.Envelope) error
	SubmitTuples(tuples []transport.Tuple) error
	Flush() error
}

// shufflerIngestor is the non-durable default: straight to the shuffler,
// which never fails.
type shufflerIngestor struct{ s *shuffler.Shuffler }

func (si shufflerIngestor) SubmitEnvelope(e transport.Envelope) error { si.s.Submit(e); return nil }
func (si shufflerIngestor) SubmitTuples(ts []transport.Tuple) error {
	si.s.SubmitTuples(ts)
	return nil
}
func (si shufflerIngestor) Flush() error { si.s.Flush(); return nil }

// NodeOptions wires optional durability and overload-protection hooks
// into the node handler.
type NodeOptions struct {
	// Ingest handles report admission. Nil submits straight to the
	// shuffler (no durability).
	Ingest Ingestor
	// Checkpoint, when non-nil, enables POST /admin/checkpoint.
	Checkpoint func() error
	// Health, when non-nil, contributes a "persist" section to /healthz.
	Health func() any
	// Admission, when non-nil, bounds the ingest routes: requests over the
	// in-flight caps are shed with 429 + Retry-After instead of queued.
	Admission *Admission
	// WALPolicy selects the failure behavior when Ingest refuses a write:
	// fail closed with 503 (default) or degrade to the in-memory shuffler
	// with a loud Degraded flag on /healthz and the stats routes.
	WALPolicy WALPolicy
	// Metrics, when non-nil, instruments every route (request counts by
	// status class, latency and body-size histograms) plus the shuffler,
	// server and overload counters on this registry and mounts it as
	// GET /metrics in Prometheus text exposition format. The collectors
	// read the same atomics and closures the JSON stats routes serialize,
	// so /metrics, /healthz and the stats routes can never disagree.
	Metrics *metrics.Registry
	// Role names the node's fleet role on /healthz and /server/stats.
	// Empty means "combined", the single-process default.
	Role string
	// Peer, when non-nil, mounts the analyzer-side peer routes
	// (/peer/ingest, /peer/merge, /peer/status) and adds the "peers"
	// section to /healthz and /server/stats.
	Peer *PeerOptions
	// Board, when non-nil, reports the node's bulletin-board registration
	// health (typically a topology.Heartbeat's Status method): a "board"
	// section on /healthz plus the p2b_board_* metric families, so an
	// operator can see from either surface whether discovery can find
	// this node.
	Board func() topology.HeartbeatStatus
	// Overload, when non-nil, is filled in at construction with the same
	// overload snapshot closure /healthz serves (nil is stored when the
	// node is unbounded and non-degradable). The embedding process reads
	// it to publish the degrade flag on the bulletin board — the state
	// lives inside the handler, and an out-param beats re-deriving it.
	Overload *func() OverloadStats
}

// NewNodeHandler mounts a shuffler and a server on one mux under the
// /shuffler/ and /server/ prefixes, plus a /healthz probe — the layout
// cmd/p2bnode serves and cmd/p2bagent speaks to.
func NewNodeHandler(shuf *shuffler.Shuffler, srv *server.Server) http.Handler {
	return NewNodeHandlerOpts(shuf, srv, NodeOptions{})
}

// NewNodeHandlerOpts is NewNodeHandler with durability hooks: reports are
// admitted through opts.Ingest, POST /admin/checkpoint forces a checkpoint,
// and /healthz reports persistence status alongside liveness.
func NewNodeHandlerOpts(shuf *shuffler.Shuffler, srv *server.Server, opts NodeOptions) http.Handler {
	ing := opts.Ingest
	if ing == nil {
		ing = shufflerIngestor{shuf}
	}
	var deg *degradingIngestor
	if opts.WALPolicy == WALDegrade && opts.Ingest != nil {
		deg = &degradingIngestor{primary: opts.Ingest, fallback: shufflerIngestor{shuf}}
		ing = deg
	}
	// overload snapshots the admission gate's counters plus the degrade
	// state: the one overload view every surface (/healthz, both stats
	// routes) reports, so operators never reconcile divergent counters.
	// It stays nil on an unbounded, non-degradable node and the section is
	// omitted everywhere.
	var overload func() OverloadStats
	if opts.Admission != nil || deg != nil {
		overload = func() OverloadStats {
			st := opts.Admission.Stats()
			if deg != nil {
				st.Degraded = deg.degraded.Load()
				st.DegradedOps = deg.degradedOps.Load()
			}
			return st
		}
	}
	if opts.Overload != nil {
		*opts.Overload = overload
	}
	role := opts.Role
	if role == "" {
		role = "combined"
	}
	// peers snapshots the one replication view every surface (/healthz,
	// /server/stats, /peer/status, and — through the same underlying
	// atomics — /metrics) reports. Nil when the node has no peer surface;
	// the sections are then omitted everywhere.
	var peers func() *PeerHealth
	if opts.Peer != nil {
		peers = func() *PeerHealth {
			ph := &PeerHealth{PeerStatus: srv.PeerStatus()}
			if opts.Peer.Sync != nil {
				ph.Sync = opts.Peer.Sync()
			}
			return ph
		}
	}
	mux := http.NewServeMux()
	sh := newServerHandler(srv)
	sh.adm = opts.Admission
	sh.overload = overload
	sh.role = role
	sh.peers = peers
	var nm *nodeMetrics
	if opts.Metrics != nil {
		nm = newNodeMetrics(opts.Metrics, shuf, srv, sh, overload, opts.Peer, opts.Board)
		sh.nm = nm
		mux.Handle("GET /metrics", metrics.Handler(opts.Metrics))
	}
	mux.Handle("/shuffler/", http.StripPrefix("/shuffler", newShufflerHandlerOpts(shuf, ing, opts.Admission, overload, nm)))
	mux.Handle("/server/", http.StripPrefix("/server", sh.routes()))
	if opts.Peer != nil {
		mux.Handle("/peer/", http.StripPrefix("/peer", newPeerHandler(srv, opts.Peer, opts.Admission, nm, peers)))
	}
	mux.HandleFunc("GET /healthz", nm.wrap("healthz", func(w http.ResponseWriter, r *http.Request) {
		cfg := srv.Config()
		// Atomic counters only — the preflight probe every device hits
		// must not lock-sweep the ingestion shards like full Stats does.
		snapHits, snapBuilds := srv.SnapshotCacheStats()
		status := struct {
			Status string      `json:"status"`
			Role   string      `json:"role"`
			Model  ModelShapes `json:"model"`
			// Read-path health: snapshot-cache and encoded-payload
			// counters, so a fleet operator can see from one probe whether
			// model GETs are being served from shared builds (hits/304s
			// climbing) or are rebuilding per request.
			Snapshots  SnapshotCacheStats `json:"snapshots"`
			ModelReads ModelReadStats     `json:"model_reads"`
			Overload   *OverloadStats     `json:"overload,omitempty"`
			Peers      *PeerHealth        `json:"peers,omitempty"`
			// Board is the node's own registration health on the bulletin
			// board — whether discovery can find it — not the board
			// process's health.
			Board   *topology.HeartbeatStatus `json:"board,omitempty"`
			Persist any                       `json:"persist,omitempty"`
		}{
			Status: "ok",
			Role:   role,
			// Shapes ride along so a fleet's preflight can validate its
			// -k/-arms/-d flags with this one cheap probe instead of
			// downloading full model payloads.
			Model:      ModelShapes{K: cfg.K, Arms: cfg.Arms, D: cfg.D, Version: srv.ModelVersion()},
			Snapshots:  SnapshotCacheStats{Hits: snapHits, Builds: snapBuilds},
			ModelReads: sh.ReadStats(),
		}
		if peers != nil {
			status.Peers = peers()
		}
		if overload != nil {
			ov := overload()
			status.Overload = &ov
			if ov.Degraded {
				// Loud but alive: the probe still answers 200 — the node IS
				// serving — while the status string tells preflights and
				// dashboards that accepted reports are not currently durable.
				status.Status = "degraded"
			}
		}
		if opts.Board != nil {
			bs := opts.Board()
			status.Board = &bs
		}
		if opts.Health != nil {
			status.Persist = opts.Health()
		}
		writeJSON(w, status)
	}))
	if opts.Checkpoint != nil {
		mux.HandleFunc("POST /admin/checkpoint", func(w http.ResponseWriter, r *http.Request) {
			if err := opts.Checkpoint(); err != nil {
				http.Error(w, fmt.Sprintf("httpapi: checkpoint failed: %v", err), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		})
	}
	return mux
}

// NewNodeClient returns a client whose shuffler and server URLs point at a
// single node handler, and which can probe that node's /healthz.
func NewNodeClient(nodeURL string) *Client {
	c := NewClient(nodeURL+"/shuffler", nodeURL+"/server")
	c.NodeURL = nodeURL
	return c
}

// NewShufflerHandler returns the HTTP surface of a shuffler.
func NewShufflerHandler(s *shuffler.Shuffler) http.Handler {
	return newShufflerHandlerOpts(s, shufflerIngestor{s}, nil, nil, nil)
}

// newShufflerHandlerOpts mounts the shuffler routes with report admission
// going through ing (the durable path when a persist manager is wired in),
// bounded by adm (nil = unbounded), reporting overload (nil = omitted)
// on GET /stats and instrumented by nm (nil = uninstrumented). nm wraps
// OUTSIDE adm.guard so shed 429s and fail-closed 503s land in the
// per-route status-class counters.
func newShufflerHandlerOpts(s *shuffler.Shuffler, ing Ingestor, adm *Admission, overload func() OverloadStats, nm *nodeMetrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /report", nm.wrap("report", adm.guard(func(w http.ResponseWriter, r *http.Request) {
		var e transport.Envelope
		if err := decodeJSON(w, r, &e); err != nil {
			writeBodyError(w, err)
			return
		}
		// Same admission policy as the batch route, so a report stream is
		// route-independent: a tuple either enters the shuffler on both
		// routes or on neither.
		if !validTuple(e.Tuple) {
			http.Error(w, "httpapi: invalid tuple (non-finite reward or negative code/action)", http.StatusBadRequest)
			return
		}
		if e.Meta.Addr == "" {
			e.Meta.Addr = r.RemoteAddr
		}
		if e.Meta.SentAt == 0 {
			e.Meta.SentAt = time.Now().UnixNano()
		}
		if err := ing.SubmitEnvelope(e); err != nil {
			writeBodyError(w, ingestError{err})
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})))
	mux.HandleFunc("POST /reports", nm.wrap("reports", adm.guard(func(w http.ResponseWriter, r *http.Request) {
		ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
		if err != nil {
			http.Error(w, "httpapi: unparseable Content-Type", http.StatusUnsupportedMediaType)
			return
		}
		body := http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
		var ack BatchAck
		switch ct {
		case transport.ContentTypeBinary:
			ack, err = ingestBinary(ing, body)
		case transport.ContentTypeNDJSON, "application/json":
			ack, err = ingestNDJSON(ing, body)
		default:
			http.Error(w, fmt.Sprintf("httpapi: unsupported batch Content-Type %q (want %s or %s)",
				ct, transport.ContentTypeBinary, transport.ContentTypeNDJSON), http.StatusUnsupportedMediaType)
			return
		}
		if err != nil {
			// Chunks decoded before the malformed frame are already in the
			// shuffler; report how far we got alongside the error.
			writeBodyErrorMsg(w, fmt.Sprintf("httpapi: batch aborted after %d accepted: %v", ack.Accepted, err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		// The status line is already committed; an encode failure here only
		// means the client went away.
		_ = json.NewEncoder(w).Encode(ack)
	})))
	mux.HandleFunc("POST /flush", nm.wrap("flush", adm.guard(func(w http.ResponseWriter, r *http.Request) {
		if err := ing.Flush(); err != nil {
			writeBodyError(w, ingestError{err})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, shufflerStatsPayload(s, overload))
	})
	return mux
}

// ShufflerStats is the GET /shuffler/stats response: the traffic counters
// extended with the live buffer occupancy (how many tuples sit between
// admission and the next privacy batch) and, on a bounded node, the
// overload counters.
type ShufflerStats struct {
	shuffler.Stats
	Pending  int            `json:"pending"`
	Overload *OverloadStats `json:"overload,omitempty"`
}

func shufflerStatsPayload(s *shuffler.Shuffler, overload func() OverloadStats) ShufflerStats {
	st := ShufflerStats{Stats: s.Stats(), Pending: s.Pending()}
	if overload != nil {
		ov := overload()
		st.Overload = &ov
	}
	return st
}

// NewServerHandler returns the HTTP surface of the analyzer server. Routes
// are registered with method patterns, so a wrong-method request gets the
// mux's 405 (with an Allow header) without per-handler boilerplate.
func NewServerHandler(s *server.Server) http.Handler {
	return newServerHandler(s).routes()
}

// ModelReadStats counts the encoded-payload cache traffic of the model
// routes. Together with the server's SnapshotHits/SnapshotBuilds it tells
// a fleet operator whether the read path is healthy: steady state is
// PayloadHits and NotModified growing while PayloadBuilds tracks model
// version bumps.
type ModelReadStats struct {
	PayloadHits   int64 `json:"payload_hits"`   // responses served from cached encoded bytes
	PayloadBuilds int64 `json:"payload_builds"` // snapshot-encode rebuilds (version advanced)
	NotModified   int64 `json:"not_modified"`   // If-None-Match revalidations answered 304
}

// modelPayload is one immutable encoded model response: the exact body and
// validator headers of GET /server/model for one (kind, epoch, version,
// representation). Once published it is only ever read, so concurrent
// requests share the bytes without copying.
type modelPayload struct {
	version     uint64
	versionStr  string
	etag        string
	contentType string
	body        []byte
}

// payloadSlot caches the newest payload of one (kind, representation)
// pair. Reads are one atomic load; rebuilds are serialized per slot.
type payloadSlot struct {
	cur atomic.Pointer[modelPayload]
	mu  sync.Mutex
}

// serverHandler owns the analyzer's HTTP surface plus the encoded-payload
// cache that makes the model read path O(1): steady-state GETs compare a
// version counter and write cached bytes; If-None-Match revalidations are
// answered from the version counters alone, never building a snapshot.
type serverHandler struct {
	s *server.Server
	// payload slots: 3 kinds x 2 representations, indexed by payloadIndex.
	payloads [6]payloadSlot

	payloadHits   atomic.Int64
	payloadBuilds atomic.Int64
	notModified   atomic.Int64

	// Node-level overload wiring (nil on a standalone server handler):
	// adm bounds POST /raw like the shuffler ingest routes, overload
	// contributes the overload section to GET /stats, nm instruments the
	// model and raw routes. role and peers extend GET /stats with the
	// node's fleet role and replication status.
	adm      *Admission
	overload func() OverloadStats
	nm       *nodeMetrics
	role     string
	peers    func() *PeerHealth
}

func newServerHandler(s *server.Server) *serverHandler {
	return &serverHandler{s: s}
}

// ReadStats returns a snapshot of the payload-cache counters.
func (h *serverHandler) ReadStats() ModelReadStats {
	return ModelReadStats{
		PayloadHits:   h.payloadHits.Load(),
		PayloadBuilds: h.payloadBuilds.Load(),
		NotModified:   h.notModified.Load(),
	}
}

func (h *serverHandler) routes() http.Handler {
	mux := http.NewServeMux()
	// All three model read routes share route="model": operators care about
	// the read path as one surface, and the inspection variants are just
	// fixed-kind aliases of /model.
	mux.HandleFunc("GET /model", h.nm.wrap("model", h.serveModel))
	// The legacy inspection routes serve the same cached encoded-JSON
	// payloads as /model — a debugging curl costs cached bytes, not a
	// fresh snapshot copy plus a fresh encode.
	mux.HandleFunc("GET /model/tabular", h.nm.wrap("model", func(w http.ResponseWriter, r *http.Request) {
		h.servePayload(w, r, ModelKindTabular, false)
	}))
	mux.HandleFunc("GET /model/linucb", h.nm.wrap("model", func(w http.ResponseWriter, r *http.Request) {
		h.servePayload(w, r, ModelKindLinUCB, false)
	}))
	mux.HandleFunc("POST /raw", h.nm.wrap("raw", h.adm.guard(func(w http.ResponseWriter, r *http.Request) {
		var t transport.RawTuple
		if err := decodeJSON(w, r, &t); err != nil {
			writeBodyError(w, err)
			return
		}
		if err := h.s.IngestRaw(t); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		p := serverStatsPayload{Stats: h.s.Stats(), Role: h.role, ModelReads: h.ReadStats()}
		if h.overload != nil {
			ov := h.overload()
			p.Overload = &ov
		}
		if h.peers != nil {
			p.Peers = h.peers()
		}
		writeJSON(w, p)
	})
	return mux
}

// serverStatsPayload is the GET /server/stats response: the ingestion
// counters extended with the node role, the read-path health counters
// and, on a bounded node, the overload counters. Peers is the same
// replication view /healthz and /peer/status serve.
type serverStatsPayload struct {
	server.Stats
	Role       string         `json:"role,omitempty"`
	ModelReads ModelReadStats `json:"model_reads"`
	Overload   *OverloadStats `json:"overload,omitempty"`
	Peers      *PeerHealth    `json:"peers,omitempty"`
}

// Model kinds accepted by GET /server/model?kind=...; the default is
// tabular, the production P2B warm-start model.
const (
	ModelKindTabular  = "tabular"
	ModelKindLinUCB   = "linucb"
	ModelKindCentroid = "centroid"
)

// ModelVersionHeader carries the model version alongside the ETag, so
// clients can log or compare versions without parsing entity tags.
const ModelVersionHeader = "X-P2b-Model-Version"

// modelETag renders the strong entity tag of one model response. The
// encoding is part of the tag: a strong ETag names one exact
// representation (RFC 9110 §8.8.3), and the route serves two (binary and
// JSON), so a shared cache must never validate one against the other. The
// epoch (the server's boot nonce) qualifies the in-memory version counter,
// which restarts after crash recovery — without it, a version collision
// across a restart could answer a stale client with a false 304.
func modelETag(kind string, epoch, version uint64, binary bool) string {
	enc := "json"
	if binary {
		enc = "bin"
	}
	return fmt.Sprintf("%q", fmt.Sprintf("p2b-%s-e%x-v%d-%s", kind, epoch, version, enc))
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// list of entity tags (possibly weak-prefixed) or the wildcard "*". It is
// allocation-free — it runs on every revalidation of every polling device.
//
//p2b:hotpath
func etagMatches(header, etag string) bool {
	for len(header) > 0 {
		var tag string
		if i := strings.IndexByte(header, ','); i >= 0 {
			tag, header = header[:i], header[i+1:]
		} else {
			tag, header = header, ""
		}
		tag = strings.TrimSpace(tag)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == "*" || tag == etag {
			return true
		}
	}
	return false
}

// acceptsBinaryModel reports whether the request prefers the binary model
// encoding: an Accept member with the exact binary media type and a
// non-zero quality selects it, everything else (including no Accept header
// at all, or the binary type refused with q=0 per RFC 9110 §12.4.2) falls
// back to JSON. The exact-match fast paths keep the steady-state fleet
// request (Accept set to precisely one media type) allocation-free.
func acceptsBinaryModel(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	switch accept {
	case "":
		return false
	case transport.ContentTypeModel:
		return true
	case "application/json":
		return false
	}
	// Anything else takes the full parse: media types are case-insensitive
	// (RFC 9110 §8.3.1), so a byte-level Contains shortcut would wrongly
	// downgrade e.g. "Application/X-P2B-Model" to JSON.
	for _, part := range strings.Split(accept, ",") {
		mt, params, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil || mt != transport.ContentTypeModel {
			continue
		}
		if q, ok := params["q"]; ok {
			if qv, err := strconv.ParseFloat(q, 64); err == nil && qv <= 0 {
				continue
			}
		}
		return true
	}
	return false
}

// modelKindParam extracts the ?kind= query parameter. The switch on the
// raw query covers every value real clients send without parsing a
// url.Values map per request.
func modelKindParam(r *http.Request) string {
	switch r.URL.RawQuery {
	case "":
		return ModelKindTabular
	case "kind=" + ModelKindTabular:
		return ModelKindTabular
	case "kind=" + ModelKindLinUCB:
		return ModelKindLinUCB
	case "kind=" + ModelKindCentroid:
		return ModelKindCentroid
	}
	if kind := r.URL.Query().Get("kind"); kind != "" {
		return kind
	}
	return ModelKindTabular
}

// payloadIndex maps a (kind, representation) pair to its cache slot.
//
//p2b:hotpath
func payloadIndex(kind string, binary bool) int {
	i := 0
	switch kind {
	case ModelKindLinUCB:
		i = 1
	case ModelKindCentroid:
		i = 2
	}
	if binary {
		i += 3
	}
	return i
}

// serveModel is GET /server/model: the versioned model-sync surface. The
// snapshot version doubles as a strong ETag, so a fleet whose model has not
// changed since its last fetch is answered with 304 Not Modified; the body
// is the P2BM binary encoding when the client Accepts it, JSON otherwise.
func (h *serverHandler) serveModel(w http.ResponseWriter, r *http.Request) {
	kind := modelKindParam(r)
	switch kind {
	case ModelKindTabular, ModelKindLinUCB:
	case ModelKindCentroid:
		if h.s.Config().Decoder == nil {
			http.Error(w, "httpapi: node maintains no centroid model (no decoder configured)", http.StatusNotFound)
			return
		}
	default:
		http.Error(w, fmt.Sprintf("httpapi: unknown model kind %q (want %s, %s or %s)",
			kind, ModelKindTabular, ModelKindLinUCB, ModelKindCentroid), http.StatusBadRequest)
		return
	}
	h.servePayload(w, r, kind, acceptsBinaryModel(r))
}

// servePayload answers one model request from the encoded-payload cache.
//
// The order of operations is what makes the read path cheap under fleet
// load: the model version is read first (a handful of atomic loads — no
// locks, no snapshot), so an If-None-Match revalidation at an unchanged
// version is answered 304 from the version counters alone. Only a request
// that actually needs bytes consults the payload cache, and only a version
// bump rebuilds: snapshot fetch (shared, one build per version) + encode,
// once per (kind, version, representation) for the whole fleet.
func (h *serverHandler) servePayload(w http.ResponseWriter, r *http.Request, kind string, binary bool) {
	version := h.s.ModelVersion()
	slot := &h.payloads[payloadIndex(kind, binary)]
	p := slot.cur.Load()
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		etag := ""
		if p != nil && p.version == version {
			etag = p.etag // steady state: no formatting, no allocation
		} else {
			etag = modelETag(kind, h.s.ModelEpoch(), version, binary)
		}
		if etagMatches(inm, etag) {
			hd := w.Header()
			hd.Set("ETag", etag)
			hd.Set("Vary", "Accept")
			hd.Set(ModelVersionHeader, strconv.FormatUint(version, 10))
			w.WriteHeader(http.StatusNotModified)
			h.notModified.Add(1)
			return
		}
	}
	if p == nil || p.version != version {
		p = h.buildPayload(slot, kind, binary, version)
	} else {
		h.payloadHits.Add(1)
	}
	hd := w.Header()
	hd.Set("ETag", p.etag)
	hd.Set("Vary", "Accept")
	hd.Set(ModelVersionHeader, p.versionStr)
	hd.Set("Content-Type", p.contentType)
	_, _ = w.Write(p.body)
}

// buildPayload encodes the current snapshot of one (kind, representation)
// into an immutable payload and publishes it in slot. Concurrent builders
// of one slot collapse: the loser of the lock race finds a fresh payload
// and returns it. wantVersion is the version the caller observed; the
// snapshot getter may return a newer one (ingestion racing the read), in
// which case the payload is keyed — consistently, headers and body — under
// the newer version.
func (h *serverHandler) buildPayload(slot *payloadSlot, kind string, binary bool, wantVersion uint64) *modelPayload {
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if p := slot.cur.Load(); p != nil && p.version >= wantVersion {
		h.payloadHits.Add(1)
		return p
	}
	var (
		version uint64
		tab     *bandit.TabularState
		lin     *bandit.LinUCBState
	)
	switch kind {
	case ModelKindTabular:
		tab, version = h.s.TabularModel()
	case ModelKindLinUCB:
		lin, version = h.s.LinUCBModel()
	case ModelKindCentroid:
		lin, version = h.s.CentroidModel()
	}
	p := &modelPayload{
		version:    version,
		versionStr: strconv.FormatUint(version, 10),
		etag:       modelETag(kind, h.s.ModelEpoch(), version, binary),
	}
	if binary {
		p.contentType = transport.ContentTypeModel
		if tab != nil {
			p.body = transport.AppendTabularModel(nil, version, tab)
		} else {
			p.body = transport.AppendLinearModel(nil, version, lin)
		}
	} else {
		p.contentType = "application/json"
		var blob []byte
		var err error
		if tab != nil {
			blob, err = json.Marshal(tab)
		} else {
			blob, err = json.Marshal(lin)
		}
		if err != nil {
			// The state types marshal by construction; this is unreachable
			// short of memory corruption.
			panic("httpapi: encoding model snapshot: " + err.Error())
		}
		// Trailing newline keeps the body byte-identical to the
		// json.Encoder output the route historically produced.
		p.body = append(blob, '\n')
	}
	slot.cur.Store(p)
	h.payloadBuilds.Add(1)
	return p
}

// ingestStream drains a batch of tuples from next into the ingestor:
// tuples accumulate in a pooled chunk and each full chunk is admitted in
// one call. Invalid tuples are dropped and counted; a decode error aborts
// the stream after flushing what already decoded. next must return io.EOF
// at a clean end of stream.
func ingestStream(ing Ingestor, next func(*transport.Tuple) error) (BatchAck, error) {
	var ack BatchAck
	chunkPtr := tupleChunks.Get().(*[]transport.Tuple)
	defer tupleChunks.Put(chunkPtr)
	chunk := (*chunkPtr)[:0]
	flush := func() error {
		if err := ing.SubmitTuples(chunk); err != nil {
			// Not the client's fault: the durable log refused the write.
			return ingestError{err}
		}
		ack.Accepted += len(chunk)
		chunk = chunk[:0]
		return nil
	}
	var t transport.Tuple
	for {
		err := next(&t)
		if err == io.EOF {
			break
		}
		if err != nil {
			if ferr := flush(); ferr != nil {
				err = ferr
			}
			return ack, err
		}
		if !validTuple(t) {
			ack.Dropped++
			continue
		}
		chunk = append(chunk, t)
		if len(chunk) == submitChunk {
			if err := flush(); err != nil {
				return ack, err
			}
		}
	}
	return ack, flush()
}

// ingestBinary streams length-prefixed frames from body into the ingestor.
// Metadata bytes are skipped inside the frame buffer (never materialized),
// so identity neither allocates nor — on a durable node — reaches the WAL.
func ingestBinary(ing Ingestor, body io.Reader) (BatchAck, error) {
	fr, err := transport.NewFrameReader(body)
	if err != nil {
		return BatchAck{}, err
	}
	return ingestStream(ing, fr.NextTuple)
}

// ingestNDJSON streams newline-delimited JSON envelopes from body into the
// ingestor. It is the interoperable fallback of the batch route: slower
// than the binary framing but producible with a shell loop.
func ingestNDJSON(ing Ingestor, body io.Reader) (BatchAck, error) {
	dec := json.NewDecoder(body)
	index := 0
	return ingestStream(ing, func(t *transport.Tuple) error {
		var e transport.Envelope
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("httpapi: bad NDJSON envelope %d: %w", index, err)
		}
		index++
		*t = e.Tuple // anonymization: Meta goes no further
		return nil
	})
}

// validTuple rejects envelopes no downstream component could use: the
// server would clamp a non-finite reward to zero and skip negative
// coordinates anyway, but dropping them at the door keeps the shuffler's
// threshold counts honest and the ack informative.
func validTuple(t transport.Tuple) bool {
	return !math.IsNaN(t.Reward) && !math.IsInf(t.Reward, 0) && t.Code >= 0 && t.Action >= 0
}

// ingestError marks a server-side admission failure (the durable log could
// not accept the write), as opposed to a malformed request.
type ingestError struct{ err error }

func (e ingestError) Error() string { return e.err.Error() }
func (e ingestError) Unwrap() error { return e.err }

// statusForBodyError distinguishes "you sent too much" (413) from "we
// could not store it" (503 — the fail-closed WAL policy: retryable, the
// client did nothing wrong) from "you sent garbage" (400).
func statusForBodyError(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	var ing ingestError
	if errors.As(err, &ing) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// ingestRetryAfter is the Retry-After hint on fail-closed 503s: the WAL
// usually recovers within one fsync interval, so a short constant beats
// making clients guess.
const ingestRetryAfter = "1"

// writeBodyError renders err with statusForBodyError's mapping, stamping
// Retry-After on the retryable (503) shape so well-behaved clients pace
// their retries instead of hammering a struggling log.
func writeBodyError(w http.ResponseWriter, err error) {
	writeBodyErrorMsg(w, err.Error(), err)
}

func writeBodyErrorMsg(w http.ResponseWriter, msg string, err error) {
	status := statusForBodyError(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", ingestRetryAfter)
	}
	http.Error(w, msg, status)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	// MaxBytesReader is handed the ResponseWriter so an over-limit body
	// also closes the connection server-side — without it the server would
	// dutifully read and discard the rest of an oversized upload.
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("httpapi: bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client is the agent-side HTTP client. ShufflerURL and ServerURL are the
// base URLs of the two services; either may be empty if unused. NodeURL is
// the node base URL (set by NewNodeClient) for node-level routes like
// /healthz.
type Client struct {
	ShufflerURL string
	ServerURL   string
	NodeURL     string
	HTTP        *http.Client
}

// NewClient returns a client with a conservative default timeout.
func NewClient(shufflerURL, serverURL string) *Client {
	return &Client{
		ShufflerURL: shufflerURL,
		ServerURL:   serverURL,
		HTTP:        &http.Client{Timeout: 10 * time.Second},
	}
}

// Report submits one envelope to the shuffler.
func (c *Client) Report(e transport.Envelope) error {
	return c.post(c.ShufflerURL+"/report", e, http.StatusAccepted)
}

// Flush asks the shuffler to process its pending batch immediately.
func (c *Client) Flush() error {
	return c.post(c.ShufflerURL+"/flush", nil, http.StatusNoContent)
}

// SendRaw submits one raw observation to the server (baseline path).
func (c *Client) SendRaw(t transport.RawTuple) error {
	return c.post(c.ServerURL+"/raw", t, http.StatusAccepted)
}

// FetchTabular downloads the current global tabular model.
func (c *Client) FetchTabular() (*bandit.TabularState, error) {
	var s bandit.TabularState
	if err := c.get(c.ServerURL+"/model/tabular", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// FetchLinUCB downloads the current global LinUCB model.
func (c *Client) FetchLinUCB() (*bandit.LinUCBState, error) {
	var s bandit.LinUCBState
	if err := c.get(c.ServerURL+"/model/linucb", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// FetchedModel is the result of one conditional model fetch. When the
// server answered 304 Not Modified, NotModified is true and both states are
// nil; otherwise exactly one of Tabular and Linear is set.
type FetchedModel struct {
	NotModified bool
	ETag        string
	Version     uint64
	Tabular     *bandit.TabularState
	Linear      *bandit.LinUCBState
}

// maxModelBodyBytes caps a model response body: 256 MiB covers any
// plausible K*Arms tabular model with a wide margin.
const maxModelBodyBytes = 256 << 20

// FetchModel performs one conditional GET of /server/model for the given
// kind (ModelKindTabular, ModelKindLinUCB or ModelKindCentroid). A non-empty
// ifNoneMatch is sent as If-None-Match, so an unchanged model comes back as
// a cheap 304. binary selects the P2BM wire encoding over JSON.
func (c *Client) FetchModel(kind, ifNoneMatch string, binary bool) (*FetchedModel, error) {
	url := c.ServerURL + "/model?kind=" + kind
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("httpapi: building model request: %w", err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	if binary {
		req.Header.Set("Accept", transport.ContentTypeModel)
	} else {
		req.Header.Set("Accept", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	fm := &FetchedModel{ETag: resp.Header.Get("ETag")}
	if v := resp.Header.Get(ModelVersionHeader); v != "" {
		// The header is informative; a missing or garbled one only costs the
		// caller version visibility, not the model.
		fm.Version, _ = strconv.ParseUint(v, 10, 64)
	}
	switch resp.StatusCode {
	case http.StatusNotModified:
		fm.NotModified = true
		return fm, nil
	case http.StatusOK:
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("httpapi: get %s: status %d: %s", url, resp.StatusCode, msg)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxModelBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("httpapi: reading model body: %w", err)
	}
	ct, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if ct == transport.ContentTypeModel {
		version, tab, lin, err := transport.DecodeModel(body)
		if err != nil {
			return nil, fmt.Errorf("httpapi: decoding binary model: %w", err)
		}
		fm.Version = version
		fm.Tabular, fm.Linear = tab, lin
		return fm, nil
	}
	// JSON fallback: the two state shapes are distinguishable by kind.
	switch kind {
	case ModelKindTabular:
		fm.Tabular = new(bandit.TabularState)
		err = json.Unmarshal(body, fm.Tabular)
	default:
		fm.Linear = new(bandit.LinUCBState)
		err = json.Unmarshal(body, fm.Linear)
	}
	if err != nil {
		return nil, fmt.Errorf("httpapi: decoding JSON model: %w", err)
	}
	return fm, nil
}

// ModelShapes advertises the node's model dimensions on /healthz, so a
// fleet can validate its configuration before simulating a single device.
type ModelShapes struct {
	K       int    `json:"k"`
	Arms    int    `json:"arms"`
	D       int    `json:"d"`
	Version uint64 `json:"version"`
}

// SnapshotCacheStats is the snapshot-cache section of /healthz: how often
// model reads were answered from the shared per-version snapshot versus
// how often a version bump forced a rebuild.
type SnapshotCacheStats struct {
	Hits   int64 `json:"hits"`
	Builds int64 `json:"builds"`
}

// Health is the decoded /healthz response of a node. Role names the
// node's fleet role ("combined", "relay" or "analyzer"; empty from nodes
// predating roles), and Peers carries the replication status of a node
// with a peer surface.
type Health struct {
	Status     string                    `json:"status"`
	Role       string                    `json:"role,omitempty"`
	Model      ModelShapes               `json:"model"`
	Snapshots  SnapshotCacheStats        `json:"snapshots"`
	ModelReads ModelReadStats            `json:"model_reads"`
	Overload   *OverloadStats            `json:"overload,omitempty"`
	Peers      *PeerHealth               `json:"peers,omitempty"`
	Board      *topology.HeartbeatStatus `json:"board,omitempty"`
	Persist    json.RawMessage           `json:"persist,omitempty"`
}

// FetchHealth probes the node's /healthz route (the client must have been
// built with NewNodeClient). It fails on connection errors, non-200
// statuses and unhealthy payloads, making it the preflight check a fleet
// runs before simulating devices. A "degraded" status (the node serves
// but its durable log is bypassed) is returned as healthy — callers that
// demand durability must inspect Overload.Degraded.
func (c *Client) FetchHealth() (*Health, error) {
	if c.NodeURL == "" {
		return nil, errors.New("httpapi: client has no node URL (use NewNodeClient)")
	}
	url := c.NodeURL + "/healthz"
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return nil, fmt.Errorf("httpapi: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("httpapi: get %s: status %d: %s", url, resp.StatusCode, msg)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("httpapi: decode %s: %w", url, err)
	}
	if h.Status != "ok" && h.Status != "degraded" {
		return nil, fmt.Errorf("httpapi: node unhealthy: status %q", h.Status)
	}
	return &h, nil
}

func (c *Client) post(url string, v any, wantStatus int) error {
	var body io.Reader
	if v != nil {
		blob, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("httpapi: marshal: %w", err)
		}
		body = bytes.NewReader(blob)
	}
	resp, err := c.httpClient().Post(url, "application/json", body)
	if err != nil {
		return fmt.Errorf("httpapi: post %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("httpapi: post %s: status %d: %s", url, resp.StatusCode, msg)
	}
	return nil
}

func (c *Client) get(url string, v any) error {
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return fmt.Errorf("httpapi: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("httpapi: get %s: status %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("httpapi: decode %s: %w", url, err)
	}
	return nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}
