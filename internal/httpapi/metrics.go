// Node telemetry: the /metrics surface and the per-route HTTP
// instrumentation behind it.
//
// The design rule is one source of truth per counter. Everything /metrics
// exports about overload, degradation, the model read path, the snapshot
// caches and the shuffler pipeline is a scrape-time Func collector reading
// the very same atomics and closures that /healthz, /shuffler/stats and
// /server/stats serialize to JSON — so the Prometheus view and the JSON
// stats views cannot drift apart. Only genuinely per-event data (request
// latency, body sizes, batch-size distributions, WAL timings) lives in
// push-style instruments, and those are nil-safe so un-instrumented nodes
// pay nothing.
package httpapi

import (
	"net/http"
	"sync"
	"time"

	"p2b/internal/metrics"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/topology"
)

// Status classes for p2b_http_requests_total. The two shed statuses get
// their own class (and are excluded from 4xx/5xx): 429s and 503s are the
// node's overload signals, and burying them in the generic classes would
// hide exactly the series an operator alerts on.
var statusClasses = [...]string{"2xx", "3xx", "4xx", "5xx", "429", "503"}

// classIndex maps an HTTP status to its statusClasses slot.
//
//p2b:hotpath
func classIndex(status int) int {
	switch {
	case status == http.StatusTooManyRequests:
		return 4
	case status == http.StatusServiceUnavailable:
		return 5
	case status >= 500:
		return 3
	case status >= 400:
		return 2
	case status >= 300:
		return 1
	default:
		return 0
	}
}

// routeInstruments is the pre-registered instrument set of one route: the
// wrap middleware only ever bumps existing series, so a request can never
// mint new metric cardinality.
type routeInstruments struct {
	requests [len(statusClasses)]*metrics.Counter
	duration *metrics.Histogram
	bodySize *metrics.Histogram // nil on routes without ingest bodies
}

// nodeMetrics owns the node handler's telemetry. A nil *nodeMetrics (node
// built without a registry) turns every hook into the identity, matching
// the nil-*Admission idiom.
type nodeMetrics struct {
	routes map[string]*routeInstruments
}

// instrumentedRoutes lists the wrapped routes and whether their request
// bodies are worth a size histogram.
var instrumentedRoutes = []struct {
	name string
	body bool
}{
	{"report", true},
	{"reports", true},
	{"flush", false},
	{"model", false},
	{"raw", true},
	{"healthz", false},
	{"peer_ingest", true},
	{"peer_merge", true},
	{"peer_digest", false},
	{"peer_contrib", false},
}

// newRouteInstruments registers the per-route HTTP families. Both the node
// and the relay handler register the full route set — unused routes just
// stay at zero, and a fixed set means dashboards never chase
// role-dependent series names.
func newRouteInstruments(reg *metrics.Registry) map[string]*routeInstruments {
	routes := map[string]*routeInstruments{}
	for _, r := range instrumentedRoutes {
		ri := &routeInstruments{
			duration: reg.Histogram("p2b_http_request_duration_seconds",
				`route="`+r.name+`"`,
				"HTTP request latency by route.", metrics.DurationBuckets()),
		}
		for i, class := range statusClasses {
			ri.requests[i] = reg.Counter("p2b_http_requests_total",
				`route="`+r.name+`",class="`+class+`"`,
				"HTTP requests by route and status class (429/503 sheds are their own classes).")
		}
		if r.body {
			ri.bodySize = reg.Histogram("p2b_http_request_body_bytes",
				`route="`+r.name+`"`,
				"Declared request body size by ingest route.", metrics.SizeBuckets())
		}
		routes[r.name] = ri
	}
	return routes
}

// registerShufflerMetrics registers the shuffler pipeline families —
// shared verbatim between the combined/analyzer node and the relay, whose
// shuffler behaves identically.
func registerShufflerMetrics(reg *metrics.Registry, shuf *shuffler.Shuffler) {
	reg.CounterFunc("p2b_shuffler_received_total", "",
		"Envelopes submitted to the shuffler.",
		func() float64 { return float64(shuf.Stats().Received) })
	reg.CounterFunc("p2b_shuffler_forwarded_total", "",
		"Tuples delivered to the sink after shuffling and thresholding.",
		func() float64 { return float64(shuf.Stats().Forwarded) })
	reg.CounterFunc("p2b_shuffler_dropped_total", "",
		"Tuples removed by crowd-blending thresholding.",
		func() float64 { return float64(shuf.Stats().Dropped) })
	reg.CounterFunc("p2b_shuffler_batches_total", "",
		"Privacy batches processed.",
		func() float64 { return float64(shuf.Stats().Batches) })
	reg.GaugeFunc("p2b_shuffler_pending", "",
		"Tuples buffered between admission and the next privacy batch.",
		func() float64 { return float64(shuf.Pending()) })
	shuf.SetMetrics(shuffler.Metrics{
		BatchSizes: reg.Histogram("p2b_shuffler_batch_size", "",
			"Tuples per processed privacy batch.", metrics.ExpBuckets(1, 2, 16)),
		SizeBatches: reg.Counter("p2b_shuffler_cuts_total", `reason="size"`,
			"Privacy batches cut by reason: the size trigger or an explicit flush."),
		FlushBatches: reg.Counter("p2b_shuffler_cuts_total", `reason="flush"`,
			"Privacy batches cut by reason: the size trigger or an explicit flush."),
	})
}

// registerOverloadMetrics registers the admission-gate and degrade
// families against the same closure the JSON surfaces read.
func registerOverloadMetrics(reg *metrics.Registry, overload func() OverloadStats) {
	reg.GaugeFunc("p2b_ingest_inflight_requests", "",
		"Admitted ingest requests currently executing.",
		func() float64 { return float64(overload().InFlight) })
	reg.GaugeFunc("p2b_ingest_inflight_bytes", "",
		"Summed declared body bytes of in-flight ingest requests.",
		func() float64 { return float64(overload().InFlightBytes) })
	reg.CounterFunc("p2b_ingest_admitted_total", "",
		"Lifetime admitted ingest requests.",
		func() float64 { return float64(overload().Admitted) })
	reg.CounterFunc("p2b_ingest_shed_total", "",
		"Lifetime 429s issued at the admission gate.",
		func() float64 { return float64(overload().Shed) })
	reg.GaugeFunc("p2b_wal_degraded", "",
		"1 while report admission is bypassing a failing write-ahead log.",
		func() float64 {
			if overload().Degraded {
				return 1
			}
			return 0
		})
	reg.CounterFunc("p2b_wal_degraded_ops_total", "",
		"Ingest operations accepted without durability under the degrade policy.",
		func() float64 { return float64(overload().DegradedOps) })
}

// newNodeMetrics registers the node's metric families on reg and wires the
// push-style instruments into the shuffler. overload is the same closure
// /healthz and the stats routes read; nil means the node is unbounded and
// non-degradable, and the overload families are omitted (exactly like the
// JSON sections). board is the registration-health closure the /healthz
// "board" section serves; nil (no bulletin board) omits its families.
func newNodeMetrics(reg *metrics.Registry, shuf *shuffler.Shuffler, srv *server.Server, sh *serverHandler, overload func() OverloadStats, peer *PeerOptions, board func() topology.HeartbeatStatus) *nodeMetrics {
	nm := &nodeMetrics{routes: newRouteInstruments(reg)}

	// Shuffler pipeline: counters mirror the mutex-guarded Stats that
	// GET /shuffler/stats serves; the batch-size distribution and cut
	// reasons are push-style (they exist only at process time).
	registerShufflerMetrics(reg, shuf)

	// Server ingestion and read path: all lock-free atomic mirrors, so a
	// scrape never serializes against Deliver.
	reg.CounterFunc("p2b_server_tuples_delivered_total", "",
		"Tuples folded into the global model through the privacy pipeline.",
		func() float64 { d, _, _ := srv.IngestCounters(); return float64(d) })
	reg.CounterFunc("p2b_server_raw_ingested_total", "",
		"Raw baseline tuples folded into the LinUCB model.",
		func() float64 { _, r, _ := srv.IngestCounters(); return float64(r) })
	reg.CounterFunc("p2b_server_shard_contention_total", "",
		"Ingestion calls displaced from their affinity shard by lock contention.",
		func() float64 { _, _, c := srv.IngestCounters(); return float64(c) })
	reg.GaugeFunc("p2b_model_version", "",
		"Monotonic model version (increases on every ingestion).",
		func() float64 { return float64(srv.ModelVersion()) })
	reg.CounterFunc("p2b_snapshot_cache_hits_total", "",
		"Model snapshot reads answered from the shared per-version build.",
		func() float64 { h, _ := srv.SnapshotCacheStats(); return float64(h) })
	reg.CounterFunc("p2b_snapshot_cache_builds_total", "",
		"Model snapshot rebuilds (model version advanced).",
		func() float64 { _, b := srv.SnapshotCacheStats(); return float64(b) })

	// Encoded-payload cache: the same atomics ReadStats snapshots for
	// /healthz and /server/stats. not_modified over (hits + builds +
	// not_modified) is the fleet's 304 ratio.
	reg.CounterFunc("p2b_model_payload_hits_total", "",
		"Model responses served from cached encoded bytes.",
		func() float64 { return float64(sh.payloadHits.Load()) })
	reg.CounterFunc("p2b_model_payload_builds_total", "",
		"Model payload rebuilds (snapshot fetch + encode).",
		func() float64 { return float64(sh.payloadBuilds.Load()) })
	reg.CounterFunc("p2b_model_not_modified_total", "",
		"Conditional model fetches answered 304 Not Modified.",
		func() float64 { return float64(sh.notModified.Load()) })

	if overload != nil {
		registerOverloadMetrics(reg, overload)
	}
	if board != nil {
		registerBoardMetrics(reg, board)
	}

	if peer != nil {
		// Replication counters: the same atomics PeerStatus snapshots for
		// the JSON surfaces. Aggregate totals only — per-origin positions
		// stay in the JSON views so scrape cardinality is fixed no matter
		// how many relays and peers the fleet runs.
		reg.CounterFunc("p2b_peer_merges_applied_total", "",
			"Peer state updates stored or replaced.",
			func() float64 { a, _, _, _ := srv.PeerCounters(); return float64(a) })
		reg.CounterFunc("p2b_peer_merges_rejected_total", "",
			"Stale or duplicate peer state updates ignored.",
			func() float64 { _, r, _, _ := srv.PeerCounters(); return float64(r) })
		reg.CounterFunc("p2b_peer_relay_batches_total", "",
			"Relay-forwarded batches folded into the local model.",
			func() float64 { _, _, b, _ := srv.PeerCounters(); return float64(b) })
		reg.CounterFunc("p2b_peer_relay_duplicates_total", "",
			"Relay batches suppressed by the (epoch, seq) duplicate guard.",
			func() float64 { _, _, _, d := srv.PeerCounters(); return float64(d) })
		if peer.Sync != nil {
			// Outbound anti-entropy health, from the same Status() the
			// JSON surfaces serialize. Lag is the age of the OLDEST peer's
			// last successful push — the alerting-relevant worst case.
			reg.CounterFunc("p2b_peer_sync_pushes_total", "",
				"Successful outbound peer state pushes, summed over peers.",
				func() float64 {
					var n int64
					for _, st := range peer.Sync() {
						n += st.Pushes
					}
					return float64(n)
				})
			reg.CounterFunc("p2b_peer_sync_errors_total", "",
				"Failed outbound peer state pushes, summed over peers.",
				func() float64 {
					var n int64
					for _, st := range peer.Sync() {
						n += st.Errors
					}
					return float64(n)
				})
			reg.GaugeFunc("p2b_peer_sync_max_lag_seconds", "",
				"Age of the oldest peer's last successful state push (-1 until every peer has been reached once).",
				func() float64 { return peerSyncMaxLag(peer.Sync(), time.Now()) })
			// Digest-round (pull) health, from the same Status() snapshot.
			// All zero on a push-only node.
			reg.CounterFunc("p2b_peer_sync_pulls_total", "",
				"Completed digest rounds, summed over peers.",
				func() float64 {
					var n int64
					for _, st := range peer.Sync() {
						n += st.Pulls
					}
					return float64(n)
				})
			reg.CounterFunc("p2b_peer_sync_pull_errors_total", "",
				"Failed digest rounds (digest fetch, contrib fetch or apply), summed over peers.",
				func() float64 {
					var n int64
					for _, st := range peer.Sync() {
						n += st.PullErrors
					}
					return float64(n)
				})
			reg.CounterFunc("p2b_peer_sync_fetched_total", "",
				"Contributions fetched and applied via digest rounds, summed over peers.",
				func() float64 {
					var n int64
					for _, st := range peer.Sync() {
						n += st.Fetched
					}
					return float64(n)
				})
		}
	}
	return nm
}

// peerSyncMaxLag computes the worst-case peer staleness: the age of the
// least recently synced peer. A peer never reached at all makes the whole
// gauge -1 — "lag unknown" must alert at least as loudly as "lag large".
func peerSyncMaxLag(sts []topology.SyncStatus, now time.Time) float64 {
	lag := 0.0
	for _, st := range sts {
		if st.LastSyncUnixNano == 0 {
			return -1
		}
		if l := now.Sub(time.Unix(0, st.LastSyncUnixNano)).Seconds(); l > lag {
			lag = l
		}
	}
	return lag
}

// registerBoardMetrics registers the bulletin-board registration families
// against the same closure the /healthz "board" section serializes.
// failures == attempts growing together is the alert: the fleet cannot
// discover this node.
func registerBoardMetrics(reg *metrics.Registry, board func() topology.HeartbeatStatus) {
	reg.CounterFunc("p2b_board_register_attempts_total", "",
		"Bulletin-board registrations attempted (startup retries and heartbeats).",
		func() float64 { return float64(board().Attempts) })
	reg.CounterFunc("p2b_board_register_failures_total", "",
		"Bulletin-board registrations the board refused or that never reached it.",
		func() float64 { return float64(board().Failures) })
	reg.GaugeFunc("p2b_board_registered", "",
		"1 once this node has registered on the bulletin board at least once this boot.",
		func() float64 {
			if board().Registered {
				return 1
			}
			return 0
		})
}

// newRelayMetrics is the relay handler's registry wiring: the same route
// and shuffler families a combined node registers (dashboards reuse), plus
// the forwarder's downstream counters in place of server ingestion.
func newRelayMetrics(reg *metrics.Registry, shuf *shuffler.Shuffler, fwd *topology.Forwarder, overload func() OverloadStats, board func() topology.HeartbeatStatus) *nodeMetrics {
	nm := &nodeMetrics{routes: newRouteInstruments(reg)}
	registerShufflerMetrics(reg, shuf)
	reg.CounterFunc("p2b_forward_batches_total", "",
		"Privacy batches forwarded downstream (including duplicate-acked).",
		func() float64 { return float64(fwd.Stats().Batches) })
	reg.CounterFunc("p2b_forward_tuples_total", "",
		"Tuples inside forwarded batches.",
		func() float64 { return float64(fwd.Stats().Tuples) })
	reg.CounterFunc("p2b_forward_duplicates_total", "",
		"Forwarded batches the analyzer acked as already applied.",
		func() float64 { return float64(fwd.Stats().Duplicates) })
	reg.CounterFunc("p2b_forward_retries_total", "",
		"Forward send attempts beyond the first.",
		func() float64 { return float64(fwd.Stats().Retries) })
	reg.CounterFunc("p2b_forward_dropped_total", "",
		"Batches abandoned after the retry budget; alert on any growth.",
		func() float64 { return float64(fwd.Stats().Dropped) })
	if overload != nil {
		registerOverloadMetrics(reg, overload)
	}
	if board != nil {
		registerBoardMetrics(reg, board)
	}
	return nm
}

// statusRecorder captures the response status for the class counters.
// Unwrap exposes the real writer so http.NewResponseController (the
// admission gate's read-deadline path) still reaches the connection.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// recorders recycles statusRecorders so instrumentation adds no
// per-request allocation.
var recorders = sync.Pool{New: func() any { return &statusRecorder{} }}

// wrap instruments one route handler: request count by status class,
// latency histogram, and (on ingest routes) declared body size. A nil
// receiver is the identity. wrap goes OUTSIDE the admission guard, so shed
// 429s and fail-closed 503s are counted per route like everything else.
func (nm *nodeMetrics) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	if nm == nil {
		return h
	}
	ri := nm.routes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		if ri.bodySize != nil && r.ContentLength >= 0 {
			ri.bodySize.Observe(float64(r.ContentLength))
		}
		rec := recorders.Get().(*statusRecorder)
		rec.ResponseWriter = w
		rec.status = 0
		start := time.Now()
		h(rec, r)
		status := rec.status
		rec.ResponseWriter = nil
		recorders.Put(rec)
		if status == 0 {
			status = http.StatusOK // implicit 200: the handler just wrote
		}
		ri.duration.Observe(time.Since(start).Seconds())
		ri.requests[classIndex(status)].Inc()
	}
}
