package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p2b/internal/metrics"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/topology"
	"p2b/internal/transport"
)

// newAnalyzer builds an analyzer-role node handler with peer routes and a
// metrics registry, returning the pieces tests poke at.
func newAnalyzer(t *testing.T, origin, token string) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1, Shards: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(2))
	h := NewNodeHandlerOpts(shuf, srv, NodeOptions{
		Metrics:   metrics.NewRegistry(),
		Admission: NewAdmission(AdmissionConfig{MaxInFlight: 8}),
		Role:      string(topology.RoleAnalyzer),
		Peer:      &PeerOptions{Origin: origin, Token: token},
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return srv, ts
}

func peerBatch(n int) []transport.Tuple {
	out := make([]transport.Tuple, n)
	for i := range out {
		out[i] = transport.Tuple{Code: i % 8, Action: i % 4, Reward: float64(i % 2)}
	}
	return out
}

func TestPeerIngestOverWire(t *testing.T) {
	srv, ts := newAnalyzer(t, "analyzer-1", "s3cret")

	fwd, err := topology.NewForwarder(ts.URL, topology.ForwarderOptions{
		Origin: "relay-1", Epoch: 7, Token: "s3cret", RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd.Deliver(peerBatch(6))
	if st := fwd.Stats(); st.Batches != 1 || st.Duplicates != 0 {
		t.Fatalf("forward stats = %+v", st)
	}
	if st := srv.Stats(); st.TuplesIngested != 6 {
		t.Fatalf("analyzer ingested %d tuples, want 6", st.TuplesIngested)
	}

	// A second relay process resuming the same (origin, epoch) stream —
	// the WAL-tail re-forward scenario — acks duplicate, applies nothing.
	fwd2, err := topology.NewForwarder(ts.URL, topology.ForwarderOptions{
		Origin: "relay-1", Epoch: 7, Token: "s3cret", RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd2.Deliver(peerBatch(6))
	if st := fwd2.Stats(); st.Duplicates != 1 {
		t.Fatalf("resumed stream stats = %+v", st)
	}
	if st := srv.Stats(); st.TuplesIngested != 6 {
		t.Fatalf("duplicate folded in: %d tuples", st.TuplesIngested)
	}

	// Wrong token: 401, sticky (no retry storm), nothing applied.
	bad, err := topology.NewForwarder(ts.URL, topology.ForwarderOptions{
		Origin: "relay-2", Token: "wrong", MaxRetries: 3, RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad.Deliver(peerBatch(2))
	if st := bad.Stats(); st.Dropped != 1 || st.Retries != 0 {
		t.Fatalf("unauthorized stats = %+v", st)
	}
	if st := srv.Stats(); st.TuplesIngested != 6 {
		t.Fatalf("unauthorized batch folded in: %d tuples", st.TuplesIngested)
	}
}

func TestPeerIngestRejectsMalformedRequests(t *testing.T) {
	_, ts := newAnalyzer(t, "analyzer-1", "")

	post := func(headers map[string]string, ct string, body []byte) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/peer/ingest", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ct)
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	frames := transport.AppendMagic(nil)
	e := transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}
	frames = e.AppendFrame(frames)

	full := map[string]string{
		topology.OriginHeader: "relay-1",
		topology.EpochHeader:  "1",
		topology.SeqHeader:    "1",
	}
	if got := post(map[string]string{topology.EpochHeader: "1", topology.SeqHeader: "1"}, transport.ContentTypeBinary, frames); got != http.StatusBadRequest {
		t.Fatalf("missing origin: status %d, want 400", got)
	}
	if got := post(map[string]string{topology.OriginHeader: "relay-1", topology.EpochHeader: "x", topology.SeqHeader: "1"}, transport.ContentTypeBinary, frames); got != http.StatusBadRequest {
		t.Fatalf("bad epoch: status %d, want 400", got)
	}
	// A relay claiming the analyzer's own origin is a fleet misconfiguration.
	self := map[string]string{topology.OriginHeader: "analyzer-1", topology.EpochHeader: "1", topology.SeqHeader: "1"}
	if got := post(self, transport.ContentTypeBinary, frames); got != http.StatusBadRequest {
		t.Fatalf("self-origin: status %d, want 400", got)
	}
	// Peer batches are binary-only: the NDJSON fallback exists for agents,
	// not relays.
	if got := post(full, "application/x-ndjson", []byte("{}\n")); got != http.StatusUnsupportedMediaType {
		t.Fatalf("ndjson: status %d, want 415", got)
	}
	if got := post(full, transport.ContentTypeBinary, []byte("junk")); got != http.StatusBadRequest {
		t.Fatalf("garbage stream: status %d, want 400", got)
	}
	if got := post(full, transport.ContentTypeBinary, frames); got != http.StatusOK {
		t.Fatalf("well-formed batch: status %d, want 200", got)
	}
}

// postMerge sends one PeerUpdate and returns (status, ack.Applied).
func postMerge(t *testing.T, url string, upd topology.PeerUpdate) (int, bool) {
	t.Helper()
	blob, err := json.Marshal(upd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/peer/merge", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack topology.PeerAck
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ack.Applied
}

func TestPeerMergeDoubleApplyRejectedOverWire(t *testing.T) {
	srv, ts := newAnalyzer(t, "analyzer-1", "")

	remote := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 2, Shards: 1})
	remote.Deliver(peerBatch(12))
	upd := topology.PeerUpdate{Origin: "analyzer-2", Epoch: 9, Seq: 1, State: remote.ExportState()}

	status, applied := postMerge(t, ts.URL, upd)
	if status != http.StatusOK || !applied {
		t.Fatalf("first merge: status %d applied %v", status, applied)
	}
	before := srv.PeerStatus()

	// The double-applied push: same origin, same (epoch, seq). The guard
	// rejects it — applied=false — and the stored state does not change, so
	// the same data can never fold into the model twice.
	status, applied = postMerge(t, ts.URL, upd)
	if status != http.StatusOK || applied {
		t.Fatalf("double apply: status %d applied %v, want applied=false", status, applied)
	}
	after := srv.PeerStatus()
	if after.MergesRejected != before.MergesRejected+1 || after.MergesApplied != before.MergesApplied {
		t.Fatalf("counters before %+v after %+v", before, after)
	}

	// Self-origin and shape mismatches are 400s, not silent accepts.
	if status, _ := postMerge(t, ts.URL, topology.PeerUpdate{Origin: "analyzer-1", Epoch: 1, Seq: 1, State: remote.ExportState()}); status != http.StatusBadRequest {
		t.Fatalf("self-origin merge: status %d, want 400", status)
	}
	misshapen := server.New(server.Config{K: 4, Arms: 4, D: 3, Alpha: 1}).ExportState()
	if status, _ := postMerge(t, ts.URL, topology.PeerUpdate{Origin: "analyzer-3", Epoch: 1, Seq: 1, State: misshapen}); status != http.StatusBadRequest {
		t.Fatalf("misshapen merge: status %d, want 400", status)
	}
}

func TestPeerStatusAndHealthzReportRoleAndPeers(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1, Shards: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(2))
	reg := metrics.NewRegistry()
	syncStatus := []topology.SyncStatus{{Target: "http://peer-a", Pushes: 3, LastSyncUnixNano: time.Now().UnixNano()}}
	h := NewNodeHandlerOpts(shuf, srv, NodeOptions{
		Metrics: reg,
		Role:    string(topology.RoleAnalyzer),
		Peer: &PeerOptions{
			Origin: "analyzer-1",
			Sync:   func() []topology.SyncStatus { return syncStatus },
		},
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	remote := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 2, Shards: 1})
	remote.Deliver(peerBatch(8))
	upd := topology.PeerUpdate{Origin: "analyzer-2", Epoch: 9, Seq: 1, State: remote.ExportState()}
	if status, applied := postMerge(t, ts.URL, upd); status != http.StatusOK || !applied {
		t.Fatalf("merge: status %d applied %v", status, applied)
	}
	if status, applied := postMerge(t, ts.URL, upd); status != http.StatusOK || applied {
		t.Fatalf("repeat merge: status %d applied %v", status, applied)
	}

	var health struct {
		Role  string      `json:"role"`
		Peers *PeerHealth `json:"peers"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Role != "analyzer" {
		t.Fatalf("healthz role = %q", health.Role)
	}
	if health.Peers == nil || health.Peers.MergesApplied != 1 || health.Peers.MergesRejected != 1 {
		t.Fatalf("healthz peers = %+v", health.Peers)
	}
	if len(health.Peers.Sync) != 1 || health.Peers.Sync[0].Target != "http://peer-a" {
		t.Fatalf("healthz sync = %+v", health.Peers.Sync)
	}
	if len(health.Peers.Contributions) != 1 || health.Peers.Contributions[0].Origin != "analyzer-2" {
		t.Fatalf("healthz contributions = %+v", health.Peers.Contributions)
	}

	var stats struct {
		Role  string      `json:"role"`
		Peers *PeerHealth `json:"peers"`
	}
	getJSON(t, ts.URL+"/server/stats", &stats)
	if stats.Role != "analyzer" || stats.Peers == nil || stats.Peers.MergesApplied != 1 {
		t.Fatalf("server/stats role=%q peers=%+v", stats.Role, stats.Peers)
	}

	var peerStatus PeerHealth
	getJSON(t, ts.URL+"/peer/status", &peerStatus)
	if peerStatus.MergesApplied != 1 || len(peerStatus.Sync) != 1 {
		t.Fatalf("peer/status = %+v", peerStatus)
	}

	// No drift: the Prometheus families must quote the same counters the
	// JSON surfaces report.
	body, fams := scrape(t, ts)
	for name, want := range map[string]string{
		"p2b_peer_merges_applied_total":  "1",
		"p2b_peer_merges_rejected_total": "1",
		"p2b_peer_relay_batches_total":   "0",
		"p2b_peer_sync_pushes_total":     "3",
	} {
		if !fams[name] {
			t.Fatalf("family %s missing from /metrics:\n%s", name, body)
		}
		if !strings.Contains(body, fmt.Sprintf("%s %s", name, want)) {
			t.Fatalf("%s != %s in:\n%s", name, want, body)
		}
	}
	if !strings.Contains(body, "p2b_peer_sync_max_lag_seconds") {
		t.Fatalf("lag gauge missing:\n%s", body)
	}
}

func TestRelayHandlerEndToEnd(t *testing.T) {
	// Downstream analyzer.
	analyzerSrv, analyzerTS := newAnalyzer(t, "analyzer-1", "tok")

	// Relay: shuffler whose sink forwards to the analyzer.
	fwd, err := topology.NewForwarder(analyzerTS.URL, topology.ForwarderOptions{
		Origin: "relay-1", Token: "tok", RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, fwd, rng.New(3))
	reg := metrics.NewRegistry()
	relayTS := httptest.NewServer(NewRelayHandler(shuf, fwd, RelayOptions{
		Admission: NewAdmission(AdmissionConfig{MaxInFlight: 8}),
		Metrics:   reg,
		Shapes:    ModelShapes{K: 8, Arms: 4, D: 3},
	}))
	defer relayTS.Close()

	// Agents cannot tell a relay from a combined node: the same client
	// reports through the same shuffler surface.
	client := NewNodeClient(relayTS.URL)
	for i := 0; i < 8; i++ {
		if err := client.Report(transport.Envelope{Tuple: transport.Tuple{Code: i % 8, Action: i % 4, Reward: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := analyzerSrv.Stats(); st.TuplesIngested != 8 {
		t.Fatalf("analyzer ingested %d tuples, want 8", st.TuplesIngested)
	}

	// The relay's /healthz names its role, shapes and forward counters.
	var health RelayHealth
	getJSON(t, relayTS.URL+"/healthz", &health)
	if health.Role != "relay" || health.Status != "ok" {
		t.Fatalf("relay healthz = %+v", health)
	}
	if health.Model.K != 8 || health.Model.Arms != 4 || health.Model.D != 3 {
		t.Fatalf("relay shapes = %+v (agent preflights would fail)", health.Model)
	}
	if health.Downstream != analyzerTS.URL || health.Forward.Batches != 2 || health.Forward.Tuples != 8 {
		t.Fatalf("relay forward = %+v", health)
	}

	body, fams := scrape(t, relayTS)
	for _, name := range []string{
		"p2b_forward_batches_total",
		"p2b_forward_tuples_total",
		"p2b_forward_duplicates_total",
		"p2b_forward_dropped_total",
		"p2b_shuffler_received_total",
		"p2b_http_requests_total",
	} {
		if !fams[name] {
			t.Fatalf("relay metrics missing %s:\n%s", name, body)
		}
	}
	if !strings.Contains(body, "p2b_forward_tuples_total 8") {
		t.Fatalf("forward tuple counter drifted:\n%s", body)
	}
}

// getJSON fetches url and decodes the body.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
