// Client-side circuit breaking. When a node is down or melting, every
// request a device sends it costs a connection attempt, a timeout and a
// retry ladder — multiplied by the fleet. The breaker cuts that short:
// after a run of consecutive failures it opens and refuses requests
// locally; after a cooldown it lets exactly one probe through, and only a
// probe success closes it again. BatchingClient and agent.HTTPSource both
// accept a breaker; sharing one instance lets the report path and the
// model-sync path learn about an outage from each other's traffic.
package httpapi

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (wrapped) by operations refused locally
// because the circuit breaker is open.
var ErrBreakerOpen = errors.New("httpapi: circuit breaker open")

// BreakerState is the classic three-state machine.
type BreakerState int

const (
	// BreakerClosed: requests flow, consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused locally until the cooldown ends.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String names the state for logs and stats.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "breaker(?)"
	}
}

// BreakerConfig tunes a CircuitBreaker. The zero value selects defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the breaker
	// (default 5).
	FailureThreshold int
	// OpenFor is the cooldown before an open breaker admits a half-open
	// probe (default 5s).
	OpenFor time.Duration

	// now substitutes the clock in tests. Nil means time.Now.
	now func() time.Time
}

// BreakerStats counts a breaker's decisions.
type BreakerStats struct {
	State    string `json:"state"`
	Failures int    `json:"failures"` // consecutive failures in the current run
	Opens    int64  `json:"opens"`    // closed/half-open -> open transitions
	Rejected int64  `json:"rejected"` // requests refused locally
}

// CircuitBreaker is a concurrency-safe three-state breaker. A nil
// *CircuitBreaker admits everything, so wiring one in is always optional.
type CircuitBreaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    int64
	rejected int64
}

// NewCircuitBreaker returns a closed breaker with cfg's thresholds.
func NewCircuitBreaker(cfg BreakerConfig) *CircuitBreaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 5 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &CircuitBreaker{cfg: cfg}
}

// Allow reports whether a request may proceed now. Every true result MUST
// be matched by exactly one Record call with the request's outcome —
// half-open reserves the single probe slot on Allow, and only Record
// releases it.
func (cb *CircuitBreaker) Allow() bool {
	if cb == nil {
		return true
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	switch cb.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if cb.cfg.now().Sub(cb.openedAt) >= cb.cfg.OpenFor {
			cb.state = BreakerHalfOpen
			cb.probing = true
			return true
		}
		cb.rejected++
		return false
	default: // BreakerHalfOpen
		if cb.probing {
			cb.rejected++
			return false
		}
		cb.probing = true
		return true
	}
}

// Record feeds one request outcome into the state machine. Success closes
// the breaker and zeroes the failure run; failure re-opens a half-open
// breaker immediately and opens a closed one at the threshold.
func (cb *CircuitBreaker) Record(success bool) {
	if cb == nil {
		return
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	cb.probing = false
	if success {
		cb.state = BreakerClosed
		cb.failures = 0
		return
	}
	cb.failures++
	if cb.state == BreakerHalfOpen || (cb.state == BreakerClosed && cb.failures >= cb.cfg.FailureThreshold) {
		cb.state = BreakerOpen
		cb.openedAt = cb.cfg.now()
		cb.opens++
	}
}

// State returns the current state (re-deriving half-open from an expired
// cooldown is Allow's job; State reports the stored machine state).
func (cb *CircuitBreaker) State() BreakerState {
	if cb == nil {
		return BreakerClosed
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.state
}

// Stats snapshots the breaker's counters.
func (cb *CircuitBreaker) Stats() BreakerStats {
	if cb == nil {
		return BreakerStats{State: BreakerClosed.String()}
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return BreakerStats{
		State:    cb.state.String(),
		Failures: cb.failures,
		Opens:    cb.opens,
		Rejected: cb.rejected,
	}
}
