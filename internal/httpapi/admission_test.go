package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/transport"
)

// blockingIngestor parks every submission until released, simulating a
// node whose ingest path is saturated.
type blockingIngestor struct {
	entered chan struct{} // one send per submission that started
	release chan struct{} // closed to let them all finish
}

func (b *blockingIngestor) wait() {
	b.entered <- struct{}{}
	<-b.release
}

func (b *blockingIngestor) SubmitEnvelope(transport.Envelope) error { b.wait(); return nil }
func (b *blockingIngestor) SubmitTuples([]transport.Tuple) error    { b.wait(); return nil }
func (b *blockingIngestor) Flush() error                            { return nil }

func newAdmissionNode(t *testing.T, opts NodeOptions) (*httptest.Server, *shuffler.Shuffler) {
	t.Helper()
	srv := server.New(server.Config{K: 8, Arms: 2, D: 2, Alpha: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(1))
	ts := httptest.NewServer(NewNodeHandlerOpts(shuf, srv, opts))
	t.Cleanup(ts.Close)
	return ts, shuf
}

func postReport(t *testing.T, url string, code int) *http.Response {
	t.Helper()
	blob, _ := json.Marshal(transport.Envelope{Tuple: transport.Tuple{Code: code, Action: 1, Reward: 1}})
	resp, err := http.Post(url+"/shuffler/report", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// A burst beyond MaxInFlight is shed with 429 + Retry-After while the
// admitted request is still executing, and capacity frees once it
// finishes.
func TestAdmissionShedsOverInFlightCap(t *testing.T) {
	ing := &blockingIngestor{entered: make(chan struct{}, 8), release: make(chan struct{})}
	ts, _ := newAdmissionNode(t, NodeOptions{
		Ingest:    ing,
		Admission: NewAdmission(AdmissionConfig{MaxInFlight: 1, RetryAfter: 3 * 1e9}),
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postReport(t, ts.URL, 1) // occupies the single slot until release
	}()
	<-ing.entered

	resp := postReport(t, ts.URL, 2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("shed Retry-After = %q, want \"3\"", got)
	}

	close(ing.release)
	wg.Wait()
	if resp := postReport(t, ts.URL, 3); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-release request: status %d, want 202", resp.StatusCode)
	}
}

// A body whose declared length exceeds the in-flight bytes budget is shed
// at the door — the node never reads it.
func TestAdmissionShedsOverBytesCap(t *testing.T) {
	ts, _ := newAdmissionNode(t, NodeOptions{
		Admission: NewAdmission(AdmissionConfig{MaxInFlightBytes: 16}),
	})
	resp := postReport(t, ts.URL, 1) // the JSON envelope is well over 16 bytes
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget body: status %d, want 429", resp.StatusCode)
	}
	// The gate's counters are visible on every stats surface.
	var st ShufflerStats
	mustGetJSON(t, ts.URL+"/shuffler/stats", &st)
	if st.Overload == nil || st.Overload.Shed != 1 {
		t.Fatalf("shuffler stats overload = %+v, want shed=1", st.Overload)
	}
	var sst serverStatsPayload
	mustGetJSON(t, ts.URL+"/server/stats", &sst)
	if sst.Overload == nil || sst.Overload.Shed != 1 {
		t.Fatalf("server stats overload = %+v, want shed=1", sst.Overload)
	}
}

func mustGetJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// flakyIngestor fails until healed, then succeeds.
type flakyIngestor struct {
	mu     sync.Mutex
	broken bool
	ops    int
}

var errLogDown = errors.New("log down")

func (f *flakyIngestor) submit() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.broken {
		return errLogDown
	}
	return nil
}

func (f *flakyIngestor) SubmitEnvelope(transport.Envelope) error { return f.submit() }
func (f *flakyIngestor) SubmitTuples([]transport.Tuple) error    { return f.submit() }
func (f *flakyIngestor) Flush() error                            { return f.submit() }

func (f *flakyIngestor) setBroken(b bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.broken = b
}

// The degrade-to-memory policy keeps accepting reports when the durable
// log fails — into the shuffler, with the Degraded flag raised on
// /healthz — and clears the flag once the log recovers.
func TestWALDegradePolicyAcceptsAndFlags(t *testing.T) {
	ing := &flakyIngestor{broken: true}
	ts, shuf := newAdmissionNode(t, NodeOptions{Ingest: ing, WALPolicy: WALDegrade})

	if resp := postReport(t, ts.URL, 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("degraded report: status %d, want 202", resp.StatusCode)
	}
	if got := shuf.Stats().Received; got != 1 {
		t.Fatalf("shuffler received %d tuples, want the degraded report to land in memory", got)
	}

	h, err := NewNodeClient(ts.URL).FetchHealth()
	if err != nil {
		t.Fatalf("FetchHealth on a degraded node: %v (degraded must read as alive)", err)
	}
	if h.Status != "degraded" {
		t.Fatalf("health status %q, want degraded", h.Status)
	}
	if h.Overload == nil || !h.Overload.Degraded || h.Overload.DegradedOps != 1 {
		t.Fatalf("health overload = %+v, want degraded with 1 degraded op", h.Overload)
	}

	// The log recovers: the next report is durable and the flag clears.
	ing.setBroken(false)
	if resp := postReport(t, ts.URL, 2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("recovered report: status %d, want 202", resp.StatusCode)
	}
	h, err = NewNodeClient(ts.URL).FetchHealth()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Overload == nil || h.Overload.Degraded {
		t.Fatalf("health after recovery = %q %+v, want ok with the flag down", h.Status, h.Overload)
	}
	// Lifetime counter keeps the incident visible after recovery.
	if h.Overload.DegradedOps != 1 {
		t.Fatalf("degraded_ops = %d after recovery, want the historical 1", h.Overload.DegradedOps)
	}
}

// Under fail-closed (the default) the same failure refuses the report.
func TestWALFailClosedRefuses(t *testing.T) {
	ing := &flakyIngestor{broken: true}
	ts, shuf := newAdmissionNode(t, NodeOptions{Ingest: ing})
	resp := postReport(t, ts.URL, 1)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fail-closed report: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fail-closed 503 carries no Retry-After")
	}
	if got := shuf.Stats().Received; got != 0 {
		t.Fatalf("shuffler received %d tuples under fail-closed, want 0", got)
	}
}

func TestParseWALPolicy(t *testing.T) {
	if p, err := ParseWALPolicy("fail-closed"); err != nil || p != WALFailClosed {
		t.Fatalf("fail-closed = %v, %v", p, err)
	}
	if p, err := ParseWALPolicy(""); err != nil || p != WALFailClosed {
		t.Fatalf("empty = %v, %v", p, err)
	}
	if p, err := ParseWALPolicy("degrade"); err != nil || p != WALDegrade {
		t.Fatalf("degrade = %v, %v", p, err)
	}
	if _, err := ParseWALPolicy("yolo"); err == nil {
		t.Fatal("garbage policy accepted")
	}
}

// slowIngestor holds the admission slot for a while before landing the
// tuples in the shuffler — enough service time for a concurrent burst to
// overrun a MaxInFlight cap.
type slowIngestor struct {
	shuf  *shuffler.Shuffler
	delay time.Duration
}

func (s slowIngestor) SubmitEnvelope(e transport.Envelope) error {
	time.Sleep(s.delay)
	s.shuf.Submit(e)
	return nil
}

func (s slowIngestor) SubmitTuples(ts []transport.Tuple) error {
	time.Sleep(s.delay)
	s.shuf.SubmitTuples(ts)
	return nil
}

func (s slowIngestor) Flush() error { s.shuf.Flush(); return nil }

// The overload acceptance bar end to end: a burst beyond the admission
// cap is shed with 429 + Retry-After, and the SDK's retry machinery
// redelivers every shed batch — eventual full delivery, no silent drops.
func TestLoadBurstShedIsRetriedToFullDelivery(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 2, D: 2, Alpha: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 64, Threshold: 0}, srv, rng.New(1))
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, RetryAfter: time.Second})
	ts := httptest.NewServer(NewNodeHandlerOpts(shuf, srv, NodeOptions{
		Ingest:    slowIngestor{shuf: shuf, delay: 3 * time.Millisecond},
		Admission: adm,
	}))
	defer ts.Close()

	bc := NewBatchingClient(NewNodeClient(ts.URL), BatchingConfig{
		MaxBatch: 1, MaxAge: time.Hour, MaxInFlight: 4,
		MaxRetries: 50, RetryBase: time.Millisecond,
		MaxRetryDelay: 5 * time.Millisecond, // cap the node's 1s Retry-After hint
	})
	const reports = 24
	for i := 0; i < reports; i++ {
		if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: i % 8, Action: i % 2, Reward: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	// Flush, not Close: Close collapses backoff sleeps, which would burn
	// the whole retry budget into a still-occupied slot in microseconds.
	if err := bc.Flush(); err != nil {
		t.Fatalf("burst did not fully deliver: %v", err)
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}

	if got := shuf.Stats().Received; got != reports {
		t.Fatalf("shuffler received %d tuples, want all %d", got, reports)
	}
	ost := adm.Stats()
	if ost.Shed == 0 {
		t.Fatalf("no request was shed (overload stats %+v) — the burst never hit the cap", ost)
	}
	st := bc.Stats()
	if st.Retries == 0 || st.DroppedBatches != 0 || st.DroppedReports != 0 {
		t.Fatalf("client stats %+v, want shed batches retried and none dropped", st)
	}
}

// The pending-buffer occupancy rides on the shuffler stats route: it is
// the queue-depth signal an operator tunes admission caps against.
func TestShufflerStatsReportsPending(t *testing.T) {
	ts, _ := newAdmissionNode(t, NodeOptions{})
	for i := 0; i < 3; i++ {
		if resp := postReport(t, ts.URL, i); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("report %d: status %d", i, resp.StatusCode)
		}
	}
	var st ShufflerStats
	mustGetJSON(t, ts.URL+"/shuffler/stats", &st)
	if st.Pending != 3 {
		t.Fatalf("pending = %d, want the 3 buffered tuples", st.Pending)
	}
	if st.Overload != nil {
		t.Fatalf("unbounded node reports overload section %+v", st.Overload)
	}
}
