package httpapi

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/transport"
)

func postBatch(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/reports", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func encodeBatch(envs []transport.Envelope) []byte {
	body := transport.AppendMagic(nil)
	for i := range envs {
		body = envs[i].AppendFrame(body)
	}
	return body
}

func TestBatchRouteBinary(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	envs := make([]transport.Envelope, 10)
	for i := range envs {
		envs[i] = transport.Envelope{
			Meta:  transport.Metadata{DeviceID: fmt.Sprintf("dev-%d", i), SentAt: int64(i)},
			Tuple: transport.Tuple{Code: 2, Action: 1, Reward: 1},
		}
	}
	ack, err := client.ReportBatch(envs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 10 || ack.Dropped != 0 {
		t.Fatalf("ack %+v", ack)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.TuplesIngested != 10 {
		t.Fatalf("server ingested %d, want 10", st.TuplesIngested)
	}
}

func TestBatchRouteNDJSON(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	var body strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&body, `{"meta":{"device_id":"d%d","addr":"","sent_at":1},"tuple":{"code":3,"action":2,"reward":0.5}}`+"\n", i)
	}
	resp := postBatch(t, client.ShufflerURL, transport.ContentTypeNDJSON, []byte(body.String()))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.TuplesIngested != 6 {
		t.Fatalf("server ingested %d, want 6", st.TuplesIngested)
	}
}

func TestBatchRouteUnsupportedContentType(t *testing.T) {
	client, _, _, cleanup := newStack(t, 0)
	defer cleanup()
	resp := postBatch(t, client.ShufflerURL, "text/plain", []byte("hello"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415", resp.StatusCode)
	}
}

func TestBatchRouteMethodNotAllowed(t *testing.T) {
	client, _, _, cleanup := newStack(t, 0)
	defer cleanup()
	resp, err := http.Get(client.ShufflerURL + "/reports")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

func TestBatchRouteBadMagic(t *testing.T) {
	client, _, _, cleanup := newStack(t, 0)
	defer cleanup()
	resp := postBatch(t, client.ShufflerURL, transport.ContentTypeBinary, []byte("not a p2b stream"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestBatchRouteTruncatedFrameKeepsEarlierChunks(t *testing.T) {
	client, _, shuf, cleanup := newStack(t, 0)
	defer cleanup()
	good := encodeBatch([]transport.Envelope{
		{Tuple: transport.Tuple{Code: 1, Action: 0, Reward: 1}},
		{Tuple: transport.Tuple{Code: 2, Action: 0, Reward: 1}},
	})
	body := append(good, 0x20) // a frame length prefix with no frame behind it
	resp := postBatch(t, client.ShufflerURL, transport.ContentTypeBinary, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	msg, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(msg), "after 2 accepted") {
		t.Fatalf("error should report accepted count, got: %s", msg)
	}
	if st := shuf.Stats(); st.Received != 2 {
		t.Fatalf("shuffler received %d, want the 2 pre-truncation tuples", st.Received)
	}
}

func TestBatchRouteMalformedNDJSON(t *testing.T) {
	client, _, _, cleanup := newStack(t, 0)
	defer cleanup()
	body := `{"tuple":{"code":1,"action":0,"reward":1}}` + "\n" + `{not json` + "\n"
	resp := postBatch(t, client.ShufflerURL, transport.ContentTypeNDJSON, []byte(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestBatchRouteDropsInvalidTuples(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	envs := []transport.Envelope{
		{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: math.NaN()}},
		{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: math.Inf(1)}},
		{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: math.Inf(-1)}},
		{Tuple: transport.Tuple{Code: -1, Action: 1, Reward: 0.5}},
		{Tuple: transport.Tuple{Code: 1, Action: -3, Reward: 0.5}},
		{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 0.5}}, // the one good citizen
	}
	ack, err := client.ReportBatch(envs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 1 || ack.Dropped != 5 {
		t.Fatalf("ack %+v, want 1 accepted / 5 dropped", ack)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.TuplesIngested != 1 {
		t.Fatalf("server ingested %d, want 1", st.TuplesIngested)
	}
}

func TestOversizedBodiesGet413(t *testing.T) {
	client, _, _, cleanup := newStack(t, 0)
	defer cleanup()

	// Single-report route: 1 MiB limit.
	huge := []byte(`{"meta":{"device_id":"` + strings.Repeat("x", maxBodyBytes+16) + `"}}`)
	resp, err := http.Post(client.ShufflerURL+"/report", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("/report status %d, want 413", resp.StatusCode)
	}

	// Batch route: 32 MiB limit. A valid stream prefix followed by enough
	// bytes to cross the cap; the decoder must fail on the reader limit,
	// not by buffering the body.
	body := encodeBatch([]transport.Envelope{{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}})
	filler := encodeBatch([]transport.Envelope{{
		Meta:  transport.Metadata{DeviceID: strings.Repeat("f", 1024)},
		Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1},
	}})[len(transport.Magic):]
	for len(body) <= maxBatchBodyBytes {
		body = append(body, filler...)
	}
	resp2 := postBatch(t, client.ShufflerURL, transport.ContentTypeBinary, body)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		msg, _ := io.ReadAll(resp2.Body)
		t.Fatalf("/reports status %d, want 413: %s", resp2.StatusCode, msg)
	}
}

func TestBatchingClientSizeTrigger(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	bc := NewBatchingClient(client, BatchingConfig{MaxBatch: 4, MaxAge: time.Hour})
	for i := 0; i < 8; i++ {
		if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	st := bc.Stats()
	if st.Reported != 8 || st.Batches != 2 || st.DroppedReports != 0 {
		t.Fatalf("stats %+v", st)
	}
	if sst := srv.Stats(); sst.TuplesIngested != 8 {
		t.Fatalf("server ingested %d, want 8", sst.TuplesIngested)
	}
}

func TestBatchingClientAgeTrigger(t *testing.T) {
	client, _, shuf, cleanup := newStack(t, 0)
	defer cleanup()
	bc := NewBatchingClient(client, BatchingConfig{MaxBatch: 1 << 20, MaxAge: 20 * time.Millisecond})
	defer bc.Close()
	if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for shuf.Stats().Received == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age trigger never flushed the batch")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBatchingClientNDJSONMode(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	bc := NewBatchingClient(client, BatchingConfig{MaxBatch: 3, MaxAge: time.Hour, NDJSON: true})
	for i := 0; i < 6; i++ {
		if err := bc.Report(transport.Envelope{
			Meta:  transport.Metadata{DeviceID: "dev", SentAt: 1},
			Tuple: transport.Tuple{Code: 2, Action: 0, Reward: 0.5},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.TuplesIngested != 6 {
		t.Fatalf("server ingested %d, want 6", st.TuplesIngested)
	}
}

func TestBatchingClientRetriesTransientFailures(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(2))
	inner := NewShufflerHandler(shuf)
	var failures atomic.Int32
	failures.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/reports" && failures.Add(-1) >= 0 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	client := NewClient(ts.URL, "")
	bc := NewBatchingClient(client, BatchingConfig{
		MaxBatch: 4, MaxAge: time.Hour, MaxRetries: 5, RetryBase: time.Millisecond,
	})
	for i := 0; i < 4; i++ {
		if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatalf("close after transient failures: %v", err)
	}
	st := bc.Stats()
	if st.Batches != 1 || st.Retries < 2 || st.DroppedBatches != 0 {
		t.Fatalf("stats %+v", st)
	}
	if sst := shuf.Stats(); sst.Received != 4 {
		t.Fatalf("shuffler received %d, want 4", sst.Received)
	}
}

func TestBatchingClientPermanentFailureIsSticky(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer ts.Close()
	client := NewClient(ts.URL, "")
	bc := NewBatchingClient(client, BatchingConfig{MaxBatch: 2, MaxAge: time.Hour, RetryBase: time.Millisecond})
	for i := 0; i < 2; i++ {
		_ = bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}})
	}
	err := bc.Close()
	if err == nil || !strings.Contains(err.Error(), "permanent status 400") {
		t.Fatalf("want sticky permanent error, got %v", err)
	}
	st := bc.Stats()
	if st.DroppedBatches != 1 || st.DroppedReports != 2 || st.Retries != 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := bc.Report(transport.Envelope{}); err != ErrClientClosed {
		t.Fatalf("report after close: %v", err)
	}
}

func TestBatchRouteMatchesPerEnvelopeRouteBitExactly(t *testing.T) {
	// The acceptance bar of the wire protocol: the same tuple stream
	// submitted per-envelope and batched must yield bit-identical server
	// state, and no metadata may survive to any server-side surface.
	const n, batchSize, threshold = 200, 16, 3
	r := rng.New(13)
	tuples := make([]transport.Tuple, n)
	for i := range tuples {
		tuples[i] = transport.Tuple{Code: r.IntN(6), Action: r.IntN(4), Reward: r.Float64()}
	}
	newNode := func() (*server.Server, *httptest.Server) {
		srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
		shuf := shuffler.New(shuffler.Config{BatchSize: batchSize, Threshold: threshold}, srv, rng.New(99))
		return srv, httptest.NewServer(NewNodeHandler(shuf, srv))
	}

	srvA, tsA := newNode()
	defer tsA.Close()
	clientA := NewNodeClient(tsA.URL)
	for i, tup := range tuples {
		err := clientA.Report(transport.Envelope{
			Meta:  transport.Metadata{DeviceID: fmt.Sprintf("SECRET-DEVICE-%d", i), SentAt: 7},
			Tuple: tup,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := clientA.Flush(); err != nil {
		t.Fatal(err)
	}

	srvB, tsB := newNode()
	defer tsB.Close()
	clientB := NewNodeClient(tsB.URL)
	// MaxInFlight 1 with serial Reports preserves submission order, which
	// is what makes the comparison bit-exact rather than merely additive.
	bc := NewBatchingClient(clientB, BatchingConfig{MaxBatch: 32, MaxAge: time.Hour, MaxInFlight: 1})
	for i, tup := range tuples {
		err := bc.Report(transport.Envelope{
			Meta:  transport.Metadata{DeviceID: fmt.Sprintf("SECRET-DEVICE-%d", i), SentAt: 7},
			Tuple: tup,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := clientB.Flush(); err != nil {
		t.Fatal(err)
	}

	stateA, stateB := srvA.TabularSnapshot(), srvB.TabularSnapshot()
	if !reflect.DeepEqual(stateA, stateB) {
		t.Fatalf("server states diverged:\nA: %+v\nB: %+v", stateA, stateB)
	}
	if srvA.Stats().TuplesIngested != srvB.Stats().TuplesIngested {
		t.Fatalf("ingestion counts diverged: %d vs %d",
			srvA.Stats().TuplesIngested, srvB.Stats().TuplesIngested)
	}

	// Metadata scrubbing: no server-side surface may leak a device ID.
	for _, path := range []string{"/server/model/tabular", "/server/stats", "/shuffler/stats"} {
		resp, err := http.Get(tsB.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(blob), "SECRET") {
			t.Fatalf("%s leaks sender metadata: %s", path, blob)
		}
	}
}

// BenchmarkIngestBinary measures the server-side decode+submit path in
// isolation (no HTTP): the per-envelope cost the batch route adds on top
// of the shuffler itself.
func BenchmarkIngestBinary(b *testing.B) {
	srv := server.New(server.Config{K: 64, Arms: 8, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 256, Threshold: 0}, srv, rng.New(2))
	envs := make([]transport.Envelope, 1024)
	r := rng.New(3)
	for i := range envs {
		envs[i] = transport.Envelope{
			Meta:  transport.Metadata{DeviceID: "device-123456", Addr: "10.1.2.3:99", SentAt: 1},
			Tuple: transport.Tuple{Code: r.IntN(64), Action: r.IntN(8), Reward: r.Float64()},
		}
	}
	body := encodeBatch(envs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ack, err := ingestBinary(shufflerIngestor{shuf}, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if ack.Accepted != len(envs) {
			b.Fatalf("ack %+v", ack)
		}
	}
	b.SetBytes(int64(len(body)))
}

func TestReportRouteRejectsInvalidTuple(t *testing.T) {
	// The single-envelope route applies the same admission policy as the
	// batch route: a tuple either enters the shuffler on both or neither.
	client, _, shuf, cleanup := newStack(t, 0)
	defer cleanup()
	err := client.Report(transport.Envelope{Tuple: transport.Tuple{Code: -1, Action: 0, Reward: 1}})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("negative code not rejected: %v", err)
	}
	if st := shuf.Stats(); st.Received != 0 {
		t.Fatalf("invalid tuple reached the shuffler: %+v", st)
	}
}

func TestBatchingClientRejectsOversizedEnvelope(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	bc := NewBatchingClient(client, BatchingConfig{MaxBatch: 2, MaxAge: time.Hour})
	huge := transport.Envelope{
		Meta:  transport.Metadata{DeviceID: strings.Repeat("x", transport.MaxFrameBytes)},
		Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1},
	}
	if err := bc.Report(huge); err == nil || !strings.Contains(err.Error(), "transport limit") {
		t.Fatalf("oversized envelope accepted: %v", err)
	}
	// The rejection must not poison the open batch: valid reports flow on.
	for i := 0; i < 2; i++ {
		if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.TuplesIngested != 2 {
		t.Fatalf("server ingested %d, want 2", st.TuplesIngested)
	}
	if _, err := client.ReportBatch([]transport.Envelope{huge}); err == nil {
		t.Fatal("ReportBatch accepted an oversized envelope")
	}
}

func TestBatchingClientNDJSONRejectsNonFiniteReward(t *testing.T) {
	client, _, _, cleanup := newStack(t, 0)
	defer cleanup()
	bc := NewBatchingClient(client, BatchingConfig{MaxBatch: 4, MaxAge: time.Hour, NDJSON: true})
	defer bc.Close()
	err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: math.NaN()}})
	if err == nil || !strings.Contains(err.Error(), "not representable") {
		t.Fatalf("NaN reward in NDJSON mode: %v", err)
	}
}
