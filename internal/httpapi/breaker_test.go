package httpapi

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/transport"
)

// The full closed -> open -> half-open -> closed walk, on a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	cb := NewCircuitBreaker(BreakerConfig{
		FailureThreshold: 2,
		OpenFor:          time.Minute,
		now:              func() time.Time { return now },
	})

	if !cb.Allow() {
		t.Fatal("fresh breaker refused a request")
	}
	cb.Record(false)
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("state after 1 failure = %v, want closed (threshold is 2)", got)
	}
	if !cb.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	cb.Record(false)
	if got := cb.State(); got != BreakerOpen {
		t.Fatalf("state after 2 failures = %v, want open", got)
	}

	// Open: refused until the cooldown elapses.
	if cb.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	now = now.Add(59 * time.Second)
	if cb.Allow() {
		t.Fatal("open breaker admitted a request 1s before the cooldown ends")
	}
	now = now.Add(time.Second)

	// Cooldown over: exactly one probe goes through.
	if !cb.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if got := cb.State(); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if cb.Allow() {
		t.Fatal("half-open breaker admitted a second request while the probe is in flight")
	}

	// Probe fails: re-open immediately, new cooldown from now.
	cb.Record(false)
	if got := cb.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if cb.Allow() {
		t.Fatal("re-opened breaker admitted a request without a new cooldown")
	}

	// Second probe succeeds: closed, failure run zeroed.
	now = now.Add(time.Minute)
	if !cb.Allow() {
		t.Fatal("second probe refused")
	}
	cb.Record(true)
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	st := cb.Stats()
	if st.Failures != 0 || st.Opens != 2 || st.Rejected != 4 {
		t.Fatalf("stats = %+v, want failures=0 opens=2 rejected=4", st)
	}
}

// A nil breaker is a no-op: everything is admitted, nothing panics.
func TestBreakerNilIsNoop(t *testing.T) {
	var cb *CircuitBreaker
	if !cb.Allow() {
		t.Fatal("nil breaker refused a request")
	}
	cb.Record(false)
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("nil breaker state = %v, want closed", got)
	}
	if st := cb.Stats(); st.State != "closed" {
		t.Fatalf("nil breaker stats = %+v", st)
	}
}

func TestRetryableStatus(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   bool
	}{
		{http.StatusTooManyRequests, true},
		{http.StatusRequestTimeout, true},
		{http.StatusInternalServerError, true},
		{http.StatusServiceUnavailable, true},
		{http.StatusBadRequest, false},
		{http.StatusNotFound, false},
		{http.StatusRequestEntityTooLarge, false},
		{http.StatusAccepted, false},
	} {
		if got := retryableStatus(tc.status); got != tc.want {
			t.Errorf("retryableStatus(%d) = %v, want %v", tc.status, got, tc.want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	if got := parseRetryAfter(""); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if got := parseRetryAfter("7"); got != 7*time.Second {
		t.Errorf("\"7\" = %v, want 7s", got)
	}
	if got := parseRetryAfter("-3"); got != 0 {
		t.Errorf("negative seconds = %v, want 0", got)
	}
	if got := parseRetryAfter("soon"); got != 0 {
		t.Errorf("garbage = %v, want 0", got)
	}
	// HTTP-date form: a date in the future yields a positive delay, one in
	// the past yields zero.
	future := time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got < 59*time.Minute || got > time.Hour {
		t.Errorf("future date = %v, want ~1h", got)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Errorf("past date = %v, want 0", got)
	}
}

// A shed batch (429 + Retry-After) is retried — adopting the server's
// hint as the backoff base, capped by MaxRetryDelay — and delivered in
// full once the node admits it.
func TestBatchingClientRetries429HonoringRetryAfter(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(2))
	inner := NewShufflerHandler(shuf)
	var sheds atomic.Int32
	sheds.Store(1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/reports" && sheds.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "1") // way beyond the client's cap
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	bc := NewBatchingClient(NewClient(ts.URL, ""), BatchingConfig{
		MaxBatch: 4, MaxAge: time.Hour, MaxRetries: 3,
		RetryBase: time.Millisecond, MaxRetryDelay: 20 * time.Millisecond,
	})
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	// Flush, not Close: Close collapses backoff sleeps, which is exactly
	// the wait this test needs to observe.
	if err := bc.Flush(); err != nil {
		t.Fatalf("flush after a shed batch: %v", err)
	}
	elapsed := time.Since(start)
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	// The adopted 1s hint is jittered to >= 500ms and then capped at 20ms:
	// the wait is observable but bounded.
	if elapsed < 10*time.Millisecond {
		t.Fatalf("delivered in %v — the Retry-After hint was not honored", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("delivery took %v — MaxRetryDelay did not cap the 1s hint", elapsed)
	}
	st := bc.Stats()
	if st.Batches != 1 || st.Retries != 1 || st.DroppedBatches != 0 {
		t.Fatalf("stats %+v, want 1 batch delivered on 1 retry", st)
	}
	if got := shuf.Stats().Received; got != 4 {
		t.Fatalf("shuffler received %d, want all 4 shed-then-retried reports", got)
	}
}

// Close collapses backoff: a client stuck in a long retry ladder against
// a dead node drains in attempt time, not accumulated sleep time.
func TestBatchingClientCloseCollapsesBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	bc := NewBatchingClient(NewClient(ts.URL, ""), BatchingConfig{
		MaxBatch: 1, MaxAge: time.Hour, MaxRetries: 3, RetryBase: 10 * time.Second,
	})
	if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := bc.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close took %v against a 10s retry base — backoff was not collapsed", elapsed)
	}
	if err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Fatalf("close error = %v, want the sticky 503", err)
	}
	if st := bc.Stats(); st.DroppedBatches != 1 || st.Retries != 3 {
		t.Fatalf("stats %+v, want the full attempt budget spent", st)
	}
}

// An open breaker fails sends fast and locally: the node sees zero
// requests, and the abandonment error says why.
func TestBatchingClientBreakerFailsFast(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	cb := NewCircuitBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour})
	cb.Record(false) // the model-sync path already learned the node is down

	bc := NewBatchingClient(NewClient(ts.URL, ""), BatchingConfig{
		MaxBatch: 1, MaxAge: time.Hour, MaxRetries: 2,
		RetryBase: time.Millisecond, Breaker: cb,
	})
	if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}); err != nil {
		t.Fatal(err)
	}
	err := bc.Close()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("close error = %v, want ErrBreakerOpen", err)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("node saw %d requests through an open breaker, want 0", got)
	}
	if st := bc.Stats(); st.DroppedBatches != 1 || st.DroppedReports != 1 {
		t.Fatalf("stats %+v, want the batch abandoned", st)
	}
}

// Consecutive send failures open the shared breaker, and a probe after
// the cooldown closes it again — end to end through the batching client.
func TestBatchingClientBreakerOpensAndRecovers(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(2))
	inner := NewShufflerHandler(shuf)
	var failures atomic.Int32
	failures.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/reports" && failures.Add(-1) >= 0 {
			http.Error(w, "melting", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	cb := NewCircuitBreaker(BreakerConfig{FailureThreshold: 2, OpenFor: 20 * time.Millisecond})
	bc := NewBatchingClient(NewClient(ts.URL, ""), BatchingConfig{
		MaxBatch: 1, MaxAge: time.Hour, MaxRetries: 8,
		RetryBase: 30 * time.Millisecond, Breaker: cb,
	})
	if err := bc.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}}); err != nil {
		t.Fatal(err)
	}
	// Flush keeps the backoff sleeps alive (Close would collapse them and
	// the cooldown could never elapse between attempts).
	if err := bc.Flush(); err != nil {
		t.Fatalf("flush: %v (breaker never recovered)", err)
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", got)
	}
	if st := cb.Stats(); st.Opens != 1 {
		t.Fatalf("breaker stats %+v, want exactly 1 open episode", st)
	}
	if got := shuf.Stats().Received; got != 1 {
		t.Fatalf("shuffler received %d, want the recovered report", got)
	}
}
