package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"p2b/internal/server"
	"p2b/internal/transport"
)

func modelStack(t *testing.T) (*Client, *server.Server, func()) {
	t.Helper()
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	ts := httptest.NewServer(NewServerHandler(srv))
	client := NewClient("", ts.URL)
	return client, srv, ts.Close
}

func deliver(srv *server.Server, n int) {
	batch := make([]transport.Tuple, n)
	for i := range batch {
		batch[i] = transport.Tuple{Code: i % 8, Action: i % 4, Reward: 1}
	}
	srv.Deliver(batch)
}

func TestModelETagRoundTrip(t *testing.T) {
	client, srv, cleanup := modelStack(t)
	defer cleanup()
	deliver(srv, 5)

	first, err := client.FetchModel(ModelKindTabular, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if first.NotModified || first.Tabular == nil {
		t.Fatalf("first fetch should carry a model: %+v", first)
	}
	if first.ETag == "" {
		t.Fatal("no ETag on model response")
	}
	if first.Version != srv.ModelVersion() {
		t.Fatalf("fetched version %d, server at %d", first.Version, srv.ModelVersion())
	}

	// Unchanged model: the conditional fetch must come back 304 with no body.
	again, err := client.FetchModel(ModelKindTabular, first.ETag, true)
	if err != nil {
		t.Fatal(err)
	}
	if !again.NotModified || again.Tabular != nil {
		t.Fatalf("unchanged model not answered with 304: %+v", again)
	}

	// Ingestion bumps the version: the same ETag must now miss.
	deliver(srv, 3)
	refreshed, err := client.FetchModel(ModelKindTabular, first.ETag, true)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.NotModified {
		t.Fatal("stale ETag served 304 after ingestion")
	}
	if refreshed.Version <= first.Version {
		t.Fatalf("version did not advance: %d -> %d", first.Version, refreshed.Version)
	}
	if refreshed.ETag == first.ETag {
		t.Fatal("ETag unchanged across a model mutation")
	}
}

func TestModelVersionBumpsOnIngest(t *testing.T) {
	_, srv, cleanup := modelStack(t)
	defer cleanup()
	v0 := srv.ModelVersion()
	deliver(srv, 1)
	v1 := srv.ModelVersion()
	if v1 <= v0 {
		t.Fatalf("Deliver did not bump the version: %d -> %d", v0, v1)
	}
	if err := srv.IngestRaw(transport.RawTuple{Context: []float64{1, 0, 0}, Action: 0, Reward: 1}); err != nil {
		t.Fatal(err)
	}
	if v2 := srv.ModelVersion(); v2 <= v1 {
		t.Fatalf("IngestRaw did not bump the version: %d -> %d", v1, v2)
	}
}

func TestModelContentNegotiation(t *testing.T) {
	client, srv, cleanup := modelStack(t)
	defer cleanup()
	deliver(srv, 4)

	get := func(accept string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, client.ServerURL+"/model?kind=tabular", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Binary when asked for, with a decodable P2BM body.
	resp := get(transport.ContentTypeModel)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != transport.ContentTypeModel {
		t.Fatalf("binary Accept answered with %q", ct)
	}
	version, tab, _, err := transport.DecodeModel(body)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil || tab.K != 8 || tab.Arms != 4 {
		t.Fatalf("binary body decoded to %+v", tab)
	}
	if version != srv.ModelVersion() {
		t.Fatalf("binary version %d, server at %d", version, srv.ModelVersion())
	}

	// JSON for everyone else: clients that send no Accept at all, and
	// clients that explicitly refuse the binary type with q=0 (RFC 9110:
	// q=0 means "not acceptable").
	for _, accept := range []string{
		"", "application/json", "text/html, */*",
		"application/json, application/x-p2b-model;q=0",
		"application/x-p2b-model;q=0.0",
	} {
		resp := get(accept)
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("Accept %q answered with %q", accept, ct)
		}
		if !strings.Contains(string(blob), `"count"`) {
			t.Fatalf("Accept %q body does not look like a tabular state: %s", accept, blob[:min(64, len(blob))])
		}
	}

	// A strong ETag names one exact representation: the two encodings must
	// carry distinct tags (and Vary: Accept) so a shared cache can never
	// serve P2BM bytes to a JSON client or vice versa.
	bin, json := get(transport.ContentTypeModel), get("application/json")
	bin.Body.Close()
	json.Body.Close()
	if bin.Header.Get("ETag") == json.Header.Get("ETag") {
		t.Fatal("binary and JSON representations share a strong ETag")
	}
	for _, resp := range []*http.Response{bin, json} {
		if resp.Header.Get("Vary") != "Accept" {
			t.Fatal("model route does not declare Vary: Accept")
		}
	}
	// A JSON client revalidating with the binary representation's tag must
	// get a payload, not a 304.
	req, err := http.NewRequest(http.MethodGet, client.ServerURL+"/model?kind=tabular", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	req.Header.Set("If-None-Match", bin.Header.Get("ETag"))
	cross, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cross.Body.Close()
	if cross.StatusCode == http.StatusNotModified {
		t.Fatal("cross-representation ETag validated as a match")
	}
}

func TestModelKindsAndErrors(t *testing.T) {
	client, srv, cleanup := modelStack(t)
	defer cleanup()
	deliver(srv, 4)

	// linucb kind serves a linear model.
	lin, err := client.FetchModel(ModelKindLinUCB, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Linear == nil || lin.Linear.D != 3 {
		t.Fatalf("linucb kind returned %+v", lin)
	}
	// No decoder configured: centroid is 404.
	if _, err := client.FetchModel(ModelKindCentroid, "", true); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("centroid on a decoder-less node: %v", err)
	}
	// Unknown kind is 400.
	if _, err := client.FetchModel("bogus", "", true); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown kind: %v", err)
	}
}

func TestModelRoutesRejectNonGET(t *testing.T) {
	client, _, cleanup := modelStack(t)
	defer cleanup()
	for _, path := range []string{"/model", "/model/tabular", "/model/linucb", "/stats"} {
		resp, err := http.Post(client.ServerURL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s answered %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestETagMatching(t *testing.T) {
	etag := modelETag("tabular", 0xabc, 9, true)
	cases := []struct {
		header string
		want   bool
	}{
		{etag, true},
		{"*", true},
		{`"other", ` + etag, true},
		{"W/" + etag, true},
		{`"p2b-tabular-eabc-v8-bin"`, false},
		{modelETag("tabular", 0xabc, 9, false), false}, // other representation
		{modelETag("tabular", 0xdef, 9, true), false},  // other boot epoch
		{"", false},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, etag); got != c.want {
			t.Fatalf("etagMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
