package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/transport"
)

func modelStack(t *testing.T) (*Client, *server.Server, func()) {
	t.Helper()
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	ts := httptest.NewServer(NewServerHandler(srv))
	client := NewClient("", ts.URL)
	return client, srv, ts.Close
}

func deliver(srv *server.Server, n int) {
	batch := make([]transport.Tuple, n)
	for i := range batch {
		batch[i] = transport.Tuple{Code: i % 8, Action: i % 4, Reward: 1}
	}
	srv.Deliver(batch)
}

func TestModelETagRoundTrip(t *testing.T) {
	client, srv, cleanup := modelStack(t)
	defer cleanup()
	deliver(srv, 5)

	first, err := client.FetchModel(ModelKindTabular, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if first.NotModified || first.Tabular == nil {
		t.Fatalf("first fetch should carry a model: %+v", first)
	}
	if first.ETag == "" {
		t.Fatal("no ETag on model response")
	}
	if first.Version != srv.ModelVersion() {
		t.Fatalf("fetched version %d, server at %d", first.Version, srv.ModelVersion())
	}

	// Unchanged model: the conditional fetch must come back 304 with no body.
	again, err := client.FetchModel(ModelKindTabular, first.ETag, true)
	if err != nil {
		t.Fatal(err)
	}
	if !again.NotModified || again.Tabular != nil {
		t.Fatalf("unchanged model not answered with 304: %+v", again)
	}

	// Ingestion bumps the version: the same ETag must now miss.
	deliver(srv, 3)
	refreshed, err := client.FetchModel(ModelKindTabular, first.ETag, true)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.NotModified {
		t.Fatal("stale ETag served 304 after ingestion")
	}
	if refreshed.Version <= first.Version {
		t.Fatalf("version did not advance: %d -> %d", first.Version, refreshed.Version)
	}
	if refreshed.ETag == first.ETag {
		t.Fatal("ETag unchanged across a model mutation")
	}
}

func TestModelVersionBumpsOnIngest(t *testing.T) {
	_, srv, cleanup := modelStack(t)
	defer cleanup()
	v0 := srv.ModelVersion()
	deliver(srv, 1)
	v1 := srv.ModelVersion()
	if v1 <= v0 {
		t.Fatalf("Deliver did not bump the version: %d -> %d", v0, v1)
	}
	if err := srv.IngestRaw(transport.RawTuple{Context: []float64{1, 0, 0}, Action: 0, Reward: 1}); err != nil {
		t.Fatal(err)
	}
	if v2 := srv.ModelVersion(); v2 <= v1 {
		t.Fatalf("IngestRaw did not bump the version: %d -> %d", v1, v2)
	}
}

func TestModelContentNegotiation(t *testing.T) {
	client, srv, cleanup := modelStack(t)
	defer cleanup()
	deliver(srv, 4)

	get := func(accept string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, client.ServerURL+"/model?kind=tabular", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Binary when asked for, with a decodable P2BM body.
	resp := get(transport.ContentTypeModel)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != transport.ContentTypeModel {
		t.Fatalf("binary Accept answered with %q", ct)
	}
	version, tab, _, err := transport.DecodeModel(body)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil || tab.K != 8 || tab.Arms != 4 {
		t.Fatalf("binary body decoded to %+v", tab)
	}
	if version != srv.ModelVersion() {
		t.Fatalf("binary version %d, server at %d", version, srv.ModelVersion())
	}

	// JSON for everyone else: clients that send no Accept at all, and
	// clients that explicitly refuse the binary type with q=0 (RFC 9110:
	// q=0 means "not acceptable").
	for _, accept := range []string{
		"", "application/json", "text/html, */*",
		"application/json, application/x-p2b-model;q=0",
		"application/x-p2b-model;q=0.0",
	} {
		resp := get(accept)
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("Accept %q answered with %q", accept, ct)
		}
		if !strings.Contains(string(blob), `"count"`) {
			t.Fatalf("Accept %q body does not look like a tabular state: %s", accept, blob[:min(64, len(blob))])
		}
	}

	// A strong ETag names one exact representation: the two encodings must
	// carry distinct tags (and Vary: Accept) so a shared cache can never
	// serve P2BM bytes to a JSON client or vice versa.
	bin, json := get(transport.ContentTypeModel), get("application/json")
	bin.Body.Close()
	json.Body.Close()
	if bin.Header.Get("ETag") == json.Header.Get("ETag") {
		t.Fatal("binary and JSON representations share a strong ETag")
	}
	for _, resp := range []*http.Response{bin, json} {
		if resp.Header.Get("Vary") != "Accept" {
			t.Fatal("model route does not declare Vary: Accept")
		}
	}
	// A JSON client revalidating with the binary representation's tag must
	// get a payload, not a 304.
	req, err := http.NewRequest(http.MethodGet, client.ServerURL+"/model?kind=tabular", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	req.Header.Set("If-None-Match", bin.Header.Get("ETag"))
	cross, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cross.Body.Close()
	if cross.StatusCode == http.StatusNotModified {
		t.Fatal("cross-representation ETag validated as a match")
	}
}

func TestModelKindsAndErrors(t *testing.T) {
	client, srv, cleanup := modelStack(t)
	defer cleanup()
	deliver(srv, 4)

	// linucb kind serves a linear model.
	lin, err := client.FetchModel(ModelKindLinUCB, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Linear == nil || lin.Linear.D != 3 {
		t.Fatalf("linucb kind returned %+v", lin)
	}
	// No decoder configured: centroid is 404.
	if _, err := client.FetchModel(ModelKindCentroid, "", true); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("centroid on a decoder-less node: %v", err)
	}
	// Unknown kind is 400.
	if _, err := client.FetchModel("bogus", "", true); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown kind: %v", err)
	}
}

func TestModelRoutesRejectNonGET(t *testing.T) {
	client, _, cleanup := modelStack(t)
	defer cleanup()
	for _, path := range []string{"/model", "/model/tabular", "/model/linucb", "/stats"} {
		resp, err := http.Post(client.ServerURL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s answered %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestETagMatching(t *testing.T) {
	etag := modelETag("tabular", 0xabc, 9, true)
	cases := []struct {
		header string
		want   bool
	}{
		{etag, true},
		{"*", true},
		{`"other", ` + etag, true},
		{"W/" + etag, true},
		{`"p2b-tabular-eabc-v8-bin"`, false},
		{modelETag("tabular", 0xabc, 9, false), false}, // other representation
		{modelETag("tabular", 0xdef, 9, true), false},  // other boot epoch
		{"", false},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, etag); got != c.want {
			t.Fatalf("etagMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestRevalidationNeverBuildsSnapshot pins the 304 fast path: an
// If-None-Match that matches the current (epoch, version) must be answered
// from the version counters alone — no snapshot merge, no encode — even on
// a handler whose payload cache has never been warmed.
func TestRevalidationNeverBuildsSnapshot(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	deliver(srv, 5)
	h := newServerHandler(srv)
	ts := httptest.NewServer(h.routes())
	defer ts.Close()

	etag := modelETag(ModelKindTabular, srv.ModelEpoch(), srv.ModelVersion(), true)
	for i := 0; i < 3; i++ {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/model?kind=tabular", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept", transport.ContentTypeModel)
		req.Header.Set("If-None-Match", etag)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("revalidation %d answered %d, want 304", i, resp.StatusCode)
		}
	}
	if st := srv.Stats(); st.SnapshotBuilds != 0 || st.Snapshots != 0 {
		t.Fatalf("revalidations built snapshots: %+v", st)
	}
	if rs := h.ReadStats(); rs.NotModified != 3 || rs.PayloadBuilds != 0 {
		t.Fatalf("read stats after 304s: %+v", rs)
	}
}

// TestPayloadCacheSharesEncodedBytes pins the steady-state body path: one
// encode per (kind, version, representation), every later GET served from
// the cached bytes, and the legacy inspection routes sharing the same
// cached JSON payload.
func TestPayloadCacheSharesEncodedBytes(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	deliver(srv, 5)
	h := newServerHandler(srv)
	ts := httptest.NewServer(h.routes())
	defer ts.Close()

	get := func(path, accept string) []byte {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	a := get("/model?kind=tabular", "application/json")
	b := get("/model?kind=tabular", "application/json")
	if string(a) != string(b) {
		t.Fatal("two GETs at one version returned different bytes")
	}
	legacy := get("/model/tabular", "")
	if string(legacy) != string(a) {
		t.Fatalf("legacy route bytes differ from the cached /model payload:\n%s\nvs\n%s", legacy, a)
	}
	rs := h.ReadStats()
	if rs.PayloadBuilds != 1 {
		t.Fatalf("payload builds = %d, want 1 (one encode for three GETs)", rs.PayloadBuilds)
	}
	if rs.PayloadHits != 2 {
		t.Fatalf("payload hits = %d, want 2", rs.PayloadHits)
	}
	// A version bump rebuilds exactly once more.
	deliver(srv, 1)
	_ = get("/model?kind=tabular", "application/json")
	if rs := h.ReadStats(); rs.PayloadBuilds != 2 {
		t.Fatalf("payload builds after bump = %d, want 2", rs.PayloadBuilds)
	}
	// The binary representation has its own slot.
	_ = get("/model?kind=tabular", transport.ContentTypeModel)
	if rs := h.ReadStats(); rs.PayloadBuilds != 3 {
		t.Fatalf("payload builds after binary fetch = %d, want 3", rs.PayloadBuilds)
	}
}

// TestServerStatsExposeReadPath pins the /server/stats shape: ingestion
// counters plus snapshot-cache and payload-cache health.
func TestServerStatsExposeReadPath(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	deliver(srv, 5)
	ts := httptest.NewServer(NewServerHandler(srv))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/model?kind=tabular")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		TuplesIngested int64          `json:"TuplesIngested"`
		SnapshotHits   int64          `json:"SnapshotHits"`
		SnapshotBuilds int64          `json:"SnapshotBuilds"`
		ModelReads     ModelReadStats `json:"model_reads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.TuplesIngested != 5 {
		t.Fatalf("TuplesIngested = %d, want 5", stats.TuplesIngested)
	}
	if stats.SnapshotBuilds != 1 {
		t.Fatalf("SnapshotBuilds = %d, want 1", stats.SnapshotBuilds)
	}
	if stats.ModelReads.PayloadBuilds != 1 || stats.ModelReads.PayloadHits != 2 {
		t.Fatalf("model_reads = %+v, want 1 build + 2 hits", stats.ModelReads)
	}
}

// TestHealthzExposesReadPath pins the /healthz snapshot + payload sections
// a fleet operator watches.
func TestHealthzExposesReadPath(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(2))
	deliver(srv, 5)
	ts := httptest.NewServer(NewNodeHandler(shuf, srv))
	defer ts.Close()

	client := NewNodeClient(ts.URL)
	for i := 0; i < 2; i++ {
		if _, err := client.FetchModel(ModelKindTabular, "", true); err != nil {
			t.Fatal(err)
		}
	}
	h, err := client.FetchHealth()
	if err != nil {
		t.Fatal(err)
	}
	// The second fetch is a payload-cache hit: it never reaches the
	// snapshot cache at all, so snapshot builds stay at one and hits at
	// zero — the encoded-bytes layer shields the snapshot layer entirely.
	if h.Snapshots.Builds != 1 || h.Snapshots.Hits != 0 {
		t.Fatalf("healthz snapshots = %+v, want 1 build + 0 hits", h.Snapshots)
	}
	if h.ModelReads.PayloadBuilds != 1 || h.ModelReads.PayloadHits != 1 {
		t.Fatalf("healthz model_reads = %+v, want 1 build + 1 hit", h.ModelReads)
	}
}

// TestModelGetCachedPathAllocs pins the O(1)-allocation contract of the
// steady-state read path: a GET at an unchanged version must cost a
// handful of constant allocations (header plumbing), never O(model size).
func TestModelGetCachedPathAllocs(t *testing.T) {
	srv := server.New(server.Config{K: 256, Arms: 8, D: 3, Alpha: 1, Seed: 1})
	deliver(srv, 64)
	h := NewServerHandler(srv)

	req := httptest.NewRequest(http.MethodGet, "/model?kind=tabular", nil)
	req.Header.Set("Accept", transport.ContentTypeModel)
	w := &benchRW{h: make(http.Header)}
	h.ServeHTTP(w, req) // warm the payload cache
	if n := testing.AllocsPerRun(100, func() {
		w.reset()
		h.ServeHTTP(w, req)
	}); n > 8 {
		t.Errorf("cached model GET allocates %v times per request, want <= 8", n)
	}

	// The 304 path is leaner still.
	etag := modelETag(ModelKindTabular, srv.ModelEpoch(), srv.ModelVersion(), true)
	req.Header.Set("If-None-Match", etag)
	if n := testing.AllocsPerRun(100, func() {
		w.reset()
		h.ServeHTTP(w, req)
	}); n > 6 {
		t.Errorf("304 revalidation allocates %v times per request, want <= 6", n)
	}
}

// TestConcurrentModelGetsAndIngest hammers the read path from many
// goroutines while Deliver and IngestRaw mutate the model — the -race
// referee for the shared-snapshot and payload-cache publication.
func TestConcurrentModelGetsAndIngest(t *testing.T) {
	srv := server.New(server.Config{K: 32, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	deliver(srv, 8)
	h := NewServerHandler(srv)

	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				srv.Deliver([]transport.Tuple{{Code: (w*rounds + i) % 32, Action: i % 4, Reward: 0.5}})
				if err := srv.IngestRaw(transport.RawTuple{Context: []float64{1, 0, 0}, Action: i % 4, Reward: 0.5}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	kinds := []string{ModelKindTabular, ModelKindLinUCB}
	accepts := []string{transport.ContentTypeModel, "application/json"}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			etag := ""
			for i := 0; i < rounds; i++ {
				req := httptest.NewRequest(http.MethodGet, "/model?kind="+kinds[(g+i)%2], nil)
				req.Header.Set("Accept", accepts[g%2])
				if etag != "" && i%3 == 0 {
					req.Header.Set("If-None-Match", etag)
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK && rec.Code != http.StatusNotModified {
					t.Errorf("GET answered %d", rec.Code)
					return
				}
				etag = rec.Header().Get("ETag")
			}
		}(g)
	}
	wg.Wait()
}

// TestAcceptsBinaryModelCaseInsensitive pins RFC 9110 §8.3.1: media types
// compare case-insensitively, so the fast paths in acceptsBinaryModel must
// not downgrade oddly-cased binary Accepts to JSON.
func TestAcceptsBinaryModelCaseInsensitive(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{transport.ContentTypeModel, true},
		{"Application/X-P2B-Model", true},
		{"APPLICATION/X-P2B-MODEL;q=1", true},
		{"application/json", false},
		{"Application/X-P2B-Model;q=0", false},
		{"text/html, Application/X-P2B-Model", true},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodGet, "/model", nil)
		req.Header.Set("Accept", c.accept)
		if got := acceptsBinaryModel(req); got != c.want {
			t.Errorf("acceptsBinaryModel(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}
