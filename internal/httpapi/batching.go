// Agent-side batched reporting. A fleet simulator (or a real device SDK)
// produces reports one at a time; shipping each as its own HTTP POST caps
// throughput at the request rate of the connection. BatchingClient
// coalesces reports into the binary batch encoding and posts them to the
// shuffler's /reports route, with size- and age-based flush triggers,
// bounded in-flight buffering with backpressure, and retry with jittered
// exponential backoff.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2b/internal/rng"
	"p2b/internal/transport"
)

// ErrClientClosed is returned by Report after Close.
var ErrClientClosed = errors.New("httpapi: batching client is closed")

// BatchingConfig tunes a BatchingClient. The zero value selects sane
// defaults throughout.
type BatchingConfig struct {
	// MaxBatch flushes the buffer when this many reports have coalesced
	// (default 256 — comfortably amortizes HTTP overhead while keeping a
	// batch under one TCP congestion window at typical frame sizes).
	MaxBatch int
	// MaxAge flushes a non-empty buffer this long after its first report
	// (default 250ms), bounding the staleness a quiet agent can introduce.
	MaxAge time.Duration
	// MaxInFlight bounds how many batches may be queued or on the wire at
	// once (default 4). When the bound is hit, Report blocks: backpressure
	// propagates to the producer instead of growing an unbounded buffer.
	MaxInFlight int
	// MaxRetries is how many times a failed batch POST is retried before
	// the batch is dropped and the failure recorded (default 3). Retries
	// are safe because ingestion is additive and the shuffler's threshold
	// treats duplicates as ordinary crowd members.
	MaxRetries int
	// RetryBase is the first retry delay; subsequent delays double, each
	// multiplied by a uniform jitter in [0.5, 1.5) so a fleet that failed
	// together does not retry together (default 50ms).
	RetryBase time.Duration
	// MaxRetryDelay caps any single retry wait, including server-provided
	// Retry-After hints (default 30s) — a confused server cannot park the
	// client for an hour.
	MaxRetryDelay time.Duration
	// Breaker, when non-nil, short-circuits sends while the node is known
	// down: attempts refused by an open breaker count as transient
	// failures (they wait out the backoff like any other), but cost no
	// connection. Share one breaker with the model-sync path so both learn
	// about an outage from each other's traffic.
	Breaker *CircuitBreaker
	// NDJSON switches the wire encoding from the binary framing to
	// newline-delimited JSON (the debuggable fallback).
	NDJSON bool
	// Seed seeds the retry jitter stream (default 1; any value works —
	// jitter needs decorrelation, not unpredictability).
	Seed uint64
}

func (c *BatchingConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 250 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.MaxRetryDelay <= 0 {
		c.MaxRetryDelay = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// BatchStats counts a BatchingClient's traffic.
type BatchStats struct {
	Reported       int64 // reports accepted by Report
	Batches        int64 // batches delivered successfully
	Retries        int64 // individual retry attempts
	DroppedBatches int64 // batches abandoned after exhausting retries
	DroppedReports int64 // reports inside those batches
	BackoffWaits   int64 // retry backoff sleeps taken
	BackoffNanos   int64 // total time spent sleeping between retries
}

type pendingBatch struct {
	body  []byte
	count int
}

// BatchingClient coalesces reports into batch POSTs against a Client's
// shuffler URL. All methods are safe for concurrent use.
type BatchingClient struct {
	c   *Client
	cfg BatchingConfig

	mu      sync.Mutex
	done    *sync.Cond // broadcast when pending drops to zero
	buf     []byte     // encoded frames of the open batch (starts with magic)
	count   int        // reports in the open batch
	pending int        // batches cut but not yet sent (or failed)
	closed  bool
	err     error // first permanent delivery failure, sticky
	stats   BatchStats
	timer   *time.Timer

	// Backoff accounting is atomic, not under b.mu: sleep() runs in the
	// sender goroutines with no lock held, and taking b.mu there would
	// serialize a backoff wait against Report's hot path.
	backoffWaits atomic.Int64
	backoffNanos atomic.Int64

	queue chan pendingBatch
	stop  chan struct{}  // closed by Close: backoff sleeps end immediately
	enq   sync.WaitGroup // in-flight enqueue attempts, so Close can safely close(queue)
	wg    sync.WaitGroup // sender goroutines

	jmu sync.Mutex
	jr  *rng.Rand // retry jitter
}

// NewBatchingClient wraps c's shuffler endpoint in a batching pipeline.
// Callers must Close the returned client to flush the tail.
func NewBatchingClient(c *Client, cfg BatchingConfig) *BatchingClient {
	cfg.fill()
	b := &BatchingClient{
		c:     c,
		cfg:   cfg,
		queue: make(chan pendingBatch), // unbuffered: MaxInFlight senders ARE the bound
		stop:  make(chan struct{}),
		jr:    rng.New(cfg.Seed).Split("batch-retry-jitter"),
	}
	b.done = sync.NewCond(&b.mu)
	b.timer = time.AfterFunc(time.Hour, b.flushTimer)
	b.timer.Stop()
	for i := 0; i < cfg.MaxInFlight; i++ {
		b.wg.Add(1)
		go b.sender()
	}
	return b
}

// Report adds one envelope to the open batch, cutting and shipping it when
// the size trigger fires. It blocks when MaxInFlight batches are already
// outstanding (backpressure). The returned error is the sticky first
// delivery failure, if any — reports keep flowing after a failure, but the
// producer learns something went wrong without waiting for Close.
func (b *BatchingClient) Report(e transport.Envelope) error {
	if err := checkEnvelope(&e, b.cfg.NDJSON); err != nil {
		return err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClientClosed
	}
	if b.count == 0 {
		b.buf = transport.AppendMagic(b.buf[:0])
		b.timer.Reset(b.cfg.MaxAge)
	}
	if b.cfg.NDJSON {
		b.buf = appendNDJSON(b.buf, &e)
	} else {
		b.buf = e.AppendFrame(b.buf)
	}
	b.count++
	b.stats.Reported++
	var pb pendingBatch
	cut := false
	if b.count >= b.cfg.MaxBatch {
		pb, cut = b.cutLocked()
	}
	err := b.err
	b.mu.Unlock()
	if cut {
		b.enqueue(pb)
	}
	return err
}

// checkEnvelope rejects envelopes the chosen wire encoding could not ship
// losslessly: rejecting them up front keeps one bad report from poisoning
// a whole batch. A frame body over the transport limit would be refused by
// the server's decoder (a permanent 400 dropping up to MaxBatch-1 good
// reports with it), and JSON cannot represent a non-finite reward at all.
func checkEnvelope(e *transport.Envelope, ndjson bool) error {
	if ndjson {
		if math.IsNaN(e.Tuple.Reward) || math.IsInf(e.Tuple.Reward, 0) {
			return fmt.Errorf("httpapi: reward %v is not representable in JSON", e.Tuple.Reward)
		}
		return nil
	}
	if n := e.FrameBodySize(); n > transport.MaxFrameBytes {
		return fmt.Errorf("httpapi: envelope frame body is %d bytes, exceeding the transport limit %d (oversized metadata?)",
			n, transport.MaxFrameBytes)
	}
	return nil
}

// appendNDJSON appends one envelope as a JSON line. The magic header is
// not part of NDJSON; callers strip it before posting.
func appendNDJSON(dst []byte, e *transport.Envelope) []byte {
	blob, err := json.Marshal(e)
	if err != nil {
		// checkEnvelope screened the one marshal failure an Envelope of
		// plain ints, strings and a float64 admits (non-finite reward).
		panic(fmt.Sprintf("httpapi: encoding envelope: %v", err))
	}
	dst = append(dst, blob...)
	return append(dst, '\n')
}

// cutLocked detaches the open batch for shipping. Callers hold b.mu and
// must pass a true result to enqueue. Registering with b.enq here, under
// the lock, is what makes Close safe: any cut that happened before Close
// observed (and set) closed is already registered, so Close's enq.Wait
// cannot race past it and close the queue under a pending send.
func (b *BatchingClient) cutLocked() (pendingBatch, bool) {
	if b.count == 0 {
		return pendingBatch{}, false
	}
	pb := pendingBatch{body: b.buf, count: b.count}
	b.buf = nil
	b.count = 0
	b.pending++
	b.enq.Add(1)
	return pb, true
}

// enqueue hands a cut batch to the senders. The channel is unbuffered, so
// this blocks while every sender is busy — the backpressure surface.
func (b *BatchingClient) enqueue(pb pendingBatch) {
	b.queue <- pb
	b.enq.Done()
}

// flushTimer is the age trigger: MaxAge after a batch's first report, ship
// whatever has coalesced.
func (b *BatchingClient) flushTimer() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	pb, cut := b.cutLocked()
	b.mu.Unlock()
	if cut {
		b.enqueue(pb)
	}
}

// Flush ships the open batch and waits until every outstanding batch has
// been delivered (or abandoned), then reports the sticky error.
func (b *BatchingClient) Flush() error {
	b.mu.Lock()
	pb, cut := b.cutLocked()
	b.mu.Unlock()
	if cut {
		b.enqueue(pb)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.pending > 0 {
		b.done.Wait()
	}
	return b.err
}

// Close flushes the tail, stops the senders and returns the sticky error.
// Report fails with ErrClientClosed afterwards. Close is idempotent.
//
// Close also collapses retry backoff: senders sleeping between attempts
// wake immediately and run their remaining attempts back to back, so a
// shutdown against a struggling node drains in attempt time, not in
// accumulated backoff time. Every outstanding batch still gets its full
// attempt budget — Close trades latency for nothing, delivery-wise.
func (b *BatchingClient) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return b.Flush()
	}
	b.closed = true
	b.timer.Stop()
	close(b.stop)
	pb, cut := b.cutLocked()
	b.mu.Unlock()
	if cut {
		b.enqueue(pb)
	}
	b.enq.Wait() // no enqueue may straddle the close below
	close(b.queue)
	b.wg.Wait()
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Stats returns a snapshot of the delivery counters.
func (b *BatchingClient) Stats() BatchStats {
	b.mu.Lock()
	st := b.stats
	b.mu.Unlock()
	st.BackoffWaits = b.backoffWaits.Load()
	st.BackoffNanos = b.backoffNanos.Load()
	return st
}

// sender delivers cut batches until the queue closes.
func (b *BatchingClient) sender() {
	defer b.wg.Done()
	for pb := range b.queue {
		err := b.send(pb)
		b.mu.Lock()
		if err != nil {
			if b.err == nil {
				b.err = err
			}
			b.stats.DroppedBatches++
			b.stats.DroppedReports += int64(pb.count)
		} else {
			b.stats.Batches++
		}
		b.pending--
		if b.pending == 0 {
			b.done.Broadcast()
		}
		b.mu.Unlock()
	}
}

// send posts one batch, retrying transient failures with jittered
// exponential backoff. Network errors, 5xx responses, 429 Too Many
// Requests (the node shed the batch — it never saw it) and 408 are
// retried, honoring a Retry-After hint when the server sends one; other
// 4xx responses are permanent (the batch is wrong, resending cannot fix
// it). Retries are safe because ingestion is additive and a shed or
// errored request was rejected before ingestion. When a breaker is
// configured, attempts while it is open are refused locally — they wait
// out the backoff like any failure but cost no connection.
func (b *BatchingClient) send(pb pendingBatch) error {
	contentType := transport.ContentTypeBinary
	body := pb.body
	if b.cfg.NDJSON {
		contentType = transport.ContentTypeNDJSON
		body = body[len(transport.Magic):] // magic is a binary-framing artifact
	}
	url := b.c.ShufflerURL + "/reports"
	delay := b.cfg.RetryBase
	var lastErr error
	for attempt := 0; attempt <= b.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			b.mu.Lock()
			b.stats.Retries++
			b.mu.Unlock()
			b.sleep(b.jitter(delay))
			delay *= 2
		}
		if !b.cfg.Breaker.Allow() {
			lastErr = fmt.Errorf("httpapi: post %s: %w", url, ErrBreakerOpen)
			continue
		}
		resp, err := b.c.httpClient().Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			b.cfg.Breaker.Record(false)
			lastErr = fmt.Errorf("httpapi: post %s: %w", url, err)
			continue
		}
		status := resp.StatusCode
		retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		// Breaker outcome tracks the NODE's health, not this batch's fate: a
		// 429 or a permanent 400 still proves the node is up and answering,
		// so only connection failures and 5xx count against it.
		b.cfg.Breaker.Record(status < 500)
		switch {
		case status == http.StatusAccepted:
			return nil
		case retryableStatus(status):
			if retryAfter > delay {
				// The server knows its own recovery horizon better than our
				// doubling ladder; adopt its hint (capped) as the next base.
				delay = retryAfter
			}
			lastErr = fmt.Errorf("httpapi: post %s: status %d: %s", url, status, msg)
			continue
		default:
			return fmt.Errorf("httpapi: post %s: permanent status %d: %s", url, status, msg)
		}
	}
	return lastErr
}

// retryableStatus reports whether a batch POST answered with status is
// worth resending: the throttle statuses (429, 503) and request timeout
// (408) are explicit "try again later", and any 5xx is a server-side
// condition the same bytes may outlive.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusRequestTimeout ||
		status >= 500
}

// parseRetryAfter decodes a Retry-After header: delay-seconds or an
// HTTP-date (RFC 9110 §10.2.3). Zero means absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// sleep waits for d (capped at MaxRetryDelay), ending early when Close is
// called so shutdown never sits out a backoff ladder.
func (b *BatchingClient) sleep(d time.Duration) {
	if d > b.cfg.MaxRetryDelay {
		d = b.cfg.MaxRetryDelay
	}
	if d <= 0 {
		return
	}
	start := time.Now()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-b.stop:
	}
	// Record the time actually slept (Close may cut a wait short), so the
	// counter reflects real wall-clock spent backing off.
	b.backoffWaits.Add(1)
	b.backoffNanos.Add(time.Since(start).Nanoseconds())
}

// jitter scales d by a uniform factor in [0.5, 1.5).
func (b *BatchingClient) jitter(d time.Duration) time.Duration {
	b.jmu.Lock()
	f := 0.5 + b.jr.Float64()
	b.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// ReportBatch posts envelopes as one binary batch POST and returns the
// server's ack. It is the synchronous single-shot form of BatchingClient,
// convenient for tests and replay tools.
func (c *Client) ReportBatch(envs []transport.Envelope) (BatchAck, error) {
	var ack BatchAck
	body := transport.AppendMagic(make([]byte, 0, 64+32*len(envs)))
	for i := range envs {
		if err := checkEnvelope(&envs[i], false); err != nil {
			return ack, fmt.Errorf("httpapi: envelope %d: %w", i, err)
		}
		body = envs[i].AppendFrame(body)
	}
	url := c.ShufflerURL + "/reports"
	resp, err := c.httpClient().Post(url, transport.ContentTypeBinary, bytes.NewReader(body))
	if err != nil {
		return ack, fmt.Errorf("httpapi: post %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return ack, fmt.Errorf("httpapi: post %s: status %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return ack, fmt.Errorf("httpapi: decode batch ack: %w", err)
	}
	return ack, nil
}
