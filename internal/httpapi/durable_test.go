package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"p2b/internal/persist"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/transport"
)

func newDurableNode(t *testing.T, dir string) (*httptest.Server, *server.Server, *persist.Manager) {
	t.Helper()
	srv := server.New(server.Config{K: 16, Arms: 3, D: 2, Alpha: 1, Shards: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 8, Threshold: 0}, srv, rng.New(4).Split("shuffler"))
	m, err := persist.Open(dir, shuf, srv, persist.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	h := NewNodeHandlerOpts(shuf, srv, NodeOptions{
		Ingest:     m,
		Checkpoint: m.Checkpoint,
		Health:     func() any { return m.Info() },
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, srv, m
}

func batchBody(tuples []transport.Tuple) []byte {
	buf := transport.AppendMagic(nil)
	for _, tup := range tuples {
		e := transport.Envelope{Meta: transport.Metadata{DeviceID: "dev", Addr: "a:1", SentAt: 9}, Tuple: tup}
		buf = e.AppendFrame(buf)
	}
	return buf
}

// A durable node must persist what it acked: reports POSTed over the batch
// route, then a process "restart" (new manager, fresh components, same
// dir), must reproduce the model bit-for-bit.
func TestDurableNodeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts, srv, m := newDurableNode(t, dir)

	tuples := make([]transport.Tuple, 21) // 2 full batches + 5 pending
	for i := range tuples {
		tuples[i] = transport.Tuple{Code: i % 4, Action: i % 3, Reward: 0.25}
	}
	resp, err := http.Post(ts.URL+"/shuffler/reports", transport.ContentTypeBinary, bytes.NewReader(batchBody(tuples)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	// One single-report POST rides along, exercising the envelope path.
	blob, _ := json.Marshal(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}})
	resp, err = http.Post(ts.URL+"/shuffler/report", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("report status %d", resp.StatusCode)
	}
	want, _ := json.Marshal(srv.TabularSnapshot())
	wantIngested := srv.Stats().TuplesIngested
	ts.Close()
	m.Close() // crash semantics: no flush, no checkpoint

	srv2 := server.New(server.Config{K: 16, Arms: 3, D: 2, Alpha: 1, Shards: 1})
	shuf2 := shuffler.New(shuffler.Config{BatchSize: 8, Threshold: 0}, srv2, rng.New(4).Split("shuffler"))
	m2, err := persist.Open(dir, shuf2, srv2, persist.Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer m2.Close()
	got, _ := json.Marshal(srv2.TabularSnapshot())
	if string(got) != string(want) {
		t.Fatal("recovered tabular state diverged from pre-restart state")
	}
	if srv2.Stats().TuplesIngested != wantIngested {
		t.Fatalf("recovered ingest count %d, want %d", srv2.Stats().TuplesIngested, wantIngested)
	}
	if shuf2.Pending() != 6 { // 5 batched + 1 single report still unflushed
		t.Fatalf("recovered pending %d, want 6", shuf2.Pending())
	}
}

func TestAdminCheckpointAndHealthz(t *testing.T) {
	dir := t.TempDir()
	ts, _, _ := newDurableNode(t, dir)

	resp, err := http.Post(ts.URL+"/shuffler/reports", transport.ContentTypeBinary,
		bytes.NewReader(batchBody([]transport.Tuple{{Code: 1, Action: 1, Reward: 1}})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	// GET on the admin route is refused.
	resp, err = http.Get(ts.URL + "/admin/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET checkpoint status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status  string       `json:"status"`
		Persist persist.Info `json:"persist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz status %q", health.Status)
	}
	if health.Persist.CheckpointSeq == 0 || health.Persist.WALSeq == 0 {
		t.Fatalf("healthz persist section missing checkpoint: %+v", health.Persist)
	}
}

// A non-durable node must not expose the admin route, and its healthz has
// no persist section.
func TestAdminCheckpointAbsentWithoutPersistence(t *testing.T) {
	srv := server.New(server.Config{K: 4, Arms: 2, D: 2, Alpha: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(1))
	ts := httptest.NewServer(NewNodeHandler(shuf, srv))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("admin route on plain node: status %d", resp.StatusCode)
	}
}

// failingIngestor simulates a dead disk: the WAL cannot accept writes.
type failingIngestor struct{}

var errDisk = errors.New("disk on fire")

func (failingIngestor) SubmitEnvelope(transport.Envelope) error { return errDisk }
func (failingIngestor) SubmitTuples([]transport.Tuple) error    { return errDisk }
func (failingIngestor) Flush() error                            { return errDisk }

// An ingest failure must surface as a 503 with a Retry-After hint, never
// a silent ack: an unlogged tuple would be lost by the next crash despite
// the client believing it was delivered — but the condition is the node's
// fault and transient, so the client is told to retry, not blamed.
func TestIngestFailureIsNotAcked(t *testing.T) {
	srv := server.New(server.Config{K: 4, Arms: 2, D: 2, Alpha: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(1))
	ts := httptest.NewServer(NewNodeHandlerOpts(shuf, srv, NodeOptions{Ingest: failingIngestor{}}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/shuffler/reports", transport.ContentTypeBinary,
		bytes.NewReader(batchBody([]transport.Tuple{{Code: 1, Action: 1, Reward: 1}})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch with dead log: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fail-closed 503 carries no Retry-After hint")
	}
	blob, _ := json.Marshal(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 1, Reward: 1}})
	resp, err = http.Post(ts.URL+"/shuffler/report", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("report with dead log: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/shuffler/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("flush with dead log: status %d, want 503", resp.StatusCode)
	}
}
