package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/transport"
)

func newStack(t *testing.T, threshold int) (*Client, *server.Server, *shuffler.Shuffler, func()) {
	t.Helper()
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: threshold}, srv, rng.New(2))
	shufTS := httptest.NewServer(NewShufflerHandler(shuf))
	srvTS := httptest.NewServer(NewServerHandler(srv))
	client := NewClient(shufTS.URL, srvTS.URL)
	return client, srv, shuf, func() {
		shufTS.Close()
		srvTS.Close()
	}
}

func TestReportFlowsThroughToServer(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	for i := 0; i < 4; i++ {
		err := client.Report(transport.Envelope{
			Meta:  transport.Metadata{DeviceID: "dev"},
			Tuple: transport.Tuple{Code: 2, Action: 1, Reward: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Batch size 4: the batch must have flushed to the server.
	if st := srv.Stats(); st.TuplesIngested != 4 {
		t.Fatalf("server ingested %d, want 4", st.TuplesIngested)
	}
}

func TestFlushEndpoint(t *testing.T) {
	client, srv, shuf, cleanup := newStack(t, 0)
	defer cleanup()
	if err := client.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 0, Reward: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if shuf.Pending() != 1 {
		t.Fatalf("pending %d", shuf.Pending())
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.TuplesIngested != 1 {
		t.Fatalf("flush did not reach server: %+v", st)
	}
}

func TestRemoteAddrIsStampedThenStripped(t *testing.T) {
	// An envelope with no Addr gets the connection's RemoteAddr stamped by
	// the handler — and the shuffler must still strip it before the server.
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	for i := 0; i < 4; i++ {
		if err := client.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 0, Reward: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	// The server's view is only model state; the tabular snapshot carries
	// no strings at all. This is a type-level guarantee; assert the stats
	// flowed.
	if st := srv.Stats(); st.TuplesIngested != 4 {
		t.Fatalf("ingested %d", st.TuplesIngested)
	}
}

func TestFetchTabularModel(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	srv.Deliver([]transport.Tuple{{Code: 3, Action: 2, Reward: 1}})
	state, err := client.FetchTabular()
	if err != nil {
		t.Fatal(err)
	}
	if state.K != 8 || state.Arms != 4 {
		t.Fatalf("state shape %dx%d", state.K, state.Arms)
	}
	if state.Count[3*4+2] != 1 {
		t.Fatal("delivered tuple missing from snapshot")
	}
}

func TestFetchLinUCBModel(t *testing.T) {
	client, _, _, cleanup := newStack(t, 0)
	defer cleanup()
	state, err := client.FetchLinUCB()
	if err != nil {
		t.Fatal(err)
	}
	if state.D != 3 || state.Arms != 4 {
		t.Fatalf("state shape d=%d arms=%d", state.D, state.Arms)
	}
}

func TestSendRaw(t *testing.T) {
	client, srv, _, cleanup := newStack(t, 0)
	defer cleanup()
	err := client.SendRaw(transport.RawTuple{Context: []float64{0.2, 0.3, 0.5}, Action: 1, Reward: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.RawIngested != 1 {
		t.Fatalf("raw ingested %d", st.RawIngested)
	}
}

func TestSendRawRejectsBadTuple(t *testing.T) {
	client, _, _, cleanup := newStack(t, 0)
	defer cleanup()
	err := client.SendRaw(transport.RawTuple{Context: []float64{0.5}, Action: 1, Reward: 1})
	if err == nil {
		t.Fatal("bad raw tuple accepted")
	}
	if !strings.Contains(err.Error(), "400") {
		t.Fatalf("expected 400 in error, got %v", err)
	}
}

func TestBadJSONRejected(t *testing.T) {
	_, _, shuf, cleanup := newStack(t, 0)
	defer cleanup()
	ts := httptest.NewServer(NewShufflerHandler(shuf))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/report", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	_, _, shuf, cleanup := newStack(t, 0)
	defer cleanup()
	ts := httptest.NewServer(NewShufflerHandler(shuf))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/report", "application/json",
		strings.NewReader(`{"tuple":{"code":1},"bogus":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	client, _, shuf, cleanup := newStack(t, 0)
	defer cleanup()
	_ = client
	shufTS := httptest.NewServer(NewShufflerHandler(shuf))
	defer shufTS.Close()
	resp, err := http.Get(shufTS.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /report status %d, want 405", resp.StatusCode)
	}
}

func TestStatsEndpoints(t *testing.T) {
	client, srv, shuf, cleanup := newStack(t, 0)
	defer cleanup()
	shufTS := httptest.NewServer(NewShufflerHandler(shuf))
	defer shufTS.Close()
	srvTS := httptest.NewServer(NewServerHandler(srv))
	defer srvTS.Close()
	_ = client
	for _, url := range []string{shufTS.URL + "/stats", srvTS.URL + "/stats"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", url, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		resp.Body.Close()
	}
}

func TestNodeHandlerMountsBothSurfaces(t *testing.T) {
	srv := server.New(server.Config{K: 8, Arms: 4, D: 3, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 4, Threshold: 0}, srv, rng.New(2))
	ts := httptest.NewServer(NewNodeHandler(shuf, srv))
	defer ts.Close()

	// Health probe.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// The node client routes to the prefixed surfaces.
	client := NewNodeClient(ts.URL)
	for i := 0; i < 4; i++ {
		err := client.Report(transport.Envelope{Tuple: transport.Tuple{Code: 1, Action: 2, Reward: 1}})
		if err != nil {
			t.Fatal(err)
		}
	}
	state, err := client.FetchTabular()
	if err != nil {
		t.Fatal(err)
	}
	if state.Count[1*4+2] != 4 {
		t.Fatalf("tuples did not reach the model through the node: %v", state.Count[1*4+2])
	}
}

func TestNodeFleetRound(t *testing.T) {
	// A miniature p2bagent fleet: devices fetch the model, act, report.
	srv := server.New(server.Config{K: 4, Arms: 3, D: 2, Alpha: 1, Seed: 1})
	shuf := shuffler.New(shuffler.Config{BatchSize: 16, Threshold: 2}, srv, rng.New(3))
	ts := httptest.NewServer(NewNodeHandler(shuf, srv))
	defer ts.Close()
	client := NewNodeClient(ts.URL)

	for u := 0; u < 64; u++ {
		state, err := client.FetchTabular()
		if err != nil {
			t.Fatal(err)
		}
		if state.K != 4 || state.Arms != 3 {
			t.Fatalf("model shape %dx%d", state.K, state.Arms)
		}
		// Every device reports its (fixed) favourite code and action.
		err = client.Report(transport.Envelope{
			Meta:  transport.Metadata{DeviceID: "d"},
			Tuple: transport.Tuple{Code: u % 2, Action: 1, Reward: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.TuplesIngested != 64 {
		t.Fatalf("ingested %d, want 64", st.TuplesIngested)
	}
}

func TestEndToEndPrivatePipelineOverHTTP(t *testing.T) {
	// A miniature P2B round over real HTTP: agents report encoded tuples,
	// the shuffler thresholds them, the server aggregates, and a new agent
	// warm-starts from the fetched model.
	client, _, _, cleanup := newStack(t, 2)
	defer cleanup()

	// 8 agents report code 5 / action 1 / reward 1 (they all loved it).
	for i := 0; i < 8; i++ {
		err := client.Report(transport.Envelope{
			Meta:  transport.Metadata{DeviceID: "dev"},
			Tuple: transport.Tuple{Code: 5, Action: 1, Reward: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	state, err := client.FetchTabular()
	if err != nil {
		t.Fatal(err)
	}
	// The new agent should prefer action 1 at code 5.
	best, bestVal := -1, -1.0
	for a := 0; a < state.Arms; a++ {
		i := 5*state.Arms + a
		mean := state.Sum[i] / (1 + state.Count[i])
		if mean > bestVal {
			best, bestVal = a, mean
		}
	}
	if best != 1 {
		t.Fatalf("warm-started preference is arm %d, want 1", best)
	}
}
