package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"p2b/internal/server"
	"p2b/internal/transport"
)

// benchRW is a ResponseWriter that discards the body without allocating,
// so the benchmark measures the model route, not the recorder.
type benchRW struct {
	h      http.Header
	status int
	n      int
}

func (w *benchRW) Header() http.Header { return w.h }
func (w *benchRW) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
func (w *benchRW) WriteHeader(status int) { w.status = status }

func (w *benchRW) reset() {
	clear(w.h)
	w.status = 0
	w.n = 0
}

// benchModelServer builds a paper-scale server (k=1024, A=20) with data in
// every cell, the worst case for a read path that copies or re-encodes.
func benchModelServer(b *testing.B) *server.Server {
	b.Helper()
	srv := server.New(server.Config{K: 1024, Arms: 20, D: 10, Alpha: 1, Seed: 1})
	batch := make([]transport.Tuple, 4096)
	for i := range batch {
		batch[i] = transport.Tuple{Code: i % 1024, Action: i % 20, Reward: 0.5}
	}
	srv.Deliver(batch)
	for i := 0; i < 64; i++ {
		x := []float64{0.1, 0.2, 0.3, 0.05, 0.05, 0.1, 0.05, 0.05, 0.05, 0.05}
		if err := srv.IngestRaw(transport.RawTuple{Context: x, Action: i % 20, Reward: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

// BenchmarkModelGet measures the steady-state fleet read path: GET
// /server/model at an unchanged model version. This is the regime a
// polling fleet keeps the node in, so it must cost a header compare plus
// a cached-bytes write — not a snapshot merge plus a fresh encode.
func BenchmarkModelGet(b *testing.B) {
	srv := benchModelServer(b)
	h := NewServerHandler(srv)

	run := func(b *testing.B, accept, inm string) {
		req := httptest.NewRequest(http.MethodGet, "/model?kind=tabular", nil)
		req.Header.Set("Accept", accept)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		w := &benchRW{h: make(http.Header)}
		h.ServeHTTP(w, req)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.reset()
			h.ServeHTTP(w, req)
		}
	}

	b.Run("bin", func(b *testing.B) { run(b, transport.ContentTypeModel, "") })
	b.Run("json", func(b *testing.B) { run(b, "application/json", "") })
	b.Run("304", func(b *testing.B) {
		// Fetch once to learn the current ETag, then revalidate forever.
		req := httptest.NewRequest(http.MethodGet, "/model?kind=tabular", nil)
		req.Header.Set("Accept", transport.ContentTypeModel)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		etag := rec.Header().Get("ETag")
		if etag == "" {
			b.Fatal("no ETag on model response")
		}
		run(b, transport.ContentTypeModel, etag)
	})
}
