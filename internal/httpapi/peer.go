// The multi-node HTTP surface: the analyzer-side peer routes and the
// relay handler.
//
// Analyzer-side (mounted by NewNodeHandlerOpts when NodeOptions.Peer is
// set):
//
//	POST /peer/ingest  one relay-forwarded privacy batch (P2B1 binary
//	                   stream, positioned by the X-P2b-Peer-* headers);
//	                   delivered straight to the analyzer server — the
//	                   relay already shuffled and thresholded it
//	POST /peer/merge   one sibling analyzer's local-state export
//	                   (topology.PeerUpdate JSON), stored per origin with
//	                   replace-if-newer semantics
//	GET  /peer/digest  the per-origin (epoch, seq) high-water vector of
//	                   every contribution this node can serve — its own
//	                   live state plus stored sibling contributions — for
//	                   the pull side of the digest round
//	GET  /peer/contrib?origin=X  one contribution as a topology.PeerUpdate:
//	                   this node's own (exported live, stamped with the
//	                   local version captured before the export) or a
//	                   stored third party's (served verbatim at its stored
//	                   position, which is what makes healing transitive)
//	GET  /peer/status  replication counters and per-origin positions
//
// Both POST routes answer 200 with a topology.PeerAck naming whether the
// payload changed state; a duplicate or stale payload acks applied=false,
// which senders treat as success. When the node was started with a peer
// token, requests must carry it as a bearer token; the digest and contrib
// GETs are authenticated too — they hand out model state, exactly what
// the merge route accepts.
//
// Relay-side: NewRelayHandler mounts the same /shuffler/ routes a combined
// node serves (same admission gate, same durable-ingest hooks, same
// per-route metrics), plus a /healthz that names the relay role, the
// configured model shapes (so agent preflights validate against a relay
// exactly as against a combined node) and the downstream forward counters.
package httpapi

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"

	"p2b/internal/metrics"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/topology"
	"p2b/internal/transport"
)

// PeerDeliverFunc durably applies one relay-forwarded batch and reports
// whether it changed state (false = duplicate). The durable node wires the
// persist manager's DeliverPeer here; without one the batch goes straight
// to the server.
type PeerDeliverFunc func(origin string, epoch, seq uint64, tuples []transport.Tuple) (bool, error)

// PeerOptions enables and configures the analyzer-side peer routes.
type PeerOptions struct {
	// Origin is this node's own contribution-stream name. Inbound traffic
	// claiming it is refused — that is always a misconfigured fleet
	// (two processes sharing one identity), never valid replication.
	Origin string
	// Token, when non-empty, requires "Authorization: Bearer <token>" on
	// every peer route.
	Token string
	// Deliver applies a relay batch. Nil delivers straight to the server
	// (no durability).
	Deliver PeerDeliverFunc
	// Sync reports the node's outbound anti-entropy status (nil when the
	// node pushes to no peers).
	Sync func() []topology.SyncStatus
	// Epoch is the boot nonce stamping this node's own contribution on
	// /peer/digest and /peer/contrib — the same epoch the node's outbound
	// peering pushes under, so a puller and a pushee agree on the
	// position they hold. Zero (together with a nil Export) omits the
	// self entry: the node serves only stored third-party contributions.
	Epoch uint64
	// Export returns the node's LOCAL state for a self-origin contrib
	// fetch (wire it to server.ExportState, the same func the peering
	// push loop uses). Nil omits the self entry from the digest.
	Export func() *server.PersistedState
}

// PeerHealth is the "peers" section of /healthz, /server/stats and the
// GET /peer/status body: the server's replication counters plus the
// outbound sync status. The counters are the same atomics the /metrics
// peer collectors sample.
type PeerHealth struct {
	server.PeerStatus
	Sync []topology.SyncStatus `json:"sync,omitempty"`
}

// authorized checks the peer bearer token; an empty configured token
// admits everything (single-operator deployments on a private network).
func (o *PeerOptions) authorized(r *http.Request) bool {
	if o.Token == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+o.Token)) == 1
}

// peerPosition parses the X-P2b-Peer-* headers of a relay batch.
func (o *PeerOptions) peerPosition(r *http.Request) (origin string, epoch, seq uint64, err error) {
	origin = r.Header.Get(topology.OriginHeader)
	if origin == "" {
		return "", 0, 0, fmt.Errorf("httpapi: missing %s header", topology.OriginHeader)
	}
	if origin == o.Origin {
		return "", 0, 0, fmt.Errorf("httpapi: peer traffic claims this node's own origin %q", origin)
	}
	epoch, err = strconv.ParseUint(r.Header.Get(topology.EpochHeader), 10, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("httpapi: bad %s header: %v", topology.EpochHeader, err)
	}
	seq, err = strconv.ParseUint(r.Header.Get(topology.SeqHeader), 10, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("httpapi: bad %s header: %v", topology.SeqHeader, err)
	}
	return origin, epoch, seq, nil
}

// newPeerHandler mounts the peer routes. srv is the analyzer server the
// batches and merges land in; adm bounds the two POST routes exactly like
// the agent ingest routes (relay and peer traffic competes for the same
// admission budget — the node's memory does not care who sent the bytes);
// nm instruments them; peers builds the status payload.
func newPeerHandler(srv *server.Server, opts *PeerOptions, adm *Admission, nm *nodeMetrics, peers func() *PeerHealth) http.Handler {
	deliver := opts.Deliver
	if deliver == nil {
		deliver = func(origin string, epoch, seq uint64, tuples []transport.Tuple) (bool, error) {
			return srv.DeliverPeerBatch(origin, epoch, seq, tuples), nil
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", nm.wrap("peer_ingest", adm.guard(func(w http.ResponseWriter, r *http.Request) {
		if !opts.authorized(r) {
			http.Error(w, "httpapi: peer token required", http.StatusUnauthorized)
			return
		}
		origin, epoch, seq, err := opts.peerPosition(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
		if err != nil || ct != transport.ContentTypeBinary {
			http.Error(w, fmt.Sprintf("httpapi: peer batches are %s only", transport.ContentTypeBinary), http.StatusUnsupportedMediaType)
			return
		}
		// The whole batch is decoded before anything is applied: the
		// (origin, epoch, seq) position deduplicates the batch as a unit,
		// so a half-applied batch must not exist.
		fr, err := transport.NewFrameReader(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
		if err != nil {
			writeBodyError(w, err)
			return
		}
		var tuples []transport.Tuple
		var t transport.Tuple
		for {
			if err := fr.NextTuple(&t); err != nil {
				if err == io.EOF {
					break
				}
				writeBodyError(w, err)
				return
			}
			tuples = append(tuples, t)
		}
		applied, err := deliver(origin, epoch, seq, tuples)
		if err != nil {
			// The durable log refused the write: retryable, same contract
			// as the agent ingest routes.
			writeBodyError(w, ingestError{err})
			return
		}
		writeJSON(w, topology.PeerAck{Applied: applied})
	})))
	mux.HandleFunc("POST /merge", nm.wrap("peer_merge", adm.guard(func(w http.ResponseWriter, r *http.Request) {
		if !opts.authorized(r) {
			http.Error(w, "httpapi: peer token required", http.StatusUnauthorized)
			return
		}
		var upd topology.PeerUpdate
		body := http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
		if err := decodeJSONBody(body, &upd); err != nil {
			writeBodyError(w, err)
			return
		}
		if upd.Origin == opts.Origin {
			http.Error(w, fmt.Sprintf("httpapi: peer update claims this node's own origin %q", upd.Origin), http.StatusBadRequest)
			return
		}
		applied, err := srv.MergePeerState(upd.Origin, upd.Epoch, upd.Seq, upd.State)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, topology.PeerAck{Applied: applied})
	})))
	mux.HandleFunc("GET /digest", nm.wrap("peer_digest", func(w http.ResponseWriter, r *http.Request) {
		if !opts.authorized(r) {
			http.Error(w, "httpapi: peer token required", http.StatusUnauthorized)
			return
		}
		var d topology.Digest
		if opts.Export != nil && opts.Epoch != 0 {
			// The self entry advertises the live local version, not the
			// last pushed seq: both are stamps of the same counter, so a
			// sibling holding the last push sees a gap exactly when local
			// state moved since.
			d.Entries = append(d.Entries, topology.DigestEntry{
				Origin: opts.Origin, Epoch: opts.Epoch, Seq: srv.LocalVersion(),
			})
		}
		for _, c := range srv.PeerStatus().Contributions {
			d.Entries = append(d.Entries, topology.DigestEntry{Origin: c.Origin, Epoch: c.Epoch, Seq: c.Seq})
		}
		writeJSON(w, d)
	}))
	mux.HandleFunc("GET /contrib", nm.wrap("peer_contrib", func(w http.ResponseWriter, r *http.Request) {
		if !opts.authorized(r) {
			http.Error(w, "httpapi: peer token required", http.StatusUnauthorized)
			return
		}
		origin := r.URL.Query().Get("origin")
		if origin == "" {
			http.Error(w, "httpapi: contrib fetch needs an origin query parameter", http.StatusBadRequest)
			return
		}
		if origin == opts.Origin && opts.Export != nil && opts.Epoch != 0 {
			// The version is captured BEFORE the export: the exported
			// content is at least that version, so the puller stores a
			// floor — the race with a concurrent ingest costs a redundant
			// refetch next round, never a missed update.
			version := srv.LocalVersion()
			state := opts.Export()
			// Relay duplicate-guard positions stay local, exactly as on
			// the push path: the puller stores this as OUR contribution
			// and must not inherit our dedup state.
			state.Relays = nil
			writeJSON(w, topology.PeerUpdate{Origin: origin, Epoch: opts.Epoch, Seq: version, State: state})
			return
		}
		pos, state, ok := srv.PeerContribution(origin)
		if !ok {
			http.Error(w, fmt.Sprintf("httpapi: no stored contribution from origin %q", origin), http.StatusNotFound)
			return
		}
		writeJSON(w, topology.PeerUpdate{Origin: origin, Epoch: pos.Epoch, Seq: pos.Seq, State: state})
	}))
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, peers())
	})
	return mux
}

// decodeJSONBody is decodeJSON for callers that already bounded the body
// (peer merges legitimately exceed the single-report limit).
func decodeJSONBody(body io.Reader, v any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("httpapi: bad request body: %w", err)
	}
	return nil
}

// RelayOptions configures a relay handler. The zero value is a plain
// in-memory relay.
type RelayOptions struct {
	// Ingest handles report admission, exactly as on a combined node: nil
	// submits straight to the shuffler, a durable relay wires its persist
	// manager here.
	Ingest Ingestor
	// Checkpoint, when non-nil, enables POST /admin/checkpoint.
	Checkpoint func() error
	// Health, when non-nil, contributes a "persist" section to /healthz.
	Health func() any
	// Admission bounds the ingest routes (nil = unbounded).
	Admission *Admission
	// WALPolicy selects fail-closed (default) or degrade-to-memory when
	// Ingest refuses a write.
	WALPolicy WALPolicy
	// Metrics, when non-nil, instruments the routes, the shuffler and the
	// forwarder on this registry and mounts GET /metrics.
	Metrics *metrics.Registry
	// Shapes are the fleet's model dimensions, advertised on /healthz so
	// agent preflights validate against a relay exactly as against a
	// combined node (a relay holds no model of its own to derive them
	// from).
	Shapes ModelShapes
	// Board reports the relay's bulletin-board registration health on
	// /healthz and the p2b_board_* families, exactly as NodeOptions.Board
	// does on a combined node.
	Board func() topology.HeartbeatStatus
	// Overload, when non-nil, is filled in at construction with the
	// overload snapshot closure, exactly as NodeOptions.Overload.
	Overload *func() OverloadStats
}

// RelayHealth is the relay's /healthz body.
type RelayHealth struct {
	Status     string                    `json:"status"`
	Role       string                    `json:"role"`
	Model      ModelShapes               `json:"model"`
	Downstream string                    `json:"downstream"`
	Forward    topology.ForwardStats     `json:"forward"`
	Overload   *OverloadStats            `json:"overload,omitempty"`
	Board      *topology.HeartbeatStatus `json:"board,omitempty"`
	Persist    any                       `json:"persist,omitempty"`
}

// NewRelayHandler mounts the HTTP surface of a relay node: the full
// /shuffler/ route set (agents cannot tell a relay from a combined node),
// /healthz naming the relay role and the forward counters, optional
// /admin/checkpoint, and /metrics when a registry is given. fwd is the
// forwarder wired as the shuffler's sink; its counters are what /healthz
// and the p2b_forward_* families report.
func NewRelayHandler(shuf *shuffler.Shuffler, fwd *topology.Forwarder, opts RelayOptions) http.Handler {
	ing := opts.Ingest
	if ing == nil {
		ing = shufflerIngestor{shuf}
	}
	var deg *degradingIngestor
	if opts.WALPolicy == WALDegrade && opts.Ingest != nil {
		deg = &degradingIngestor{primary: opts.Ingest, fallback: shufflerIngestor{shuf}}
		ing = deg
	}
	var overload func() OverloadStats
	if opts.Admission != nil || deg != nil {
		overload = func() OverloadStats {
			st := opts.Admission.Stats()
			if deg != nil {
				st.Degraded = deg.degraded.Load()
				st.DegradedOps = deg.degradedOps.Load()
			}
			return st
		}
	}
	if opts.Overload != nil {
		*opts.Overload = overload
	}
	var nm *nodeMetrics
	mux := http.NewServeMux()
	if opts.Metrics != nil {
		nm = newRelayMetrics(opts.Metrics, shuf, fwd, overload, opts.Board)
		mux.Handle("GET /metrics", metrics.Handler(opts.Metrics))
	}
	mux.Handle("/shuffler/", http.StripPrefix("/shuffler", newShufflerHandlerOpts(shuf, ing, opts.Admission, overload, nm)))
	mux.HandleFunc("GET /healthz", nm.wrap("healthz", func(w http.ResponseWriter, r *http.Request) {
		status := RelayHealth{
			Status:     "ok",
			Role:       string(topology.RoleRelay),
			Model:      opts.Shapes,
			Downstream: fwd.Downstream(),
			Forward:    fwd.Stats(),
		}
		if overload != nil {
			ov := overload()
			status.Overload = &ov
			if ov.Degraded {
				status.Status = "degraded"
			}
		}
		if opts.Board != nil {
			bs := opts.Board()
			status.Board = &bs
		}
		if opts.Health != nil {
			status.Persist = opts.Health()
		}
		writeJSON(w, status)
	}))
	if opts.Checkpoint != nil {
		mux.HandleFunc("POST /admin/checkpoint", func(w http.ResponseWriter, r *http.Request) {
			if err := opts.Checkpoint(); err != nil {
				http.Error(w, fmt.Sprintf("httpapi: checkpoint failed: %v", err), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		})
	}
	return mux
}
