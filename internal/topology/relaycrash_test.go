// The in-process version of the relay-crash CI check: a durable relay
// that crashes mid-stream and restarts must resume its persisted
// (epoch, seq) forwarding cursor, so its WAL-tail re-forwards land in the
// analyzer's same-epoch duplicate guard instead of double-counting — and
// the fleet model stays byte-identical to an uninterrupted run.
//
// The exactness conditions are the equivalence test's: integral {0,1}
// rewards, uniform one-shuffler-batch submissions, single-shard servers.
package topology_test

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"p2b/internal/httpapi"
	"p2b/internal/persist"
	"p2b/internal/rng"
	"p2b/internal/shuffler"
	"p2b/internal/topology"
	"p2b/internal/transport"
)

func newTestServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// durableRelay is one boot of a relay process: a forwarder whose cursor
// lives in dir, fed through the persist manager like p2bnode wires it.
type durableRelay struct {
	fwd  *topology.Forwarder
	shuf *shuffler.Shuffler
	mgr  *persist.Manager
}

func bootRelay(t *testing.T, dir, downstream string, seed uint64) *durableRelay {
	t.Helper()
	fwd, err := topology.NewForwarder(downstream, topology.ForwarderOptions{
		Origin: "relay-1", RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	shuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, fwd, rng.New(seed))
	mgr, err := persist.Open(dir, shuf, eqServer(), persist.Options{
		SyncInterval: 0, // per-append fsync, the relay-crash CI setting
		Cursor:       fwd,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd.SetSync(mgr.SyncWAL)
	return &durableRelay{fwd: fwd, shuf: shuf, mgr: mgr}
}

// crash abandons the boot the way a kill -9 would: no final flush, no
// shutdown checkpoint. (The WAL needs no sync — every append already
// fsynced.)
func (r *durableRelay) crash(t *testing.T) {
	t.Helper()
	if err := r.mgr.Close(); err != nil {
		t.Fatal(err)
	}
}

func (r *durableRelay) submit(t *testing.T, batches [][]transport.Tuple) {
	t.Helper()
	for _, b := range batches {
		if err := r.mgr.SubmitTuples(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRelayCrashRestartResumesPersistedCursor(t *testing.T) {
	batches := eqBatches(9, 123)
	part1, part2, part3 := batches[:3], batches[3:6], batches[6:]

	// Reference: one combined node ingests the full stream uninterrupted.
	refSrv := eqServer()
	refShuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, refSrv, rng.New(5))
	for _, b := range batches {
		refShuf.SubmitTuples(b)
	}

	// The analyzer stays up across every relay crash, so its in-memory
	// (origin, epoch, seq) duplicate guard is what the resumed cursor must
	// line up with.
	aSrv := eqServer()
	aShuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, aSrv, rng.New(6))
	a := newTestServer(t, httpapi.NewNodeHandlerOpts(aShuf, aSrv, httpapi.NodeOptions{
		Role: string(topology.RoleAnalyzer),
		Peer: &httpapi.PeerOptions{Origin: "analyzer-1"},
	}))

	dir := filepath.Join(t.TempDir(), "relay")

	// Boot 1: first contact between this data dir and a forwarder. Open
	// must write the minted epoch to the WAL before traffic.
	boot1 := bootRelay(t, dir, a.URL, 10)
	if boot1.mgr.Recovery().CursorRestored {
		t.Fatal("boot 1 claims a restored cursor on an empty data dir")
	}
	boot1.submit(t, part1)
	epoch1, seq1 := boot1.fwd.Cursor()
	if seq1 != uint64(len(part1)) {
		t.Fatalf("boot 1 cursor seq = %d, want %d", seq1, len(part1))
	}
	boot1.crash(t)

	// Boot 2: no checkpoint exists, so the cursor comes from the WAL's
	// RecordCursor and the full tail re-forwards — every batch a duplicate.
	boot2 := bootRelay(t, dir, a.URL, 11)
	if !boot2.mgr.Recovery().CursorRestored {
		t.Fatal("boot 2 minted a fresh epoch instead of restoring the persisted cursor")
	}
	if epoch2, seq2 := boot2.fwd.Cursor(); epoch2 != epoch1 || seq2 != seq1 {
		t.Fatalf("boot 2 cursor = (%d, %d), want the persisted (%d, %d)", epoch2, seq2, epoch1, seq1)
	}
	if st := boot2.fwd.Stats(); st.Duplicates != int64(len(part1)) || st.Dropped != 0 {
		t.Fatalf("boot 2 re-forward stats = %+v, want %d duplicate-acked batches", st, len(part1))
	}
	boot2.submit(t, part2)
	// A mid-run checkpoint snapshots the cursor and prunes the WAL (and
	// with it the RecordCursor), so boot 3 exercises the checkpoint path.
	if err := boot2.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	boot2.crash(t)

	// Boot 3: the cursor comes from the checkpoint alone.
	boot3 := bootRelay(t, dir, a.URL, 12)
	if !boot3.mgr.Recovery().CursorRestored {
		t.Fatal("boot 3 minted a fresh epoch instead of restoring the checkpointed cursor")
	}
	if epoch3, seq3 := boot3.fwd.Cursor(); epoch3 != epoch1 || seq3 != uint64(len(part1)+len(part2)) {
		t.Fatalf("boot 3 cursor = (%d, %d), want (%d, %d)", epoch3, seq3, epoch1, len(part1)+len(part2))
	}
	boot3.submit(t, part3)
	boot3.crash(t)

	// The headline: despite two crashes and a full-tail re-forward, the
	// analyzer's model is byte-identical to the uninterrupted reference.
	refHTTP := newTestServer(t, httpapi.NewNodeHandlerOpts(refShuf, refSrv, httpapi.NodeOptions{}))
	want := fetchModel(t, refHTTP.URL)
	if got := fetchModel(t, a.URL); got != want {
		t.Errorf("analyzer model diverged from the uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// Non-vacuity: exactly the 9 distinct batches were applied, and the
	// crash really produced retransmits for the guard to absorb.
	_, _, applied, dups := aSrv.PeerCounters()
	if applied != int64(len(batches)) {
		t.Fatalf("analyzer applied %d relay batches, want exactly %d (a miscounted batch breaks exactly-once)", applied, len(batches))
	}
	if dups != int64(len(part1)) {
		t.Fatalf("analyzer saw %d duplicate batches, want %d — the crash-replay never happened", dups, len(part1))
	}
}

// Without a persisted cursor the same scenario double-counts: pin the
// counterfactual so the test above cannot pass vacuously. A relay whose
// data dir is wiped between boots re-forwards its input under a fresh
// epoch, and the analyzer counts it again — the exact gap the durable
// cursor closes.
func TestRelayCursorWipedDataDirDoubleCounts(t *testing.T) {
	batches := eqBatches(2, 321)

	aSrv := eqServer()
	aShuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, aSrv, rng.New(6))
	a := newTestServer(t, httpapi.NewNodeHandlerOpts(aShuf, aSrv, httpapi.NodeOptions{
		Role: string(topology.RoleAnalyzer),
		Peer: &httpapi.PeerOptions{Origin: "analyzer-1"},
	}))

	base := t.TempDir()
	for boot, dir := range []string{filepath.Join(base, "a"), filepath.Join(base, "b")} {
		r := bootRelay(t, dir, a.URL, 20+uint64(boot))
		r.submit(t, batches)
		r.crash(t)
	}

	if _, _, applied, _ := aSrv.PeerCounters(); applied != int64(2*len(batches)) {
		t.Fatalf("analyzer applied %d batches, want %d: without a shared cursor the epochs differ and nothing deduplicates", applied, 2*len(batches))
	}
}
