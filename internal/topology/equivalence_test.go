// The in-process version of the topology-equivalence CI check: a
// partitioned fleet — two relays forwarding to two peered analyzers — must
// converge to the byte-identical model a single combined node computes
// over the same input.
//
// The exactness conditions (see DESIGN.md "Multi-node topology"):
// integral rewards and integer-valued sums make every accumulator addition
// exact, so addition is associative and fold order cannot matter; uniform
// batches keep the crowd-blending threshold from dropping different
// multisets on different nodes; -shards 1 removes scheduling
// nondeterminism inside each server.
package topology_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"p2b/internal/httpapi"
	"p2b/internal/metrics"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/topology"
	"p2b/internal/transport"
)

const (
	eqK, eqArms, eqD = 16, 4, 3
	eqBatch, eqThr   = 8, 4
)

func eqServer() *server.Server {
	return server.New(server.Config{K: eqK, Arms: eqArms, D: eqD, Alpha: 1, Seed: 1, Shards: 1})
}

// eqBatches builds uniform batches: every tuple in a batch shares one
// (code, action) pair, so the per-batch crowd count is the batch size and
// the threshold never drops anything — the kept multiset is identical no
// matter which shuffler processed the batch. Rewards are {0,1}: integral,
// so sums are exact.
func eqBatches(n int, seed uint64) [][]transport.Tuple {
	r := rng.New(seed)
	out := make([][]transport.Tuple, n)
	for i := range out {
		code, action := r.IntN(eqK), r.IntN(eqArms)
		b := make([]transport.Tuple, eqBatch)
		for j := range b {
			b[j] = transport.Tuple{Code: code, Action: action, Reward: float64(r.IntN(2))}
		}
		out[i] = b
	}
	return out
}

// submit posts one batch over the binary wire and flushes, mirroring how
// the equivalence script drives real processes phase by phase.
func submit(t *testing.T, nodeURL string, batches [][]transport.Tuple) {
	t.Helper()
	client := httpapi.NewNodeClient(nodeURL)
	for _, b := range batches {
		for _, tup := range b {
			if err := client.Report(transport.Envelope{Tuple: tup}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
}

func fetchModel(t *testing.T, nodeURL string) string {
	t.Helper()
	resp, err := http.Get(nodeURL + "/server/model/tabular")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /server/model/tabular: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestPartitionedFleetMatchesSingleNodeByteForByte(t *testing.T) {
	batches := eqBatches(12, 77)
	partA, partB := batches[:6], batches[6:]

	// Reference: one combined node sees everything.
	singleSrv := eqServer()
	singleShuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, singleSrv, rng.New(5))
	single := httptest.NewServer(httpapi.NewNodeHandlerOpts(singleShuf, singleSrv, httpapi.NodeOptions{}))
	defer single.Close()
	submit(t, single.URL, partA)
	submit(t, single.URL, partB)

	// Fleet: two analyzers peered with each other...
	a1Srv, a2Srv := eqServer(), eqServer()
	a1Shuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, a1Srv, rng.New(6))
	a2Shuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, a2Srv, rng.New(7))
	a1 := httptest.NewServer(httpapi.NewNodeHandlerOpts(a1Shuf, a1Srv, httpapi.NodeOptions{
		Metrics: metrics.NewRegistry(),
		Role:    string(topology.RoleAnalyzer),
		Peer:    &httpapi.PeerOptions{Origin: "analyzer-1"},
	}))
	defer a1.Close()
	a2 := httptest.NewServer(httpapi.NewNodeHandlerOpts(a2Shuf, a2Srv, httpapi.NodeOptions{
		Metrics: metrics.NewRegistry(),
		Role:    string(topology.RoleAnalyzer),
		Peer:    &httpapi.PeerOptions{Origin: "analyzer-2"},
	}))
	defer a2.Close()

	// ...fed by two relays, one per partition, each forwarding to its own
	// analyzer.
	for i, tc := range []struct {
		origin     string
		downstream string
		part       [][]transport.Tuple
		seed       uint64
	}{
		{"relay-1", a1.URL, partA, 8},
		{"relay-2", a2.URL, partB, 9},
	} {
		fwd, err := topology.NewForwarder(tc.downstream, topology.ForwarderOptions{
			Origin: tc.origin, RetryBase: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		relayShuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, fwd, rng.New(10+uint64(i)))
		relay := httptest.NewServer(httpapi.NewRelayHandler(relayShuf, fwd, httpapi.RelayOptions{
			Shapes: httpapi.ModelShapes{K: eqK, Arms: eqArms, D: eqD},
		}))
		defer relay.Close()
		submit(t, relay.URL, tc.part)
		if st := fwd.Stats(); st.Dropped != 0 {
			t.Fatalf("%s dropped %d batches", tc.origin, st.Dropped)
		}
	}

	// Anti-entropy: drive one deterministic sync cycle in each direction
	// (the daemonized loop does exactly this on a timer).
	for _, p := range []struct {
		origin string
		from   *server.Server
		to     string
	}{
		{"analyzer-1", a1Srv, a2.URL},
		{"analyzer-2", a2Srv, a1.URL},
	} {
		peering, err := topology.NewPeering(topology.PeeringOptions{
			Origin:       p.origin,
			Peers:        []string{p.to},
			Export:       p.from.ExportState,
			LocalVersion: p.from.LocalVersion,
		})
		if err != nil {
			t.Fatal(err)
		}
		peering.Sync()
		for _, st := range peering.Status() {
			if st.Errors != 0 || st.Pushes != 1 {
				t.Fatalf("%s -> %s sync = %+v", p.origin, p.to, st)
			}
		}
	}

	// Every analyzer now serves the single-node model, byte for byte.
	want := fetchModel(t, single.URL)
	if got := fetchModel(t, a1.URL); got != want {
		t.Errorf("analyzer-1 model diverged from single node:\n got %s\nwant %s", got, want)
	}
	if got := fetchModel(t, a2.URL); got != want {
		t.Errorf("analyzer-2 model diverged from single node:\n got %s\nwant %s", got, want)
	}

	// Non-vacuity: the fleet really did split the work.
	if n := a1Srv.Stats().TuplesIngested; n == 0 || n == 6*eqBatch+6*eqBatch {
		t.Fatalf("analyzer-1 locally ingested %d tuples; the partition did not split", n)
	}
	ma, _, rb, _ := a1Srv.PeerCounters()
	if ma == 0 || rb == 0 {
		t.Fatalf("equivalence was vacuous: merges=%d relay batches=%d", ma, rb)
	}
}

// A relay crash-restart resuming its WAL tail under a FRESH epoch is the
// documented at-least-once gap: the analyzer cannot distinguish the replay
// from new data. This test pins the SAFE variant — same epoch — where the
// guard does deduplicate, so the gap stays a relay-restart property and
// never a steady-state one.
func TestRelayRetransmitSameEpochIsDeduplicated(t *testing.T) {
	aSrv := eqServer()
	aShuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: 0}, aSrv, rng.New(6))
	a := httptest.NewServer(httpapi.NewNodeHandlerOpts(aShuf, aSrv, httpapi.NodeOptions{
		Role: string(topology.RoleAnalyzer),
		Peer: &httpapi.PeerOptions{Origin: "analyzer-1"},
	}))
	defer a.Close()

	batches := eqBatches(3, 5)
	deliverAll := func() {
		fwd, err := topology.NewForwarder(a.URL, topology.ForwarderOptions{
			Origin: "relay-1", Epoch: 99, RetryBase: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			fwd.Deliver(b)
		}
	}
	deliverAll()
	want := fetchModel(t, a.URL)
	deliverAll() // the "restarted relay re-forwards its whole log" case
	if got := fetchModel(t, a.URL); got != want {
		t.Fatal("re-forwarded batches changed the model: duplicate guard failed")
	}
	_, _, rb, rd := aSrv.PeerCounters()
	if rb != 3 || rd != 3 {
		t.Fatalf("relay counters = applied %d duplicates %d, want 3/3", rb, rd)
	}
}
