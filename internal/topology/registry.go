// The bulletin board: an HTTP registry of live nodes. Deliberately tiny —
// it holds a static seed topology plus dynamically announced nodes with a
// TTL, and it never participates in the data path. Losing the board stops
// new agents from discovering relays; it never loses a report.
package topology

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Registry is the bulletin board's state: static seed nodes (from config,
// never expiring) plus announced nodes that expire when their heartbeats
// stop. It is safe for concurrent use.
type Registry struct {
	ttl time.Duration
	now func() time.Time // injectable clock for TTL tests

	mu     sync.Mutex
	static []Node
	live   map[string]announcement
}

type announcement struct {
	node Node
	at   time.Time
}

// DefaultTTL is how long an announced node stays on the board without a
// fresh heartbeat. Heartbeats at TTL/3 (what Heartbeat sends once
// registered) survive two consecutive losses.
const DefaultTTL = 30 * time.Second

// NewRegistry returns a board seeded with the given static document
// (may be nil for an empty board). ttl <= 0 selects DefaultTTL.
func NewRegistry(static *Document, ttl time.Duration) (*Registry, error) {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	r := &Registry{ttl: ttl, now: time.Now, live: make(map[string]announcement)}
	if static != nil {
		if err := static.Validate(); err != nil {
			return nil, err
		}
		r.static = append(r.static, static.Nodes...)
	}
	return r, nil
}

// Register announces (or heartbeats) one node: the entry replaces any
// previous announcement under the same name and starts a fresh TTL window.
// A name colliding with a static seed node is rejected — static entries
// are operator config and outrank announcements.
func (r *Registry) Register(n Node) error {
	if err := n.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.static {
		if s.Name == n.Name {
			return fmt.Errorf("topology: node name %q is statically configured and cannot be re-announced", n.Name)
		}
	}
	r.live[n.Name] = announcement{node: n, at: r.now()}
	return nil
}

// Document returns the board's current view: static nodes plus every
// announcement younger than the TTL, expired entries dropped. Announced
// nodes carry the board's last-heard timestamp so consumers can judge
// staleness without trusting the announcing node's clock.
func (r *Registry) Document() *Document {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := &Document{Nodes: append([]Node(nil), r.static...)}
	cutoff := r.now().Add(-r.ttl)
	for name, a := range r.live {
		if a.at.Before(cutoff) {
			delete(r.live, name)
			continue
		}
		n := a.node
		n.HeartbeatUnixNano = a.at.UnixNano()
		d.Nodes = append(d.Nodes, n)
	}
	// Map order would otherwise leak into the served document: two
	// fetches of the same board state must be byte-identical, and
	// agents index into this list when picking a relay.
	sort.Slice(d.Nodes, func(i, j int) bool { return d.Nodes[i].Name < d.Nodes[j].Name })
	return d
}

// Handler returns the board's HTTP surface:
//
//	GET  /topology           the current Document (JSON)
//	POST /topology/register  announce/heartbeat one Node (JSON body)
//	GET  /healthz            liveness
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topology", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Document())
	})
	mux.HandleFunc("POST /topology/register", func(w http.ResponseWriter, req *http.Request) {
		var n Node
		dec := json.NewDecoder(io.LimitReader(req.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&n); err != nil {
			http.Error(w, fmt.Sprintf("topology: bad node body: %v", err), http.StatusBadRequest)
			return
		}
		if err := r.Register(n); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
	})
	return mux
}

// FetchDocument downloads and validates the board's topology from
// boardURL (the base URL of a running p2bboard or -registry node).
func FetchDocument(boardURL string) (*Document, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(boardURL + "/topology")
	if err != nil {
		return nil, fmt.Errorf("topology: fetching board: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("topology: board answered %d: %s", resp.StatusCode, msg)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("topology: reading board response: %w", err)
	}
	return ParseDocument(data)
}

// RegisterNode announces one node on the board at boardURL.
func RegisterNode(boardURL string, n Node) error {
	blob, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("topology: encoding node: %w", err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(boardURL+"/topology/register", "application/json", bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("topology: registering with board: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("topology: board refused registration (%d): %s", resp.StatusCode, msg)
	}
	return nil
}
