// Heartbeat and registry liveness edges: startup registration retries
// until the board appears, the degrade probe rides every announcement,
// expiry windows restart cleanly, and the Alive filter steers discovery
// away from dead or limping nodes.
package topology

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

func TestHeartbeatRetriesUntilBoardAppears(t *testing.T) {
	reg, err := NewRegistry(nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The board is "down" for the first few registrations: the gate
	// answers 503 until opened, simulating a node that boots before its
	// board out of a rack power cycle.
	var boardUp atomic.Bool
	handler := reg.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !boardUp.Load() {
			http.Error(w, "board still booting", http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer ts.Close()

	hb := NewHeartbeat(ts.URL, Node{Name: "relay-1", Role: RoleRelay, URL: "http://r"},
		HeartbeatOptions{TTL: time.Second, Logf: t.Logf})
	hb.Start()
	defer hb.Stop()

	// The startup backoff must keep retrying on its own — no beat ticker
	// is running yet — and the counters must show the failed attempts.
	waitFor(t, 5*time.Second, func() bool { return hb.Status().Failures >= 2 },
		"heartbeat did not retry against an unreachable board")
	if st := hb.Status(); st.Registered || st.LastError == "" || st.LastOKUnixNano != 0 {
		t.Fatalf("status while board down = %+v, want unregistered with a last error", st)
	}

	boardUp.Store(true)
	waitFor(t, 5*time.Second, func() bool { return hb.Status().Registered },
		"heartbeat never registered after the board came up")
	st := hb.Status()
	if st.LastError != "" || st.LastOKUnixNano == 0 || st.Failures == 0 || st.Attempts <= st.Failures {
		t.Fatalf("status after recovery = %+v, want a success recorded on top of the failures", st)
	}
	if got := names(reg.Document().Nodes); !reflect.DeepEqual(got, []string{"relay-1"}) {
		t.Fatalf("board after recovery = %v, want the announced node", got)
	}
}

func TestHeartbeatAnnouncesDegradeState(t *testing.T) {
	reg, err := NewRegistry(nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	var degraded atomic.Bool
	degraded.Store(true)
	// A tiny TTL makes the steady-state beat (TTL/3) fast enough to
	// observe the flag flip within the test budget.
	hb := NewHeartbeat(ts.URL, Node{Name: "node-1", Role: RoleCombined, URL: "http://n"},
		HeartbeatOptions{TTL: 150 * time.Millisecond, Logf: t.Logf, Degraded: degraded.Load})
	hb.Start()
	defer hb.Stop()

	waitFor(t, 5*time.Second, func() bool {
		nodes := reg.Document().Nodes
		return len(nodes) == 1 && nodes[0].Degraded
	}, "board never saw the degraded announcement")

	// The probe is sampled per announcement: recovery must propagate on
	// the next beat without restarting the heartbeat.
	degraded.Store(false)
	waitFor(t, 5*time.Second, func() bool {
		nodes := reg.Document().Nodes
		return len(nodes) == 1 && !nodes[0].Degraded
	}, "board never saw the node recover from degraded")
}

// Re-registration after TTL expiry starts a fresh window, and a node whose
// heartbeat resumes after expiry reappears exactly once — expiry deleted
// the old entry, so resumption is a clean re-announcement, not a merge.
func TestRegistryExpiryWindowRestartsOnReRegistration(t *testing.T) {
	reg, err := NewRegistry(nil, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	reg.now = func() time.Time { return clock }

	n := Node{Name: "relay-1", Role: RoleRelay, URL: "http://r"}
	if err := reg.Register(n); err != nil {
		t.Fatal(err)
	}

	// Heartbeats stop; the entry expires.
	clock = clock.Add(31 * time.Second)
	if got := len(reg.Document().Nodes); got != 0 {
		t.Fatalf("expired node still on the board: %v", names(reg.Document().Nodes))
	}

	// The heartbeat resumes: the node reappears exactly once.
	resumeAt := clock
	if err := reg.Register(n); err != nil {
		t.Fatal(err)
	}
	doc := reg.Document()
	if got := names(doc.Nodes); !reflect.DeepEqual(got, []string{"relay-1"}) {
		t.Fatalf("board after resumed heartbeat = %v, want exactly one relay-1", got)
	}
	// The fresh window runs from the resumption, not the original
	// registration: just short of resumeAt+TTL the node is alive...
	clock = resumeAt.Add(29 * time.Second)
	if got := names(reg.Document().Nodes); !reflect.DeepEqual(got, []string{"relay-1"}) {
		t.Fatalf("re-registered node expired inside its fresh window: %v", got)
	}
	// ...and past it, it expires again.
	clock = resumeAt.Add(31 * time.Second)
	if got := len(reg.Document().Nodes); got != 0 {
		t.Fatalf("re-registered node outlived its fresh window: %v", names(reg.Document().Nodes))
	}
}

// The board stamps its last-heard time on announced nodes, and the stamp
// is byte-identical between heartbeats — repeated fetches of unchanged
// board state must compare equal.
func TestDocumentStampsHeartbeatTime(t *testing.T) {
	reg, err := NewRegistry(&Document{Nodes: []Node{{Name: "static", Role: RoleAnalyzer, URL: "http://s"}}}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	reg.now = func() time.Time { return clock }

	if err := reg.Register(Node{Name: "live", Role: RoleRelay, URL: "http://r"}); err != nil {
		t.Fatal(err)
	}
	registeredAt := clock
	clock = clock.Add(5 * time.Second)
	first := reg.Document()
	clock = clock.Add(5 * time.Second)
	second := reg.Document()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("documents between heartbeats differ:\n first %+v\nsecond %+v", first, second)
	}
	var live, static Node
	for _, n := range first.Nodes {
		switch n.Name {
		case "live":
			live = n
		case "static":
			static = n
		}
	}
	if live.HeartbeatUnixNano != registeredAt.UnixNano() {
		t.Fatalf("live node stamped %d, want the registration time %d", live.HeartbeatUnixNano, registeredAt.UnixNano())
	}
	if static.HeartbeatUnixNano != 0 {
		t.Fatalf("static node stamped %d, want 0 (static entries have no liveness signal)", static.HeartbeatUnixNano)
	}
}

func TestAliveFiltersDegradedAndStale(t *testing.T) {
	now := time.Unix(2000, 0)
	fresh := Node{Name: "fresh", Role: RoleRelay, URL: "http://f", HeartbeatUnixNano: now.Add(-5 * time.Second).UnixNano()}
	stale := Node{Name: "stale", Role: RoleRelay, URL: "http://s", HeartbeatUnixNano: now.Add(-time.Minute).UnixNano()}
	degraded := Node{Name: "limping", Role: RoleRelay, URL: "http://d", Degraded: true, HeartbeatUnixNano: now.UnixNano()}
	static := Node{Name: "static", Role: RoleRelay, URL: "http://c"} // no heartbeat: operator config

	got := Alive([]Node{fresh, stale, degraded, static}, 30*time.Second, now)
	if want := []Node{fresh, static}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Alive = %v, want fresh + static", names(got))
	}

	// maxAge 0 disables the age check but still drops degraded nodes.
	got = Alive([]Node{stale, degraded}, 0, now)
	if want := []Node{stale}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Alive with maxAge 0 = %v, want the stale-but-not-degraded node", names(got))
	}

	// A uniformly unhealthy fleet falls back to the full candidate list:
	// an attempt against a limping node beats refusing to deliver at all.
	all := []Node{degraded}
	if got := Alive(all, 30*time.Second, now); !reflect.DeepEqual(got, all) {
		t.Fatalf("Alive over an all-unhealthy fleet = %v, want the original list back", names(got))
	}
}
