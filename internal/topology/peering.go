// Analyzer peering: periodic anti-entropy pushes of each analyzer's LOCAL
// model contribution to its sibling analyzers, plus an optional pull-based
// digest round that heals what the pushes missed.
//
// The exchange is state replacement, not delta shipping: every push
// carries the full merged export of the sender's own shards (what the
// sender ingested itself — relay batches and direct reports — never what
// it learned from peers), tagged (origin, epoch, seq). The receiver
// stores at most one contribution per origin and replaces it when a
// newer (epoch, seq) arrives. Replacement is what makes the protocol
// idempotent and order-independent: applying the same update twice, or
// applying updates out of order, converges to the same stored state with
// no double counting and no floating-point subtraction anywhere.
//
// Pushes alone leave a gap: an analyzer partitioned away while its
// siblings pushed converges only when the siblings' NEXT pushes happen to
// arrive — and a sibling whose local state stopped changing skips pushes
// entirely, so the partitioned node could stay behind forever. The digest
// round closes it from the receiving side. On its own schedule, each
// analyzer asks every peer for a digest — the per-origin (epoch, seq)
// high-water vector of everything the peer can serve — compares it
// against what it already holds, and fetches only the missing or newer
// contributions. Because digests also list the peer's STORED third-party
// contributions, healing is transitive: an analyzer that can reach only
// one sibling still converges on the whole fleet's state through it.
package topology

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"p2b/internal/server"
)

// PeerUpdate is the JSON body of POST /peer/merge: one analyzer's local
// contribution to the fleet model.
type PeerUpdate struct {
	// Origin names the sending analyzer's contribution stream.
	Origin string `json:"origin"`
	// Epoch is the sender's boot nonce; sequence numbers reset with it.
	Epoch uint64 `json:"epoch"`
	// Seq increases with every push within one epoch. A receiver holding
	// (epoch, seq') with seq' >= seq ignores the update as stale.
	Seq uint64 `json:"seq"`
	// State is the sender's merged local accumulator export — the same
	// additive sufficient statistics a checkpoint stores.
	State *server.PersistedState `json:"state"`
}

// Digest is the body of GET /peer/digest: the per-origin (epoch, seq)
// high-water vector of every contribution the serving analyzer can hand
// out on /peer/contrib — its own live state plus the sibling
// contributions it has stored.
type Digest struct {
	Entries []DigestEntry `json:"entries"`
}

// DigestEntry is one origin's advertised replication position.
type DigestEntry struct {
	Origin string `json:"origin"`
	Epoch  uint64 `json:"epoch"`
	Seq    uint64 `json:"seq"`
}

// SyncStatus is one peer's outbound anti-entropy health, reported on
// /healthz and the stats routes of the pushing node.
type SyncStatus struct {
	Target    string `json:"target"`               // peer base URL
	Pushes    int64  `json:"pushes"`               // successful pushes
	Skipped   int64  `json:"skipped"`              // cycles skipped because local state was unchanged
	Errors    int64  `json:"errors"`               // failed pushes
	LastError string `json:"last_error,omitempty"` // most recent failure, cleared on success
	// LastSyncUnixNano is when the last successful push completed
	// (0 = never). Readers derive peer-merge lag from it.
	LastSyncUnixNano int64 `json:"last_sync_unix_nano"`

	// Digest-round (pull) health, all zero when pulls are disabled.
	Pulls      int64 `json:"pulls,omitempty"`       // completed digest rounds against this peer
	PullErrors int64 `json:"pull_errors,omitempty"` // digest rounds that failed (fetch or apply)
	Fetched    int64 `json:"fetched,omitempty"`     // contributions fetched and applied via digest rounds
}

// PeeringOptions configures an analyzer's outbound anti-entropy loop.
type PeeringOptions struct {
	// Origin names this analyzer's contribution stream. Required.
	Origin string
	// Epoch qualifies push sequence numbers across restarts. Zero selects
	// a fresh boot nonce.
	Epoch uint64
	// Peers are the sibling analyzers' base URLs. Required (non-empty).
	Peers []string
	// Interval is the push period (default 2s). Convergence lag between
	// analyzers is bounded by roughly one interval plus transfer time.
	Interval time.Duration
	// Token, when non-empty, authenticates pushes as a bearer token.
	Token string
	// Export returns the analyzer's current LOCAL state (its own shards
	// only, never peer contributions — exporting those would echo every
	// peer's data back at it through third parties, and while replacement
	// semantics keep that correct, it wastes bandwidth and muddies origin
	// accounting). Required.
	Export func() *server.PersistedState
	// LocalVersion returns a counter that changes whenever local state
	// changes; unchanged versions skip the push. It doubles as the push
	// sequence number: a push is stamped with the version captured BEFORE
	// the export, so the advertised seq is a floor on the exported content
	// and matches what the receiver's digest later reports for this
	// origin. Nil pushes every cycle under a private counter — fine for
	// push-only fleets, but the digest round requires it (the /peer/digest
	// self entry is stamped from the same counter, and mixed stamping
	// would let a digest under-report a pushed position and mask a
	// missing fetch).
	LocalVersion func() uint64
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Logf receives push failures. Nil discards them.
	Logf func(format string, args ...any)

	// The digest round (pull-based anti-entropy). Zero DigestInterval
	// disables it and the remaining fields are ignored.

	// DigestInterval is the pull period. Each round asks every peer for
	// its digest and fetches only the contributions this node is missing,
	// so a partitioned analyzer converges on its own schedule even if no
	// peer ever pushes to it again.
	DigestInterval time.Duration
	// Local returns the per-origin positions this node already holds (its
	// stored sibling contributions; its own origin is never fetched, so
	// listing it is optional). Required when DigestInterval > 0.
	Local func() []DigestEntry
	// Apply stores one fetched contribution, with the same
	// replace-if-newer semantics as an inbound push (wire it to
	// server.MergePeerState). false means the update was already covered.
	// Required when DigestInterval > 0.
	Apply func(PeerUpdate) (bool, error)
}

// Peering runs the outbound anti-entropy loop of one analyzer.
type Peering struct {
	opts   PeeringOptions
	client *http.Client

	mu     sync.Mutex
	seq    uint64
	states map[string]*SyncStatus // keyed by peer URL
	lastV  map[string]uint64      // local version last pushed per peer
	pushed map[string]bool        // whether lastV entry is valid

	stop chan struct{}
	done chan struct{}
}

// NewPeering validates opts and returns a peering loop; call Start to run
// it. Sync (one push cycle) can also be driven manually, which is what
// deterministic tests do.
func NewPeering(opts PeeringOptions) (*Peering, error) {
	if opts.Origin == "" {
		return nil, fmt.Errorf("topology: peering needs an origin name")
	}
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("topology: peering needs at least one peer URL")
	}
	if opts.Export == nil {
		return nil, fmt.Errorf("topology: peering needs an Export func")
	}
	if opts.DigestInterval > 0 && (opts.Local == nil || opts.Apply == nil) {
		return nil, fmt.Errorf("topology: the digest round needs Local and Apply funcs")
	}
	if opts.Epoch == 0 {
		opts.Epoch = BootEpoch()
	}
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	p := &Peering{
		opts:   opts,
		client: client,
		states: make(map[string]*SyncStatus, len(opts.Peers)),
		lastV:  make(map[string]uint64, len(opts.Peers)),
		pushed: make(map[string]bool, len(opts.Peers)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, peer := range opts.Peers {
		p.states[peer] = &SyncStatus{Target: peer}
	}
	return p, nil
}

// Epoch returns the boot nonce qualifying this peering's push sequence
// numbers. A node serving its own contribution on /peer/contrib must
// advertise the same epoch, so a position learned from a push and one
// learned from a digest compare as the same stream.
func (p *Peering) Epoch() uint64 { return p.opts.Epoch }

// Start launches the periodic loop: pushes every Interval, and — when the
// digest round is enabled — pulls every DigestInterval. One goroutine
// drives both, so a push cycle and a pull round never interleave. Stop it
// with Close.
func (p *Peering) Start() {
	go func() {
		defer close(p.done)
		push := time.NewTicker(p.opts.Interval)
		defer push.Stop()
		var pull <-chan time.Time
		if p.opts.DigestInterval > 0 {
			t := time.NewTicker(p.opts.DigestInterval)
			defer t.Stop()
			pull = t.C
		}
		for {
			select {
			case <-p.stop:
				return
			case <-push.C:
				p.Sync()
			case <-pull:
				p.DigestSync()
			}
		}
	}()
}

// Close stops the push loop after finishing any in-flight cycle. A final
// Sync before Close hands the peers everything local.
func (p *Peering) Close() {
	select {
	case <-p.stop:
		return
	default:
	}
	close(p.stop)
	<-p.done
}

// Sync runs one push cycle: export local state once, send it to every
// peer whose copy is stale. Safe to call concurrently with the background
// loop (cycles serialize on the internal mutex).
func (p *Peering) Sync() {
	p.mu.Lock()
	defer p.mu.Unlock()
	var version uint64
	if p.opts.LocalVersion != nil {
		version = p.opts.LocalVersion()
	}
	var state *server.PersistedState
	var seq uint64
	for _, peer := range p.opts.Peers {
		st := p.states[peer]
		if p.opts.LocalVersion != nil && p.pushed[peer] && p.lastV[peer] == version {
			st.Skipped++
			continue
		}
		if state == nil {
			// One export serves every peer this cycle; the receiving side
			// keys staleness on (epoch, seq), so all peers sharing one seq
			// is exactly right. The stamp is the local version captured
			// ABOVE, before the export: the exported content is at least
			// that version (a concurrent ingest can only add), so the
			// receiver's stored position is a floor and the worst a race
			// costs is one redundant re-push — never a missed update. The
			// digest round's /peer/digest self entry reads the same
			// counter, so pushed and pulled positions agree.
			state = p.opts.Export()
			// Local bookkeeping like relay duplicate-guard positions stays
			// local: a peer stores this update as OUR contribution and must
			// not inherit our dedup state.
			state.Relays = nil
			if p.opts.LocalVersion != nil {
				seq = version
			} else {
				p.seq++
				seq = p.seq
			}
		}
		if err := p.push(peer, seq, state); err != nil {
			st.Errors++
			st.LastError = err.Error()
			if p.opts.Logf != nil {
				p.opts.Logf("topology: peer push to %s: %v", peer, err)
			}
			continue
		}
		st.Pushes++
		st.LastError = ""
		st.LastSyncUnixNano = wallClock().UnixNano()
		p.lastV[peer] = version
		p.pushed[peer] = true
	}
}

func (p *Peering) push(peer string, seq uint64, state *server.PersistedState) error {
	blob, err := json.Marshal(PeerUpdate{
		Origin: p.opts.Origin,
		Epoch:  p.opts.Epoch,
		Seq:    seq,
		State:  state,
	})
	if err != nil {
		return fmt.Errorf("topology: encoding peer update: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, peer+"/peer/merge", bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("topology: building merge request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if p.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+p.opts.Token)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	// A stale ack (applied=false) is success: the peer already holds a
	// contribution at least this new, which is all anti-entropy wants.
	_, err = decodePeerAck(resp)
	return err
}

// DigestSync runs one pull round: fetch every peer's digest, diff it
// against the positions this node already holds, and fetch + apply only
// the missing or newer contributions. Safe to call concurrently with the
// background loop and with Sync (rounds serialize on the internal mutex);
// deterministic tests drive it manually.
func (p *Peering) DigestSync() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.opts.Local == nil || p.opts.Apply == nil {
		return
	}
	// One holdings snapshot serves the whole round; applied fetches update
	// it so a contribution available from several peers is fetched once.
	held := make(map[string]server.PeerSeq)
	for _, e := range p.opts.Local() {
		held[e.Origin] = server.PeerSeq{Epoch: e.Epoch, Seq: e.Seq}
	}
	for _, peer := range p.opts.Peers {
		st := p.states[peer]
		var digest Digest
		if err := p.getJSON(peer+"/peer/digest", &digest); err != nil {
			st.PullErrors++
			st.LastError = err.Error()
			if p.opts.Logf != nil {
				p.opts.Logf("topology: peer digest from %s: %v", peer, err)
			}
			continue
		}
		failed := false
		for _, e := range digest.Entries {
			if e.Origin == p.opts.Origin {
				// Never fetch our own contribution back: local state is
				// authoritative for it, and a peer's stored copy is at best
				// an older echo.
				continue
			}
			if pos, ok := held[e.Origin]; ok && pos.Covers(e.Epoch, e.Seq) {
				continue
			}
			upd, err := p.fetchContrib(peer, e.Origin)
			if err == nil && upd.Origin != e.Origin {
				err = fmt.Errorf("topology: peer %s served origin %q for a %q contribution fetch", peer, upd.Origin, e.Origin)
			}
			if err == nil {
				var applied bool
				applied, err = p.opts.Apply(upd)
				if err == nil {
					if applied {
						st.Fetched++
					}
					// Covered either way: an applied=false means local state
					// moved past the digest mid-round, which is just as held.
					held[e.Origin] = server.PeerSeq{Epoch: upd.Epoch, Seq: upd.Seq}
				}
			}
			if err != nil {
				failed = true
				st.LastError = err.Error()
				if p.opts.Logf != nil {
					p.opts.Logf("topology: peer contrib %q from %s: %v", e.Origin, peer, err)
				}
			}
		}
		if failed {
			st.PullErrors++
		} else {
			st.Pulls++
		}
	}
}

// fetchContrib retrieves one origin's contribution from peer as the same
// PeerUpdate shape a push carries, so Apply and the inbound merge route
// share semantics exactly.
func (p *Peering) fetchContrib(peer, origin string) (PeerUpdate, error) {
	var upd PeerUpdate
	err := p.getJSON(peer+"/peer/contrib?origin="+url.QueryEscape(origin), &upd)
	return upd, err
}

// getJSON is an authenticated GET + JSON decode against a peer route.
func (p *Peering) getJSON(u string, v any) error {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("topology: building digest request: %w", err)
	}
	if p.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+p.opts.Token)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: status %d: %s", u, resp.StatusCode, msg)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Status returns the per-peer outbound sync status, sorted by target URL.
func (p *Peering) Status() []SyncStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SyncStatus, 0, len(p.states))
	for _, st := range p.states {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}
