// Analyzer peering: periodic anti-entropy pushes of each analyzer's LOCAL
// model contribution to its sibling analyzers.
//
// The exchange is state replacement, not delta shipping: every push
// carries the full merged export of the sender's own shards (what the
// sender ingested itself — relay batches and direct reports — never what
// it learned from peers), tagged (origin, epoch, seq). The receiver
// stores at most one contribution per origin and replaces it when a
// newer (epoch, seq) arrives. Replacement is what makes the protocol
// idempotent and order-independent: applying the same update twice, or
// applying updates out of order, converges to the same stored state with
// no double counting and no floating-point subtraction anywhere.
package topology

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"p2b/internal/server"
)

// PeerUpdate is the JSON body of POST /peer/merge: one analyzer's local
// contribution to the fleet model.
type PeerUpdate struct {
	// Origin names the sending analyzer's contribution stream.
	Origin string `json:"origin"`
	// Epoch is the sender's boot nonce; sequence numbers reset with it.
	Epoch uint64 `json:"epoch"`
	// Seq increases with every push within one epoch. A receiver holding
	// (epoch, seq') with seq' >= seq ignores the update as stale.
	Seq uint64 `json:"seq"`
	// State is the sender's merged local accumulator export — the same
	// additive sufficient statistics a checkpoint stores.
	State *server.PersistedState `json:"state"`
}

// SyncStatus is one peer's outbound anti-entropy health, reported on
// /healthz and the stats routes of the pushing node.
type SyncStatus struct {
	Target    string `json:"target"`               // peer base URL
	Pushes    int64  `json:"pushes"`               // successful pushes
	Skipped   int64  `json:"skipped"`              // cycles skipped because local state was unchanged
	Errors    int64  `json:"errors"`               // failed pushes
	LastError string `json:"last_error,omitempty"` // most recent failure, cleared on success
	// LastSyncUnixNano is when the last successful push completed
	// (0 = never). Readers derive peer-merge lag from it.
	LastSyncUnixNano int64 `json:"last_sync_unix_nano"`
}

// PeeringOptions configures an analyzer's outbound anti-entropy loop.
type PeeringOptions struct {
	// Origin names this analyzer's contribution stream. Required.
	Origin string
	// Epoch qualifies push sequence numbers across restarts. Zero selects
	// a fresh boot nonce.
	Epoch uint64
	// Peers are the sibling analyzers' base URLs. Required (non-empty).
	Peers []string
	// Interval is the push period (default 2s). Convergence lag between
	// analyzers is bounded by roughly one interval plus transfer time.
	Interval time.Duration
	// Token, when non-empty, authenticates pushes as a bearer token.
	Token string
	// Export returns the analyzer's current LOCAL state (its own shards
	// only, never peer contributions — exporting those would echo every
	// peer's data back at it through third parties, and while replacement
	// semantics keep that correct, it wastes bandwidth and muddies origin
	// accounting). Required.
	Export func() *server.PersistedState
	// LocalVersion returns a counter that changes whenever local state
	// changes; unchanged versions skip the push. Nil pushes every cycle.
	LocalVersion func() uint64
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Logf receives push failures. Nil discards them.
	Logf func(format string, args ...any)
}

// Peering runs the outbound anti-entropy loop of one analyzer.
type Peering struct {
	opts   PeeringOptions
	client *http.Client

	mu     sync.Mutex
	seq    uint64
	states map[string]*SyncStatus // keyed by peer URL
	lastV  map[string]uint64      // local version last pushed per peer
	pushed map[string]bool        // whether lastV entry is valid

	stop chan struct{}
	done chan struct{}
}

// NewPeering validates opts and returns a peering loop; call Start to run
// it. Sync (one push cycle) can also be driven manually, which is what
// deterministic tests do.
func NewPeering(opts PeeringOptions) (*Peering, error) {
	if opts.Origin == "" {
		return nil, fmt.Errorf("topology: peering needs an origin name")
	}
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("topology: peering needs at least one peer URL")
	}
	if opts.Export == nil {
		return nil, fmt.Errorf("topology: peering needs an Export func")
	}
	if opts.Epoch == 0 {
		opts.Epoch = uint64(wallClock().UnixNano())
	}
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	p := &Peering{
		opts:   opts,
		client: client,
		states: make(map[string]*SyncStatus, len(opts.Peers)),
		lastV:  make(map[string]uint64, len(opts.Peers)),
		pushed: make(map[string]bool, len(opts.Peers)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, peer := range opts.Peers {
		p.states[peer] = &SyncStatus{Target: peer}
	}
	return p, nil
}

// Start launches the periodic push loop. Stop it with Close.
func (p *Peering) Start() {
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.Sync()
			}
		}
	}()
}

// Close stops the push loop after finishing any in-flight cycle. A final
// Sync before Close hands the peers everything local.
func (p *Peering) Close() {
	select {
	case <-p.stop:
		return
	default:
	}
	close(p.stop)
	<-p.done
}

// Sync runs one push cycle: export local state once, send it to every
// peer whose copy is stale. Safe to call concurrently with the background
// loop (cycles serialize on the internal mutex).
func (p *Peering) Sync() {
	p.mu.Lock()
	defer p.mu.Unlock()
	var version uint64
	if p.opts.LocalVersion != nil {
		version = p.opts.LocalVersion()
	}
	var state *server.PersistedState
	var seq uint64
	for _, peer := range p.opts.Peers {
		st := p.states[peer]
		if p.opts.LocalVersion != nil && p.pushed[peer] && p.lastV[peer] == version {
			st.Skipped++
			continue
		}
		if state == nil {
			// One export serves every peer this cycle; the receiving side
			// keys staleness on (epoch, seq), so all peers sharing one seq
			// is exactly right.
			state = p.opts.Export()
			// Local bookkeeping like relay duplicate-guard positions stays
			// local: a peer stores this update as OUR contribution and must
			// not inherit our dedup state.
			state.Relays = nil
			p.seq++
			seq = p.seq
		}
		if err := p.push(peer, seq, state); err != nil {
			st.Errors++
			st.LastError = err.Error()
			if p.opts.Logf != nil {
				p.opts.Logf("topology: peer push to %s: %v", peer, err)
			}
			continue
		}
		st.Pushes++
		st.LastError = ""
		st.LastSyncUnixNano = wallClock().UnixNano()
		p.lastV[peer] = version
		p.pushed[peer] = true
	}
}

func (p *Peering) push(peer string, seq uint64, state *server.PersistedState) error {
	blob, err := json.Marshal(PeerUpdate{
		Origin: p.opts.Origin,
		Epoch:  p.opts.Epoch,
		Seq:    seq,
		State:  state,
	})
	if err != nil {
		return fmt.Errorf("topology: encoding peer update: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, peer+"/peer/merge", bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("topology: building merge request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if p.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+p.opts.Token)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	// A stale ack (applied=false) is success: the peer already holds a
	// contribution at least this new, which is all anti-entropy wants.
	_, err = decodePeerAck(resp)
	return err
}

// Status returns the per-peer outbound sync status, sorted by target URL.
func (p *Peering) Status() []SyncStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SyncStatus, 0, len(p.states))
	for _, st := range p.states {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}
