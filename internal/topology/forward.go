// The relay's downstream half: a shuffler.Sink that forwards finished
// privacy batches to an analyzer over the existing P2B1 wire.
package topology

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"p2b/internal/transport"
)

// Peer protocol headers. Every relay batch names its origin stream
// (relay name), the origin's boot epoch and a per-epoch sequence number,
// so the receiving analyzer can drop duplicates from retries or a relay's
// WAL-tail re-forward without ever double-counting a tuple.
const (
	OriginHeader = "X-P2b-Peer-Origin"
	EpochHeader  = "X-P2b-Peer-Epoch"
	SeqHeader    = "X-P2b-Peer-Seq"
)

// ForwardStats counts a Forwarder's downstream traffic.
type ForwardStats struct {
	Batches    int64  `json:"batches"`    // batches delivered (including duplicate-acked)
	Tuples     int64  `json:"tuples"`     // tuples inside delivered batches
	Duplicates int64  `json:"duplicates"` // batches the analyzer acked as already applied
	Retries    int64  `json:"retries"`    // send attempts beyond the first
	Dropped    int64  `json:"dropped"`    // batches abandoned after the retry budget
	LastError  string `json:"last_error,omitempty"`
}

// ForwarderOptions configures a Forwarder.
type ForwarderOptions struct {
	// Origin names this relay's batch stream; the analyzer keys its
	// duplicate detection on it. Required.
	Origin string
	// Epoch qualifies sequence numbers across relay restarts. Zero selects
	// a fresh boot nonce.
	Epoch uint64
	// Token, when non-empty, is sent as a bearer token; the analyzer
	// refuses unauthenticated peer traffic when it was started with one.
	Token string
	// MaxRetries bounds send attempts per batch beyond the first
	// (default 10). The shuffler's delivering goroutine blocks during
	// retries — backpressure into admission is the desired behavior when
	// the downstream is struggling.
	MaxRetries int
	// RetryBase is the first backoff delay, doubling per attempt
	// (default 100ms).
	RetryBase time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Logf receives forward failures. Nil discards them.
	Logf func(format string, args ...any)
}

// Forwarder implements shuffler.Sink for a relay: every finished privacy
// batch is encoded with the P2B1 codec and POSTed to the downstream
// analyzer's /peer/ingest route, tagged (origin, epoch, seq).
//
// Deliveries are serialized under an internal mutex even though the
// shuffler may call Deliver from concurrent request goroutines: sequence
// numbers must be assigned in send order for the analyzer's duplicate
// guard to be meaningful. Sends are synchronous — when the relay acks a
// flush, the batches it cut have already been acked downstream.
type Forwarder struct {
	downstream string
	opts       ForwarderOptions
	client     *http.Client

	mu    sync.Mutex
	epoch uint64
	seq   uint64
	sync  func() error // pre-send durability hook, see SetSync
	enc   []byte
	stats ForwardStats
}

// NewForwarder returns a forwarder delivering to the analyzer at
// downstream (base URL, no path).
func NewForwarder(downstream string, opts ForwarderOptions) (*Forwarder, error) {
	if downstream == "" {
		return nil, fmt.Errorf("topology: forwarder needs a downstream analyzer URL")
	}
	if opts.Origin == "" {
		return nil, fmt.Errorf("topology: forwarder needs an origin name")
	}
	if opts.Epoch == 0 {
		opts.Epoch = BootEpoch()
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 10
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Forwarder{downstream: downstream, opts: opts, client: client, epoch: opts.Epoch}, nil
}

// Epoch returns the epoch sequence numbers are currently stamped with:
// the boot nonce, unless a recovered cursor replaced it.
func (f *Forwarder) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Cursor returns the forwarding position: the stamping epoch and the last
// assigned sequence number. It is what a durable relay checkpoints.
func (f *Forwarder) Cursor() (epoch, seq uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch, f.seq
}

// SetCursor overwrites the forwarding position. Recovery calls it —
// before any batch is (re-)forwarded — so a restarted relay resumes its
// persisted (epoch, seq) stream instead of minting a fresh epoch the
// downstream duplicate guard cannot match retransmits against.
func (f *Forwarder) SetCursor(epoch, seq uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epoch = epoch
	f.seq = seq
}

// SetSync installs a durability hook run before each batch's first send
// attempt — in a durable relay, the WAL sync that makes the records
// backing the batch durable. Without it, a batched-fsync relay could
// forward a batch whose WAL records die with a crash: replay would then
// under-derive the sequence and a LATER batch would reuse this batch's
// (epoch, seq) with different content, which the analyzer would wrongly
// drop as a duplicate. Install before traffic; a nil hook is a no-op.
func (f *Forwarder) SetSync(sync func() error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sync = sync
}

// Downstream returns the analyzer base URL this forwarder delivers to.
func (f *Forwarder) Downstream() string { return f.downstream }

// Stats returns a snapshot of the forward counters.
func (f *Forwarder) Stats() ForwardStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Deliver implements shuffler.Sink: the batch is sent downstream before
// the call returns. The slice is not retained. A batch that exhausts its
// retry budget is dropped and counted — the alternative, buffering
// unbounded batches inside the relay, would turn a downstream outage into
// a relay OOM; operators alert on the dropped counter instead.
func (f *Forwarder) Deliver(batch []transport.Tuple) {
	if len(batch) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sync != nil {
		if err := f.sync(); err != nil {
			// The records backing this batch may not be durable; sending it
			// anyway risks a later batch reusing its (epoch, seq) after a
			// crash-replay under-derives the sequence. Refuse the batch the
			// same way an exhausted retry budget would.
			f.stats.Dropped++
			f.stats.LastError = err.Error()
			if f.opts.Logf != nil {
				f.opts.Logf("topology: dropping batch: durability sync failed: %v", err)
			}
			return
		}
	}
	f.seq++
	f.enc = transport.AppendMagic(f.enc[:0])
	e := transport.Envelope{}
	for _, t := range batch {
		e.Tuple = t
		f.enc = e.AppendFrame(f.enc)
	}
	applied, err := f.sendLocked(f.seq, f.enc, len(batch))
	if err != nil {
		f.stats.Dropped++
		f.stats.LastError = err.Error()
		if f.opts.Logf != nil {
			f.opts.Logf("topology: dropping batch seq %d after retries: %v", f.seq, err)
		}
		return
	}
	f.stats.Batches++
	f.stats.Tuples += int64(len(batch))
	if !applied {
		f.stats.Duplicates++
	}
}

// sendLocked posts one encoded batch, retrying transient failures with
// doubling backoff. It returns whether the analyzer applied the batch
// (false = duplicate, which is success: the data is already in).
func (f *Forwarder) sendLocked(seq uint64, body []byte, n int) (bool, error) {
	url := f.downstream + "/peer/ingest"
	delay := f.opts.RetryBase
	var lastErr error
	for attempt := 0; attempt <= f.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			f.stats.Retries++
			time.Sleep(delay)
			if delay < 10*time.Second {
				delay *= 2
			}
		}
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return false, fmt.Errorf("topology: building peer request: %w", err)
		}
		req.Header.Set("Content-Type", transport.ContentTypeBinary)
		req.Header.Set(OriginHeader, f.opts.Origin)
		req.Header.Set(EpochHeader, strconv.FormatUint(f.epoch, 10))
		req.Header.Set(SeqHeader, strconv.FormatUint(seq, 10))
		if f.opts.Token != "" {
			req.Header.Set("Authorization", "Bearer "+f.opts.Token)
		}
		resp, err := f.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		applied, err := decodePeerAck(resp)
		if err != nil {
			lastErr = err
			if !retryablePeerStatus(resp.StatusCode) {
				return false, err
			}
			continue
		}
		return applied, nil
	}
	return false, fmt.Errorf("topology: forwarding batch of %d to %s: %w", n, url, lastErr)
}

// PeerAck is the JSON response of /peer/ingest and /peer/merge: whether
// the payload changed analyzer state (false = duplicate or stale, which
// the sender treats as success).
type PeerAck struct {
	Applied bool `json:"applied"`
}

func decodePeerAck(resp *http.Response) (bool, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("topology: peer answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var ack PeerAck
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ack); err != nil {
		return false, fmt.Errorf("topology: decoding peer ack: %w", err)
	}
	return ack.Applied, nil
}

// retryablePeerStatus reports whether a peer response status is transient:
// overload sheds and 5xx are retried, everything else (auth failures,
// malformed-request 4xx) is sticky — retrying a 401 forever would only
// hide the misconfiguration.
func retryablePeerStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusRequestTimeout ||
		status >= 500
}
