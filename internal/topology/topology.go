// Package topology describes and wires the multi-node deployment of P2B:
// which processes play which role, how agents discover a relay to report
// to, how relays forward crowd-blended batches downstream, and how
// analyzers exchange model state so any of them can serve warm starts.
//
// The deployment splits the single-process p2bnode into three roles:
//
//	combined  the classic single node: shuffler + analyzer in one process
//	relay     shuffler only; finished privacy batches are forwarded over
//	          the P2B1 wire to a downstream analyzer instead of a local
//	          server
//	analyzer  analyzer only as far as agents are concerned: it accepts
//	          relay batches on /peer/ingest and exchanges merged model
//	          state with sibling analyzers on /peer/merge, so every
//	          analyzer converges to the fleet-wide model
//
// Discovery is a bulletin board (the registry): nodes announce themselves
// with a name, role and URL, agents fetch the board and pick a relay
// deterministically from their seed. The board is config, not consensus —
// it never sits on the data path, and a stale board costs a retry, never
// a lost report.
package topology

import (
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"time"
)

// wallClock is the package's wall-clock seam. It feeds only epoch boot
// nonces and sync telemetry timestamps — never batch content or merge
// state — and tests substitute a fake to make those reproducible. The
// registry carries its own injectable clock for TTL expiry.
var wallClock = time.Now

// BootEpoch mints a fresh boot nonce for an (epoch, seq) replication
// stream: forwarder cursors, peering pushes, and the digest round all
// qualify sequence numbers with one. Nodes that serve their own
// contribution on /peer/contrib mint a single epoch per boot and share it
// between the push loop and the pull surface, so a puller and a pushee
// agree on what position they hold.
func BootEpoch() uint64 {
	return uint64(wallClock().UnixNano())
}

// Role names what a node does in the fleet.
type Role string

// The three node roles. RoleCombined is the single-process default;
// RoleRelay runs only the shuffler and forwards batches downstream;
// RoleAnalyzer runs only the analyzer and accepts relay and peer traffic.
const (
	RoleCombined Role = "combined"
	RoleRelay    Role = "relay"
	RoleAnalyzer Role = "analyzer"
)

// ParseRole maps a flag or config string to a Role. The empty string is
// RoleCombined, matching a p2bnode started without -role.
func ParseRole(s string) (Role, error) {
	switch Role(strings.ToLower(strings.TrimSpace(s))) {
	case "", RoleCombined:
		return RoleCombined, nil
	case RoleRelay:
		return RoleRelay, nil
	case RoleAnalyzer:
		return RoleAnalyzer, nil
	}
	return "", fmt.Errorf("topology: unknown role %q (want %s, %s or %s)", s, RoleCombined, RoleRelay, RoleAnalyzer)
}

// Valid reports whether r is one of the three defined roles.
func (r Role) Valid() bool {
	return r == RoleCombined || r == RoleRelay || r == RoleAnalyzer
}

// AcceptsReports reports whether agents may POST reports to a node of this
// role: relays and combined nodes run a shuffler, analyzers do not.
func (r Role) AcceptsReports() bool { return r == RoleRelay || r == RoleCombined }

// ServesModel reports whether a node of this role answers GET
// /server/model: analyzers and combined nodes do, relays do not.
func (r Role) ServesModel() bool { return r == RoleAnalyzer || r == RoleCombined }

// Node is one fleet member as published on the bulletin board.
type Node struct {
	// Name uniquely identifies the node on the board; re-announcing a name
	// replaces the previous entry (that is how heartbeats refresh TTLs).
	Name string `json:"name"`
	// Role is what the node does; see the Role constants.
	Role Role `json:"role"`
	// URL is the node's base HTTP URL, e.g. "http://10.0.0.5:8080".
	URL string `json:"url"`
	// Degraded, announced by the node itself, marks it up but operating
	// in a reduced mode (e.g. report admission bypassing a failing WAL).
	// Discovery treats degraded nodes as a last resort: Alive filters
	// them out while healthy candidates exist.
	Degraded bool `json:"degraded,omitempty"`
	// HeartbeatUnixNano is when the board last heard from this node. The
	// board stamps it while serving a Document — announcing nodes never
	// set it themselves — and it stays byte-identical between heartbeats,
	// so repeated board fetches of unchanged state compare equal. Zero
	// for static seed nodes, which are operator config and do not
	// heartbeat.
	HeartbeatUnixNano int64 `json:"heartbeat_unix_nano,omitempty"`
}

// Validate checks one node entry in isolation.
func (n Node) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("topology: node has no name")
	}
	if !n.Role.Valid() {
		return fmt.Errorf("topology: node %q has invalid role %q", n.Name, n.Role)
	}
	if n.URL == "" {
		return fmt.Errorf("topology: node %q has no url", n.Name)
	}
	u, err := url.Parse(n.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("topology: node %q has unparseable url %q (want scheme://host[:port])", n.Name, n.URL)
	}
	return nil
}

// Document is the bulletin board's published topology: every live node.
// It is what GET /topology serves and what static board config files hold.
type Document struct {
	Nodes []Node `json:"nodes"`
}

// Validate checks every node and rejects duplicate names — a duplicate is
// almost always two processes fighting over one identity, and the board
// replacing one with the other silently would hide the misconfiguration.
func (d *Document) Validate() error {
	seen := make(map[string]bool, len(d.Nodes))
	for _, n := range d.Nodes {
		if err := n.Validate(); err != nil {
			return err
		}
		if seen[n.Name] {
			return fmt.Errorf("topology: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// ParseDocument decodes and validates a topology document from JSON, the
// format of both the board's GET /topology response and static board
// config files. Unknown fields are rejected so a typoed key fails loudly
// instead of silently publishing an empty board.
func ParseDocument(data []byte) (*Document, error) {
	var d Document
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("topology: parsing document: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// ReportTargets returns the nodes an agent may report to, sorted by name:
// the relays when the fleet has any, otherwise the combined nodes. Relays
// win when both exist — a fleet that deploys a relay tier wants agent
// traffic on it, with combined nodes kept as analyzer-side peers.
func (d *Document) ReportTargets() []Node {
	relays := d.withRole(RoleRelay)
	if len(relays) > 0 {
		return relays
	}
	return d.withRole(RoleCombined)
}

// Analyzers returns the nodes that serve models (analyzer and combined
// roles), sorted by name.
func (d *Document) Analyzers() []Node {
	nodes := d.withRole(RoleAnalyzer)
	nodes = append(nodes, d.withRole(RoleCombined)...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes
}

func (d *Document) withRole(r Role) []Node {
	var nodes []Node
	for _, n := range d.Nodes {
		if n.Role == r {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes
}

// Alive filters nodes to the ones a failover should still consider:
// not self-declared degraded, and — for board-announced nodes — with a
// heartbeat younger than maxAge. Static seed nodes (heartbeat zero) have
// no liveness signal and always pass the age check; they are config, and
// dropping them would leave a static-only fleet with nothing to pick.
// If the filter would empty a non-empty candidate list, the original
// list is returned instead: a uniformly unhealthy fleet is still worth a
// delivery attempt, and the retry path handles the failures.
func Alive(nodes []Node, maxAge time.Duration, now time.Time) []Node {
	var out []Node
	cutoff := now.Add(-maxAge)
	for _, n := range nodes {
		if n.Degraded {
			continue
		}
		if maxAge > 0 && n.HeartbeatUnixNano != 0 && time.Unix(0, n.HeartbeatUnixNano).Before(cutoff) {
			continue
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nodes
	}
	return out
}

// Pick deterministically selects one node from nodes using seed: the nodes
// are considered in name order, so every agent with one seed lands on one
// node regardless of board arrival order, and a fleet with uniformly
// distributed seeds spreads uniformly across the nodes.
func Pick(nodes []Node, seed uint64) (Node, error) {
	if len(nodes) == 0 {
		return Node{}, fmt.Errorf("topology: no candidate nodes to pick from")
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	// splitmix64 finalizer: agents with consecutive seeds (the common
	// fleet-launcher pattern) must not all collapse onto seed%n biased by
	// low-bit regularity of the seed sequence.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return sorted[z%uint64(len(sorted))], nil
}
