// The node side of board registration: a Heartbeat announces one node on
// the bulletin board and keeps the announcement alive. Startup is the
// fragile moment — board and nodes race each other out of a rack power
// cycle — so the first registration retries on its own jittered backoff
// instead of waiting a full beat, and every attempt is counted so the
// node's health surface can say whether the fleet can actually find it.
package topology

import (
	"hash/fnv"
	"sync"
	"time"

	"p2b/internal/rng"
)

// HeartbeatStatus is the board-registration health of one node: how many
// announcements it attempted, how many the board refused or never
// received, and whether it has ever made it onto the board this boot.
type HeartbeatStatus struct {
	// Attempts counts every registration sent: the startup retries and
	// the steady-state beats.
	Attempts uint64 `json:"attempts"`
	// Failures counts attempts the board refused or that never reached
	// it. Failures == Attempts means the node is invisible to discovery.
	Failures uint64 `json:"failures"`
	// Registered is true once any attempt has succeeded this boot.
	Registered bool `json:"registered"`
	// LastError is the most recent failure, empty after a success.
	LastError string `json:"last_error,omitempty"`
	// LastOKUnixNano is when the last successful announcement happened,
	// zero if none has.
	LastOKUnixNano int64 `json:"last_ok_unix_nano,omitempty"`
}

// HeartbeatOptions tunes a Heartbeat.
type HeartbeatOptions struct {
	// TTL is the board-side announcement TTL; beats go out every TTL/3
	// once registered. Zero or negative selects DefaultTTL.
	TTL time.Duration
	// Logf, if non-nil, receives registration failures.
	Logf func(format string, args ...any)
	// Degraded, if non-nil, is sampled before every announcement and
	// published as the node's Degraded flag, letting discovery steer
	// agents away from a node that is up but limping.
	Degraded func() bool
	// Seed feeds the backoff jitter stream. Zero derives a seed from the
	// node name, so a rack of nodes rebooting together still spreads its
	// registration retries instead of hammering the board in lockstep.
	Seed uint64
}

// Heartbeat keeps one node's announcement alive on the bulletin board.
// Construct with NewHeartbeat, then Start. The zero value is not usable.
type Heartbeat struct {
	board string
	node  Node
	ttl   time.Duration
	logf  func(format string, args ...any)
	probe func() bool
	jit   *rng.Rand

	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu      sync.Mutex
	started bool
	st      HeartbeatStatus
}

// NewHeartbeat prepares (but does not start) a heartbeat announcing n on
// the board at boardURL. The handle's Status is valid immediately, so it
// can be wired into a health surface before the loop runs.
func NewHeartbeat(boardURL string, n Node, opts HeartbeatOptions) *Heartbeat {
	ttl := opts.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	seed := opts.Seed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(n.Name))
		seed = h.Sum64()
	}
	return &Heartbeat{
		board: boardURL,
		node:  n,
		ttl:   ttl,
		logf:  logf,
		probe: opts.Degraded,
		jit:   rng.New(seed).Split("board-heartbeat"),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the announcement loop. Until the first registration
// succeeds it retries on a jittered exponential backoff (capped at one
// beat interval) — a node that boots before its board must appear the
// moment the board does, not up to a full beat later. After that it
// announces every TTL/3, and failures wait for the next beat: the board
// never sits on the data path, so losing it is never worth tighter loops.
func (h *Heartbeat) Start() {
	h.mu.Lock()
	h.started = true
	h.mu.Unlock()
	go h.run()
}

// Stop ends the loop and waits for it to exit. Safe to call more than
// once, and a no-op when the loop was never started.
func (h *Heartbeat) Stop() {
	h.once.Do(func() { close(h.stop) })
	h.mu.Lock()
	started := h.started
	h.mu.Unlock()
	if started {
		<-h.done
	}
}

// Status returns a snapshot of the registration counters.
func (h *Heartbeat) Status() HeartbeatStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.st
}

func (h *Heartbeat) run() {
	defer close(h.done)
	beat := h.ttl / 3
	// Startup backoff: begin well under a beat and double up to the beat
	// interval. Jitter spreads simultaneous reboots; the floor keeps a
	// tiny test TTL from busy-looping.
	backoff := h.ttl / 30
	if backoff < 50*time.Millisecond {
		backoff = 50 * time.Millisecond
	}
	for h.register() != nil {
		wait := backoff/2 + time.Duration(h.jit.IntN(int(backoff)))
		if backoff *= 2; backoff > beat {
			backoff = beat
		}
		select {
		case <-h.stop:
			return
		case <-time.After(wait):
		}
	}
	t := time.NewTicker(beat)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			_ = h.register()
		}
	}
}

// register sends one announcement, sampling the degrade probe so the
// board always reflects the node's current mode, and folds the outcome
// into the status counters.
func (h *Heartbeat) register() error {
	n := h.node
	if h.probe != nil {
		n.Degraded = h.probe()
	}
	err := RegisterNode(h.board, n)
	h.mu.Lock()
	h.st.Attempts++
	if err != nil {
		h.st.Failures++
		h.st.LastError = err.Error()
	} else {
		h.st.Registered = true
		h.st.LastError = ""
		h.st.LastOKUnixNano = wallClock().UnixNano()
	}
	h.mu.Unlock()
	if err != nil {
		h.logf("topology: board registration: %v", err)
	}
	return err
}
