package topology

import (
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

func TestParseRole(t *testing.T) {
	cases := []struct {
		in      string
		want    Role
		wantErr bool
	}{
		{"", RoleCombined, false},
		{"combined", RoleCombined, false},
		{"relay", RoleRelay, false},
		{"analyzer", RoleAnalyzer, false},
		{"  Relay ", RoleRelay, false},
		{"ANALYZER", RoleAnalyzer, false},
		{"shuffler", "", true},
		{"analyser", "", true},
	}
	for _, tc := range cases {
		got, err := ParseRole(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseRole(%q): want error, got %q", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRole(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseRole(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRoleCapabilities(t *testing.T) {
	cases := []struct {
		role    Role
		reports bool
		model   bool
	}{
		{RoleCombined, true, true},
		{RoleRelay, true, false},
		{RoleAnalyzer, false, true},
	}
	for _, tc := range cases {
		if got := tc.role.AcceptsReports(); got != tc.reports {
			t.Errorf("%s.AcceptsReports() = %v, want %v", tc.role, got, tc.reports)
		}
		if got := tc.role.ServesModel(); got != tc.model {
			t.Errorf("%s.ServesModel() = %v, want %v", tc.role, got, tc.model)
		}
	}
}

func TestParseDocument(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr bool
	}{
		{"valid", `{"nodes":[{"name":"a","role":"relay","url":"http://h:1"}]}`, false},
		{"empty", `{"nodes":[]}`, false},
		{"no nodes key", `{}`, false},
		{"unknown field", `{"nodes":[],"extra":1}`, true},
		{"missing name", `{"nodes":[{"role":"relay","url":"http://h:1"}]}`, true},
		{"bad role", `{"nodes":[{"name":"a","role":"mixer","url":"http://h:1"}]}`, true},
		{"missing url", `{"nodes":[{"name":"a","role":"relay"}]}`, true},
		{"schemeless url", `{"nodes":[{"name":"a","role":"relay","url":"h:1"}]}`, true},
		{"duplicate names", `{"nodes":[{"name":"a","role":"relay","url":"http://h:1"},{"name":"a","role":"analyzer","url":"http://h:2"}]}`, true},
		{"not json", `nodes: []`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDocument([]byte(tc.in))
			if tc.wantErr && err == nil {
				t.Fatalf("want error, got none")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func fleetDoc() *Document {
	return &Document{Nodes: []Node{
		{Name: "relay-b", Role: RoleRelay, URL: "http://r2"},
		{Name: "analyzer-a", Role: RoleAnalyzer, URL: "http://a1"},
		{Name: "relay-a", Role: RoleRelay, URL: "http://r1"},
		{Name: "combined-a", Role: RoleCombined, URL: "http://c1"},
	}}
}

func names(nodes []Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

func TestReportTargetsPreferRelays(t *testing.T) {
	d := fleetDoc()
	if got, want := names(d.ReportTargets()), []string{"relay-a", "relay-b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ReportTargets = %v, want %v", got, want)
	}
	// Without relays, combined nodes take the reports.
	d2 := &Document{Nodes: []Node{{Name: "combined-a", Role: RoleCombined, URL: "http://c1"}}}
	if got, want := names(d2.ReportTargets()), []string{"combined-a"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ReportTargets = %v, want %v", got, want)
	}
}

func TestAnalyzersIncludeCombined(t *testing.T) {
	if got, want := names(fleetDoc().Analyzers()), []string{"analyzer-a", "combined-a"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyzers = %v, want %v", got, want)
	}
}

func TestPickDeterministicAndOrderIndependent(t *testing.T) {
	nodes := fleetDoc().ReportTargets()
	first, err := Pick(nodes, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, reversed arrival order: same node.
	rev := []Node{nodes[1], nodes[0]}
	again, err := Pick(rev, 42)
	if err != nil {
		t.Fatal(err)
	}
	if first.Name != again.Name {
		t.Fatalf("Pick depends on input order: %q vs %q", first.Name, again.Name)
	}
	if _, err := Pick(nil, 1); err == nil {
		t.Fatal("Pick(nil) should error")
	}
}

func TestPickSpreadsConsecutiveSeeds(t *testing.T) {
	nodes := fleetDoc().ReportTargets() // 2 relays
	counts := map[string]int{}
	for seed := uint64(0); seed < 1000; seed++ {
		n, err := Pick(nodes, seed)
		if err != nil {
			t.Fatal(err)
		}
		counts[n.Name]++
	}
	for name, c := range counts {
		if c < 300 {
			t.Fatalf("consecutive seeds collapsed: %v (node %s starved)", counts, name)
		}
	}
}

func TestRegistryTTLExpiry(t *testing.T) {
	reg, err := NewRegistry(&Document{Nodes: []Node{{Name: "pinned", Role: RoleAnalyzer, URL: "http://a"}}}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	reg.now = func() time.Time { return clock }

	if err := reg.Register(Node{Name: "live", Role: RoleRelay, URL: "http://r"}); err != nil {
		t.Fatal(err)
	}
	// The document is sorted by name so two fetches of the same board
	// state are byte-identical regardless of announcement map order.
	if got, want := names(reg.Document().Nodes), []string{"live", "pinned"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("board = %v, want %v", got, want)
	}

	// A heartbeat inside the TTL window keeps the node alive past the
	// original deadline.
	clock = clock.Add(20 * time.Second)
	if err := reg.Register(Node{Name: "live", Role: RoleRelay, URL: "http://r"}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(25 * time.Second)
	if got := len(reg.Document().Nodes); got != 2 {
		t.Fatalf("heartbeated node expired early: %v", names(reg.Document().Nodes))
	}

	// No more heartbeats: the announced node expires, the static one stays.
	clock = clock.Add(31 * time.Second)
	if got, want := names(reg.Document().Nodes), []string{"pinned"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("board after expiry = %v, want %v", got, want)
	}

	// Static names are operator config and cannot be shadowed.
	if err := reg.Register(Node{Name: "pinned", Role: RoleRelay, URL: "http://evil"}); err == nil {
		t.Fatal("re-announcing a static name should be rejected")
	}
}

func TestRegistryHTTPRoundTrip(t *testing.T) {
	reg, err := NewRegistry(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	n := Node{Name: "relay-1", Role: RoleRelay, URL: "http://10.0.0.9:8080"}
	if err := RegisterNode(ts.URL, n); err != nil {
		t.Fatal(err)
	}
	doc, err := FetchDocument(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 1 {
		t.Fatalf("round-tripped board = %+v, want one node", doc.Nodes)
	}
	// The board stamps its own last-heard time on announced nodes; strip
	// it before comparing the announced fields.
	got := doc.Nodes[0]
	if got.HeartbeatUnixNano == 0 {
		t.Fatal("board did not stamp a heartbeat time on the announced node")
	}
	got.HeartbeatUnixNano = 0
	if got != n {
		t.Fatalf("round-tripped board = %+v, want [%+v]", doc.Nodes, n)
	}

	// Invalid announcements are refused before they reach the board.
	if err := RegisterNode(ts.URL, Node{Name: "bad", Role: "mixer", URL: "http://x"}); err == nil {
		t.Fatal("invalid role should be refused")
	}
}
