// The digest round, driven deterministically: a partitioned analyzer that
// receives NO inbound pushes must converge on the fleet state by pulling
// alone — fetching peer digests, diffing them against what it holds, and
// retrieving only the missing contributions. Exactness conditions are the
// equivalence test's, so convergence is asserted byte for byte.
package topology_test

import (
	"testing"
	"time"

	"p2b/internal/httpapi"
	"p2b/internal/rng"
	"p2b/internal/server"
	"p2b/internal/shuffler"
	"p2b/internal/topology"
	"p2b/internal/transport"
)

// digestNode is one analyzer: a server with its own shuffler and the full
// peer HTTP surface, including the digest and contrib routes.
type digestNode struct {
	srv  *server.Server
	shuf *shuffler.Shuffler
	url  string
}

func newDigestNode(t *testing.T, origin string, epoch, seed uint64, token string) *digestNode {
	t.Helper()
	srv := eqServer()
	shuf := shuffler.New(shuffler.Config{BatchSize: eqBatch, Threshold: eqThr}, srv, rng.New(seed))
	ts := newTestServer(t, httpapi.NewNodeHandlerOpts(shuf, srv, httpapi.NodeOptions{
		Role: string(topology.RoleAnalyzer),
		Peer: &httpapi.PeerOptions{
			Origin: origin,
			Epoch:  epoch,
			Export: srv.ExportState,
			Token:  token,
		},
	}))
	return &digestNode{srv: srv, shuf: shuf, url: ts.URL}
}

func (n *digestNode) ingest(batches [][]transport.Tuple) {
	for _, b := range batches {
		n.shuf.SubmitTuples(b)
	}
}

// newPuller builds n's peering the way p2bnode wires it: holdings from
// the server's stored contributions, fetches applied through
// MergePeerState. The loop is never started; tests drive DigestSync.
func newPuller(t *testing.T, n *digestNode, origin string, epoch uint64, token string, peers ...string) *topology.Peering {
	t.Helper()
	p, err := topology.NewPeering(topology.PeeringOptions{
		Origin:         origin,
		Epoch:          epoch,
		Peers:          peers,
		Token:          token,
		Export:         n.srv.ExportState,
		LocalVersion:   n.srv.LocalVersion,
		DigestInterval: time.Hour,
		Local: func() []topology.DigestEntry {
			var out []topology.DigestEntry
			for _, c := range n.srv.PeerStatus().Contributions {
				out = append(out, topology.DigestEntry{Origin: c.Origin, Epoch: c.Epoch, Seq: c.Seq})
			}
			return out
		},
		Apply: func(u topology.PeerUpdate) (bool, error) {
			return n.srv.MergePeerState(u.Origin, u.Epoch, u.Seq, u.State)
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// pullStatus returns the single-peer SyncStatus of a one-peer puller.
func pullStatus(t *testing.T, p *topology.Peering) topology.SyncStatus {
	t.Helper()
	sts := p.Status()
	if len(sts) != 1 {
		t.Fatalf("puller tracks %d peers, want 1", len(sts))
	}
	return sts[0]
}

func TestPartitionedAnalyzerConvergesViaDigestAlone(t *testing.T) {
	batches := eqBatches(6, 42)

	// Analyzer A holds data and pushes to NOBODY: it has no peering at
	// all. Everything B learns, B must pull.
	a := newDigestNode(t, "analyzer-a", 7, 10, "")
	a.ingest(batches[:4])

	b := newDigestNode(t, "analyzer-b", 8, 11, "")
	puller := newPuller(t, b, "analyzer-b", 8, "", a.url)

	puller.DigestSync()
	if got, want := fetchModel(t, b.url), fetchModel(t, a.url); got != want {
		t.Errorf("after one digest round, B's model diverged from A's:\n got %s\nwant %s", got, want)
	}
	if st := pullStatus(t, puller); st.Pulls != 1 || st.Fetched != 1 || st.PullErrors != 0 {
		t.Fatalf("pull status after first round = %+v, want 1 pull fetching 1 contribution", st)
	}
	if applied, rejected, _, _ := b.srv.PeerCounters(); applied != 1 || rejected != 0 {
		t.Fatalf("B merge counters = applied %d rejected %d, want exactly one applied", applied, rejected)
	}

	// An idle round fetches nothing: A's digest position is covered.
	puller.DigestSync()
	if st := pullStatus(t, puller); st.Pulls != 2 || st.Fetched != 1 {
		t.Fatalf("idle round status = %+v, want a completed pull with no new fetches", st)
	}

	// A moves on; the next round picks up exactly the delta contribution.
	a.ingest(batches[4:])
	puller.DigestSync()
	if got, want := fetchModel(t, b.url), fetchModel(t, a.url); got != want {
		t.Errorf("after A advanced, B's model diverged:\n got %s\nwant %s", got, want)
	}
	if st := pullStatus(t, puller); st.Fetched != 2 || st.PullErrors != 0 {
		t.Fatalf("status after A advanced = %+v, want a second fetched contribution", st)
	}
}

// Digests list STORED third-party contributions too, so healing is
// transitive: C reaches only B, yet converges on A's data through B's
// stored copy — byte-identical to a single node that saw everything.
func TestDigestRoundHealsTransitively(t *testing.T) {
	batches := eqBatches(8, 99)
	partA, partB := batches[:5], batches[5:]

	single := newDigestNode(t, "single", 1, 5, "")
	single.ingest(partA)
	single.ingest(partB)

	a := newDigestNode(t, "analyzer-a", 7, 10, "")
	a.ingest(partA)
	b := newDigestNode(t, "analyzer-b", 8, 11, "")
	b.ingest(partB)

	// B pulls from A, then C (which holds nothing and can reach only B)
	// pulls from B.
	newPuller(t, b, "analyzer-b", 8, "", a.url).DigestSync()
	c := newDigestNode(t, "analyzer-c", 9, 12, "")
	cPuller := newPuller(t, c, "analyzer-c", 9, "", b.url)
	cPuller.DigestSync()

	if got, want := fetchModel(t, c.url), fetchModel(t, single.url); got != want {
		t.Errorf("C's model diverged from the single node:\n got %s\nwant %s", got, want)
	}
	// Non-vacuity: C fetched both B's own contribution and A's stored one.
	if st := pullStatus(t, cPuller); st.Fetched != 2 || st.PullErrors != 0 {
		t.Fatalf("C pull status = %+v, want 2 fetched contributions (B's own and A's gossiped)", st)
	}
	if applied, _, _, _ := c.srv.PeerCounters(); applied != 2 {
		t.Fatalf("C applied %d merges, want 2", applied)
	}
}

// Pushes and digests stamp sequence numbers from the same local-version
// counter, so a position learned from a push is recognized as covered by
// the pull side — a healthy pushed-to analyzer never refetches state it
// already holds.
func TestDigestSkipsPositionsAlreadyPushed(t *testing.T) {
	a := newDigestNode(t, "analyzer-a", 7, 10, "")
	a.ingest(eqBatches(3, 7))
	b := newDigestNode(t, "analyzer-b", 8, 11, "")

	// A pushes to B once (the healthy steady state). Epoch 7 is the same
	// epoch A's digest surface advertises, exactly as p2bnode wires it.
	pusher, err := topology.NewPeering(topology.PeeringOptions{
		Origin:       "analyzer-a",
		Epoch:        7,
		Peers:        []string{b.url},
		Export:       a.srv.ExportState,
		LocalVersion: a.srv.LocalVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	pusher.Sync()
	if st := pullStatus(t, pusher); st.Pushes != 1 || st.Errors != 0 {
		t.Fatalf("push status = %+v, want one clean push", st)
	}

	// B's digest round against A must find nothing to fetch.
	puller := newPuller(t, b, "analyzer-b", 8, "", a.url)
	puller.DigestSync()
	if st := pullStatus(t, puller); st.Pulls != 1 || st.Fetched != 0 || st.PullErrors != 0 {
		t.Fatalf("pull status after push = %+v, want a completed round fetching nothing", st)
	}
}

// The digest and contrib routes hand out model state, so they demand the
// same bearer token the write routes do.
func TestDigestRoutesRequireToken(t *testing.T) {
	a := newDigestNode(t, "analyzer-a", 7, 10, "hunter2")
	a.ingest(eqBatches(2, 3))
	b := newDigestNode(t, "analyzer-b", 8, 11, "")

	unauthed := newPuller(t, b, "analyzer-b", 8, "", a.url)
	unauthed.DigestSync()
	if st := pullStatus(t, unauthed); st.PullErrors != 1 || st.Fetched != 0 {
		t.Fatalf("tokenless pull against a token-guarded peer = %+v, want one rejected round", st)
	}

	authed := newPuller(t, b, "analyzer-b", 8, "hunter2", a.url)
	authed.DigestSync()
	if st := pullStatus(t, authed); st.Pulls != 1 || st.Fetched != 1 {
		t.Fatalf("authenticated pull = %+v, want one fetched contribution", st)
	}
	if got, want := fetchModel(t, b.url), fetchModel(t, a.url); got != want {
		t.Error("authenticated digest round did not converge B on A's model")
	}
}
