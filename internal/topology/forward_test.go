package topology

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"p2b/internal/transport"
)

// peerSink is a test /peer/ingest endpoint recording delivered batches and
// optionally failing the first failN requests with failStatus.
type peerSink struct {
	failN      atomic.Int64
	failStatus int

	mu      chan struct{} // 1-token semaphore; tests are sequential anyway
	batches [][]transport.Tuple
	seqs    []uint64
	origins []string
	seen    map[string]bool
}

func newPeerSink() *peerSink {
	s := &peerSink{mu: make(chan struct{}, 1), seen: make(map[string]bool)}
	s.mu <- struct{}{}
	return s
}

func (s *peerSink) handler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.failN.Load() > 0 {
			s.failN.Add(-1)
			http.Error(w, "induced failure", s.failStatus)
			return
		}
		origin := r.Header.Get(OriginHeader)
		epoch := r.Header.Get(EpochHeader)
		seq, err := strconv.ParseUint(r.Header.Get(SeqHeader), 10, 64)
		if err != nil {
			t.Errorf("bad seq header: %v", err)
		}
		fr, err := transport.NewFrameReader(r.Body)
		if err != nil {
			t.Errorf("bad stream: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var batch []transport.Tuple
		var tup transport.Tuple
		for {
			if err := fr.NextTuple(&tup); err != nil {
				if err == io.EOF {
					break
				}
				t.Errorf("decoding frame: %v", err)
				break
			}
			batch = append(batch, tup)
		}
		<-s.mu
		key := origin + "/" + epoch + "/" + strconv.FormatUint(seq, 10)
		applied := !s.seen[key]
		if applied {
			s.seen[key] = true
			s.batches = append(s.batches, batch)
			s.seqs = append(s.seqs, seq)
			s.origins = append(s.origins, origin)
		}
		s.mu <- struct{}{}
		_ = json.NewEncoder(w).Encode(PeerAck{Applied: applied})
	})
}

func testBatch(n int) []transport.Tuple {
	batch := make([]transport.Tuple, n)
	for i := range batch {
		batch[i] = transport.Tuple{Code: i, Action: i % 3, Reward: 1}
	}
	return batch
}

func TestForwarderDeliversInSequence(t *testing.T) {
	sink := newPeerSink()
	ts := httptest.NewServer(sink.handler(t))
	defer ts.Close()

	fwd, err := NewForwarder(ts.URL, ForwarderOptions{Origin: "relay-1"})
	if err != nil {
		t.Fatal(err)
	}
	fwd.Deliver(testBatch(3))
	fwd.Deliver(testBatch(2))
	fwd.Deliver(nil) // empty batches never hit the wire

	st := fwd.Stats()
	if st.Batches != 2 || st.Tuples != 5 || st.Dropped != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(sink.seqs) != 2 || sink.seqs[0] != 1 || sink.seqs[1] != 2 {
		t.Fatalf("downstream saw seqs %v, want [1 2]", sink.seqs)
	}
	if sink.origins[0] != "relay-1" {
		t.Fatalf("origin = %q", sink.origins[0])
	}
	if len(sink.batches[0]) != 3 || len(sink.batches[1]) != 2 {
		t.Fatalf("batch sizes %d/%d", len(sink.batches[0]), len(sink.batches[1]))
	}
}

func TestForwarderRetriesTransientFailures(t *testing.T) {
	sink := newPeerSink()
	sink.failStatus = http.StatusServiceUnavailable
	sink.failN.Store(2)
	ts := httptest.NewServer(sink.handler(t))
	defer ts.Close()

	fwd, err := NewForwarder(ts.URL, ForwarderOptions{Origin: "relay-1", RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fwd.Deliver(testBatch(4))
	st := fwd.Stats()
	if st.Batches != 1 || st.Retries != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(sink.batches) != 1 {
		t.Fatalf("downstream applied %d batches", len(sink.batches))
	}
}

func TestForwarderDropsAfterRetryBudget(t *testing.T) {
	sink := newPeerSink()
	sink.failStatus = http.StatusServiceUnavailable
	sink.failN.Store(100)
	ts := httptest.NewServer(sink.handler(t))
	defer ts.Close()

	fwd, err := NewForwarder(ts.URL, ForwarderOptions{Origin: "relay-1", MaxRetries: 2, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fwd.Deliver(testBatch(1))
	st := fwd.Stats()
	if st.Dropped != 1 || st.Batches != 0 || st.LastError == "" {
		t.Fatalf("stats = %+v", st)
	}

	// The next batch still goes out once the downstream recovers: a drop is
	// per batch, never a poisoned forwarder.
	sink.failN.Store(0)
	fwd.Deliver(testBatch(2))
	if st := fwd.Stats(); st.Batches != 1 || st.Dropped != 1 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestForwarderAuthFailureIsSticky(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "peer token required", http.StatusUnauthorized)
	}))
	defer ts.Close()

	fwd, err := NewForwarder(ts.URL, ForwarderOptions{Origin: "relay-1", MaxRetries: 5, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fwd.Deliver(testBatch(1))
	if got := attempts.Load(); got != 1 {
		t.Fatalf("401 was retried %d times; misconfiguration must fail fast", got-1)
	}
	if st := fwd.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestForwarderCountsDuplicateAcks(t *testing.T) {
	sink := newPeerSink()
	ts := httptest.NewServer(sink.handler(t))
	defer ts.Close()

	// Two forwarders sharing one origin and epoch simulate a relay that
	// re-forwards its WAL tail after a crash without a fresh epoch: the
	// second stream collides with the first and every batch acks duplicate.
	a, err := NewForwarder(ts.URL, ForwarderOptions{Origin: "relay-1", Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewForwarder(ts.URL, ForwarderOptions{Origin: "relay-1", Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	a.Deliver(testBatch(2))
	b.Deliver(testBatch(2))
	if st := b.Stats(); st.Duplicates != 1 || st.Batches != 1 {
		t.Fatalf("duplicate stream stats = %+v", st)
	}
	if len(sink.batches) != 1 {
		t.Fatalf("downstream applied %d batches, want 1", len(sink.batches))
	}
}
