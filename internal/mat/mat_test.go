package mat

import (
	"math"
	"testing"
	"testing/quick"

	"p2b/internal/rng"
)

func randSPD(r *rng.Rand, n int) *Dense {
	// A = B B^T + I is symmetric positive definite.
	b := NewDense(n)
	for i := range b.Data {
		b.Data[i] = r.Norm(0, 1)
	}
	a := Identity(n, 1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			a.Set(i, j, a.At(i, j)+s)
		}
	}
	return a
}

func randVec(r *rng.Rand, n int) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = r.Norm(0, 1)
	}
	return v
}

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched Dot")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestVecAddScaled(t *testing.T) {
	v := Vec{1, 2}
	v.AddScaled(2, Vec{3, 4})
	if v[0] != 7 || v[1] != 10 {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestVecNormalize(t *testing.T) {
	v := Vec{1, 3}
	if !v.Normalize() {
		t.Fatal("Normalize failed")
	}
	if math.Abs(v.Sum()-1) > 1e-12 {
		t.Fatalf("normalized sum %v", v.Sum())
	}
	z := Vec{0, 0}
	if z.Normalize() {
		t.Fatal("Normalize of zero vector should fail")
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestVecDist2(t *testing.T) {
	if got := (Vec{0, 0}).Dist2(Vec{3, 4}); got != 25 {
		t.Fatalf("Dist2 = %v, want 25", got)
	}
}

func TestIdentityMulVec(t *testing.T) {
	m := Identity(3, 2)
	x := Vec{1, 2, 3}
	got := m.MulVec(x)
	for i := range x {
		if got[i] != 2*x[i] {
			t.Fatalf("Identity(3,2)*x = %v", got)
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewDense(2)
	m.AddOuter(Vec{1, 2}, 1)
	want := []float64{1, 2, 2, 4}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestInverseIdentityProperty(t *testing.T) {
	r := rng.New(1)
	for n := 1; n <= 8; n++ {
		a := randSPD(r, n)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("Inverse(%d): %v", n, err)
		}
		prod := a.Mul(inv)
		if d := prod.MaxAbsDiff(Identity(n, 1)); d > 1e-8 {
			t.Fatalf("A*A^{-1} differs from I by %v at n=%d", d, n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := NewDense(2) // all zeros
	if _, err := m.Inverse(); err != ErrSingular {
		t.Fatalf("Inverse of zero matrix: err = %v, want ErrSingular", err)
	}
}

func TestCholeskySolveMatchesInverse(t *testing.T) {
	r := rng.New(2)
	for n := 1; n <= 8; n++ {
		a := randSPD(r, n)
		b := randVec(r, n)
		x, err := a.CholeskySolve(b)
		if err != nil {
			t.Fatalf("CholeskySolve(%d): %v", n, err)
		}
		back := a.MulVec(x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				t.Fatalf("Ax != b at n=%d: %v vs %v", n, back, b)
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, -1)
	m.Set(1, 1, 1)
	if _, err := m.Cholesky(); err != ErrSingular {
		t.Fatalf("Cholesky of indefinite matrix: err = %v, want ErrSingular", err)
	}
}

func TestShermanMorrisonMatchesDirectInverse(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.IntN(8)
		a := randSPD(r, n)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		u := randVec(r, n)
		// Fast path.
		if err := ShermanMorrison(inv, u); err != nil {
			t.Fatalf("ShermanMorrison: %v", err)
		}
		// Reference: invert A + u u^T directly.
		a.AddOuter(u, 1)
		want, err := a.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		if d := inv.MaxAbsDiff(want); d > 1e-7 {
			t.Fatalf("ShermanMorrison differs from direct inverse by %v (n=%d)", d, n)
		}
	}
}

func TestShermanMorrisonRepeatedStaysAccurate(t *testing.T) {
	r := rng.New(4)
	n := 6
	a := Identity(n, 1)
	inv := Identity(n, 1)
	for step := 0; step < 200; step++ {
		u := randVec(r, n)
		a.AddOuter(u, 1)
		if err := ShermanMorrison(inv, u); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	want, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if d := inv.MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("after 200 rank-1 updates drift is %v", d)
	}
}

func TestQuadFormPositive(t *testing.T) {
	r := rng.New(5)
	if err := quick.Check(func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := 1 + rr.IntN(6)
		a := randSPD(rr, n)
		x := randVec(rr, n)
		if x.Norm2() == 0 {
			return true
		}
		return a.QuadForm(x) > 0
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestMulAssociatesWithMulVec(t *testing.T) {
	r := rng.New(6)
	n := 5
	a := randSPD(r, n)
	b := randSPD(r, n)
	x := randVec(r, n)
	left := a.Mul(b).MulVec(x)
	right := a.MulVec(b.MulVec(x))
	for i := range left {
		if math.Abs(left[i]-right[i]) > 1e-9 {
			t.Fatalf("(AB)x != A(Bx): %v vs %v", left, right)
		}
	}
}

func TestAddSub(t *testing.T) {
	a := Identity(2, 1)
	b := Identity(2, 3)
	a.Add(b)
	if a.At(0, 0) != 4 {
		t.Fatalf("Add: %v", a.Data)
	}
	a.Sub(b)
	if a.At(0, 0) != 1 {
		t.Fatalf("Sub: %v", a.Data)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	m := Identity(2, 1)
	cases := []func(){
		func() { m.MulVec(Vec{1}) },
		func() { m.AddOuter(Vec{1}, 1) },
		func() { m.Add(Identity(3, 1)) },
		func() { _ = ShermanMorrison(m, Vec{1, 2, 3}) },
		func() { _, _ = m.CholeskySolve(Vec{1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
