// Package mat implements the small dense linear algebra kernel that LinUCB
// needs: vectors, square matrices, Cholesky solves, Gauss-Jordan inversion
// and Sherman-Morrison rank-1 inverse updates.
//
// The package is deliberately minimal — the bandit workloads only ever touch
// symmetric positive-definite design matrices of modest dimension, so a
// row-major []float64 representation with straightforward loops is both
// simple and fast enough.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or inversion encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// Vec is a dense column vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics on length mismatch.
//
//p2b:hotpath
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled adds alpha*w to v in place.
//
//p2b:hotpath
func (v Vec) AddScaled(alpha float64, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: AddScaled dimension mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies v by alpha in place.
//
//p2b:hotpath
func (v Vec) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Dist2 returns the squared Euclidean distance between v and w.
//
//p2b:hotpath
func (v Vec) Dist2(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dist2 dimension mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		d := x - w[i]
		s += d * d
	}
	return s
}

// Sum returns the sum of the entries of v.
func (v Vec) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Normalize scales v in place so its entries sum to 1, returning false if
// the sum is zero or not finite. Used to put raw contexts on the simplex.
func (v Vec) Normalize() bool {
	s := v.Sum()
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return false
	}
	v.Scale(1 / s)
	return true
}

// Dense is a square matrix stored in row-major order.
type Dense struct {
	N    int
	Data []float64
}

// NewDense returns an N x N zero matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// Identity returns scale times the N x N identity matrix.
func Identity(n int, scale float64) *Dense {
	m := NewDense(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = scale
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.N)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m * x as a new vector.
func (m *Dense) MulVec(x Vec) Vec {
	return m.MulVecTo(NewVec(m.N), x)
}

// MulVecTo computes m * x into dst and returns it. dst must have length N
// and may not alias x; it is the allocation-free variant hot paths use with
// a reused scratch vector.
//
//p2b:hotpath
func (m *Dense) MulVecTo(dst, x Vec) Vec {
	if len(x) != m.N {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d vs %d", len(x), m.N))
	}
	if len(dst) != m.N {
		panic(fmt.Sprintf("mat: MulVecTo destination length %d, want %d", len(dst), m.N))
	}
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// AddOuter adds scale * (u u^T) to m in place. This is the LinUCB design
// matrix update A += x x^T.
//
//p2b:hotpath
func (m *Dense) AddOuter(u Vec, scale float64) {
	if len(u) != m.N {
		panic(fmt.Sprintf("mat: AddOuter dimension mismatch %d vs %d", len(u), m.N))
	}
	for i := 0; i < m.N; i++ {
		ui := scale * u[i]
		row := m.Data[i*m.N : (i+1)*m.N]
		for j, uj := range u {
			row[j] += ui * uj
		}
	}
}

// QuadForm returns x^T m x.
func (m *Dense) QuadForm(x Vec) float64 { return x.Dot(m.MulVec(x)) }

// Add adds other to m in place.
func (m *Dense) Add(other *Dense) {
	if m.N != other.N {
		panic(fmt.Sprintf("mat: Add dimension mismatch %d vs %d", m.N, other.N))
	}
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// Sub subtracts other from m in place.
func (m *Dense) Sub(other *Dense) {
	if m.N != other.N {
		panic(fmt.Sprintf("mat: Sub dimension mismatch %d vs %d", m.N, other.N))
	}
	for i := range m.Data {
		m.Data[i] -= other.Data[i]
	}
}

// Mul returns the matrix product m * other as a new matrix.
func (m *Dense) Mul(other *Dense) *Dense {
	if m.N != other.N {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d vs %d", m.N, other.N))
	}
	n := m.N
	out := NewDense(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.Data[i*n+k]
			if a == 0 {
				continue
			}
			orow := other.Data[k*n : (k+1)*n]
			dst := out.Data[i*n : (i+1)*n]
			for j, b := range orow {
				dst[j] += a * b
			}
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and other, a convenience for tests and convergence checks.
func (m *Dense) MaxAbsDiff(other *Dense) float64 {
	if m.N != other.N {
		panic(fmt.Sprintf("mat: MaxAbsDiff dimension mismatch %d vs %d", m.N, other.N))
	}
	max := 0.0
	for i, v := range m.Data {
		d := math.Abs(v - other.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Cholesky computes the lower-triangular factor L with m = L L^T. It returns
// ErrSingular if m is not (numerically) positive definite.
func (m *Dense) Cholesky() (*Dense, error) {
	n := m.N
	l := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves m x = b for symmetric positive-definite m.
func (m *Dense) CholeskySolve(b Vec) (Vec, error) {
	if len(b) != m.N {
		panic(fmt.Sprintf("mat: CholeskySolve dimension mismatch %d vs %d", len(b), m.N))
	}
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := m.N
	// Forward substitution: L y = b.
	y := NewVec(n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: L^T x = y.
	x := NewVec(n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// Inverse returns m^{-1} computed by Gauss-Jordan elimination with partial
// pivoting. It is the reference implementation the Sherman-Morrison fast
// path is verified against.
func (m *Dense) Inverse() (*Dense, error) {
	n := m.N
	a := m.Clone()
	inv := Identity(n, 1)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, col, pivot)
			swapRows(inv, col, pivot)
		}
		// Normalize pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Dense, i, j int) {
	ri := m.Data[i*m.N : (i+1)*m.N]
	rj := m.Data[j*m.N : (j+1)*m.N]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// ShermanMorrison updates inv, assumed to hold (A)^{-1}, to hold
// (A + u u^T)^{-1} in place using the Sherman-Morrison identity:
//
//	(A + uu^T)^{-1} = A^{-1} - (A^{-1} u)(u^T A^{-1}) / (1 + u^T A^{-1} u)
//
// It returns ErrSingular if the denominator is (numerically) zero, which for
// positive-definite A cannot happen.
func ShermanMorrison(inv *Dense, u Vec) error {
	return ShermanMorrisonTo(inv, u, NewVec(inv.N))
}

// ShermanMorrisonTo is ShermanMorrison with a caller-provided scratch
// vector of length N (overwritten), making the update allocation-free.
//
//p2b:hotpath
func ShermanMorrisonTo(inv *Dense, u, scratch Vec) error {
	if len(u) != inv.N {
		panic(fmt.Sprintf("mat: ShermanMorrison dimension mismatch %d vs %d", len(u), inv.N))
	}
	au := inv.MulVecTo(scratch, u) // A^{-1} u; by symmetry also (u^T A^{-1})^T
	denom := 1 + u.Dot(au)
	if math.Abs(denom) < 1e-14 || math.IsNaN(denom) {
		return ErrSingular
	}
	n := inv.N
	f := 1 / denom
	for i := 0; i < n; i++ {
		ai := au[i] * f
		row := inv.Data[i*n : (i+1)*n]
		for j, aj := range au {
			row[j] -= ai * aj
		}
	}
	return nil
}
