package mat

import (
	"math"
	"testing"
)

func TestMulVecToMatchesMulVec(t *testing.T) {
	m := NewDense(3)
	copy(m.Data, []float64{2, 1, 0, 1, 3, 1, 0, 1, 4})
	x := Vec{1, -2, 0.5}
	want := m.MulVec(x)
	dst := NewVec(3)
	got := m.MulVecTo(dst, x)
	if &got[0] != &dst[0] {
		t.Fatal("MulVecTo did not return the destination")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecTo[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulVecToWrongLengthPanics(t *testing.T) {
	m := Identity(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("short destination did not panic")
		}
	}()
	m.MulVecTo(NewVec(2), Vec{1, 2, 3})
}

func TestShermanMorrisonToMatchesAllocating(t *testing.T) {
	a := Identity(4, 1)
	b := Identity(4, 1)
	scratch := NewVec(4)
	us := []Vec{{1, 0.5, -0.25, 2}, {0.1, 0.2, 0.3, 0.4}, {-1, 1, -1, 1}}
	for _, u := range us {
		if err := ShermanMorrison(a, u); err != nil {
			t.Fatal(err)
		}
		if err := ShermanMorrisonTo(b, u, scratch); err != nil {
			t.Fatal(err)
		}
	}
	if diff := a.MaxAbsDiff(b); diff != 0 {
		t.Fatalf("scratch variant diverged by %v", diff)
	}
}

func TestShermanMorrisonToZeroAlloc(t *testing.T) {
	inv := Identity(10, 1)
	u := NewVec(10)
	for i := range u {
		u[i] = 1 / float64(i+1)
	}
	scratch := NewVec(10)
	f := func() {
		if err := ShermanMorrisonTo(inv, u, scratch); err != nil {
			t.Fatal(err)
		}
	}
	f()
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Fatalf("ShermanMorrisonTo allocates %v times per call", n)
	}
	// The repeated updates must keep the matrix finite and symmetric.
	for i := 0; i < inv.N; i++ {
		for j := 0; j < i; j++ {
			if d := math.Abs(inv.At(i, j) - inv.At(j, i)); d > 1e-12 {
				t.Fatalf("asymmetry %v at (%d,%d)", d, i, j)
			}
		}
	}
}
