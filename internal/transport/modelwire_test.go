package transport

import (
	"math"
	"strings"
	"testing"

	"p2b/internal/bandit"
)

func sampleTabular() *bandit.TabularState {
	return &bandit.TabularState{
		Alpha: 1.5,
		K:     3,
		Arms:  2,
		Count: []float64{1, 0, 2, 5, 0, 3},
		Sum:   []float64{0.5, 0, 1.25, -0.5, 0, 2},
	}
}

func sampleLinear() *bandit.LinUCBState {
	return &bandit.LinUCBState{
		Alpha: 0.75,
		D:     2,
		Arms:  2,
		AInv:  [][]float64{{1, 0, 0, 1}, {0.5, 0.1, 0.1, 0.5}},
		B:     [][]float64{{0, 0}, {1.5, -2.25}},
		N:     []int64{0, 7},
	}
}

func TestTabularModelRoundTrip(t *testing.T) {
	want := sampleTabular()
	blob := AppendTabularModel(nil, 42, want)
	version, tab, lin, err := DecodeModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if lin != nil {
		t.Fatal("tabular stream decoded a linear model")
	}
	if version != 42 {
		t.Fatalf("version %d, want 42", version)
	}
	if tab.Alpha != want.Alpha || tab.K != want.K || tab.Arms != want.Arms {
		t.Fatalf("header mismatch: %+v", tab)
	}
	for i := range want.Count {
		if tab.Count[i] != want.Count[i] || tab.Sum[i] != want.Sum[i] {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func TestLinearModelRoundTrip(t *testing.T) {
	want := sampleLinear()
	blob := AppendLinearModel(nil, 7, want)
	version, tab, lin, err := DecodeModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if tab != nil {
		t.Fatal("linear stream decoded a tabular model")
	}
	if version != 7 {
		t.Fatalf("version %d, want 7", version)
	}
	if lin.Alpha != want.Alpha || lin.D != want.D || lin.Arms != want.Arms {
		t.Fatalf("header mismatch: %+v", lin)
	}
	for a := 0; a < want.Arms; a++ {
		for i := range want.AInv[a] {
			if lin.AInv[a][i] != want.AInv[a][i] {
				t.Fatalf("arm %d AInv[%d] mismatch", a, i)
			}
		}
		for i := range want.B[a] {
			if lin.B[a][i] != want.B[a][i] {
				t.Fatalf("arm %d B[%d] mismatch", a, i)
			}
		}
		if lin.N[a] != want.N[a] {
			t.Fatalf("arm %d N mismatch", a)
		}
	}
}

func TestModelDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        nil,
		"bad magic":    []byte("NOPE"),
		"missing kind": []byte(ModelMagic + "\x01"),
		"unknown kind": append([]byte(ModelMagic), 0x01, 0x09),
	}
	for name, blob := range cases {
		if _, _, _, err := DecodeModel(blob); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	// Truncations of a valid stream must all fail cleanly.
	full := AppendTabularModel(nil, 3, sampleTabular())
	for cut := len(ModelMagic); cut < len(full); cut++ {
		if _, _, _, err := DecodeModel(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing bytes are corruption, not slack.
	if _, _, _, err := DecodeModel(append(full, 0)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestModelDecodeRejectsImplausibleShapes(t *testing.T) {
	header := func(kind byte, a, b uint64) []byte {
		blob := append([]byte(ModelMagic), 0x00, kind)
		blob = appendUvarintForTest(blob, a)
		return appendUvarintForTest(blob, b)
	}
	cases := map[string][]byte{
		"giant k":                 header(modelKindTabular, 1<<40, 100),
		"giant arms":              header(modelKindTabular, 4, 1<<40),
		"tabular product wrap":    header(modelKindTabular, 1<<32, 1<<32), // k*arms wraps to 0
		"giant d":                 header(modelKindLinear, 1<<40, 2),
		"linear d*d wrap":         header(modelKindLinear, 1<<63-1, 1),   // d*d+d wraps small
		"linear arms wrap":        header(modelKindLinear, 1<<20, 1<<44), // arms*(d*d+d) wraps
		"linear product too-wide": header(modelKindLinear, 4000, 4000),
	}
	// A pull count above MaxInt64 must be rejected, not wrapped negative.
	blob := header(modelKindLinear, 1, 1)
	blob = append(blob, make([]byte, 8)...)  // alpha
	blob = append(blob, make([]byte, 8)...)  // a_inv (1x1)
	blob = append(blob, make([]byte, 8)...)  // b (1)
	blob = appendUvarintForTest(blob, 1<<63) // n
	cases["negative pull count wrap"] = blob
	for name, blob := range cases {
		// A guard bypass surfaces as a makeslice panic or an OOM-sized
		// allocation, not just a nil error.
		if _, _, _, err := DecodeModel(blob); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func appendUvarintForTest(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func TestModelRoundTripPreservesFloatBits(t *testing.T) {
	st := sampleTabular()
	st.Sum[0] = math.Copysign(0, -1) // -0 must survive
	st.Count[1] = math.MaxFloat64
	blob := AppendTabularModel(nil, 1, st)
	_, tab, _, err := DecodeModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(tab.Sum[0]) != math.Float64bits(st.Sum[0]) {
		t.Fatal("-0 not preserved")
	}
	if tab.Count[1] != math.MaxFloat64 {
		t.Fatal("MaxFloat64 not preserved")
	}
}
