// Binary model wire format. The versioned model-sync route (GET
// /server/model) distributes global model snapshots to device fleets; this
// file defines the compact binary encoding those snapshots travel in,
// following the P2B1 batch codec conventions (magic header, uvarint/varint
// prefixes, little-endian float64 payloads).
//
// Layout:
//
//	stream  := magic "P2BM" uvarint(version) byte(kind) payload
//	kind    := 1 (tabular) | 2 (linear)
//	tabular := uvarint(k) uvarint(arms) f64le(alpha)
//	           k*arms f64le counts, k*arms f64le sums
//	linear  := uvarint(d) uvarint(arms) f64le(alpha)
//	           per arm: d*d f64le a_inv (row-major), d f64le b, uvarint(n)
//
// The version is the server's monotonic model version at snapshot time; it
// doubles as the ETag value of the HTTP route, so a fleet polling an
// unchanged model costs 304s, not payloads. Unlike the batch stream, a
// model stream is a single bounded message, so the decoder works on a fully
// read body rather than a frame reader.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"p2b/internal/bandit"
)

// ContentTypeModel is the content type of the binary model encoding,
// negotiated on GET /server/model via the Accept header (JSON is the
// fallback).
const ContentTypeModel = "application/x-p2b-model"

// ModelMagic opens every binary model stream.
const ModelMagic = "P2BM"

// Model kind tags on the wire.
const (
	modelKindTabular = 1
	modelKindLinear  = 2
)

// maxModelCells bounds the cell count a decoder will allocate for: 1<<24
// float64 cells is 128 MiB of model, far beyond any real deployment, so
// anything larger is corruption or an attack on the client's memory.
const maxModelCells = 1 << 24

// ErrBadModelMagic reports a model stream that does not open with ModelMagic.
var ErrBadModelMagic = errors.New(`transport: model stream does not start with magic "P2BM"`)

func appendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendTabularModel appends the binary encoding of a versioned tabular
// snapshot to dst and returns the extended slice.
func AppendTabularModel(dst []byte, version uint64, st *bandit.TabularState) []byte {
	dst = append(dst, ModelMagic...)
	dst = binary.AppendUvarint(dst, version)
	dst = append(dst, modelKindTabular)
	dst = binary.AppendUvarint(dst, uint64(st.K))
	dst = binary.AppendUvarint(dst, uint64(st.Arms))
	dst = appendFloat64(dst, st.Alpha)
	for _, v := range st.Count {
		dst = appendFloat64(dst, v)
	}
	for _, v := range st.Sum {
		dst = appendFloat64(dst, v)
	}
	return dst
}

// AppendLinearModel appends the binary encoding of a versioned LinUCB
// snapshot to dst and returns the extended slice.
func AppendLinearModel(dst []byte, version uint64, st *bandit.LinUCBState) []byte {
	dst = append(dst, ModelMagic...)
	dst = binary.AppendUvarint(dst, version)
	dst = append(dst, modelKindLinear)
	dst = binary.AppendUvarint(dst, uint64(st.D))
	dst = binary.AppendUvarint(dst, uint64(st.Arms))
	dst = appendFloat64(dst, st.Alpha)
	for a := 0; a < st.Arms; a++ {
		for _, v := range st.AInv[a] {
			dst = appendFloat64(dst, v)
		}
		for _, v := range st.B[a] {
			dst = appendFloat64(dst, v)
		}
		var n int64
		if a < len(st.N) {
			n = st.N[a]
		}
		dst = binary.AppendUvarint(dst, uint64(n))
	}
	return dst
}

// modelReader walks a fully read model stream.
type modelReader struct {
	data []byte
	at   int
}

func (mr *modelReader) uvarint(what string) (uint64, error) {
	v, w := binary.Uvarint(mr.data[mr.at:])
	if w <= 0 {
		return 0, fmt.Errorf("transport: model stream: malformed %s", what)
	}
	mr.at += w
	return v, nil
}

func (mr *modelReader) float64s(dst []float64, what string) error {
	need := 8 * len(dst)
	if len(mr.data)-mr.at < need {
		return fmt.Errorf("transport: model stream: truncated %s", what)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(mr.data[mr.at:]))
		mr.at += 8
	}
	return nil
}

// DecodeModel parses one binary model stream. Exactly one of the returned
// states is non-nil, matching the stream's kind tag.
func DecodeModel(data []byte) (version uint64, tab *bandit.TabularState, lin *bandit.LinUCBState, err error) {
	if len(data) < len(ModelMagic) || string(data[:len(ModelMagic)]) != ModelMagic {
		return 0, nil, nil, ErrBadModelMagic
	}
	mr := &modelReader{data: data, at: len(ModelMagic)}
	version, err = mr.uvarint("version")
	if err != nil {
		return 0, nil, nil, err
	}
	if mr.at >= len(data) {
		return 0, nil, nil, errors.New("transport: model stream: missing kind tag")
	}
	kind := data[mr.at]
	mr.at++
	switch kind {
	case modelKindTabular:
		tab, err = mr.tabular()
	case modelKindLinear:
		lin, err = mr.linear()
	default:
		return 0, nil, nil, fmt.Errorf("transport: model stream: unknown kind %d", kind)
	}
	if err != nil {
		return 0, nil, nil, err
	}
	if mr.at != len(data) {
		return 0, nil, nil, fmt.Errorf("transport: model stream: %d trailing bytes", len(data)-mr.at)
	}
	return version, tab, lin, nil
}

func (mr *modelReader) tabular() (*bandit.TabularState, error) {
	k, err := mr.uvarint("k")
	if err != nil {
		return nil, err
	}
	arms, err := mr.uvarint("arms")
	if err != nil {
		return nil, err
	}
	// Each factor is bounded before multiplying: a crafted header with
	// k, arms near 2^32 would otherwise wrap k*arms around uint64 and
	// slip past the cell bound into a huge (or panicking) allocation.
	if k == 0 || arms == 0 || k > maxModelCells || arms > maxModelCells || k > maxModelCells/arms {
		return nil, fmt.Errorf("transport: model stream: implausible tabular shape k=%d arms=%d", k, arms)
	}
	st := &bandit.TabularState{
		K:     int(k),
		Arms:  int(arms),
		Count: make([]float64, k*arms),
		Sum:   make([]float64, k*arms),
	}
	var alpha [1]float64
	if err := mr.float64s(alpha[:], "alpha"); err != nil {
		return nil, err
	}
	st.Alpha = alpha[0]
	if err := mr.float64s(st.Count, "counts"); err != nil {
		return nil, err
	}
	if err := mr.float64s(st.Sum, "sums"); err != nil {
		return nil, err
	}
	return st, nil
}

func (mr *modelReader) linear() (*bandit.LinUCBState, error) {
	d, err := mr.uvarint("d")
	if err != nil {
		return nil, err
	}
	arms, err := mr.uvarint("arms")
	if err != nil {
		return nil, err
	}
	// Stepwise bounds, for the same overflow reason as the tabular guard:
	// with d and arms individually capped at maxModelCells (2^24), d*d+d
	// stays far below 2^64, and the final product is checked by division.
	if d == 0 || arms == 0 || d > maxModelCells || arms > maxModelCells {
		return nil, fmt.Errorf("transport: model stream: implausible linear shape d=%d arms=%d", d, arms)
	}
	if cells := d*d + d; cells > maxModelCells || arms > maxModelCells/cells {
		return nil, fmt.Errorf("transport: model stream: implausible linear shape d=%d arms=%d", d, arms)
	}
	st := &bandit.LinUCBState{
		D:    int(d),
		Arms: int(arms),
		AInv: make([][]float64, arms),
		B:    make([][]float64, arms),
		N:    make([]int64, arms),
	}
	var alpha [1]float64
	if err := mr.float64s(alpha[:], "alpha"); err != nil {
		return nil, err
	}
	st.Alpha = alpha[0]
	for a := 0; a < int(arms); a++ {
		st.AInv[a] = make([]float64, d*d)
		if err := mr.float64s(st.AInv[a], "a_inv"); err != nil {
			return nil, err
		}
		st.B[a] = make([]float64, d)
		if err := mr.float64s(st.B[a], "b"); err != nil {
			return nil, err
		}
		n, err := mr.uvarint("n")
		if err != nil {
			return nil, err
		}
		if n > math.MaxInt64 {
			return nil, fmt.Errorf("transport: model stream: arm %d pull count overflows int64", a)
		}
		st.N[a] = int64(n)
	}
	return st, nil
}
