// Binary batch wire format. The distributed pipeline ships reports from
// agents to the shuffler in batches; this file defines the compact
// length-prefixed encoding those batches travel in, plus the streaming
// reader the server side uses to consume them without per-envelope
// allocation.
//
// Layout (all integers little-endian where fixed-width, varint otherwise):
//
//	stream := magic frame*
//	magic  := "P2B1"
//	frame  := uvarint(len(body)) body
//	body   := uvarint(len(meta)) meta tuple
//	meta   := uvarint(len(deviceID)) deviceID uvarint(len(addr)) addr varint(sentAt)
//	tuple  := varint(code) varint(action) float64le(reward)
//
// A zero-value Metadata is encoded as a zero-length meta section. Because
// the metadata block carries its own length prefix, a consumer that only
// wants the anonymized tuple (the shuffler ingestion path) can skip the
// identifying bytes without ever materializing them — see
// FrameReader.NextTuple.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Content types negotiated on the batch report route (POST
// /shuffler/reports). The binary encoding is the fast path; NDJSON (one
// JSON-encoded Envelope per line) is the debuggable fallback.
const (
	ContentTypeBinary = "application/x-p2b-batch"
	ContentTypeNDJSON = "application/x-ndjson"
)

// Magic is the 4-byte header that opens every binary batch stream. It lets
// the server reject bodies that merely claim the binary content type.
const Magic = "P2B1"

// MaxFrameBytes bounds one frame body. A frame is one envelope — two short
// metadata strings and three numbers — so 4 KiB is generous; anything
// larger is corruption or an attack on the server's frame buffer.
const MaxFrameBytes = 4096

// Errors returned by the batch decoder.
var (
	ErrBadMagic      = errors.New("transport: batch stream does not start with magic \"P2B1\"")
	ErrFrameTooLarge = fmt.Errorf("transport: frame exceeds %d bytes", MaxFrameBytes)
)

// AppendMagic appends the stream header to dst.
func AppendMagic(dst []byte) []byte { return append(dst, Magic...) }

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded size of v as a zig-zag varint.
func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

// metaSize returns the encoded size of e's metadata section (0 for zero
// metadata).
func (e *Envelope) metaSize() int {
	if e.Meta.IsZero() {
		return 0
	}
	return uvarintLen(uint64(len(e.Meta.DeviceID))) + len(e.Meta.DeviceID) +
		uvarintLen(uint64(len(e.Meta.Addr))) + len(e.Meta.Addr) +
		varintLen(e.Meta.SentAt)
}

// FrameBodySize returns the encoded size of e's frame body, excluding the
// frame's own length prefix — the quantity MaxFrameBytes bounds. Encoders
// must reject envelopes whose body exceeds MaxFrameBytes before shipping:
// the decoder refuses such frames, which would poison the whole batch.
func (e *Envelope) FrameBodySize() int {
	metaLen := e.metaSize()
	return uvarintLen(uint64(metaLen)) + metaLen +
		varintLen(int64(e.Tuple.Code)) + varintLen(int64(e.Tuple.Action)) + 8
}

// AppendFrame appends one length-prefixed frame encoding e to dst and
// returns the extended slice. It never allocates beyond growing dst, so a
// client batching thousands of reports reuses one buffer.
func (e *Envelope) AppendFrame(dst []byte) []byte {
	metaLen := e.metaSize()
	bodyLen := e.FrameBodySize()
	dst = binary.AppendUvarint(dst, uint64(bodyLen))
	dst = binary.AppendUvarint(dst, uint64(metaLen))
	if metaLen > 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.Meta.DeviceID)))
		dst = append(dst, e.Meta.DeviceID...)
		dst = binary.AppendUvarint(dst, uint64(len(e.Meta.Addr)))
		dst = append(dst, e.Meta.Addr...)
		dst = binary.AppendVarint(dst, e.Meta.SentAt)
	}
	dst = binary.AppendVarint(dst, int64(e.Tuple.Code))
	dst = binary.AppendVarint(dst, int64(e.Tuple.Action))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Tuple.Reward))
	return dst
}

// FrameReader is a streaming decoder for a binary batch stream. It reads
// one frame at a time into an internal buffer that is reused across
// frames, so decoding N envelopes costs O(1) allocations, not O(N).
// It is not safe for concurrent use.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
	n   int // frames decoded so far, for error messages
}

// NewFrameReader wraps r and validates the stream magic. A stream whose
// first four bytes are not Magic fails immediately with ErrBadMagic.
func NewFrameReader(r io.Reader) (*FrameReader, error) {
	br := bufio.NewReaderSize(r, 32<<10)
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("transport: reading batch magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, ErrBadMagic
	}
	return &FrameReader{r: br}, nil
}

// readFrame reads the next frame body into the reused buffer. It returns
// io.EOF exactly at a clean end of stream; a stream truncated mid-frame
// yields a wrapped io.ErrUnexpectedEOF instead.
func (fr *FrameReader) readFrame() ([]byte, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: frame %d length prefix: %w", fr.n, err)
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: frame %d: %w", fr.n, ErrFrameTooLarge)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("transport: frame %d body (%d bytes): %w", fr.n, n, err)
	}
	fr.n++
	return body, nil
}

// frameErr annotates a parse failure with the frame index (readFrame has
// already advanced fr.n past this frame).
func (fr *FrameReader) frameErr(what string) error {
	return fmt.Errorf("transport: frame %d: malformed %s", fr.n-1, what)
}

func (fr *FrameReader) uvarint(body []byte, at int, what string) (uint64, int, error) {
	v, w := binary.Uvarint(body[at:])
	if w <= 0 {
		return 0, 0, fr.frameErr(what)
	}
	return v, at + w, nil
}

func (fr *FrameReader) varint(body []byte, at int, what string) (int64, int, error) {
	v, w := binary.Varint(body[at:])
	if w <= 0 {
		return 0, 0, fr.frameErr(what)
	}
	return v, at + w, nil
}

// Next decodes the next envelope, including its metadata, into *e. It
// returns io.EOF at a clean end of stream. Metadata strings are the only
// per-envelope allocations, and only when present.
func (fr *FrameReader) Next(e *Envelope) error {
	body, err := fr.readFrame()
	if err != nil {
		return err
	}
	metaLen, at, err := fr.uvarint(body, 0, "metadata length")
	if err != nil {
		return err
	}
	if metaLen > uint64(len(body)-at) {
		return fr.frameErr("metadata length")
	}
	*e = Envelope{}
	if metaLen > 0 {
		meta := body[at : at+int(metaLen)]
		m := 0
		devLen, m, err := fr.uvarint(meta, m, "device id length")
		if err != nil {
			return err
		}
		if devLen > uint64(len(meta)-m) {
			return fr.frameErr("device id length")
		}
		e.Meta.DeviceID = string(meta[m : m+int(devLen)])
		m += int(devLen)
		addrLen, m, err := fr.uvarint(meta, m, "addr length")
		if err != nil {
			return err
		}
		if addrLen > uint64(len(meta)-m) {
			return fr.frameErr("addr length")
		}
		e.Meta.Addr = string(meta[m : m+int(addrLen)])
		m += int(addrLen)
		sentAt, m, err := fr.varint(meta, m, "sent-at timestamp")
		if err != nil {
			return err
		}
		if m != len(meta) {
			return fr.frameErr("metadata (trailing bytes)")
		}
		e.Meta.SentAt = sentAt
	}
	return fr.tuple(body, at+int(metaLen), &e.Tuple)
}

// NextTuple decodes only the tuple of the next envelope, skipping the
// metadata bytes without materializing them. This is the server ingestion
// fast path: identity never leaves the frame buffer, and no per-envelope
// allocation happens at all. It returns io.EOF at a clean end of stream.
func (fr *FrameReader) NextTuple(t *Tuple) error {
	body, err := fr.readFrame()
	if err != nil {
		return err
	}
	metaLen, at, err := fr.uvarint(body, 0, "metadata length")
	if err != nil {
		return err
	}
	if metaLen > uint64(len(body)-at) {
		return fr.frameErr("metadata length")
	}
	return fr.tuple(body, at+int(metaLen), t)
}

// tuple decodes the trailing tuple section of a frame body starting at at.
func (fr *FrameReader) tuple(body []byte, at int, t *Tuple) error {
	code, at, err := fr.varint(body, at, "code")
	if err != nil {
		return err
	}
	action, at, err := fr.varint(body, at, "action")
	if err != nil {
		return err
	}
	if len(body)-at != 8 {
		return fr.frameErr("reward (want exactly 8 trailing bytes)")
	}
	t.Code = int(code)
	t.Action = int(action)
	t.Reward = math.Float64frombits(binary.LittleEndian.Uint64(body[at:]))
	return nil
}
