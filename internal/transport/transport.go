// Package transport defines the messages that flow between P2B components
// (agents, shuffler, server) and provides two carriers for them: an
// in-process channel bus used by the simulator and an HTTP carrier
// (httptransport.go) used when the components run as separate processes.
//
// Envelopes deliberately carry the identifying metadata a real network
// stack would expose (device ID, source address, timestamp) so that the
// shuffler's anonymization step has something real to strip, and so tests
// can prove it was stripped.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Tuple is the encoded interaction report the private pipeline transmits:
// (y_t, a_t, r_t,a) in the paper's notation.
type Tuple struct {
	Code   int     `json:"code"`
	Action int     `json:"action"`
	Reward float64 `json:"reward"`
}

// RawTuple is the unencoded report of the non-private baseline: the context
// in its original form.
type RawTuple struct {
	Context []float64 `json:"context"`
	Action  int       `json:"action"`
	Reward  float64   `json:"reward"`
}

// Metadata identifies the sender of an envelope. The shuffler must remove
// every field of it before anything reaches the server.
type Metadata struct {
	DeviceID string `json:"device_id"`
	Addr     string `json:"addr"`
	SentAt   int64  `json:"sent_at"` // unix nanoseconds
}

// IsZero reports whether the metadata carries no identifying information.
func (m Metadata) IsZero() bool {
	return m.DeviceID == "" && m.Addr == "" && m.SentAt == 0
}

// Envelope is a tuple in flight together with its transport metadata.
type Envelope struct {
	Meta  Metadata `json:"meta"`
	Tuple Tuple    `json:"tuple"`
}

// ErrClosed is returned when sending on a closed bus.
var ErrClosed = errors.New("transport: bus is closed")

// Bus is an in-process, many-producer single-consumer channel carrier for
// envelopes. Send is safe for concurrent use; Close is idempotent.
type Bus struct {
	ch     chan Envelope
	mu     sync.Mutex
	closed bool
}

// NewBus returns a bus with the given buffer capacity.
func NewBus(buffer int) *Bus {
	if buffer < 0 {
		panic(fmt.Sprintf("transport: negative buffer %d", buffer))
	}
	return &Bus{ch: make(chan Envelope, buffer)}
}

// Send enqueues the envelope, blocking when the buffer is full. It returns
// ErrClosed after Close.
func (b *Bus) Send(e Envelope) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	// Holding the lock across the channel send keeps Close safe: close only
	// proceeds when no sender is mid-send. The buffer keeps contention low.
	defer b.mu.Unlock()
	b.ch <- e
	return nil
}

// TrySend enqueues the envelope without blocking. It reports whether the
// envelope was accepted; false means the buffer was full or the bus closed.
func (b *Bus) TrySend(e Envelope) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	select {
	case b.ch <- e:
		return true
	default:
		return false
	}
}

// Receive returns the consumer side of the bus. The channel is closed after
// Close once drained.
func (b *Bus) Receive() <-chan Envelope { return b.ch }

// Close shuts the bus down. Subsequent Sends fail with ErrClosed; the
// receive channel closes after the remaining buffered envelopes drain.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.ch)
	}
}
