package transport

import (
	"sync"
	"testing"
)

func TestMetadataIsZero(t *testing.T) {
	if !(Metadata{}).IsZero() {
		t.Fatal("empty metadata should be zero")
	}
	cases := []Metadata{
		{DeviceID: "d"},
		{Addr: "1.2.3.4"},
		{SentAt: 1},
	}
	for i, m := range cases {
		if m.IsZero() {
			t.Fatalf("case %d should not be zero", i)
		}
	}
}

func TestBusSendReceive(t *testing.T) {
	b := NewBus(4)
	e := Envelope{Meta: Metadata{DeviceID: "d1"}, Tuple: Tuple{Code: 3, Action: 1, Reward: 0.5}}
	if err := b.Send(e); err != nil {
		t.Fatal(err)
	}
	got := <-b.Receive()
	if got.Tuple.Code != 3 || got.Meta.DeviceID != "d1" {
		t.Fatalf("received %+v", got)
	}
}

func TestBusCloseStopsSends(t *testing.T) {
	b := NewBus(1)
	b.Close()
	if err := b.Send(Envelope{}); err != ErrClosed {
		t.Fatalf("Send after Close: %v, want ErrClosed", err)
	}
	// Idempotent close must not panic.
	b.Close()
	// Receive channel must be closed.
	if _, ok := <-b.Receive(); ok {
		t.Fatal("receive channel should be closed")
	}
}

func TestBusDrainsBufferedAfterClose(t *testing.T) {
	b := NewBus(2)
	if err := b.Send(Envelope{Tuple: Tuple{Code: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Envelope{Tuple: Tuple{Code: 2}}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	var codes []int
	for e := range b.Receive() {
		codes = append(codes, e.Tuple.Code)
	}
	if len(codes) != 2 || codes[0] != 1 || codes[1] != 2 {
		t.Fatalf("drained %v", codes)
	}
}

func TestBusTrySend(t *testing.T) {
	b := NewBus(1)
	if !b.TrySend(Envelope{}) {
		t.Fatal("TrySend into empty buffer failed")
	}
	if b.TrySend(Envelope{}) {
		t.Fatal("TrySend into full buffer succeeded")
	}
	<-b.Receive()
	if !b.TrySend(Envelope{}) {
		t.Fatal("TrySend after drain failed")
	}
	b.Close()
	// Drain the remaining one so the channel closes cleanly.
	for range b.Receive() {
	}
	if b.TrySend(Envelope{}) {
		t.Fatal("TrySend after close succeeded")
	}
}

func TestBusConcurrentProducers(t *testing.T) {
	b := NewBus(64)
	const producers, each = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := b.Send(Envelope{Tuple: Tuple{Code: p}}); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	done := make(chan int)
	go func() {
		n := 0
		for range b.Receive() {
			n++
		}
		done <- n
	}()
	wg.Wait()
	b.Close()
	if n := <-done; n != producers*each {
		t.Fatalf("received %d envelopes, want %d", n, producers*each)
	}
}

func TestNewBusNegativeBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBus(-1) did not panic")
		}
	}()
	NewBus(-1)
}
