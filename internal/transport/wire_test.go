package transport

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"p2b/internal/rng"
)

func roundTrip(t *testing.T, envs []Envelope) []Envelope {
	t.Helper()
	buf := AppendMagic(nil)
	for i := range envs {
		buf = envs[i].AppendFrame(buf)
	}
	fr, err := NewFrameReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var out []Envelope
	for {
		var e Envelope
		err := fr.Next(&e)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func TestWireRoundTrip(t *testing.T) {
	envs := []Envelope{
		{Meta: Metadata{DeviceID: "device-7", Addr: "10.0.0.1:1234", SentAt: 1710000000123456789},
			Tuple: Tuple{Code: 42, Action: 3, Reward: 0.625}},
		{Tuple: Tuple{Code: 0, Action: 0, Reward: 0}}, // zero meta, zero tuple
		{Meta: Metadata{SentAt: -5}, Tuple: Tuple{Code: -1, Action: -2, Reward: -1}},
		{Meta: Metadata{DeviceID: strings.Repeat("x", 300)},
			Tuple: Tuple{Code: 1 << 30, Action: 19, Reward: math.MaxFloat64}},
	}
	got := roundTrip(t, envs)
	if len(got) != len(envs) {
		t.Fatalf("decoded %d envelopes, want %d", len(got), len(envs))
	}
	for i := range envs {
		if got[i] != envs[i] {
			t.Fatalf("envelope %d: got %+v, want %+v", i, got[i], envs[i])
		}
	}
}

func TestWireRoundTripRandomized(t *testing.T) {
	r := rng.New(11)
	envs := make([]Envelope, 500)
	for i := range envs {
		e := &envs[i]
		if r.Float64() < 0.7 {
			e.Meta.DeviceID = strings.Repeat("d", r.IntN(20))
			e.Meta.Addr = strings.Repeat("a", r.IntN(20))
			e.Meta.SentAt = int64(r.Uint64() >> 1)
		}
		e.Tuple = Tuple{Code: r.IntN(4096), Action: r.IntN(100), Reward: r.Float64()*2 - 1}
	}
	got := roundTrip(t, envs)
	for i := range envs {
		if got[i] != envs[i] {
			t.Fatalf("envelope %d: got %+v, want %+v", i, got[i], envs[i])
		}
	}
}

func TestWireNextTupleSkipsMetadata(t *testing.T) {
	envs := []Envelope{
		{Meta: Metadata{DeviceID: "SECRET", Addr: "1.2.3.4:5", SentAt: 99},
			Tuple: Tuple{Code: 7, Action: 1, Reward: 0.5}},
		{Tuple: Tuple{Code: 8, Action: 2, Reward: 1}},
	}
	buf := AppendMagic(nil)
	for i := range envs {
		buf = envs[i].AppendFrame(buf)
	}
	fr, err := NewFrameReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := range envs {
		var tup Tuple
		if err := fr.NextTuple(&tup); err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if tup != envs[i].Tuple {
			t.Fatalf("tuple %d: got %+v, want %+v", i, tup, envs[i].Tuple)
		}
	}
	var tup Tuple
	if err := fr.NextTuple(&tup); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestWireNextTupleZeroAlloc(t *testing.T) {
	// The server ingestion path must not allocate per envelope, even when
	// frames carry metadata. Reading from a bytes.Reader exercises the
	// decoder itself; the one-time bufio and frame buffers are excluded by
	// warming the reader outside the measured loop (a fresh reader per run
	// would charge setup to every envelope).
	const n = 1024
	e := Envelope{
		Meta:  Metadata{DeviceID: "device-000042", Addr: "203.0.113.9:443", SentAt: 1},
		Tuple: Tuple{Code: 17, Action: 3, Reward: 0.25},
	}
	buf := AppendMagic(nil)
	// AllocsPerRun warms the closure once itself, plus our explicit warm
	// read; encode a few spare frames so the measured loop never hits EOF.
	for i := 0; i < n+8; i++ {
		buf = e.AppendFrame(buf)
	}
	fr, err := NewFrameReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var tup Tuple
	if err := fr.NextTuple(&tup); err != nil { // warm the frame buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(n, func() {
		if err := fr.NextTuple(&tup); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("NextTuple allocates %v per envelope, want 0", allocs)
	}
}

func TestWireBadMagic(t *testing.T) {
	_, err := NewFrameReader(strings.NewReader("NOPE and then some"))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	_, err = NewFrameReader(strings.NewReader("P2"))
	if err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestWireTruncatedFrame(t *testing.T) {
	e := Envelope{Meta: Metadata{DeviceID: "d"}, Tuple: Tuple{Code: 3, Action: 1, Reward: 1}}
	full := e.AppendFrame(AppendMagic(nil))
	for cut := len(Magic) + 1; cut < len(full); cut++ {
		fr, err := NewFrameReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: magic should parse: %v", cut, err)
		}
		var got Envelope
		err = fr.Next(&got)
		if err == nil || err == io.EOF {
			t.Fatalf("cut %d: truncated frame not rejected (err=%v)", cut, err)
		}
	}
}

func TestWireFrameTooLarge(t *testing.T) {
	buf := AppendMagic(nil)
	buf = append(buf, 0xFF, 0xFF, 0x7F) // uvarint length far beyond MaxFrameBytes
	fr, err := NewFrameReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var e Envelope
	if err := fr.Next(&e); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestWireRejectsTrailingGarbageInFrame(t *testing.T) {
	e := Envelope{Tuple: Tuple{Code: 1, Action: 2, Reward: 0.5}}
	frame := e.AppendFrame(nil)
	// Corrupt: lengthen the body by 2 garbage bytes and fix the prefix.
	body := append([]byte(nil), frame[1:]...)
	body = append(body, 0xAB, 0xCD)
	buf := AppendMagic(nil)
	buf = append(buf, byte(len(body)))
	buf = append(buf, body...)
	fr, err := NewFrameReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := fr.Next(&got); err == nil {
		t.Fatal("frame with trailing garbage accepted")
	}
}

func TestWireMetaLengthBeyondBody(t *testing.T) {
	buf := AppendMagic(nil)
	// body: metaLen=200 but only a few bytes follow.
	body := []byte{200, 1, 2, 3}
	buf = append(buf, byte(len(body)))
	buf = append(buf, body...)
	fr, err := NewFrameReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var e Envelope
	if err := fr.Next(&e); err == nil {
		t.Fatal("overlong metadata length accepted")
	}
	fr2, _ := NewFrameReader(bytes.NewReader(buf))
	var tup Tuple
	if err := fr2.NextTuple(&tup); err == nil {
		t.Fatal("overlong metadata length accepted by NextTuple")
	}
}

func TestWireNonFiniteRewardSurvivesCodec(t *testing.T) {
	// The codec is faithful: policy (rejecting NaN) lives in the HTTP
	// layer, not the encoding.
	e := Envelope{Tuple: Tuple{Code: 1, Action: 1, Reward: math.NaN()}}
	got := roundTrip(t, []Envelope{e})
	if !math.IsNaN(got[0].Tuple.Reward) {
		t.Fatalf("NaN reward decoded as %v", got[0].Tuple.Reward)
	}
}
