// Package privacy implements the differential-privacy accounting of P2B
// (paper §4): the combination of Bernoulli pre-sampling with participation
// probability p and (l, 0)-crowd-blending yields an (epsilon, delta)-
// differentially-private mechanism with
//
//	epsilon = ln(p * (2-p)/(1-p) * e^epsBar + (1-p))       (Equation 2/3)
//	delta   = exp(-Omega * l * (1-p)^2)
//
// The package provides the forward maps, the inverse map from a target
// epsilon to the participation probability, r-fold composition, a
// crowd-blending verifier for shuffled batches, and the per-user
// participation sampler and budget accountant used by the pipeline.
package privacy

import (
	"fmt"
	"math"
	"sync"

	"p2b/internal/rng"
)

// Epsilon returns the differential-privacy epsilon achieved by sampling
// with participation probability p followed by (l, 0)-crowd-blending
// (Equation 3). Epsilon(0) = 0 (nothing is ever shared) and Epsilon(p)
// diverges as p approaches 1. It panics if p is outside [0, 1).
func Epsilon(p float64) float64 {
	return EpsilonGeneral(p, 0)
}

// EpsilonGeneral returns Equation 2's epsilon for an encoder satisfying
// (l, epsBar)-crowd-blending. P2B's encoder releases identical values for
// every member of a crowd, so epsBar = 0 in all of the paper's experiments.
func EpsilonGeneral(p, epsBar float64) float64 {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("privacy: participation probability %v outside [0, 1)", p))
	}
	if epsBar < 0 {
		panic("privacy: crowd-blending epsilon must be >= 0")
	}
	if p == 0 {
		return 0
	}
	return math.Log(p*(2-p)/(1-p)*math.Exp(epsBar) + (1 - p))
}

// Delta returns the delta parameter exp(-omega * l * (1-p)^2) for
// crowd-blending size l. The constant omega comes from the analysis of
// Gehrke et al. 2012; the paper treats it as a fixed constant, and callers
// that only need the qualitative behaviour can use DefaultOmega.
func Delta(l int, p, omega float64) float64 {
	if l < 0 {
		panic("privacy: crowd size must be >= 0")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("privacy: participation probability %v outside [0, 1]", p))
	}
	q := 1 - p
	return math.Exp(-omega * float64(l) * q * q)
}

// DefaultOmega is a conventional value for the constant in the delta bound,
// used when only the exponential decay in l matters.
const DefaultOmega = 1.0

// ParticipationForEpsilon returns the largest participation probability p
// whose Epsilon(p) does not exceed the target, found by bisection. It
// panics if target < 0.
func ParticipationForEpsilon(target float64) float64 {
	if target < 0 {
		panic("privacy: target epsilon must be >= 0")
	}
	if target == 0 {
		return 0
	}
	lo, hi := 0.0, 1-1e-12
	if Epsilon(hi) <= target {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if Epsilon(mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Compose returns the epsilon guarantee after a user contributes r tuples,
// by the basic composition theorem: r disclosures at epsilon each cost
// r*epsilon in total.
func Compose(eps float64, r int) float64 {
	if r < 0 {
		panic("privacy: composition count must be >= 0")
	}
	return float64(r) * eps
}

// AdvancedCompose returns the epsilon guarantee of r disclosures at epsilon
// each under the advanced composition theorem (Dwork, Rothblum, Vadhan
// 2010): for any deltaSlack > 0 the composition is
//
//	eps' = sqrt(2 r ln(1/deltaSlack)) * eps + r * eps * (e^eps - 1)
//
// differentially private with an additional deltaSlack. For small eps and
// moderate r this is substantially tighter than basic composition; callers
// should take the minimum of both bounds, which this function returns.
func AdvancedCompose(eps float64, r int, deltaSlack float64) float64 {
	if r < 0 {
		panic("privacy: composition count must be >= 0")
	}
	if deltaSlack <= 0 || deltaSlack >= 1 {
		panic("privacy: delta slack must be in (0, 1)")
	}
	if r == 0 || eps == 0 {
		return 0
	}
	basic := Compose(eps, r)
	advanced := math.Sqrt(2*float64(r)*math.Log(1/deltaSlack))*eps +
		float64(r)*eps*(math.Exp(eps)-1)
	return math.Min(basic, advanced)
}

// MinCrowd returns the smallest frequency among the codes present in the
// batch, i.e. the realized crowd-blending parameter l. It returns 0 for an
// empty batch.
func MinCrowd(codes []int) int {
	if len(codes) == 0 {
		return 0
	}
	freq := map[int]int{}
	for _, c := range codes {
		freq[c]++
	}
	min := 0
	for _, n := range freq {
		if min == 0 || n < min {
			min = n
		}
	}
	return min
}

// VerifyCrowdBlending reports whether every code in the batch appears at
// least l times — the invariant the shuffler's thresholding step must
// establish before data reaches the server. An empty batch satisfies any l.
func VerifyCrowdBlending(codes []int, l int) bool {
	if len(codes) == 0 {
		return true
	}
	return MinCrowd(codes) >= l
}

// Sampler implements the randomized data reporting step (§3.1): after a
// local interaction window, the agent constructs a payload with probability
// p. Each agent owns one Sampler seeded from its private stream.
type Sampler struct {
	p float64
	r *rng.Rand
}

// NewSampler returns a participation sampler with probability p in [0, 1).
func NewSampler(p float64, r *rng.Rand) *Sampler {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("privacy: participation probability %v outside [0, 1)", p))
	}
	return &Sampler{p: p, r: r}
}

// P returns the participation probability.
func (s *Sampler) P() float64 { return s.p }

// Participates performs one Bernoulli(p) trial.
func (s *Sampler) Participates() bool { return s.r.Bernoulli(s.p) }

// Epsilon returns the per-disclosure epsilon this sampler's probability
// yields under Equation 3.
func (s *Sampler) Epsilon() float64 { return Epsilon(s.p) }

// Accountant tracks per-user disclosure counts and reports composed budgets.
// The pipeline registers one event per tuple that a user actually submits;
// Budget then applies basic composition. Accountant is safe for concurrent
// use.
type Accountant struct {
	mu      sync.Mutex
	eps     float64
	counts  map[string]int
	maxUser string
}

// NewAccountant returns an accountant for a mechanism whose per-disclosure
// privacy cost is eps.
func NewAccountant(eps float64) *Accountant {
	if eps < 0 {
		panic("privacy: accountant epsilon must be >= 0")
	}
	return &Accountant{eps: eps, counts: map[string]int{}}
}

// Record notes that the user disclosed one tuple.
func (a *Accountant) Record(userID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts[userID]++
	if a.maxUser == "" || a.counts[userID] > a.counts[a.maxUser] {
		a.maxUser = userID
	}
}

// Budget returns the composed epsilon consumed by the user so far.
func (a *Accountant) Budget(userID string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Compose(a.eps, a.counts[userID])
}

// WorstCase returns the largest composed epsilon across all users and the
// user that incurred it. A fresh accountant reports ("", 0).
func (a *Accountant) WorstCase() (string, float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.maxUser == "" {
		return "", 0
	}
	return a.maxUser, Compose(a.eps, a.counts[a.maxUser])
}

// Users returns how many distinct users have disclosed at least one tuple.
func (a *Accountant) Users() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.counts)
}
