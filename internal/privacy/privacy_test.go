package privacy

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"p2b/internal/rng"
)

func TestEpsilonPaperValue(t *testing.T) {
	// The headline: p = 0.5 gives epsilon = ln 2 ~ 0.693.
	got := Epsilon(0.5)
	if math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("Epsilon(0.5) = %v, want ln 2", got)
	}
}

func TestEpsilonZero(t *testing.T) {
	if Epsilon(0) != 0 {
		t.Fatalf("Epsilon(0) = %v, want 0", Epsilon(0))
	}
}

func TestEpsilonMonotoneIncreasing(t *testing.T) {
	prev := -1.0
	for p := 0.0; p < 0.99; p += 0.01 {
		e := Epsilon(p)
		if e <= prev {
			t.Fatalf("Epsilon not strictly increasing at p=%v: %v <= %v", p, e, prev)
		}
		prev = e
	}
}

func TestEpsilonDivergesNearOne(t *testing.T) {
	if Epsilon(0.999999) < 10 {
		t.Fatalf("Epsilon near p=1 should blow up, got %v", Epsilon(0.999999))
	}
}

func TestEpsilonPanicsOutsideRange(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Epsilon(%v) did not panic", p)
				}
			}()
			Epsilon(p)
		}()
	}
}

func TestEpsilonGeneralReducesToEpsilon(t *testing.T) {
	for p := 0.05; p < 0.95; p += 0.05 {
		if math.Abs(EpsilonGeneral(p, 0)-Epsilon(p)) > 1e-15 {
			t.Fatalf("EpsilonGeneral(p, 0) != Epsilon(p) at %v", p)
		}
	}
}

func TestEpsilonGeneralGrowsWithEpsBar(t *testing.T) {
	if EpsilonGeneral(0.5, 0.5) <= EpsilonGeneral(0.5, 0) {
		t.Fatal("a leakier encoder must cost more epsilon")
	}
}

func TestDeltaDecaysExponentiallyInL(t *testing.T) {
	d10 := Delta(10, 0.5, DefaultOmega)
	d20 := Delta(20, 0.5, DefaultOmega)
	d40 := Delta(40, 0.5, DefaultOmega)
	if !(d10 > d20 && d20 > d40) {
		t.Fatalf("Delta should decay with l: %v, %v, %v", d10, d20, d40)
	}
	// Doubling l squares the (sub-1) factor: d20 = d10^2 for this form.
	if math.Abs(d20-d10*d10) > 1e-12 {
		t.Fatalf("Delta(2l) = %v, want Delta(l)^2 = %v", d20, d10*d10)
	}
}

func TestDeltaGrowsWithP(t *testing.T) {
	if Delta(10, 0.9, 1) <= Delta(10, 0.1, 1) {
		t.Fatal("higher participation should weaken the delta bound")
	}
}

func TestParticipationForEpsilonInverse(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, math.Ln2, 1.5, 3} {
		p := ParticipationForEpsilon(eps)
		if Epsilon(p) > eps+1e-9 {
			t.Fatalf("ParticipationForEpsilon(%v) = %v overshoots: Epsilon = %v", eps, p, Epsilon(p))
		}
		if math.Abs(Epsilon(p)-eps) > 1e-6 {
			t.Fatalf("inverse too loose at eps=%v: Epsilon(%v) = %v", eps, p, Epsilon(p))
		}
	}
	if ParticipationForEpsilon(0) != 0 {
		t.Fatal("eps=0 must force p=0")
	}
}

func TestParticipationInverseProperty(t *testing.T) {
	if err := quick.Check(func(raw uint16) bool {
		p := float64(raw) / 65536 * 0.98
		eps := Epsilon(p)
		back := ParticipationForEpsilon(eps)
		return math.Abs(back-p) < 1e-6
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompose(t *testing.T) {
	if Compose(0.5, 3) != 1.5 {
		t.Fatalf("Compose = %v", Compose(0.5, 3))
	}
	if Compose(0.5, 0) != 0 {
		t.Fatal("Compose with r=0 should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative r did not panic")
		}
	}()
	Compose(0.5, -1)
}

func TestAdvancedComposeTighterForManyDisclosures(t *testing.T) {
	eps := 0.1
	// For large r, sqrt(r) growth beats linear growth.
	r := 200
	adv := AdvancedCompose(eps, r, 1e-6)
	basic := Compose(eps, r)
	if adv >= basic {
		t.Fatalf("advanced %v should beat basic %v at r=%d", adv, basic, r)
	}
}

func TestAdvancedComposeNeverWorseThanBasic(t *testing.T) {
	if err := quick.Check(func(e uint8, rr uint8) bool {
		eps := float64(e%100)/100 + 0.01
		r := int(rr % 50)
		return AdvancedCompose(eps, r, 1e-5) <= Compose(eps, r)+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdvancedComposeEdges(t *testing.T) {
	if AdvancedCompose(0.5, 0, 1e-6) != 0 {
		t.Fatal("r=0 should cost 0")
	}
	if AdvancedCompose(0, 10, 1e-6) != 0 {
		t.Fatal("eps=0 should cost 0")
	}
	for _, slack := range []float64{0, 1, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("slack %v did not panic", slack)
				}
			}()
			AdvancedCompose(0.5, 2, slack)
		}()
	}
}

func TestMinCrowd(t *testing.T) {
	if MinCrowd(nil) != 0 {
		t.Fatal("empty batch crowd should be 0")
	}
	if got := MinCrowd([]int{1, 1, 2, 2, 2}); got != 2 {
		t.Fatalf("MinCrowd = %d, want 2", got)
	}
	if got := MinCrowd([]int{5}); got != 1 {
		t.Fatalf("MinCrowd singleton = %d, want 1", got)
	}
}

func TestVerifyCrowdBlending(t *testing.T) {
	codes := []int{1, 1, 1, 2, 2, 2}
	if !VerifyCrowdBlending(codes, 3) {
		t.Fatal("batch satisfying l=3 rejected")
	}
	if VerifyCrowdBlending(codes, 4) {
		t.Fatal("batch failing l=4 accepted")
	}
	if !VerifyCrowdBlending(nil, 100) {
		t.Fatal("empty batch should satisfy any l")
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(0.5, rng.New(1))
	if s.P() != 0.5 {
		t.Fatal("P accessor wrong")
	}
	if math.Abs(s.Epsilon()-math.Ln2) > 1e-12 {
		t.Fatal("sampler epsilon wrong")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Participates() {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.5) > 0.01 {
		t.Fatalf("participation frequency %v", float64(hits)/n)
	}
}

func TestSamplerValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSampler(%v) did not panic", p)
				}
			}()
			NewSampler(p, rng.New(1))
		}()
	}
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(0.5)
	if _, worst := a.WorstCase(); worst != 0 {
		t.Fatal("fresh accountant should report 0")
	}
	a.Record("alice")
	a.Record("alice")
	a.Record("bob")
	if got := a.Budget("alice"); got != 1.0 {
		t.Fatalf("alice budget %v, want 1.0", got)
	}
	if got := a.Budget("bob"); got != 0.5 {
		t.Fatalf("bob budget %v, want 0.5", got)
	}
	if got := a.Budget("carol"); got != 0 {
		t.Fatalf("carol budget %v, want 0", got)
	}
	user, worst := a.WorstCase()
	if user != "alice" || worst != 1.0 {
		t.Fatalf("WorstCase = %q, %v", user, worst)
	}
	if a.Users() != 2 {
		t.Fatalf("Users = %d", a.Users())
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant(0.1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Record(fmt.Sprintf("user-%d", i%10))
			}
		}(w)
	}
	wg.Wait()
	if a.Users() != 10 {
		t.Fatalf("Users = %d, want 10", a.Users())
	}
	// 8 workers x 100 records per user.
	if got := a.Budget("user-3"); math.Abs(got-0.1*800) > 1e-9 {
		t.Fatalf("user-3 budget %v, want 80", got)
	}
}
