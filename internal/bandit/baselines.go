package bandit

import (
	"fmt"
	"math"

	"p2b/internal/rng"
)

// Random selects actions uniformly at random, ignoring context and rewards.
// It is the floor any learning policy must beat.
type Random struct {
	arms int
	r    *rng.Rand
}

// NewRandom returns a uniform random policy.
func NewRandom(arms int, r *rng.Rand) *Random {
	if arms <= 0 {
		panic("bandit: NewRandom needs arms > 0")
	}
	return &Random{arms: arms, r: r}
}

// Arms returns the number of actions.
func (p *Random) Arms() int { return p.arms }

// Select returns a uniformly random action.
func (p *Random) Select(x []float64) int { return p.r.IntN(p.arms) }

// Update is a no-op: the random policy does not learn.
func (p *Random) Update(x []float64, action int, reward float64) {}

// Codes reports a single shared code: Random is context-free.
func (p *Random) Codes() int { return 1 }

// SelectCode returns a uniformly random action.
func (p *Random) SelectCode(y int) int { return p.r.IntN(p.arms) }

// UpdateCode is a no-op.
func (p *Random) UpdateCode(y, action int, reward float64) {}

// EpsilonGreedy is a tabular epsilon-greedy policy over encoded contexts:
// with probability eps it explores uniformly, otherwise it plays the
// empirically best arm for the code.
type EpsilonGreedy struct {
	eps   float64
	k     int
	arms  int
	count []float64
	sum   []float64
	r     *rng.Rand
}

// NewEpsilonGreedy returns an epsilon-greedy policy over k codes. eps must
// lie in [0, 1].
func NewEpsilonGreedy(k, arms int, eps float64, r *rng.Rand) *EpsilonGreedy {
	if k <= 0 || arms <= 0 {
		panic("bandit: NewEpsilonGreedy needs k > 0 and arms > 0")
	}
	if eps < 0 || eps > 1 {
		panic("bandit: NewEpsilonGreedy needs eps in [0, 1]")
	}
	return &EpsilonGreedy{eps: eps, k: k, arms: arms,
		count: make([]float64, k*arms), sum: make([]float64, k*arms), r: r}
}

// Arms returns the number of actions.
func (p *EpsilonGreedy) Arms() int { return p.arms }

// Codes returns the size of the code space.
func (p *EpsilonGreedy) Codes() int { return p.k }

// SelectCode explores with probability eps, otherwise exploits the best
// empirical mean for the code.
func (p *EpsilonGreedy) SelectCode(y int) int {
	if y < 0 || y >= p.k {
		panic(fmt.Sprintf("bandit: code %d out of range", y))
	}
	if p.r.Bernoulli(p.eps) {
		return p.r.IntN(p.arms)
	}
	base := y * p.arms
	scores := make([]float64, p.arms)
	for a := 0; a < p.arms; a++ {
		n := p.count[base+a]
		if n == 0 {
			scores[a] = math.Inf(1) // optimistic: try untouched arms first
		} else {
			scores[a] = p.sum[base+a] / n
		}
	}
	return argmaxTieBreak(scores, p.r)
}

// UpdateCode incorporates an observed reward for (code, action).
func (p *EpsilonGreedy) UpdateCode(y, action int, reward float64) {
	if y < 0 || y >= p.k {
		panic(fmt.Sprintf("bandit: code %d out of range", y))
	}
	i := y*p.arms + action
	p.count[i]++
	p.sum[i] += reward
}

// UCB1 is the classic context-free UCB1 policy (Auer et al. 2002), included
// as the no-context baseline in the ablation study.
type UCB1 struct {
	arms  int
	count []float64
	sum   []float64
	total float64
	r     *rng.Rand
}

// NewUCB1 returns a UCB1 policy.
func NewUCB1(arms int, r *rng.Rand) *UCB1 {
	if arms <= 0 {
		panic("bandit: NewUCB1 needs arms > 0")
	}
	return &UCB1{arms: arms, count: make([]float64, arms), sum: make([]float64, arms), r: r}
}

// Arms returns the number of actions.
func (p *UCB1) Arms() int { return p.arms }

// Codes reports a single shared code: UCB1 is context-free.
func (p *UCB1) Codes() int { return 1 }

// SelectCode ignores the code and plays the UCB1 arm.
func (p *UCB1) SelectCode(y int) int { return p.Select(nil) }

// UpdateCode ignores the code and performs the UCB1 update.
func (p *UCB1) UpdateCode(y, action int, reward float64) { p.Update(nil, action, reward) }

// Select returns the arm maximising mean + sqrt(2 ln t / n), playing each
// arm once first.
func (p *UCB1) Select(x []float64) int {
	scores := make([]float64, p.arms)
	for a := 0; a < p.arms; a++ {
		if p.count[a] == 0 {
			scores[a] = math.Inf(1)
			continue
		}
		scores[a] = p.sum[a]/p.count[a] + math.Sqrt(2*math.Log(math.Max(p.total, 1))/p.count[a])
	}
	return argmaxTieBreak(scores, p.r)
}

// Update incorporates an observed reward.
func (p *UCB1) Update(x []float64, action int, reward float64) {
	p.count[action]++
	p.sum[action] += reward
	p.total++
}

// Thompson is a tabular Thompson-sampling policy with Beta posteriors per
// (code, arm). Rewards in [0, 1] update the pseudo-counts fractionally
// (Agrawal & Goyal's Bernoulli-lift trick applied deterministically).
type Thompson struct {
	k     int
	arms  int
	alpha []float64 // success pseudo-counts, [y*arms + a]
	beta  []float64 // failure pseudo-counts
	r     *rng.Rand
}

// NewThompson returns a Thompson-sampling policy over k codes with uniform
// Beta(1, 1) priors.
func NewThompson(k, arms int, r *rng.Rand) *Thompson {
	if k <= 0 || arms <= 0 {
		panic("bandit: NewThompson needs k > 0 and arms > 0")
	}
	n := k * arms
	t := &Thompson{k: k, arms: arms, alpha: make([]float64, n), beta: make([]float64, n), r: r}
	for i := range t.alpha {
		t.alpha[i], t.beta[i] = 1, 1
	}
	return t
}

// Arms returns the number of actions.
func (p *Thompson) Arms() int { return p.arms }

// Codes returns the size of the code space.
func (p *Thompson) Codes() int { return p.k }

// SelectCode samples each arm's posterior and plays the argmax.
func (p *Thompson) SelectCode(y int) int {
	if y < 0 || y >= p.k {
		panic(fmt.Sprintf("bandit: code %d out of range", y))
	}
	base := y * p.arms
	scores := make([]float64, p.arms)
	for a := 0; a < p.arms; a++ {
		scores[a] = p.betaSample(p.alpha[base+a], p.beta[base+a])
	}
	return argmaxTieBreak(scores, p.r)
}

// UpdateCode adds reward to the success count and 1-reward to the failure
// count, clamping reward into [0, 1].
func (p *Thompson) UpdateCode(y, action int, reward float64) {
	if y < 0 || y >= p.k {
		panic(fmt.Sprintf("bandit: code %d out of range", y))
	}
	if reward < 0 {
		reward = 0
	}
	if reward > 1 {
		reward = 1
	}
	i := y*p.arms + action
	p.alpha[i] += reward
	p.beta[i] += 1 - reward
}

// betaSample draws from Beta(a, b) via two Gamma draws.
func (p *Thompson) betaSample(a, b float64) float64 {
	x := p.r.Gamma(a)
	y := p.r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}
