package bandit

import (
	"fmt"
	"math"

	"p2b/internal/rng"
)

// TabularUCB is LinUCB specialised to one-hot contexts over a code space of
// size K. Because one-hot updates keep the per-arm design matrix diagonal,
// the general algorithm collapses to per-(code, arm) statistics:
//
//	mean(y, a)  = S_{y,a} / (1 + N_{y,a})
//	score(y, a) = mean + alpha / sqrt(1 + N_{y,a})
//
// which is exactly the LinUCB score for context e_y (property-tested in
// tabular_test.go). Select and Update are O(arms) and O(1), so millions of
// simulated private agents are cheap.
type TabularUCB struct {
	alpha  float64
	k      int
	arms   int
	count  []float64 // N, indexed [y*arms + a]
	sum    []float64 // S, indexed [y*arms + a]
	r      *rng.Rand
	scores []float64 // scratch for SelectCode; makes it allocation-free
}

// NewTabularUCB returns a tabular UCB policy over k codes and the given
// number of arms with exploration parameter alpha >= 0.
func NewTabularUCB(k, arms int, alpha float64, r *rng.Rand) *TabularUCB {
	if k <= 0 || arms <= 0 {
		panic(fmt.Sprintf("bandit: NewTabularUCB needs k > 0 and arms > 0, got %d, %d", k, arms))
	}
	if alpha < 0 {
		panic("bandit: NewTabularUCB needs alpha >= 0")
	}
	return &TabularUCB{
		alpha:  alpha,
		k:      k,
		arms:   arms,
		count:  make([]float64, k*arms),
		sum:    make([]float64, k*arms),
		r:      r,
		scores: make([]float64, arms),
	}
}

// Arms returns the number of actions.
func (t *TabularUCB) Arms() int { return t.arms }

// Codes returns the size of the code space.
func (t *TabularUCB) Codes() int { return t.k }

// Alpha returns the exploration parameter.
func (t *TabularUCB) Alpha() float64 { return t.alpha }

func (t *TabularUCB) checkCode(y int) {
	if y < 0 || y >= t.k {
		panic(fmt.Sprintf("bandit: code %d out of range [0, %d)", y, t.k))
	}
}

// ScoreCode returns the UCB score of one arm for code y.
//
//p2b:hotpath
func (t *TabularUCB) ScoreCode(y, arm int) float64 {
	t.checkCode(y)
	i := y*t.arms + arm
	n := t.count[i]
	mean := t.sum[i] / (1 + n)
	return mean + t.alpha/math.Sqrt(1+n)
}

// SelectCode returns the arm with the highest UCB score for code y. The
// scores live in a per-learner scratch buffer, so SelectCode allocates
// nothing — and a TabularUCB must not be shared across goroutines without
// external locking.
//
//p2b:hotpath
func (t *TabularUCB) SelectCode(y int) int {
	t.checkCode(y)
	scores := t.scores
	base := y * t.arms
	for a := 0; a < t.arms; a++ {
		n := t.count[base+a]
		scores[a] = t.sum[base+a]/(1+n) + t.alpha/math.Sqrt(1+n)
	}
	return argmaxTieBreak(scores, t.r)
}

// UpdateCode incorporates an observed reward for (code, action).
//
//p2b:hotpath
func (t *TabularUCB) UpdateCode(y, action int, reward float64) {
	t.checkCode(y)
	if action < 0 || action >= t.arms {
		panic(fmt.Sprintf("bandit: action %d out of range", action))
	}
	i := y*t.arms + action
	t.count[i]++
	t.sum[i] += reward
}

// Observations returns the total number of updates across all cells.
func (t *TabularUCB) Observations() float64 {
	total := 0.0
	for _, n := range t.count {
		total += n
	}
	return total
}

// Merge adds the statistics of other into t. The server uses this to fold
// shuffled batches into the global model and agents use it to warm-start
// from a snapshot.
func (t *TabularUCB) Merge(other *TabularUCB) {
	if t.k != other.k || t.arms != other.arms {
		panic(fmt.Sprintf("bandit: Merge shape mismatch (%d,%d) vs (%d,%d)", t.k, t.arms, other.k, other.arms))
	}
	for i := range t.count {
		t.count[i] += other.count[i]
		t.sum[i] += other.sum[i]
	}
}

// OneHot adapts a TabularUCB to the ContextPolicy interface by interpreting
// the argmax entry of the context as the code. It exists so the tabular fast
// path can be tested head-to-head against dense LinUCB on identical one-hot
// streams.
type OneHot struct {
	T *TabularUCB
}

// Arms returns the number of actions.
func (o OneHot) Arms() int { return o.T.Arms() }

// Select decodes the one-hot context and delegates to the tabular policy.
func (o OneHot) Select(x []float64) int { return o.T.SelectCode(hotIndex(x)) }

// Update decodes the one-hot context and delegates to the tabular policy.
func (o OneHot) Update(x []float64, action int, reward float64) {
	o.T.UpdateCode(hotIndex(x), action, reward)
}

func hotIndex(x []float64) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}
