package bandit

import (
	"math"
	"testing"
	"testing/quick"

	"p2b/internal/rng"
)

func TestTabularUCBValidation(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		k, arms int
		alpha   float64
	}{
		{0, 2, 1}, {2, 0, 1}, {2, 2, -1},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewTabularUCB(c.k, c.arms, c.alpha, r)
		}()
	}
}

func TestTabularUCBScoreFormula(t *testing.T) {
	tb := NewTabularUCB(2, 2, 1.5, rng.New(2))
	// Fresh cell: mean 0, width alpha.
	if got := tb.ScoreCode(0, 0); got != 1.5 {
		t.Fatalf("fresh score = %v, want 1.5", got)
	}
	tb.UpdateCode(0, 0, 1)
	// One observation of reward 1: mean 1/2, width 1.5/sqrt(2).
	want := 0.5 + 1.5/math.Sqrt(2)
	if got := tb.ScoreCode(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("score after one update = %v, want %v", got, want)
	}
	// Other cells untouched.
	if got := tb.ScoreCode(1, 0); got != 1.5 {
		t.Fatalf("unrelated cell changed: %v", got)
	}
}

// TestTabularEquivalentToLinUCBOneHot is the core structural property: the
// tabular learner must agree with dense LinUCB run on one-hot contexts,
// both in scores and (given identical tie-break streams) in action choices.
func TestTabularEquivalentToLinUCBOneHot(t *testing.T) {
	const k, arms = 4, 3
	alpha := 1.0
	// Identical tie-break streams for both policies.
	lin := NewLinUCB(arms, k, alpha, rng.New(99))
	tab := NewTabularUCB(k, arms, alpha, rng.New(99))

	data := rng.New(3)
	oneHot := func(y int) []float64 {
		x := make([]float64, k)
		x[y] = 1
		return x
	}
	for step := 0; step < 500; step++ {
		y := data.IntN(k)
		// Scores must match exactly (up to float error).
		for a := 0; a < arms; a++ {
			ls := lin.Score(oneHot(y), a)
			ts := tab.ScoreCode(y, a)
			if math.Abs(ls-ts) > 1e-9 {
				t.Fatalf("step %d: score mismatch arm %d: linucb %v vs tabular %v", step, a, ls, ts)
			}
		}
		la := lin.Select(oneHot(y))
		ta := tab.SelectCode(y)
		if la != ta {
			t.Fatalf("step %d: action mismatch %d vs %d", step, la, ta)
		}
		r := data.Float64()
		lin.Update(oneHot(y), la, r)
		tab.UpdateCode(y, ta, r)
	}
}

func TestTabularEquivalenceProperty(t *testing.T) {
	// Randomized instances of the same equivalence.
	if err := quick.Check(func(seed uint16, steps uint8) bool {
		k := 2 + int(seed%5)
		arms := 2 + int(seed%3)
		lin := NewLinUCB(arms, k, 0.7, rng.New(uint64(seed)))
		tab := NewTabularUCB(k, arms, 0.7, rng.New(uint64(seed)))
		data := rng.New(uint64(seed) + 1000)
		for s := 0; s < int(steps%64)+1; s++ {
			y := data.IntN(k)
			x := make([]float64, k)
			x[y] = 1
			for a := 0; a < arms; a++ {
				if math.Abs(lin.Score(x, a)-tab.ScoreCode(y, a)) > 1e-9 {
					return false
				}
			}
			a := lin.Select(x)
			if a != tab.SelectCode(y) {
				return false
			}
			r := data.Float64()
			lin.Update(x, a, r)
			tab.UpdateCode(y, a, r)
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTabularMerge(t *testing.T) {
	a := NewTabularUCB(2, 2, 1, rng.New(4))
	b := NewTabularUCB(2, 2, 1, rng.New(5))
	a.UpdateCode(0, 0, 1)
	b.UpdateCode(0, 0, 0.5)
	b.UpdateCode(1, 1, 1)
	a.Merge(b)
	// Cell (0,0): 2 observations summing 1.5 -> mean 1.5/3 = 0.5.
	want := 0.5 + 1/math.Sqrt(3)
	if got := a.ScoreCode(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("merged score = %v, want %v", got, want)
	}
	if a.Observations() != 3 {
		t.Fatalf("merged observations = %v, want 3", a.Observations())
	}
}

func TestTabularMergeShapeMismatchPanics(t *testing.T) {
	a := NewTabularUCB(2, 2, 1, rng.New(6))
	b := NewTabularUCB(3, 2, 1, rng.New(7))
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestTabularCodeRangePanics(t *testing.T) {
	tb := NewTabularUCB(2, 2, 1, rng.New(8))
	cases := []func(){
		func() { tb.SelectCode(-1) },
		func() { tb.SelectCode(2) },
		func() { tb.UpdateCode(5, 0, 1) },
		func() { tb.UpdateCode(0, 3, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTabularLearnsPerCodePreference(t *testing.T) {
	r := rng.New(9)
	tb := NewTabularUCB(2, 2, 0.3, r)
	// Code 0 rewards arm 0; code 1 rewards arm 1.
	for i := 0; i < 400; i++ {
		y := i % 2
		a := tb.SelectCode(y)
		reward := 0.0
		if a == y {
			reward = 1
		}
		tb.UpdateCode(y, a, reward)
	}
	hits := 0
	for i := 0; i < 100; i++ {
		y := i % 2
		if tb.SelectCode(y) == y {
			hits++
		}
	}
	if hits < 90 {
		t.Fatalf("tabular UCB failed to learn per-code preference: %d/100", hits)
	}
}

func TestOneHotAdapter(t *testing.T) {
	tb := NewTabularUCB(3, 2, 1, rng.New(10))
	o := OneHot{T: tb}
	if o.Arms() != 2 {
		t.Fatal("adapter arms wrong")
	}
	x := []float64{0, 1, 0}
	a := o.Select(x)
	o.Update(x, a, 1)
	if tb.Observations() != 1 {
		t.Fatal("adapter did not forward update")
	}
	// The update must have landed on code 1.
	if tb.ScoreCode(0, a) == tb.ScoreCode(1, a) {
		t.Fatal("update landed on wrong code")
	}
}

func TestStateRoundTripTabular(t *testing.T) {
	tb := NewTabularUCB(3, 2, 0.5, rng.New(11))
	tb.UpdateCode(1, 0, 0.7)
	tb.UpdateCode(2, 1, 0.2)
	s := tb.State()
	clone, err := NewTabularUCBFromState(s, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 3; y++ {
		for a := 0; a < 2; a++ {
			if math.Abs(tb.ScoreCode(y, a)-clone.ScoreCode(y, a)) > 1e-12 {
				t.Fatalf("restored score differs at (%d,%d)", y, a)
			}
		}
	}
	// Snapshot is a deep copy: mutating the clone must not touch the source.
	clone.UpdateCode(0, 0, 1)
	if tb.Observations() != 2 {
		t.Fatal("snapshot aliases the original")
	}
}

func TestStateRoundTripLinUCB(t *testing.T) {
	l := NewLinUCB(2, 3, 1, rng.New(13))
	x := []float64{0.2, 0.3, 0.5}
	l.Update(x, 0, 0.9)
	l.Update(x, 1, 0.1)
	s := l.State()
	clone, err := NewLinUCBFromState(s, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		if math.Abs(l.Score(x, a)-clone.Score(x, a)) > 1e-12 {
			t.Fatalf("restored LinUCB score differs at arm %d", a)
		}
	}
	clone.Update(x, 0, 1)
	if l.Pulls(0) != 1 {
		t.Fatal("LinUCB snapshot aliases the original")
	}
}

func TestStateValidation(t *testing.T) {
	if _, err := NewTabularUCBFromState(&TabularState{K: 0, Arms: 2}, rng.New(1)); err == nil {
		t.Fatal("bad tabular state accepted")
	}
	if _, err := NewTabularUCBFromState(&TabularState{K: 2, Arms: 2, Count: []float64{1}, Sum: []float64{1}}, rng.New(1)); err == nil {
		t.Fatal("short tabular state accepted")
	}
	if _, err := NewLinUCBFromState(&LinUCBState{D: 0, Arms: 1}, rng.New(1)); err == nil {
		t.Fatal("bad linucb state accepted")
	}
	if _, err := NewLinUCBFromState(&LinUCBState{D: 2, Arms: 1, AInv: [][]float64{{1}}, B: [][]float64{{1, 0}}}, rng.New(1)); err == nil {
		t.Fatal("short linucb state accepted")
	}
}
