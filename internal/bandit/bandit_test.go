package bandit

import (
	"math"
	"testing"

	"p2b/internal/rng"
)

// linEnv is a simple linear reward environment for sanity tests: arm a's
// expected reward is w_a . x.
type linEnv struct {
	w [][]float64
	r *rng.Rand
}

func newLinEnv(arms, d int, r *rng.Rand) *linEnv {
	e := &linEnv{r: r}
	for a := 0; a < arms; a++ {
		w := make([]float64, d)
		for i := range w {
			w[i] = r.Float64()
		}
		e.w = append(e.w, w)
	}
	return e
}

func (e *linEnv) context(d int) []float64 { return e.r.Simplex(d) }

func (e *linEnv) mean(x []float64, a int) float64 {
	s := 0.0
	for i, v := range x {
		s += v * e.w[a][i]
	}
	return s
}

func (e *linEnv) best(x []float64) int {
	best := 0
	for a := 1; a < len(e.w); a++ {
		if e.mean(x, a) > e.mean(x, best) {
			best = a
		}
	}
	return best
}

func TestNewLinUCBValidation(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		arms, d int
		alpha   float64
	}{
		{0, 3, 1}, {3, 0, 1}, {3, 3, -0.1},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewLinUCB(c.arms, c.d, c.alpha, r)
		}()
	}
}

func TestLinUCBShapes(t *testing.T) {
	l := NewLinUCB(5, 3, 1, rng.New(2))
	if l.Arms() != 5 || l.Dim() != 3 || l.Alpha() != 1 {
		t.Fatal("accessor mismatch")
	}
	if len(l.Theta(0)) != 3 {
		t.Fatal("theta shape wrong")
	}
}

func TestLinUCBFreshScoresEqualWidth(t *testing.T) {
	// With no data, theta = 0 and A = I, so every arm's score is
	// alpha * ||x||.
	l := NewLinUCB(4, 3, 2, rng.New(3))
	x := []float64{0.2, 0.3, 0.5}
	norm := math.Sqrt(0.2*0.2 + 0.3*0.3 + 0.5*0.5)
	for a := 0; a < 4; a++ {
		got := l.Score(x, a)
		want := 2 * norm
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("fresh score arm %d = %v, want %v", a, got, want)
		}
	}
}

func TestLinUCBUpdateShiftsPreference(t *testing.T) {
	l := NewLinUCB(2, 2, 0.1, rng.New(4))
	x := []float64{1, 0}
	// Arm 0 gets reward 1 repeatedly; it must end up preferred at x.
	for i := 0; i < 50; i++ {
		l.Update(x, 0, 1)
		l.Update(x, 1, 0)
	}
	if l.Score(x, 0) <= l.Score(x, 1) {
		t.Fatalf("arm 0 score %v should beat arm 1 score %v", l.Score(x, 0), l.Score(x, 1))
	}
	if l.Select(x) != 0 {
		t.Fatal("Select should pick the rewarded arm")
	}
	if l.Pulls(0) != 50 || l.Pulls(1) != 50 {
		t.Fatalf("pull counts %d, %d", l.Pulls(0), l.Pulls(1))
	}
}

func TestLinUCBConfidenceShrinks(t *testing.T) {
	l := NewLinUCB(1, 2, 1, rng.New(5))
	x := []float64{0.5, 0.5}
	width := func() float64 {
		// theta is zero as long as rewards are zero, so score == width.
		return l.Score(x, 0)
	}
	w0 := width()
	l.Update(x, 0, 0)
	w1 := width()
	for i := 0; i < 20; i++ {
		l.Update(x, 0, 0)
	}
	w2 := width()
	if !(w0 > w1 && w1 > w2) {
		t.Fatalf("confidence width should shrink: %v, %v, %v", w0, w1, w2)
	}
}

func TestLinUCBLearnsLinearEnvironment(t *testing.T) {
	r := rng.New(6)
	env := newLinEnv(4, 5, r.Split("env"))
	agent := NewLinUCB(4, 5, 0.5, r.Split("agent"))
	random := NewRandom(4, r.Split("random"))

	train := 3000
	for i := 0; i < train; i++ {
		x := env.context(5)
		a := agent.Select(x)
		agent.Update(x, a, env.mean(x, a)+r.Norm(0, 0.05))
	}
	// Evaluate greedy accuracy against the true best arm.
	hits, randomHits := 0, 0
	const eval = 1000
	for i := 0; i < eval; i++ {
		x := env.context(5)
		if agent.Select(x) == env.best(x) {
			hits++
		}
		if random.Select(x) == env.best(x) {
			randomHits++
		}
	}
	if hits <= randomHits*2 {
		t.Fatalf("LinUCB hits %d should dominate random hits %d", hits, randomHits)
	}
}

func TestLinUCBDeterministicUnderSeed(t *testing.T) {
	run := func() []int {
		r := rng.New(42)
		env := newLinEnv(3, 4, r.Split("env"))
		agent := NewLinUCB(3, 4, 1, r.Split("agent"))
		actions := make([]int, 200)
		for i := range actions {
			x := env.context(4)
			a := agent.Select(x)
			actions[i] = a
			agent.Update(x, a, env.mean(x, a))
		}
		return actions
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at step %d", i)
		}
	}
}

func TestLinUCBPanicsOnBadInput(t *testing.T) {
	l := NewLinUCB(2, 3, 1, rng.New(7))
	cases := []func(){
		func() { l.Select([]float64{1, 2}) },
		func() { l.Update([]float64{1, 2}, 0, 1) },
		func() { l.Update([]float64{1, 2, 3}, 5, 1) },
		func() { l.Update([]float64{1, 2, 3}, -1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestArgmaxTieBreakUniform(t *testing.T) {
	r := rng.New(8)
	scores := []float64{1, 1, 1}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[argmaxTieBreak(scores, r)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Fatalf("tie-break not uniform: counts[%d] = %v", i, frac)
		}
	}
}

func TestArgmaxTieBreakPicksMax(t *testing.T) {
	r := rng.New(9)
	if argmaxTieBreak([]float64{0, 5, 3}, r) != 1 {
		t.Fatal("argmax wrong")
	}
	if argmaxTieBreak([]float64{7}, r) != 0 {
		t.Fatal("singleton argmax wrong")
	}
}
