package bandit

import (
	"testing"

	"p2b/internal/rng"
)

// These tests pin the zero-allocation contract of the per-interaction hot
// paths. A simulated population calls Select/Update millions of times; any
// per-call allocation shows up directly in simulation throughput and GC
// pressure, so a regression here is a performance bug even when the
// results stay correct.

func testZeroAlloc(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm up lazy state so one-time allocations don't count
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s allocates %v times per call, want 0", name, n)
	}
}

func TestLinUCBZeroAlloc(t *testing.T) {
	l := NewLinUCB(20, 10, 1, rng.New(1))
	x := rng.New(2).Simplex(10)
	testZeroAlloc(t, "LinUCB.Select", func() { l.Select(x) })
	testZeroAlloc(t, "LinUCB.Update", func() { l.Update(x, 3, 0.5) })
	testZeroAlloc(t, "LinUCB.Score", func() { l.Score(x, 0) })
}

func TestTabularUCBZeroAlloc(t *testing.T) {
	tab := NewTabularUCB(1024, 20, 1, rng.New(1))
	testZeroAlloc(t, "TabularUCB.SelectCode", func() { tab.SelectCode(17) })
	testZeroAlloc(t, "TabularUCB.UpdateCode", func() { tab.UpdateCode(17, 3, 0.5) })
}

func TestLinThompsonSelectZeroAlloc(t *testing.T) {
	p := NewLinThompson(20, 10, 0.5, rng.New(1))
	x := rng.New(2).Simplex(10)
	// Select after updates re-derives each arm's Cholesky factor once;
	// steady-state selection must not allocate.
	p.Update(x, 3, 0.5)
	testZeroAlloc(t, "LinThompson.Select", func() { p.Select(x) })
}
