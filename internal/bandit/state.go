package bandit

import (
	"encoding/json"
	"fmt"

	"p2b/internal/mat"
	"p2b/internal/rng"
)

// LinUCBState is a serializable snapshot of a LinUCB policy. The server
// distributes these to warm-start new agents in the non-private pipeline.
//
// Snapshot sharing contract: a state handed out by the server's model
// getters is a shared immutable value — one build per model version serves
// every reader, so holders must treat it as read-only. The explicit copy
// points are Clone (a private mutable copy of the snapshot itself) and the
// NewLinUCBFromState / NewTabularUCBFromState constructors, which deep-copy
// the state into the learner's own buffers: a warm-started learner can
// mutate freely without write access to the shared snapshot.
type LinUCBState struct {
	Alpha float64     `json:"alpha"`
	D     int         `json:"d"`
	Arms  int         `json:"arms"`
	AInv  [][]float64 `json:"a_inv"` // row-major per arm
	B     [][]float64 `json:"b"`
	N     []int64     `json:"n"`
}

// State returns a deep-copied snapshot of the policy.
func (l *LinUCB) State() *LinUCBState {
	s := &LinUCBState{
		Alpha: l.alpha,
		D:     l.d,
		Arms:  l.arms,
		AInv:  make([][]float64, l.arms),
		B:     make([][]float64, l.arms),
		N:     append([]int64(nil), l.n...),
	}
	for a := 0; a < l.arms; a++ {
		s.AInv[a] = append([]float64(nil), l.ainv[a].Data...)
		s.B[a] = append([]float64(nil), l.b[a]...)
	}
	return s
}

// Clone returns a deep copy of the snapshot: the explicit mutable-copy API
// for holders of a shared read-only state.
func (s *LinUCBState) Clone() *LinUCBState {
	out := *s
	out.AInv = make([][]float64, len(s.AInv))
	out.B = make([][]float64, len(s.B))
	for a := range s.AInv {
		out.AInv[a] = append([]float64(nil), s.AInv[a]...)
	}
	for a := range s.B {
		out.B[a] = append([]float64(nil), s.B[a]...)
	}
	out.N = append([]int64(nil), s.N...)
	return &out
}

// NewLinUCBFromState reconstructs a policy from a snapshot, drawing
// tie-break randomness from r. The state is deep-copied, so the new policy
// and later uses of the snapshot are independent — this is the
// copy-on-warm-start seam that lets a whole fleet warm-start off one shared
// snapshot.
func NewLinUCBFromState(s *LinUCBState, r *rng.Rand) (*LinUCB, error) {
	if s.D <= 0 || s.Arms <= 0 {
		return nil, fmt.Errorf("bandit: invalid LinUCB state shape d=%d arms=%d", s.D, s.Arms)
	}
	if len(s.AInv) != s.Arms || len(s.B) != s.Arms {
		return nil, fmt.Errorf("bandit: LinUCB state arm count mismatch")
	}
	l := NewLinUCB(s.Arms, s.D, s.Alpha, r)
	for a := 0; a < s.Arms; a++ {
		if len(s.AInv[a]) != s.D*s.D || len(s.B[a]) != s.D {
			return nil, fmt.Errorf("bandit: LinUCB state arm %d has wrong shape", a)
		}
		copy(l.ainv[a].Data, s.AInv[a])
		l.b[a] = append(mat.Vec(nil), s.B[a]...)
	}
	if len(s.N) == s.Arms {
		copy(l.n, s.N)
	}
	return l, nil
}

// MarshalJSON implements json.Marshaler via the snapshot form.
func (l *LinUCB) MarshalJSON() ([]byte, error) { return json.Marshal(l.State()) }

// TabularState is a serializable snapshot of a TabularUCB policy. The
// server distributes these to warm-start agents in the private pipeline.
// Server-distributed snapshots are shared and read-only; see LinUCBState
// for the sharing contract.
type TabularState struct {
	Alpha float64   `json:"alpha"`
	K     int       `json:"k"`
	Arms  int       `json:"arms"`
	Count []float64 `json:"count"`
	Sum   []float64 `json:"sum"`
}

// State returns a deep-copied snapshot of the policy.
func (t *TabularUCB) State() *TabularState {
	return &TabularState{
		Alpha: t.alpha,
		K:     t.k,
		Arms:  t.arms,
		Count: append([]float64(nil), t.count...),
		Sum:   append([]float64(nil), t.sum...),
	}
}

// Clone returns a deep copy of the snapshot: the explicit mutable-copy API
// for holders of a shared read-only state.
func (s *TabularState) Clone() *TabularState {
	out := *s
	out.Count = append([]float64(nil), s.Count...)
	out.Sum = append([]float64(nil), s.Sum...)
	return &out
}

// NewTabularUCBFromState reconstructs a policy from a snapshot, drawing
// tie-break randomness from r. The state is deep-copied into the learner's
// own buffers (copy-on-warm-start; see LinUCBState).
func NewTabularUCBFromState(s *TabularState, r *rng.Rand) (*TabularUCB, error) {
	if s.K <= 0 || s.Arms <= 0 {
		return nil, fmt.Errorf("bandit: invalid tabular state shape k=%d arms=%d", s.K, s.Arms)
	}
	if len(s.Count) != s.K*s.Arms || len(s.Sum) != s.K*s.Arms {
		return nil, fmt.Errorf("bandit: tabular state size mismatch")
	}
	t := NewTabularUCB(s.K, s.Arms, s.Alpha, r)
	copy(t.count, s.Count)
	copy(t.sum, s.Sum)
	return t, nil
}

// MarshalJSON implements json.Marshaler via the snapshot form.
func (t *TabularUCB) MarshalJSON() ([]byte, error) { return json.Marshal(t.State()) }
