package bandit

import (
	"math"
	"testing"

	"p2b/internal/rng"
)

func TestLinThompsonValidation(t *testing.T) {
	r := rng.New(1)
	cases := []func(){
		func() { NewLinThompson(0, 2, 1, r) },
		func() { NewLinThompson(2, 0, 1, r) },
		func() { NewLinThompson(2, 2, -1, r) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLinThompsonGreedyWhenVZero(t *testing.T) {
	p := NewLinThompson(2, 2, 0, rng.New(2))
	x := []float64{1, 0}
	for i := 0; i < 30; i++ {
		p.Update(x, 0, 1)
		p.Update(x, 1, 0)
	}
	// With v=0 selection is deterministic on the ridge estimate.
	for i := 0; i < 20; i++ {
		if p.Select(x) != 0 {
			t.Fatal("greedy LinThompson should always pick the rewarded arm")
		}
	}
}

func TestLinThompsonExploresWhenVPositive(t *testing.T) {
	p := NewLinThompson(2, 2, 1, rng.New(3))
	x := []float64{0.5, 0.5}
	// With no data both arms are symmetric; selections should be split.
	counts := [2]int{}
	for i := 0; i < 2000; i++ {
		counts[p.Select(x)]++
	}
	frac := float64(counts[0]) / 2000
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("posterior sampling not symmetric: %v", frac)
	}
}

func TestLinThompsonLearnsLinearEnvironment(t *testing.T) {
	r := rng.New(4)
	env := newLinEnv(4, 5, r.Split("env"))
	agent := NewLinThompson(4, 5, 0.3, r.Split("agent"))
	for i := 0; i < 3000; i++ {
		x := env.context(5)
		a := agent.Select(x)
		agent.Update(x, a, env.mean(x, a)+r.Norm(0, 0.05))
	}
	hits := 0
	const eval = 1000
	for i := 0; i < eval; i++ {
		x := env.context(5)
		if agent.Select(x) == env.best(x) {
			hits++
		}
	}
	// Random would hit ~250; require clear learning.
	if hits < 500 {
		t.Fatalf("LinThompson hits %d/1000, want > 500", hits)
	}
}

func TestLinThompsonPanicsOnBadInput(t *testing.T) {
	p := NewLinThompson(2, 3, 1, rng.New(5))
	cases := []func(){
		func() { p.Select([]float64{1}) },
		func() { p.Update([]float64{1}, 0, 1) },
		func() { p.Update([]float64{1, 2, 3}, 9, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLinThompsonAccessors(t *testing.T) {
	p := NewLinThompson(3, 4, 0.5, rng.New(6))
	if p.Arms() != 3 || p.Dim() != 4 {
		t.Fatal("accessors wrong")
	}
}

var _ ContextPolicy = (*LinThompson)(nil)
