// Package bandit implements the contextual bandit algorithms P2B runs on
// user devices and on the server: LinUCB (Chu et al. 2011) over real-valued
// contexts, a tabular UCB learner over encoded contexts (exactly LinUCB
// specialised to one-hot inputs), and the context-free baselines used in the
// ablation study (epsilon-greedy, UCB1, Thompson sampling, uniform random).
//
// All policies are deterministic given their rng.Rand stream, which makes
// whole experiments reproducible from a root seed.
package bandit

import (
	"fmt"
	"math"

	"p2b/internal/mat"
	"p2b/internal/rng"
)

// ContextPolicy is a contextual bandit over d-dimensional real contexts: it
// selects one of Arms() actions for a context and learns from bandit
// feedback (the reward of the chosen action only).
type ContextPolicy interface {
	// Select returns the action to play for context x.
	Select(x []float64) int
	// Update incorporates the observed reward for playing action in
	// context x.
	Update(x []float64, action int, reward float64)
	// Arms returns the number of actions.
	Arms() int
}

// CodePolicy is a bandit over discrete encoded contexts y in {0..K-1}. The
// private P2B pipeline runs local agents directly on codes (paper §5.3).
type CodePolicy interface {
	// SelectCode returns the action to play for code y.
	SelectCode(y int) int
	// UpdateCode incorporates the observed reward for playing action on
	// code y.
	UpdateCode(y, action int, reward float64)
	// Arms returns the number of actions.
	Arms() int
	// Codes returns the size of the code space.
	Codes() int
}

// argmaxTieBreak returns the index of the maximum value, breaking ties
// uniformly at random so that early rounds (all scores equal) explore.
//
//p2b:hotpath
func argmaxTieBreak(scores []float64, r *rng.Rand) int {
	best := scores[0]
	count := 1
	pick := 0
	for i := 1; i < len(scores); i++ {
		switch {
		case scores[i] > best:
			best, pick, count = scores[i], i, 1
		case scores[i] == best:
			count++
			if r.IntN(count) == 0 {
				pick = i
			}
		}
	}
	return pick
}

// LinUCB is the disjoint linear UCB algorithm: one ridge regression per arm
// with an upper-confidence exploration bonus
//
//	p_a(x) = theta_a . x + alpha * sqrt(x^T A_a^{-1} x)
//
// where A_a = I + sum x x^T over the arm's observations and theta_a =
// A_a^{-1} b_a. The inverse is maintained incrementally with
// Sherman-Morrison updates, so Select and Update are O(arms d^2) and O(d^2).
//
// Select exploits the symmetry of A^{-1}: with w = A^{-1} x, the mean term
// theta . x equals b . w, so one matrix-vector product per arm serves both
// the mean and the width. All temporaries live in per-learner scratch
// buffers, making Select and Update allocation-free; consequently a LinUCB
// must not be used from multiple goroutines concurrently (each simulated
// agent owns one, and the server guards its own with a lock).
type LinUCB struct {
	alpha float64
	d     int
	arms  int
	ainv  []*mat.Dense
	b     []mat.Vec
	n     []int64 // per-arm observation counts, for introspection
	r     *rng.Rand

	scores []float64 // scratch: per-arm UCB scores
	av     mat.Vec   // scratch: A^{-1} x / Sherman-Morrison workspace
}

// NewLinUCB returns a LinUCB policy over the given number of arms and
// context dimension with exploration parameter alpha >= 0. The paper's
// experiments use alpha = 1.
func NewLinUCB(arms, d int, alpha float64, r *rng.Rand) *LinUCB {
	if arms <= 0 || d <= 0 {
		panic(fmt.Sprintf("bandit: NewLinUCB needs arms > 0 and d > 0, got %d, %d", arms, d))
	}
	if alpha < 0 {
		panic("bandit: NewLinUCB needs alpha >= 0")
	}
	l := &LinUCB{
		alpha:  alpha,
		d:      d,
		arms:   arms,
		ainv:   make([]*mat.Dense, arms),
		b:      make([]mat.Vec, arms),
		n:      make([]int64, arms),
		r:      r,
		scores: make([]float64, arms),
		av:     mat.NewVec(d),
	}
	for a := 0; a < arms; a++ {
		l.ainv[a] = mat.Identity(d, 1) // (I)^{-1}
		l.b[a] = mat.NewVec(d)
	}
	return l
}

// Arms returns the number of actions.
func (l *LinUCB) Arms() int { return l.arms }

// Dim returns the context dimension.
func (l *LinUCB) Dim() int { return l.d }

// Alpha returns the exploration parameter.
func (l *LinUCB) Alpha() float64 { return l.alpha }

// Pulls returns how many times the arm has been updated.
func (l *LinUCB) Pulls(arm int) int64 { return l.n[arm] }

// Select returns the arm with the highest upper confidence bound for x.
//
//p2b:hotpath
func (l *LinUCB) Select(x []float64) int {
	v := mat.Vec(x)
	if len(v) != l.d {
		panic(fmt.Sprintf("bandit: LinUCB context dim %d, want %d", len(v), l.d))
	}
	for a := 0; a < l.arms; a++ {
		l.scores[a] = l.score(v, a)
	}
	return argmaxTieBreak(l.scores, l.r)
}

// Score returns the UCB score of one arm for context x, exposed for tests
// and diagnostics.
//
//p2b:hotpath
func (l *LinUCB) Score(x []float64, arm int) float64 {
	return l.score(mat.Vec(x), arm)
}

// score computes one arm's UCB score using the shared scratch vector: with
// w = A^{-1} x, score = b . w + alpha sqrt(x . w) (A^{-1} is symmetric).
//
//p2b:hotpath
func (l *LinUCB) score(v mat.Vec, arm int) float64 {
	av := l.ainv[arm].MulVecTo(l.av, v) // A^{-1} x
	mean := l.b[arm].Dot(av)            // theta . x = b . (A^{-1} x)
	width := l.alpha * sqrt(v.Dot(av))  // alpha sqrt(x^T A^{-1} x)
	return mean + width
}

func (l *LinUCB) theta(arm int) mat.Vec {
	return l.ainv[arm].MulVec(l.b[arm])
}

// Theta returns a copy of the arm's current coefficient estimate.
func (l *LinUCB) Theta(arm int) []float64 { return l.theta(arm).Clone() }

// Update performs the ridge regression update for the played arm.
//
//p2b:hotpath
func (l *LinUCB) Update(x []float64, action int, reward float64) {
	v := mat.Vec(x)
	if len(v) != l.d {
		panic(fmt.Sprintf("bandit: LinUCB context dim %d, want %d", len(v), l.d))
	}
	if action < 0 || action >= l.arms {
		panic(fmt.Sprintf("bandit: LinUCB action %d out of range", action))
	}
	if err := mat.ShermanMorrisonTo(l.ainv[action], v, l.av); err != nil {
		// A is positive definite by construction, so this indicates NaN
		// contexts; surface loudly rather than corrupting state.
		panic("bandit: LinUCB update with degenerate context: " + err.Error())
	}
	l.b[action].AddScaled(reward, v)
	l.n[action]++
}

// sqrt guards against tiny negative values from floating point cancellation
// in the quadratic form.
func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
