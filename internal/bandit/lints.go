package bandit

import (
	"fmt"

	"p2b/internal/mat"
	"p2b/internal/rng"
)

// LinThompson is linear Thompson sampling (Agrawal & Goyal 2013): each arm
// keeps the same ridge statistics as LinUCB, but action selection draws a
// coefficient vector from the Gaussian posterior
//
//	theta~_a ~ N(theta_a, v^2 A_a^{-1})
//
// and plays the argmax of theta~_a . x. It explores through posterior
// randomness instead of confidence widths, which often exploits earlier on
// short horizons — the behaviour the policy ablation probes. v >= 0 scales
// the posterior (0 = greedy on the ridge estimate).
type LinThompson struct {
	v    float64
	d    int
	arms int
	ainv []*mat.Dense
	b    []mat.Vec
	// chol caches the Cholesky factor of each arm's A^{-1}; recomputed
	// lazily after updates.
	chol  []*mat.Dense
	dirty []bool
	r     *rng.Rand

	// Per-learner scratch (posterior mean, normal draw, L z, scores and
	// Sherman-Morrison workspace) keeps Select and Update allocation-free;
	// like the other policies, a LinThompson is single-goroutine.
	scores  []float64
	mean    mat.Vec
	z       mat.Vec
	lz      mat.Vec
	scratch mat.Vec
}

// NewLinThompson returns a linear Thompson sampling policy with posterior
// scale v over the given number of arms and context dimension.
func NewLinThompson(arms, d int, v float64, r *rng.Rand) *LinThompson {
	if arms <= 0 || d <= 0 {
		panic(fmt.Sprintf("bandit: NewLinThompson needs arms > 0 and d > 0, got %d, %d", arms, d))
	}
	if v < 0 {
		panic("bandit: NewLinThompson needs v >= 0")
	}
	t := &LinThompson{
		v:       v,
		d:       d,
		arms:    arms,
		ainv:    make([]*mat.Dense, arms),
		b:       make([]mat.Vec, arms),
		chol:    make([]*mat.Dense, arms),
		dirty:   make([]bool, arms),
		r:       r,
		scores:  make([]float64, arms),
		mean:    mat.NewVec(d),
		z:       mat.NewVec(d),
		lz:      mat.NewVec(d),
		scratch: mat.NewVec(d),
	}
	for a := 0; a < arms; a++ {
		t.ainv[a] = mat.Identity(d, 1)
		t.b[a] = mat.NewVec(d)
		t.dirty[a] = true
	}
	return t
}

// Arms returns the number of actions.
func (t *LinThompson) Arms() int { return t.arms }

// Dim returns the context dimension.
func (t *LinThompson) Dim() int { return t.d }

// Select draws one posterior sample per arm and plays the argmax.
//
//p2b:hotpath
func (t *LinThompson) Select(x []float64) int {
	v := mat.Vec(x)
	if len(v) != t.d {
		panic(fmt.Sprintf("bandit: LinThompson context dim %d, want %d", len(v), t.d))
	}
	for a := 0; a < t.arms; a++ {
		theta := t.sampleTheta(a)
		t.scores[a] = theta.Dot(v)
	}
	return argmaxTieBreak(t.scores, t.r)
}

// sampleTheta draws theta + v * L z with L L^T = A^{-1} and z standard
// normal, a sample from N(theta, v^2 A^{-1}). The returned vector aliases
// the learner's scratch and is valid until the next sampleTheta call.
func (t *LinThompson) sampleTheta(arm int) mat.Vec {
	mean := t.ainv[arm].MulVecTo(t.mean, t.b[arm])
	if t.v == 0 {
		return mean
	}
	if t.dirty[arm] {
		l, err := t.ainv[arm].Cholesky()
		if err != nil {
			// A^{-1} is positive definite by construction; a failure means
			// numerically degenerate updates were fed in.
			panic("bandit: LinThompson posterior covariance not PD: " + err.Error())
		}
		t.chol[arm] = l
		t.dirty[arm] = false
	}
	z := t.z
	for i := range z {
		z[i] = t.r.Norm(0, 1)
	}
	mean.AddScaled(t.v, t.chol[arm].MulVecTo(t.lz, z))
	return mean
}

// Update performs the ridge update for the played arm.
func (t *LinThompson) Update(x []float64, action int, reward float64) {
	v := mat.Vec(x)
	if len(v) != t.d {
		panic(fmt.Sprintf("bandit: LinThompson context dim %d, want %d", len(v), t.d))
	}
	if action < 0 || action >= t.arms {
		panic(fmt.Sprintf("bandit: LinThompson action %d out of range", action))
	}
	if err := mat.ShermanMorrisonTo(t.ainv[action], v, t.scratch); err != nil {
		panic("bandit: LinThompson update with degenerate context: " + err.Error())
	}
	t.b[action].AddScaled(reward, v)
	t.dirty[action] = true
}
